package dex_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/dex"
)

// mirrorGraph applies EdgesChanged deltas to a standalone copy of the
// overlay, the way a transport or replica subscriber would.
type mirrorGraph struct {
	g *dex.Graph
}

func newMirror(src *dex.Graph) *mirrorGraph { return &mirrorGraph{g: src.Clone()} }

func (m *mirrorGraph) apply(t *testing.T, deltas []dex.EdgeDelta) {
	t.Helper()
	for _, d := range deltas {
		if d.Delta == 0 {
			t.Fatalf("zero delta for edge {%d,%d}", d.U, d.V)
		}
		for k := d.Delta; k > 0; k-- {
			m.g.AddEdge(d.U, d.V)
		}
		for k := d.Delta; k < 0; k++ {
			if !m.g.RemoveEdge(d.U, d.V) {
				t.Fatalf("delta removes absent edge {%d,%d}", d.U, d.V)
			}
		}
	}
}

// sameEdgeMultiset compares the edge multisets of two graphs (deleted
// nodes linger as isolated nodes in a delta-replayed mirror, so node
// sets are compared via the live graph's side only).
func sameEdgeMultiset(t *testing.T, live, mirror *dex.Graph, step int) {
	t.Helper()
	if live.NumEdges() != mirror.NumEdges() {
		t.Fatalf("step %d: live has %d edges, mirror %d", step, live.NumEdges(), mirror.NumEdges())
	}
	for _, e := range live.Edges() {
		if m := mirror.Multiplicity(e.U, e.V); m != e.Mult {
			t.Fatalf("step %d: edge {%d,%d} live multiplicity %d, mirror %d", step, e.U, e.V, e.Mult, m)
		}
	}
}

// TestEdgeEventsReplayMirrorsGraph is the event-layer differential test:
// replaying the batched EdgesChanged diffs onto a copy of the overlay
// keeps the copy identical to the live graph through type-1 recovery,
// staggered rebuilds, and one-step simplified rebuilds.
func TestEdgeEventsReplayMirrorsGraph(t *testing.T) {
	for _, mode := range []dex.Mode{dex.Staggered, dex.Simplified} {
		t.Run(mode.String(), func(t *testing.T) {
			nw, err := dex.New(
				dex.WithInitialSize(16),
				dex.WithMode(mode),
				dex.WithSeed(11),
				dex.WithEdgeEvents(true),
			)
			if err != nil {
				t.Fatal(err)
			}
			mirror := newMirror(nw.Graph())
			batches, rebuilds := 0, 0
			cancel := nw.Subscribe(func(ev dex.Event) {
				switch e := ev.(type) {
				case dex.EdgesChanged:
					batches++
					mirror.apply(t, e.Deltas)
				case dex.GraphRebuilt:
					rebuilds++
				}
			})
			defer cancel()

			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 500; i++ {
				nodes := nw.Nodes()
				switch {
				case i%25 == 24: // batch insert, distinct attach points
					specs := []dex.InsertSpec{
						{ID: nw.FreshID(), Attach: nodes[rng.Intn(len(nodes))]},
						{ID: nw.FreshID(), Attach: nodes[(rng.Intn(len(nodes))+1)%len(nodes)]},
					}
					err = nw.InsertBatch(specs)
				case i%25 == 12 && nw.Size() > 8:
					err = nw.DeleteBatch(nodes[:2])
					if err != nil {
						err = nil // model-illegal batch rejected: state (and mirror) untouched
					}
				case rng.Float64() < 0.7 || nw.Size() <= 6:
					err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
				default:
					err = nw.Delete(nodes[rng.Intn(len(nodes))])
				}
				if err != nil {
					t.Fatal(err)
				}
				sameEdgeMultiset(t, nw.Graph(), mirror.g, i)
			}
			if batches == 0 {
				t.Fatal("no EdgesChanged events delivered")
			}
			if rebuilds == 0 {
				t.Fatal("churn never rebuilt; test did not cover the rebuild diff path")
			}
		})
	}
}

// TestEdgeEventsOffByDefault checks no EdgesChanged event is published
// without WithEdgeEvents.
func TestEdgeEventsOffByDefault(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	cancel := nw.Subscribe(func(ev dex.Event) {
		if _, ok := ev.(dex.EdgesChanged); ok {
			t.Fatal("EdgesChanged published without WithEdgeEvents")
		}
	})
	defer cancel()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAuditModes drives churn under the sampled audit tier (which must
// stay silent on a healthy network, across staggered rebuilds) and
// validates the option surface.
func TestAuditModes(t *testing.T) {
	if _, err := dex.New(dex.WithAuditMode(dex.AuditMode(42))); err == nil {
		t.Fatal("accepted unknown audit mode")
	}
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(8), dex.WithAuditMode(dex.AuditSampled))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatalf("step %d: sampled audit tripped on a healthy network: %v", i, err)
		}
	}
	// The explicit tiers agree with the exhaustive check on demand.
	if err := nw.Audit(dex.AuditSampled); err != nil {
		t.Fatal(err)
	}
	if err := nw.Audit(dex.AuditFull); err != nil {
		t.Fatal(err)
	}
}

// TestHistoryCapBoundsMemory checks WithHistoryCap keeps only the most
// recent steps while Totals preserves lifetime aggregates.
func TestHistoryCapBoundsMemory(t *testing.T) {
	if _, err := dex.New(dex.WithHistoryCap(-1)); err == nil {
		t.Fatal("accepted negative history cap")
	}
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(5), dex.WithHistoryCap(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const steps = 500
	for i := 0; i < steps; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	h := nw.History()
	if len(h) > 64 {
		t.Fatalf("history holds %d entries, cap is 64", len(h))
	}
	tot := nw.Totals()
	if tot.Steps != steps {
		t.Fatalf("Totals.Steps = %d, want %d", tot.Steps, steps)
	}
	if h[len(h)-1].Step != steps {
		t.Fatalf("last retained step is %d, want %d", h[len(h)-1].Step, steps)
	}
	if tot.Rounds <= 0 || tot.Messages <= 0 || tot.TopologyChanges <= 0 {
		t.Fatalf("degenerate totals: %+v", tot)
	}
}

// TestSampleNodeUniformLive checks SampleNode returns only live nodes
// and never consumes the network's own randomness (replay stays intact).
func TestSampleNodeUniformLive(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	var sampler dex.NodeSampler = nw // contract satisfied
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		victim := sampler.SampleNode(rng)
		if err := nw.Delete(victim); err != nil {
			if errors.Is(err, dex.ErrTooSmall) {
				break
			}
			t.Fatalf("sampled dead node %d: %v", victim, err)
		}
	}
	live := make(map[dex.NodeID]bool)
	for _, u := range nw.Nodes() {
		live[u] = true
	}
	for i := 0; i < 200; i++ {
		if u := sampler.SampleNode(rng); !live[u] {
			t.Fatalf("sampled non-live node %d", u)
		}
	}
}

// TestRecomputeGraphMatchesLive checks the full-rebuild oracle equals
// the incrementally maintained overlay after churn in both modes.
func TestRecomputeGraphMatchesLive(t *testing.T) {
	for _, mode := range []dex.Mode{dex.Staggered, dex.Simplified} {
		nw, err := dex.New(dex.WithInitialSize(16), dex.WithMode(mode), dex.WithSeed(13))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 300; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < 0.6 || nw.Size() <= 6 {
				err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
			} else {
				err = nw.Delete(nodes[rng.Intn(len(nodes))])
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		live, oracle := nw.Graph(), nw.RecomputeGraph()
		if live.NumNodes() != oracle.NumNodes() || live.NumEdges() != oracle.NumEdges() {
			t.Fatalf("mode %v: live %d/%d vs oracle %d/%d (nodes/edges)", mode,
				live.NumNodes(), live.NumEdges(), oracle.NumNodes(), oracle.NumEdges())
		}
		for _, e := range oracle.Edges() {
			if live.Multiplicity(e.U, e.V) != e.Mult {
				t.Fatalf("mode %v: edge {%d,%d} live %d, oracle %d", mode, e.U, e.V,
					live.Multiplicity(e.U, e.V), e.Mult)
			}
		}
	}
}
