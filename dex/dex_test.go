package dex_test

import (
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"repro/dex"
	"repro/internal/dht"
)

// TestQuickstartRoundTrip is the documented happy path, exercised
// through the public API only: construct with options, store data in a
// DHT layered on the event stream, churn the overlay hard (including at
// least one full virtual-graph rebuild), and read everything back.
func TestQuickstartRoundTrip(t *testing.T) {
	nw, err := dex.New(
		dex.WithInitialSize(24),
		dex.WithMode(dex.Staggered),
		dex.WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	store := dht.New(nw)
	defer store.Close()

	const keys = 150
	kv := func(i int) (string, string) {
		return "key-" + string(rune('a'+i%26)) + "-" + strconv.Itoa(i), "value-" + strconv.Itoa(i)
	}
	for i := 0; i < keys; i++ {
		k, v := kv(i)
		store.Put(nw.Nodes()[i%nw.Size()], k, v)
	}

	// Insert/delete churn through an inflation.
	rng := rand.New(rand.NewSource(5))
	p0 := nw.P()
	for i := 0; i < 800; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.65 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if nw.P() == p0 {
		t.Fatalf("insert-heavy churn never inflated (p stayed %d)", p0)
	}
	if store.Rehashes == 0 {
		t.Fatal("DHT never observed a rebuild through the event stream")
	}

	for i := 0; i < keys; i++ {
		k, want := kv(i)
		got, ok, s := store.Get(nw.Nodes()[0], k)
		if !ok || got != want {
			t.Fatalf("round trip lost %q: got %q, ok=%v", k, got, ok)
		}
		if s.Messages <= 0 {
			t.Fatalf("Get(%q) reported no cost", k)
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants after round trip: %v", err)
	}
	if len(nw.History()) != 800 {
		t.Fatalf("history has %d steps, want 800", len(nw.History()))
	}
}

// TestSentinelErrors verifies that the re-exported sentinels match what
// operations return, via errors.Is across the package boundary.
func TestSentinelErrors(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Insert(0, 1); !errors.Is(err, dex.ErrDuplicateID) {
		t.Fatalf("duplicate insert: got %v, want ErrDuplicateID", err)
	}
	if err := nw.Insert(nw.FreshID(), 9999); !errors.Is(err, dex.ErrUnknownNode) {
		t.Fatalf("bad attach: got %v, want ErrUnknownNode", err)
	}
	if err := nw.Delete(9999); !errors.Is(err, dex.ErrUnknownNode) {
		t.Fatalf("bad delete: got %v, want ErrUnknownNode", err)
	}
	sawTooSmall := false
	for i := 0; i < 6; i++ {
		if err := nw.Delete(nw.Nodes()[0]); err != nil {
			if !errors.Is(err, dex.ErrTooSmall) {
				t.Fatalf("shrink floor: got %v, want ErrTooSmall", err)
			}
			sawTooSmall = true
			break
		}
	}
	if !sawTooSmall {
		t.Fatal("never hit the 4-node floor")
	}
}

// TestOptionValidation checks that New rejects bad options instead of
// building a broken network.
func TestOptionValidation(t *testing.T) {
	bad := map[string]dex.Option{
		"initial size < 4": dex.WithInitialSize(3),
		"zeta < 2":         dex.WithZeta(1),
		"theta = 0":        dex.WithTheta(0),
		"theta > 1/16":     dex.WithTheta(0.25), // breaks Lemma 9 within a few hundred steps

		"walk factor < 1": dex.WithWalkFactor(0),
		"nil rng":         dex.WithRNG(nil),
		"unknown mode":    dex.WithMode(dex.Mode(42)),
	}
	for name, opt := range bad {
		if _, err := dex.New(opt); err == nil {
			t.Errorf("%s: New accepted the bad option", name)
		}
	}
	if _, err := dex.New(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

// TestSeedAndRNGEquivalence: WithSeed(s) and WithRNG(rand.New(source(s)))
// must produce identical runs, and equal seeds must replay identically.
func TestSeedAndRNGEquivalence(t *testing.T) {
	build := func(opt dex.Option) []dex.StepMetrics {
		nw, err := dex.New(dex.WithInitialSize(16), opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 120; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < 0.6 || nw.Size() <= 6 {
				if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
					t.Fatal(err)
				}
			}
		}
		return nw.History()
	}
	a := build(dex.WithSeed(99))
	b := build(dex.WithSeed(99))
	c := build(dex.WithRNG(rand.New(rand.NewSource(99))))
	if len(a) != len(b) || len(a) != len(c) {
		t.Fatalf("history lengths diverged: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("step %d: WithRNG diverged from WithSeed: %+v vs %+v", i, a[i], c[i])
		}
	}
}

// TestWithAudit runs churn with per-operation invariant auditing on; any
// violation would surface as an operation error.
func TestWithAudit(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(12), dex.WithAudit(true), dex.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 80; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatalf("audited step %d: %v", i, err)
		}
	}
}

// TestMaintainerContract drives *Network purely through the public
// Maintainer interface.
func TestMaintainerContract(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(10), dex.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	var m dex.Maintainer = nw
	if err := m.Insert(m.FreshID(), m.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	if c := m.LastCost(); c.Messages <= 0 || c.Rounds <= 0 {
		t.Fatalf("LastCost reported a free insert: %+v", c)
	}
	if m.Size() != 11 {
		t.Fatalf("Size = %d, want 11", m.Size())
	}
	if !m.Graph().Connected() {
		t.Fatal("overlay disconnected")
	}
	if _, ok := m.(dex.InvariantChecker); !ok {
		t.Fatal("*Network should satisfy InvariantChecker")
	}
	if _, ok := m.(dex.Coordinated); !ok {
		t.Fatal("*Network should satisfy Coordinated")
	}
}

// TestBatchOperations exercises the Corollary 2 surface through dex.
func TestBatchOperations(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(32), dex.WithMode(dex.Simplified), dex.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	var specs []dex.InsertSpec
	nodes := nw.Nodes()
	for i := 0; i < 8; i++ {
		specs = append(specs, dex.InsertSpec{ID: nw.FreshID(), Attach: nodes[i]})
	}
	if err := nw.InsertBatch(specs); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 40 {
		t.Fatalf("size after batch insert = %d, want 40", nw.Size())
	}
	if st := nw.LastStep(); st.Op != dex.OpBatchInsert {
		t.Fatalf("last op = %v, want batch-insert", st.Op)
	}
	// The deletion model demands a victim set that keeps the remainder
	// connected; retry random sets until one is legal, as an adversary
	// would.
	rng := rand.New(rand.NewSource(4))
	deleted := false
	for try := 0; try < 32 && !deleted; try++ {
		nodes := nw.Nodes()
		rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
		deleted = nw.DeleteBatch(nodes[:3]) == nil
	}
	if !deleted {
		t.Fatal("no legal delete batch found in 32 tries")
	}
	if st := nw.LastStep(); st.Op != dex.OpBatchDelete {
		t.Fatalf("last op = %v, want batch-delete", st.Op)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
