package dex_test

import (
	"sync"
	"testing"

	"repro/dex"
)

// FuzzPipelineSchedule fuzzes the pipelined scheduler against its
// serial oracle. The input encodes a churn script in the FuzzChurnTrace
// header-bit style:
//
//	data[0]        engine seed
//	data[1] bit 0  clustered attach: every insert attaches at node 0, so
//	               window footprints overlap and the retry/drain path
//	               (disturbed speculations re-walking serially) sees
//	               constant traffic
//	data[1] bits 3-7  extra initial nodes on top of 16
//	data[2:]       op stream, dealt round-robin to 3 submitter goroutines;
//	               bit 7 deletes one of the submitter's own earlier
//	               inserts, otherwise the byte inserts a fresh node
//
// Whatever schedule the scheduler admits is replayed through a plain
// serial Network with the same seed; History, node set, overlay, and
// loads must match byte for byte.
func FuzzPipelineSchedule(f *testing.F) {
	f.Add([]byte{7, 0x01, 0x10, 0x20, 0x90, 0x30, 0x81, 0x40, 0x50, 0xa0, 0x11, 0x22})
	f.Add([]byte{3, 0x28, 0x01, 0x02, 0x83, 0x04, 0x85, 0x06, 0x07, 0x88})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		seed := int64(data[0])
		clustered := data[1]&0x01 != 0
		n0 := 16 + int(data[1]>>3)
		script := data[2:]
		if len(script) > 300 {
			script = script[:300]
		}

		c, err := dex.NewConcurrent(dex.WithInitialSize(n0), dex.WithSeed(seed),
			dex.WithWorkers(4), dex.WithAuditMode(dex.AuditSampled), dex.WithPipeline(8))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var mu sync.Mutex
		var admitted []dex.AdmittedOp
		c.SetAdmissionObserver(func(op dex.AdmittedOp) {
			mu.Lock()
			admitted = append(admitted, op)
			mu.Unlock()
		})

		const submitters = 3
		var wg sync.WaitGroup
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var mine []dex.NodeID // own inserted ids; peers never touch them
				next := 0
				for i := g; i < len(script); i += submitters {
					b := script[i]
					if b&0x80 != 0 && len(mine) > 0 {
						k := int(b&0x7f) % len(mine)
						id := mine[k]
						mine = append(mine[:k], mine[k+1:]...)
						if err := c.Delete(id); err != nil {
							t.Errorf("submitter %d delete %d: %v", g, id, err)
							return
						}
					} else {
						id := dex.NodeID(1_000_000*(g+1) + next)
						next++
						at := dex.NodeID(0)
						if !clustered {
							if len(mine) > 0 && b&0x40 != 0 {
								at = mine[int(b&0x3f)%len(mine)]
							} else {
								at = dex.NodeID(int(b) % n0)
							}
						}
						if err := c.Insert(id, at); err != nil {
							t.Errorf("submitter %d insert %d@%d: %v", g, id, at, err)
							return
						}
						mine = append(mine, id)
					}
				}
			}(g)
		}
		wg.Wait()
		c.SetAdmissionObserver(nil)
		if t.Failed() {
			return
		}

		plain, err := dex.New(dex.WithInitialSize(n0), dex.WithSeed(seed),
			dex.WithWorkers(4), dex.WithAuditMode(dex.AuditSampled))
		if err != nil {
			t.Fatal(err)
		}
		defer plain.Close()
		mu.Lock()
		sched := append([]dex.AdmittedOp(nil), admitted...)
		mu.Unlock()
		replayAdmitted(t, plain, sched)
		comparePipelinedToSerial(t, c, plain)
	})
}
