package dex_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/dex"
)

// comparePipelinedToSerial asserts the pipelined façade's frozen state
// is byte-identical to a plain serial Network: history, node set,
// overlay edge multiset, and per-node loads.
func comparePipelinedToSerial(t *testing.T, c *dex.Concurrent, plain *dex.Network) {
	t.Helper()
	if !reflect.DeepEqual(plain.History(), c.History()) {
		t.Fatal("histories diverged between serial oracle and pipelined façade")
	}
	nodes := plain.Nodes()
	if !reflect.DeepEqual(nodes, c.Nodes()) {
		t.Fatal("node sets diverged")
	}
	snap, _ := c.Snapshot()
	if !reflect.DeepEqual(plain.Graph().Edges(), snap.Edges()) {
		t.Fatal("overlay edge multisets diverged")
	}
	for _, u := range nodes {
		if pl, cl := plain.Load(u), c.Load(u); pl != cl {
			t.Fatalf("load of node %d diverged: serial %d, pipelined %d", u, pl, cl)
		}
	}
}

// TestPipelinedMatchesPlain: a single-caller pipelined façade (windows
// of one, every insert speculated, audits deferred by a window) is
// byte-identical to the plain serial Network on the same op sequence.
func TestPipelinedMatchesPlain(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plain, err := dex.New(dex.WithInitialSize(24), dex.WithSeed(121),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			c, err := dex.NewConcurrent(dex.WithInitialSize(24), dex.WithSeed(121),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled),
				dex.WithPipeline(16))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			driveSeededChurn(t, 121, 300, plain.Size, plain.Nodes, plain.FreshID, plain.Insert, plain.Delete)
			driveSeededChurn(t, 121, 300, c.Size, c.Nodes, c.FreshID, c.Insert, c.Delete)

			comparePipelinedToSerial(t, c, plain)
			hits, _, _ := c.PipelineStats()
			if hits == 0 {
				t.Fatal("no speculation hits in 300 pipelined churn steps")
			}
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// pipelinedChurn drives submitters concurrent goroutines of mostly
// non-overlapping churn (each owns a private id range and attaches new
// nodes inside it) against c, recording the admitted schedule. When
// clustered is set every insert instead attaches at one shared node, so
// window footprints overlap and conflicting ops drain through the
// serial path.
func pipelinedChurn(t *testing.T, c *dex.Concurrent, submitters, ops int, clustered bool) []dex.AdmittedOp {
	t.Helper()
	var mu sync.Mutex
	var admitted []dex.AdmittedOp
	if !c.SetAdmissionObserver(func(op dex.AdmittedOp) {
		mu.Lock()
		admitted = append(admitted, op)
		mu.Unlock()
	}) {
		t.Fatal("SetAdmissionObserver on a pipelined façade returned false")
	}
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			anchor := dex.NodeID(g * 3)
			var mine []dex.NodeID // own live inserted ids, never touched by peers
			for i := 0; i < ops; i++ {
				if len(mine) == 0 || rng.Float64() < 0.7 {
					id := dex.NodeID(1_000_000*(g+1) + i)
					at := anchor
					if clustered {
						at = 0
					} else if len(mine) > 0 && rng.Float64() < 0.5 {
						at = mine[rng.Intn(len(mine))]
					}
					if err := c.Insert(id, at); err != nil {
						t.Errorf("submitter %d insert %d@%d: %v", g, id, at, err)
						return
					}
					mine = append(mine, id)
				} else {
					k := rng.Intn(len(mine))
					id := mine[k]
					mine = append(mine[:k], mine[k+1:]...)
					if err := c.Delete(id); err != nil {
						t.Errorf("submitter %d delete %d: %v", g, id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	c.SetAdmissionObserver(nil)
	mu.Lock()
	defer mu.Unlock()
	return admitted
}

// replayAdmitted applies an admitted schedule to a fresh serial Network.
func replayAdmitted(t *testing.T, plain *dex.Network, admitted []dex.AdmittedOp) {
	t.Helper()
	for i, op := range admitted {
		var err error
		switch op.Kind {
		case dex.OpInsert:
			err = plain.Insert(op.ID, op.Attach)
		case dex.OpDelete:
			err = plain.Delete(op.ID)
		case dex.OpBatchInsert:
			err = plain.InsertBatch(op.Specs)
		case dex.OpBatchDelete:
			err = plain.DeleteBatch(op.IDs)
		default:
			t.Fatalf("admitted op %d has unknown kind %v", i, op.Kind)
		}
		if err != nil {
			t.Fatalf("serial replay diverged at admitted op %d (%+v): %v", i, op, err)
		}
	}
}

// TestPipelineOracleLockstep is the tentpole's linearizability oracle:
// concurrent submitters churn a pipelined façade, the admitted schedule
// is recorded, and replaying it through a plain serial Network with the
// same seed must reproduce History, node set, overlay, and loads byte
// for byte — at every worker width.
func TestPipelineOracleLockstep(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := dex.NewConcurrent(dex.WithInitialSize(64), dex.WithSeed(77),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled),
				dex.WithPipeline(16))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			admitted := pipelinedChurn(t, c, 4, 150, false)
			if len(admitted) != 4*150 {
				t.Fatalf("admitted %d ops, want %d", len(admitted), 4*150)
			}

			plain, err := dex.New(dex.WithInitialSize(64), dex.WithSeed(77),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			replayAdmitted(t, plain, admitted)
			comparePipelinedToSerial(t, c, plain)
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipelineDeleteSpeculation proves the delete-prediction path
// engages: after a growth phase, a deletes-only phase is driven through
// the pipelined façade — any speculation hits recorded during it can
// only come from core.SpeculateDeletes (insert speculation needs
// admitted inserts) — and the resulting state must stay byte-identical
// to a plain serial Network on the same sequence.
func TestPipelineDeleteSpeculation(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			plain, err := dex.New(dex.WithInitialSize(24), dex.WithSeed(99),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled))
			if err != nil {
				t.Fatal(err)
			}
			defer plain.Close()
			c, err := dex.NewConcurrent(dex.WithInitialSize(24), dex.WithSeed(99),
				dex.WithWorkers(workers), dex.WithAuditMode(dex.AuditSampled),
				dex.WithPipeline(16))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const born = 60
			for i := 0; i < born; i++ {
				id, at := dex.NodeID(1000+i), dex.NodeID(i%24)
				if err := plain.Insert(id, at); err != nil {
					t.Fatal(err)
				}
				if err := c.Insert(id, at); err != nil {
					t.Fatal(err)
				}
			}
			growthHits, _, _ := c.PipelineStats()
			for i := 0; i < born; i++ {
				id := dex.NodeID(1000 + i)
				if err := plain.Delete(id); err != nil {
					t.Fatal(err)
				}
				if err := c.Delete(id); err != nil {
					t.Fatal(err)
				}
			}
			hits, misses, _ := c.PipelineStats()
			t.Logf("delete phase: %d speculation hits, %d serial drains", hits-growthHits, misses)
			if hits == growthHits {
				t.Fatal("no delete speculation hit across a deletes-only phase in the dense regime")
			}
			comparePipelinedToSerial(t, c, plain)
			if err := c.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPipelineConflictDrain forces overlapping footprints: every
// submitter attaches at node 0, so a window's commits disturb the
// speculative walks behind them and those ops must drain through the
// serial path (speculation misses). The oracle must hold regardless —
// conflicts cost wall-clock, never state.
func TestPipelineConflictDrain(t *testing.T) {
	c, err := dex.NewConcurrent(dex.WithInitialSize(32), dex.WithSeed(88),
		dex.WithWorkers(4), dex.WithAuditMode(dex.AuditSampled), dex.WithPipeline(16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	admitted := pipelinedChurn(t, c, 8, 120, true)

	hits, misses, _ := c.PipelineStats()
	t.Logf("clustered churn: %d speculation hits, %d drained through the serial path", hits, misses)
	if hits+misses == 0 {
		t.Fatal("no speculation activity under clustered churn")
	}
	if misses == 0 {
		t.Fatal("no conflicting op ever drained through the serial path; overlap forcing is broken")
	}

	plain, err := dex.New(dex.WithInitialSize(32), dex.WithSeed(88),
		dex.WithWorkers(4), dex.WithAuditMode(dex.AuditSampled))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	replayAdmitted(t, plain, admitted)
	comparePipelinedToSerial(t, c, plain)
}

// TestPipelineHammer is the scheduler's -race gate: churn submitters,
// generic Do sections, batch ops, explicit audits, snapshot/history
// readers, and subscription churn all hammer one pipelined façade with
// async events. Correctness is "no race, no deadlock, invariants hold,
// events flow".
func TestPipelineHammer(t *testing.T) {
	c, err := dex.NewConcurrent(
		dex.WithInitialSize(32),
		dex.WithSeed(99),
		dex.WithWorkers(4),
		dex.WithAuditMode(dex.AuditSampled),
		dex.WithPipeline(8),
		dex.WithAsyncEvents(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	var events atomic.Int64
	cancel := c.Subscribe(func(dex.Event) { events.Add(1) })
	defer cancel()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < 120; i++ {
				switch {
				case rng.Float64() < 0.6 || c.Size() <= 12:
					err := c.Insert(c.FreshID(), c.Sample())
					if err != nil && !errors.Is(err, dex.ErrUnknownNode) {
						t.Errorf("insert: %v", err)
						return
					}
				case rng.Float64() < 0.5:
					err := c.Delete(c.Sample())
					if err != nil && !errors.Is(err, dex.ErrUnknownNode) && !errors.Is(err, dex.ErrTooSmall) {
						t.Errorf("delete: %v", err)
						return
					}
				default:
					// Generic ops interleave with typed ones in admission order.
					err := c.Do(func(nw *dex.Network) error {
						return nw.InsertBatch([]dex.InsertSpec{{ID: nw.FreshID(), Attach: nw.Nodes()[0]}})
					})
					if err != nil {
						t.Errorf("batch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := c.Audit(dex.AuditSampled); err != nil {
				t.Errorf("audit: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			stop := c.Subscribe(func(dex.Event) {})
			snap, _ := c.Snapshot()
			if snap.NumNodes() == 0 {
				t.Error("empty snapshot")
				return
			}
			_ = c.History()
			_ = c.Totals()
			_, _, _ = c.PipelineStats()
			stop()
		}
	}()
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after pipeline hammer: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Fatal("no events delivered")
	}
	if err := c.Insert(c.FreshID(), 0); !errors.Is(err, dex.ErrClosed) {
		t.Fatalf("insert after Close: %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPipelineOptionValidation: plain New rejects WithPipeline, and the
// depth must be positive.
func TestPipelineOptionValidation(t *testing.T) {
	if _, err := dex.New(dex.WithPipeline(8)); err == nil {
		t.Fatal("New accepted WithPipeline")
	}
	if _, err := dex.NewConcurrent(dex.WithPipeline(0)); err == nil {
		t.Fatal("pipeline depth 0 accepted")
	}
	c, err := dex.NewConcurrent(dex.WithInitialSize(16), dex.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.SetAdmissionObserver(func(dex.AdmittedOp) {}) {
		t.Fatal("SetAdmissionObserver succeeded on a non-pipelined façade")
	}
}
