package dex

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/persist"
)

// Mode selects how type-2 recovery is performed.
type Mode = core.RecoveryMode

const (
	// Simplified rebuilds the whole virtual graph in a single step
	// (Algorithms 4.5/4.6): the amortized bounds of Corollary 1.
	Simplified = core.Simplified
	// Staggered spreads rebuilds over Theta(n) steps via the coordinator
	// (Algorithms 4.7-4.9): the worst-case bounds of Theorem 1. This is
	// the default.
	Staggered = core.Staggered
)

// AuditMode selects how much invariant checking runs after each
// mutating operation (see WithAuditMode).
type AuditMode = core.AuditMode

const (
	// AuditOff performs no per-operation checking (the default).
	AuditOff = core.AuditOff
	// AuditSampled verifies node-local invariants for the nodes the
	// operation touched plus a small random sample: O(zeta) per checked
	// node, independent of network size, so it can stay on for
	// million-node runs.
	AuditSampled = core.AuditSampled
	// AuditFull runs the exhaustive O(n + p) invariant check after every
	// operation.
	AuditFull = core.AuditFull
)

// options collects the configuration assembled by Option values.
type options struct {
	initialSize int
	cfg         core.Config
	rng         *rand.Rand
	audit       AuditMode
	edgeEvents  bool
	asyncBuf    int // WithAsyncEvents buffer; -1 = sync (NewConcurrent only)
	pipeDepth   int // WithPipeline window depth; 0 = serialized (NewConcurrent only)
	persistDir  string
	popt        persist.Options
	err         error
}

func defaultOptions() options {
	return options{initialSize: 64, cfg: core.DefaultConfig(), asyncBuf: -1}
}

// Option configures a Network under construction; pass them to New.
type Option func(*options)

// fail records the first option error; New reports it instead of
// constructing.
func (o *options) fail(format string, args ...any) {
	if o.err == nil {
		o.err = fmt.Errorf("dex: "+format, args...)
	}
}

// WithInitialSize sets the initial node count n0 (>= 4; default 64).
// Nodes receive ids 0..n0-1.
func WithInitialSize(n0 int) Option {
	return func(o *options) {
		if n0 < 4 {
			o.fail("initial size %d < 4", n0)
			return
		}
		o.initialSize = n0
	}
}

// WithMode selects Simplified or Staggered type-2 recovery (default
// Staggered).
func WithMode(m Mode) Option {
	return func(o *options) {
		if m != Simplified && m != Staggered {
			o.fail("unknown recovery mode %d", int(m))
			return
		}
		o.cfg.Mode = m
	}
}

// WithZeta sets the maximum cloud size zeta of the p-cycle construction
// (>= 2; the paper fixes zeta <= 8, the default). Exposed for ablations.
func WithZeta(zeta int) Option {
	return func(o *options) {
		if zeta < 2 {
			o.fail("zeta %d < 2", zeta)
			return
		}
		o.cfg.Zeta = zeta
	}
}

// WithTheta sets the rebuilding parameter theta in (0, 1/16]. The
// paper's proofs need theta <= 1/(68*zeta+1); the default 1/64 keeps
// staggering phases short while all invariants hold empirically, and
// the AB-THETA ablation validates the range up to 1/16. Larger values
// delay rebuilds long enough to breach the Lemma 9 load bound, so they
// are rejected.
func WithTheta(theta float64) Option {
	return func(o *options) {
		if theta <= 0 || theta > 1.0/16 {
			o.fail("theta %v outside (0, 1/16]", theta)
			return
		}
		o.cfg.Theta = theta
	}
}

// WithWalkFactor sets c in the type-1 walk length c*ceil(log2 n)
// (>= 1; default 4). Exposed for ablations.
func WithWalkFactor(c int) Option {
	return func(o *options) {
		if c < 1 {
			o.fail("walk factor %d < 1", c)
			return
		}
		o.cfg.WalkFactor = c
	}
}

// WithSeed seeds the network's deterministic random source (default 1).
// Two networks built with equal options and driven by the same
// operation sequence behave identically.
func WithSeed(seed int64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithRNG supplies an explicit random source, overriding WithSeed. The
// network takes ownership of r; per the package concurrency contract it
// must not be shared with other goroutines.
func WithRNG(r *rand.Rand) Option {
	return func(o *options) {
		if r == nil {
			o.fail("nil RNG")
			return
		}
		o.rng = r
	}
}

// WithAudit makes every mutating operation re-verify all paper
// invariants before returning (CheckInvariants); violations surface as
// operation errors. Intended for tests and debugging — audits cost
// O(n + p) per operation. WithAudit(on) is shorthand for
// WithAuditMode(AuditFull) / WithAuditMode(AuditOff).
func WithAudit(on bool) Option {
	return func(o *options) {
		if on {
			o.audit = AuditFull
		} else {
			o.audit = AuditOff
		}
	}
}

// WithAuditMode selects the per-operation invariant-checking tier:
// AuditOff (default), AuditSampled (incremental: the operation's dirty
// nodes plus a random sample, o(n) per operation), or AuditFull
// (exhaustive). Violations surface as errors from the mutating call.
func WithAuditMode(m AuditMode) Option {
	return func(o *options) {
		if m != AuditOff && m != AuditSampled && m != AuditFull {
			o.fail("unknown audit mode %d", int(m))
			return
		}
		o.audit = m
	}
}

// WithWorkers sets the width of the worker pool that runs the type-1
// recovery walks of one operation in parallel (default 1 = serial).
// Each displaced vertex's random walk is independent, so multi-vertex
// recoveries — deletion storms, batch insertions — fan their walk
// batches out across the pool. Determinism is preserved exactly: for a
// fixed seed the mapping, overlay, and per-step metrics are
// byte-identical at every width (walk seeds are drawn in serial order
// and every speculative result is revalidated before commit), so
// Workers only changes wall-clock time. Networks built with n > 1
// should be Closed when discarded promptly; otherwise the pool is
// released when the network is garbage collected.
func WithWorkers(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.fail("workers %d < 1", n)
			return
		}
		o.cfg.Workers = n
	}
}

// WithAsyncEvents moves event delivery onto a dedicated dispatcher
// goroutine with the given initial queue capacity (>= 0): mutating
// operations enqueue events in publish order and return without
// running subscriber callbacks, the dispatcher drains the queue in
// order, and Close flushes whatever is still buffered before
// returning. Callbacks may therefore freely call back into the façade
// — the deadlock and re-entrancy hazards of synchronous delivery do
// not apply. The queue grows past its initial capacity rather than
// blocking publishers (a bounded queue would deadlock the moment it
// filled while a dispatcher callback held the façade lock), so a
// subscriber that cannot keep up costs memory, never loss or
// deadlock. Only meaningful for NewConcurrent; New rejects it.
func WithAsyncEvents(buffer int) Option {
	return func(o *options) {
		if buffer < 0 {
			o.fail("async event buffer %d < 0", buffer)
			return
		}
		o.asyncBuf = buffer
	}
}

// WithEdgeEvents enables per-step EdgesChanged events: after every
// mutating operation the net overlay edge changes are published as one
// batched, deterministically ordered diff. Subscribers can mirror the
// overlay without rescanning it — a type-2 rebuild shows up as exactly
// the edges that changed, not a wholesale graph swap. Off by default
// (the diff costs one map entry per touched node pair per step).
func WithEdgeEvents(on bool) Option {
	return func(o *options) { o.edgeEvents = on }
}

// WithHistoryCap bounds the in-memory per-step metrics history kept by
// History (0, the default, keeps every step). When the cap is reached
// the older half is discarded; Totals still reports exact lifetime
// aggregates. Long-running million-step churn uses this to hold O(cap)
// metrics memory.
func WithHistoryCap(n int) Option {
	return func(o *options) {
		if n < 0 {
			o.fail("history cap %d < 0", n)
			return
		}
		o.cfg.HistoryCap = n
	}
}
