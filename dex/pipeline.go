package dex

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// This file turns the Concurrent façade into a pipelined scheduler
// (WithPipeline). The paper's Lemma 2 makes recovery node-local in
// expectation — steady-state repairs touch O(1) nodes around the attach
// point — so operations submitted by independent goroutines overwhelmingly
// have disjoint footprints, and serializing them under one mutex wastes
// exactly the parallelism the locality guarantee licenses.
//
// Admission works in windows. Submitters enqueue operations and block on
// a per-request reply; a dedicated scheduler goroutine repeatedly takes a
// window of queued operations (up to the configured depth) and, holding
// the façade lock for the whole window:
//
//   - Phase A (engine quiescent): verifies the previous window's deferred
//     sampled-audit targets, fanned across the engine's worker pool, and
//     speculates every admitted insert's first-attempt walk concurrently
//     against the current overlay (core.SpeculateInserts), predicting each
//     op's walk seed (serial FIFO offset) and walk length (network size at
//     execution). Admitted deletes are speculated too
//     (core.SpeculateDeletes): in the dense regime their redistribution
//     walks provably never leave the adopting neighbor, so the whole
//     outcome is predicted without walking.
//   - Phase B: commits the window strictly in admission (ticket) order
//     through the ordinary serial entry points, injecting each insert's
//     speculation just before it runs. The engine's epoch-stamped
//     pipeline write-set (core.ArmPipeline) records every slot the
//     window's commits touch; an op whose speculative walk crossed a
//     touched slot is "disturbed" — its speculation is discarded and the
//     walk re-runs serially with the same seed, which is precisely what
//     draining it through the serial path means. Conflicts therefore cost
//     wall-clock, never correctness.
//
// Because commits are serial and seeds flow through the PR 4 FIFO, a
// pipelined run's History, mapping, and overlay are byte-identical to a
// serialized run of the same admitted schedule — the lockstep oracle in
// pipeline_test.go replays every admitted schedule against a plain
// serial Network and asserts exactly that.

// pipeReq kinds: single inserts are speculation-eligible, single deletes
// have a predictable seed footprint, everything else (batches, Do,
// Checkpoint, explicit audits) is opaque — it commits serially and stops
// seed-offset prediction for the rest of its window.
const (
	reqInsert = iota
	reqDelete
	reqOther
)

// pipeReq is one submitted operation waiting in the scheduler's queue.
type pipeReq struct {
	kind       int
	id, attach NodeID
	fn         func(*Network) error
	rec        *AdmittedOp           // reported to the admission observer on success
	spec       *core.PipelinedInsert // filled during Phase A for speculated inserts
	dspec      *core.PipelinedDelete // filled during Phase A for speculated deletes
	errc       chan error
}

// AdmittedOp describes one successfully committed churn operation in
// admission order. The sequence of AdmittedOps fully determines the
// engine state: replaying it through a serial façade with the same seed
// reproduces History, mapping, and overlay byte for byte (the lockstep
// oracle relies on this).
type AdmittedOp struct {
	Kind   OpKind
	ID     NodeID
	Attach NodeID
	Specs  []InsertSpec // batch inserts (copied)
	IDs    []NodeID     // batch deletes (copied)
}

// pipeScheduler owns the admission queue and the window loop.
type pipeScheduler struct {
	c     *Concurrent
	depth int

	mu     sync.Mutex
	cond   sync.Cond
	queue  []*pipeReq
	closed bool
	done   chan struct{}

	observer func(AdmittedOp)

	// Window scratch, reused across windows.
	batch       []*pipeReq
	carriers    []*core.PipelinedInsert
	delCarriers []*core.PipelinedDelete
	offsets     []int
	winIns      []NodeID // ids inserted earlier in the current window

	// Deferred sampled-audit state: targets captured after each commit
	// of window W are verified (in parallel) during window W+1's Phase A.
	// A failure is sticky — it fails every later mutating op and Close —
	// because the state corruption it witnessed does not go away.
	auditPending []NodeID
	auditErr     error
}

func newPipeScheduler(c *Concurrent, depth int) *pipeScheduler {
	s := &pipeScheduler{c: c, depth: depth, done: make(chan struct{})}
	s.cond.L = &s.mu
	return s
}

// submit enqueues one request and blocks until its window commits it.
func (s *pipeScheduler) submit(r *pipeReq) error {
	r.errc = make(chan error, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.queue = append(s.queue, r)
	s.mu.Unlock()
	s.cond.Signal()
	return <-r.errc
}

// take blocks for the next window: up to depth queued requests in
// admission order, or nil once the queue is closed and drained.
func (s *pipeScheduler) take() []*pipeReq {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	n := len(s.queue)
	if n == 0 {
		return nil
	}
	if n > s.depth {
		n = s.depth
	}
	s.batch = append(s.batch[:0], s.queue[:n]...)
	rest := copy(s.queue, s.queue[n:])
	clear(s.queue[rest:])
	s.queue = s.queue[:rest]
	return s.batch
}

// run is the scheduler goroutine: window loop until closed and drained,
// then the final deferred-audit flush.
func (s *pipeScheduler) run() {
	for {
		batch := s.take()
		if batch == nil {
			break
		}
		s.window(batch)
	}
	s.c.mu.Lock()
	s.flushAudit()
	s.c.mu.Unlock()
	close(s.done)
}

// stop rejects new submissions, lets the already-queued tail drain, and
// waits for the scheduler to exit. Returns the sticky deferred-audit
// error, if any (the final flush has run by then).
func (s *pipeScheduler) stop() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Signal()
	<-s.done
	return s.auditErr
}

// flushAudit verifies the pending deferred-audit targets. Caller holds
// the façade lock (engine quiescent).
func (s *pipeScheduler) flushAudit() {
	if s.auditErr != nil || len(s.auditPending) == 0 {
		s.auditPending = s.auditPending[:0]
		return
	}
	eng := s.c.nw.eng
	err := eng.AuditPrelude()
	if err == nil {
		err = eng.CheckNodesParallel(s.auditPending)
	}
	if err != nil {
		s.auditErr = fmt.Errorf("dex: deferred sampled audit: %w", err)
	}
	s.auditPending = s.auditPending[:0]
}

// speculate is Phase A's second half: predict each admitted insert's
// seed (FIFO offset), walk length (size at execution), and run the
// first-attempt walks concurrently; predict each admitted delete's
// redistribution outcome (core.SpeculateDeletes — a dense-regime proof
// that the orphan walks never leave the adopter, so no walk needs to
// run and no seed needs pinning). Prediction walks the window in
// ticket order — an insert consumes one seed, a delete one per
// redistributed vertex (its current load), anything else an unknowable
// number, which ends prediction for the rest of the window. Every
// prediction is revalidated at commit time, so a miss (an insert that
// retried, a delete that redistributed through retries, a mid-window
// rebuild) costs one discarded speculation, never correctness.
func (s *pipeScheduler) speculate(batch []*pipeReq) {
	eng := s.c.nw.eng
	nPred := eng.Size()
	offset, known := 0, true
	ins, dels := 0, 0
	s.offsets = s.offsets[:0]
	s.winIns = s.winIns[:0]
	for _, r := range batch {
		switch r.kind {
		case reqInsert:
			nPred++
			if known {
				if ins == len(s.carriers) {
					s.carriers = append(s.carriers, &core.PipelinedInsert{})
				}
				op := s.carriers[ins]
				op.ID, op.Attach, op.SizeAtExec = r.id, r.attach, nPred
				r.spec = op
				s.offsets = append(s.offsets, offset)
				s.winIns = append(s.winIns, r.id)
				ins++
				offset++
			}
		case reqDelete:
			nPred--
			if known {
				// A node inserted earlier in this same window isn't visible
				// to Load yet; it will carry the one vertex its insert walk
				// donates, so its deletion redistributes one walk.
				load := eng.Load(r.id)
				winBorn := false
				for _, id := range s.winIns {
					if id == r.id {
						load, winBorn = 1, true
						break
					}
				}
				offset += load
				// Window-born victims don't exist at Phase A — nothing to
				// read a prediction from; they drain through the serial
				// walks, as do victims with no live state (bad ids).
				if !winBorn && load > 0 {
					if dels == len(s.delCarriers) {
						s.delCarriers = append(s.delCarriers, &core.PipelinedDelete{})
					}
					op := s.delCarriers[dels]
					op.ID, op.SizeAtExec = r.id, nPred
					r.dspec = op
					dels++
				}
			}
		default:
			known = false
		}
	}
	if ins > 0 {
		seeds := eng.PredrawSeeds(s.offsets[ins-1] + 1)
		for i := 0; i < ins; i++ {
			s.carriers[i].Seed = seeds[s.offsets[i]]
		}
		eng.SpeculateInserts(s.carriers[:ins])
	}
	if dels > 0 {
		eng.SpeculateDeletes(s.delCarriers[:dels])
	}
}

// window processes one admitted window under the façade lock.
func (s *pipeScheduler) window(batch []*pipeReq) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	// Phase A: the engine is quiescent — verify the previous window's
	// deferred audit targets across the worker pool, then speculate this
	// window's insert first attempts.
	s.flushAudit()
	s.speculate(batch)
	// Phase B: serial commits in admission order. The pipeline write-set
	// stamps every slot a commit touches; each insert's disturbed flag is
	// computed inside InjectFirstAttempt, immediately before its op runs.
	eng := c.nw.eng
	eng.ArmPipeline()
	defer eng.DisarmPipeline()
	deferAudit := c.nw.deferAudit && c.nw.audit == AuditSampled
	for _, r := range batch {
		var err error
		if s.auditErr != nil && r.rec != nil {
			err = s.auditErr // state already witnessed corrupt: fail churn fast
		} else {
			if r.spec != nil {
				eng.InjectFirstAttempt(r.spec)
			}
			if r.dspec != nil {
				eng.InjectDeleteAttempts(r.dspec)
			}
			err = r.fn(c.nw)
			eng.ClearInjectedAttempt() // not consumed if validation failed first
			eng.ClearDeleteAttempts()  // shared by the op's orphans; never outlives it
			if err == nil && r.rec != nil {
				if deferAudit {
					// Capture before the next commit's beginStep resets the
					// dirty set; consumes exactly the auditRng draws the
					// inline sampled audit would.
					s.auditPending = eng.CaptureAuditTargets(s.auditPending)
				}
				if s.observer != nil {
					s.observer(*r.rec)
				}
			}
		}
		r.errc <- err
	}
}

// WithPipeline turns the Concurrent façade into a pipelined scheduler
// admitting up to depth operations per window (16 is a good default).
// Operations still commit strictly serially — seeded state remains
// byte-identical to the serialized façade for the same admitted order —
// but each window's insert walks are speculated concurrently before the
// commits and each window's sampled audits are verified in parallel
// during the next window, so non-overlapping churn from concurrent
// submitters pipelines across cores. Combine with WithWorkers(n) to size
// the pool those phases fan out over.
//
// With AuditSampled the per-op audit is deferred by one window: a
// violation surfaces on a later operation (or on Close) instead of the
// op that caused it, and it is sticky — once witnessed, every subsequent
// churn operation fails with it. AuditFull remains inline. Synchronous
// event callbacks run on the scheduler goroutine and must not call back
// into the façade (use WithAsyncEvents to lift that restriction). Only
// meaningful for NewConcurrent; New rejects it.
func WithPipeline(depth int) Option {
	return func(o *options) {
		if depth < 1 {
			o.fail("pipeline depth %d < 1", depth)
			return
		}
		o.pipeDepth = depth
	}
}

// SetAdmissionObserver registers f to be called with every successfully
// committed churn operation, in admission order, from the scheduler
// goroutine (nil to clear). Replaying the observed sequence through a
// serial façade with the same seed reproduces this network's state byte
// for byte — this is the hook the lockstep oracle tests hang off.
// Returns false when the façade was not built with WithPipeline.
func (c *Concurrent) SetAdmissionObserver(f func(AdmittedOp)) bool {
	if c.sched == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sched.observer = f
	return true
}

// PipelineStats reports the engine's speculation counters (see
// (*Network).SpecStats) — under WithPipeline these include the window
// speculation hits and the conflicting ops that drained through the
// serial path (misses).
func (c *Concurrent) PipelineStats() (hits, misses, tail int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.SpecStats()
}
