package dex

import (
	"bytes"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Concurrent is a thread-safe façade over a Network: every method is
// safe for use from any number of goroutines. Operations and engine
// reads serialize on one mutex; Graph accessors return point-in-time
// snapshots instead of live structure, so readers never observe the
// engine mid-mutation.
//
// Event delivery comes in two flavors:
//
//   - synchronous (default): subscriber callbacks run on the mutating
//     goroutine while the façade lock is held. Callbacks must therefore
//     not call back into the façade (the mutex is not re-entrant) —
//     they get the same contract as plain Network subscribers.
//   - asynchronous (WithAsyncEvents): callbacks run on a dedicated
//     dispatcher goroutine fed by an ordered queue, strictly in publish
//     order. Mutating operations never wait for callbacks — the queue
//     grows past its initial capacity instead of blocking, so a
//     subscriber that falls behind costs memory, never deadlock or
//     loss — and callbacks may freely call any façade method, including
//     mutations. Close flushes the queue before returning.
//
// Inside each operation, WithWorkers additionally parallelizes the
// recovery walks themselves; the two axes compose. Determinism under
// concurrent *callers* is necessarily scheduling-dependent (the
// interleaving of operations is whatever the callers make it), but
// each individual operation remains the paper's algorithm, and a
// single-caller Concurrent with a fixed seed reproduces the plain
// Network byte for byte.
//
// WithPipeline adds a third axis: operations from concurrent callers
// are admitted in windows whose insert walks are speculated and whose
// sampled audits are verified in parallel, while the commits themselves
// stay strictly serial (see dex/pipeline.go). State remains
// byte-identical to the serialized façade for the same admitted order.
type Concurrent struct {
	mu  sync.Mutex
	nw  *Network
	rng *rand.Rand // façade-owned sampling source; guarded by mu

	evq           *eventQueue   // non-nil in async mode
	done          chan struct{} // dispatcher exit signal
	dispatcherGid atomic.Uint64 // goroutine id of the dispatcher (async mode)

	sched *pipeScheduler // non-nil under WithPipeline

	subMu    sync.Mutex
	subs     []subscriber
	subsSnap []subscriber
	nextSub  int

	closed    bool
	closeDone chan struct{} // closed once the first Close has fully torn down
	closeErr  error         // the first Close's result; valid after closeDone
}

// NewConcurrent builds a Network wrapped in a Concurrent façade. It
// accepts every option New accepts, plus WithAsyncEvents. Call Close
// when done — it flushes and stops the async dispatcher (if any) and
// releases the WithWorkers pool.
func NewConcurrent(opts ...Option) (*Concurrent, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.err != nil {
		return nil, o.err
	}
	nw, err := newFromOptions(o)
	if err != nil {
		return nil, err
	}
	c := &Concurrent{
		nw: nw,
		// The sampling stream is deliberately decoupled from the engine
		// seed so Sample calls never perturb seeded recovery runs.
		rng:       rand.New(rand.NewSource(o.cfg.Seed ^ 0x5a3c_f00d)),
		closeDone: make(chan struct{}),
	}
	nw.Subscribe(c.forward)
	if o.asyncBuf >= 0 {
		c.evq = newEventQueue(o.asyncBuf)
		c.done = make(chan struct{})
		go c.dispatch()
	}
	if o.pipeDepth > 0 {
		nw.deferAudit = true
		c.sched = newPipeScheduler(c, o.pipeDepth)
		go c.sched.run()
	}
	return c, nil
}

// forward routes one engine event to the façade's subscribers: through
// the queue in async mode, inline otherwise. It runs with c.mu held
// (events only fire inside mutating operations), which is why the
// enqueue must never block: the dispatcher may itself be parked inside
// a callback that is waiting for c.mu.
func (c *Concurrent) forward(ev Event) {
	if c.evq != nil {
		c.evq.push(ev)
		return
	}
	c.deliver(ev)
}

// dispatch is the async delivery loop: it drains the queue in publish
// order and exits once Close marks the queue done and everything
// buffered has been delivered.
func (c *Concurrent) dispatch() {
	c.dispatcherGid.Store(goid())
	for {
		batch, ok := c.evq.wait()
		for _, ev := range batch {
			c.deliver(ev)
		}
		if !ok {
			close(c.done)
			return
		}
	}
}

// goid returns the current goroutine's id, parsed from the stable
// "goroutine N [state]:" header of runtime.Stack. Only used on the
// Close path to recognize a Close issued from inside a subscriber
// callback (i.e. on the dispatcher goroutine itself) — such a Close
// must not wait for the dispatcher to finish draining, because the
// dispatcher is parked inside that very callback.
func goid() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	f := bytes.Fields(buf[:n])
	if len(f) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(f[1]), 10, 64)
	return id
}

// eventQueue is the unbounded FIFO between publishers and the
// dispatcher. Unbounded is a correctness requirement, not a
// convenience: publishers hold the façade lock, and a bounded queue
// would deadlock the moment it filled while a dispatcher callback was
// calling back into the façade.
type eventQueue struct {
	mu     sync.Mutex
	ready  sync.Cond
	buf    []Event
	closed bool
}

// evQueueResetCap bounds the buffer capacity allocated across batch
// swaps: replacement buffers size to twice the batch just handed over
// (so a steady flow settles without re-growth), never above this cap —
// one slow-subscriber burst must not ratchet every later (typically
// tiny) batch allocation up to burst size forever, and a huge initial
// capacity must not be re-paid on every dispatcher wakeup.
const evQueueResetCap = 4096

func newEventQueue(capacity int) *eventQueue {
	q := &eventQueue{buf: make([]Event, 0, capacity)}
	q.ready.L = &q.mu
	return q
}

func (q *eventQueue) push(ev Event) {
	q.mu.Lock()
	q.buf = append(q.buf, ev)
	q.mu.Unlock()
	q.ready.Signal()
}

// wait blocks until events are queued (returning them in order) or the
// queue is closed and empty (returning ok=false). The swapped-out
// batch lets the dispatcher deliver without holding the queue lock.
func (q *eventQueue) wait() (batch []Event, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.ready.Wait()
	}
	batch = q.buf
	nc := 2 * len(batch)
	if nc < 64 {
		nc = 64
	}
	if nc > evQueueResetCap {
		nc = evQueueResetCap
	}
	q.buf = make([]Event, 0, nc)
	return batch, !q.closed || len(batch) > 0
}

func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.ready.Signal()
}

// deliver invokes the façade's subscribers in registration order,
// iterating a pinned snapshot exactly like Network.publish so
// subscribe/cancel during delivery cannot disturb the in-flight round.
func (c *Concurrent) deliver(ev Event) {
	c.subMu.Lock()
	if len(c.subs) == 0 {
		c.subMu.Unlock()
		return
	}
	if c.subsSnap == nil {
		c.subsSnap = append([]subscriber(nil), c.subs...)
	}
	snap := c.subsSnap
	c.subMu.Unlock()
	for _, s := range snap {
		s.fn(ev)
	}
}

// Subscribe registers fn for every future event and returns an
// idempotent cancel function. In async mode fn runs on the dispatcher
// goroutine, in publish order; in sync mode it runs on the mutating
// goroutine under the façade lock (and must not call back into the
// façade).
func (c *Concurrent) Subscribe(fn func(Event)) (cancel func()) {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	id := c.nextSub
	c.nextSub++
	c.subs = append(c.subs, subscriber{id: id, fn: fn})
	c.subsSnap = nil
	return func() {
		c.subMu.Lock()
		defer c.subMu.Unlock()
		for i, s := range c.subs {
			if s.id == id {
				c.subs = append(c.subs[:i], c.subs[i+1:]...)
				c.subsSnap = nil
				return
			}
		}
	}
}

// Subscribers returns the number of live subscriptions.
func (c *Concurrent) Subscribers() int {
	c.subMu.Lock()
	defer c.subMu.Unlock()
	return len(c.subs)
}

// op wraps one mutating call; under WithPipeline it routes through the
// admission queue so every mutation commits in ticket order.
func (c *Concurrent) op(f func(*Network) error) error {
	if c.sched != nil {
		return c.sched.submit(&pipeReq{kind: reqOther, fn: f})
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return f(c.nw)
}

// Insert adds node id attached at node attach and runs recovery.
func (c *Concurrent) Insert(id, attach NodeID) error {
	if c.sched != nil {
		return c.sched.submit(&pipeReq{
			kind: reqInsert, id: id, attach: attach,
			fn:  func(nw *Network) error { return nw.Insert(id, attach) },
			rec: &AdmittedOp{Kind: OpInsert, ID: id, Attach: attach},
		})
	}
	return c.op(func(nw *Network) error { return nw.Insert(id, attach) })
}

// Delete removes node id and runs recovery.
func (c *Concurrent) Delete(id NodeID) error {
	if c.sched != nil {
		return c.sched.submit(&pipeReq{
			kind: reqDelete, id: id,
			fn:  func(nw *Network) error { return nw.Delete(id) },
			rec: &AdmittedOp{Kind: OpDelete, ID: id},
		})
	}
	return c.op(func(nw *Network) error { return nw.Delete(id) })
}

// InsertBatch performs one adversarial step inserting all specs at once.
func (c *Concurrent) InsertBatch(specs []InsertSpec) error {
	if c.sched != nil {
		return c.sched.submit(&pipeReq{
			kind: reqOther,
			fn:   func(nw *Network) error { return nw.InsertBatch(specs) },
			rec:  &AdmittedOp{Kind: OpBatchInsert, Specs: append([]InsertSpec(nil), specs...)},
		})
	}
	return c.op(func(nw *Network) error { return nw.InsertBatch(specs) })
}

// DeleteBatch performs one adversarial step deleting all ids at once.
func (c *Concurrent) DeleteBatch(ids []NodeID) error {
	if c.sched != nil {
		return c.sched.submit(&pipeReq{
			kind: reqOther,
			fn:   func(nw *Network) error { return nw.DeleteBatch(ids) },
			rec:  &AdmittedOp{Kind: OpBatchDelete, IDs: append([]NodeID(nil), ids...)},
		})
	}
	return c.op(func(nw *Network) error { return nw.DeleteBatch(ids) })
}

// Do runs f with exclusive access to the wrapped Network: an escape
// hatch for multi-call atomic sections (inspect-then-mutate, invariant
// probes around an operation) that must not interleave with other
// callers. f must not retain the *Network, and in sync-events mode it
// inherits the callback restrictions of any mutation it performs.
func (c *Concurrent) Do(f func(*Network) error) error { return c.op(f) }

// Size returns the current number of real nodes n.
func (c *Concurrent) Size() int { return locked(c, (*Network).Size) }

// P returns the current p-cycle modulus.
func (c *Concurrent) P() int64 { return locked(c, (*Network).P) }

// Zeta returns the configured maximum cloud size.
func (c *Concurrent) Zeta() int { return locked(c, (*Network).Zeta) }

// MaxLoad returns the maximum load over all nodes.
func (c *Concurrent) MaxLoad() int { return locked(c, (*Network).MaxLoad) }

// SpareCount returns |Spare|.
func (c *Concurrent) SpareCount() int { return locked(c, (*Network).SpareCount) }

// LowCount returns |Low|.
func (c *Concurrent) LowCount() int { return locked(c, (*Network).LowCount) }

// Coordinator returns the node currently simulating vertex 0.
func (c *Concurrent) Coordinator() NodeID { return locked(c, (*Network).Coordinator) }

// FreshID returns a never-used node id and advances the internal
// counter; concurrent callers receive distinct ids.
func (c *Concurrent) FreshID() NodeID { return locked(c, (*Network).FreshID) }

// Nodes returns the current node ids in ascending order (a fresh
// slice; safe to retain).
func (c *Concurrent) Nodes() []NodeID { return locked(c, (*Network).Nodes) }

// Totals returns O(1)-memory lifetime aggregates of the per-step
// metrics.
func (c *Concurrent) Totals() Totals { return locked(c, (*Network).Totals) }

// LastStep returns the metrics of the most recent step.
func (c *Concurrent) LastStep() StepMetrics { return locked(c, (*Network).LastStep) }

// LastCost returns the most recent step's cost triple.
func (c *Concurrent) LastCost() Cost { return locked(c, (*Network).LastCost) }

// Load returns the number of virtual vertices node u simulates.
func (c *Concurrent) Load(u NodeID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.Load(u)
}

// History returns a copy of the per-step metrics history. Unlike the
// plain Network's History, the returned slice is the caller's own: the
// engine's backing array keeps being appended (and, under
// WithHistoryCap, compacted in place) by later operations, so an
// aliased view would be torn under concurrency.
func (c *Concurrent) History() []StepMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]StepMetrics(nil), c.nw.History()...)
}

// Snapshot returns a deep copy of the overlay graph and the epoch it
// was taken at: a consistent point-in-time view that can be read
// lock-free forever, no matter how the live network churns on. This is
// how subscriber mirrors, spectral probes, and debuggers read a
// concurrently maintained overlay.
func (c *Concurrent) Snapshot() (*Graph, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.Graph().Snapshot()
}

// Graph returns a point-in-time snapshot of the overlay (satisfying
// the Maintainer contract). The live graph is never exposed — it may
// be mid-mutation on another goroutine; use Snapshot to also learn the
// epoch, or Do for an exclusive look at the live structure.
func (c *Concurrent) Graph() *Graph {
	g, _ := c.Snapshot()
	return g
}

// SampleNode returns a uniformly random live node id in O(1), drawing
// from the caller-owned rng (see Network.SampleNode for the ownership
// rule; the façade lock protects the network, not the caller's rng).
func (c *Concurrent) SampleNode(rng *rand.Rand) NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.SampleNode(rng)
}

// Sample returns a uniformly random live node id in O(1) from the
// façade's own locked source — the race-free way for many goroutines
// to pick churn targets without coordinating RNG ownership.
func (c *Concurrent) Sample() NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.SampleNode(c.rng)
}

// CheckInvariants mechanically verifies every structural invariant of
// the paper.
func (c *Concurrent) CheckInvariants() error {
	return c.op(func(nw *Network) error { return nw.CheckInvariants() })
}

// Audit runs the given invariant-checking tier immediately.
func (c *Concurrent) Audit(mode AuditMode) error {
	return c.op(func(nw *Network) error { return nw.Audit(mode) })
}

// Close shuts the façade down: subsequent mutating operations return
// ErrClosed, the pipelined scheduler (if any) commits its already-queued
// tail and exits, every event already published is delivered (the async
// queue is drained in order) before Close returns, and the WithWorkers
// pool and WAL (WithPersistence) are released — in that order, so no
// WAL append can land after Close returns. Idempotent, and a late
// duplicate Close waits for the winning Close to finish the whole
// teardown (drain included) and returns its result, so no caller can
// observe Close-returned while callbacks are still running or the WAL
// is still open. One exception, by necessity: a Close issued from
// inside a subscriber callback (on the dispatcher goroutine) cannot
// wait for its own goroutine to finish draining — it initiates (or
// observes) shutdown and returns nil; the dispatcher still delivers
// everything already queued after the callback returns.
func (c *Concurrent) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	onDispatcher := c.evq != nil && goid() == c.dispatcherGid.Load()
	if already {
		if onDispatcher {
			return nil
		}
		if c.evq != nil {
			<-c.done
		}
		<-c.closeDone
		return c.closeErr
	}
	// Stop the scheduler before closing the event queue: its queued tail
	// still commits and publishes. stop returns the sticky deferred-audit
	// error after the final flush.
	var auditErr error
	if c.sched != nil {
		auditErr = c.sched.stop()
	}
	if c.evq != nil {
		c.evq.close()
		if !onDispatcher {
			<-c.done
		}
	}
	err := c.nw.Close()
	if err == nil {
		err = auditErr
	}
	c.closeErr = err
	close(c.closeDone)
	return err
}

// locked runs a read accessor under the façade lock.
func locked[T any](c *Concurrent, f func(*Network) T) T {
	c.mu.Lock()
	defer c.mu.Unlock()
	return f(c.nw)
}

// The façade satisfies the same public contracts as the plain Network.
var (
	_ Maintainer       = (*Concurrent)(nil)
	_ InvariantChecker = (*Concurrent)(nil)
	_ Coordinated      = (*Concurrent)(nil)
	_ NodeSampler      = (*Concurrent)(nil)
)
