package dex

import "repro/internal/graph"

// Event is a typed notification about a structural change of the
// network. Concrete types: VertexTransferred, GraphRebuilt,
// StaggerStarted, StaggerFinished, EdgesChanged. Subscribers switch on
// the dynamic type:
//
//	nw.Subscribe(func(ev dex.Event) {
//		switch e := ev.(type) {
//		case dex.VertexTransferred:
//			// vertex e.Vertex moved e.From -> e.To
//		case dex.GraphRebuilt:
//			// modulus changed e.OldP -> e.NewP
//		}
//	})
type Event interface{ event() }

// VertexTransferred reports that current-cycle virtual vertex Vertex
// migrated from node From to node To during recovery. A DHT migrates the
// vertex's key/value items on this event (Section 4.4.4).
type VertexTransferred struct {
	Vertex Vertex
	From   NodeID
	To     NodeID
}

// GraphRebuilt reports that the virtual graph was replaced by a type-2
// inflation or deflation: the modulus changed from OldP to NewP. Hash
// spaces keyed on the modulus must re-home on this event.
type GraphRebuilt struct {
	OldP int64
	NewP int64
}

// StaggerStarted reports that the coordinator opened a staggered type-2
// rebuild (Algorithm 4.7) on the step with the given metrics snapshot.
type StaggerStarted struct {
	Step int   // 1-based step index in History
	N    int   // network size after the step
	P    int64 // modulus after the step (still the old cycle's)
}

// StaggerFinished reports that a staggered rebuild committed: the new
// cycle is live and P is the new modulus. It is always preceded by the
// corresponding GraphRebuilt event.
type StaggerFinished struct {
	Step int
	N    int
	P    int64
}

// EdgesChanged reports the net overlay edge changes of one adversarial
// step as a batched diff, published once per mutating operation and
// only when the network was built WithEdgeEvents(true). Deltas is
// sorted by (U, V) and contains no zero entries; edges added and
// removed within the same step cancel out. Replaying every EdgesChanged
// event onto a copy of the overlay keeps the copy's edge multiset
// identical to the live graph — including across type-2 rebuilds, which
// arrive as exactly the edges that changed. Within one step it is
// delivered after every VertexTransferred/GraphRebuilt event and before
// StaggerStarted/StaggerFinished.
type EdgesChanged struct {
	Step   int // 1-based step index, matching StepMetrics.Step
	Deltas []EdgeDelta
}

// EdgeDelta is one entry of an EdgesChanged batch: the multiplicity of
// the undirected overlay edge {U,V} changed by Delta (U <= V).
type EdgeDelta = graph.EdgeDelta

func (VertexTransferred) event() {}
func (GraphRebuilt) event()      {}
func (StaggerStarted) event()    {}
func (StaggerFinished) event()   {}
func (EdgesChanged) event()      {}

// subscriber pairs a callback with a registration id so cancellation
// survives slice reshuffling.
type subscriber struct {
	id int
	fn func(Event)
}

// Subscribe registers fn to receive every future event and returns a
// cancel function that removes the subscription (idempotent). Any
// number of subscribers may watch one network; they are invoked
// synchronously, in registration order, on the goroutine performing the
// mutation that produced the event. Callbacks must not mutate the
// network re-entrantly.
//
// Subscribe (and the returned cancel) may be called from inside a
// callback: publish iterates a pinned snapshot (subsSnap), so editing
// the registry mid-delivery is safe by design and deliberately does
// not take the enterOp guard — it touches only the subscriber list,
// never the engine or the WAL.
//
//dexvet:allow guarddiscipline Subscribe only edits the subscriber registry; publish iterates a pinned snapshot, so re-entrant registration is safe by design
func (nw *Network) Subscribe(fn func(Event)) (cancel func()) {
	id := nw.nextSub
	nw.nextSub++
	nw.subs = append(nw.subs, subscriber{id: id, fn: fn})
	nw.subsSnap = nil
	return func() {
		for i, s := range nw.subs {
			if s.id == id {
				nw.subs = append(nw.subs[:i], nw.subs[i+1:]...)
				nw.subsSnap = nil
				return
			}
		}
	}
}

// Subscribers returns the number of live subscriptions.
func (nw *Network) Subscribers() int { return len(nw.subs) }

// publish delivers ev to every subscriber in registration order. It
// pins the active round's snapshot in a local before iterating: a
// callback that subscribes or cancels mid-delivery nils/replaces the
// cached nw.subsSnap, and the pin guarantees the in-flight round keeps
// delivering to exactly the set that was subscribed when the event
// fired — late subscribers see only subsequent events, cancelled ones
// finish the round they were part of. The snapshot is cached and only
// rebuilt after Subscribe/cancel, keeping the per-event hot path (one
// event per migrated vertex) allocation-free.
func (nw *Network) publish(ev Event) {
	if len(nw.subs) == 0 {
		return
	}
	if nw.subsSnap == nil {
		nw.subsSnap = append([]subscriber(nil), nw.subs...)
	}
	snap := nw.subsSnap
	for _, s := range snap {
		s.fn(ev)
	}
}
