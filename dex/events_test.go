package dex_test

import (
	"math/rand"
	"testing"

	"repro/dex"
)

// growUntilRebuild inserts until the modulus changes (or the step budget
// runs out, which fails the test).
func growUntilRebuild(t *testing.T, nw *dex.Network, rng *rand.Rand, budget int) {
	t.Helper()
	p0 := nw.P()
	for i := 0; i < budget && nw.P() == p0; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if nw.P() == p0 {
		t.Fatalf("no rebuild within %d insertions", budget)
	}
}

// TestEventStreamShape drives a staggered network through an inflation
// and checks the typed event sequence: StaggerStarted opens the rebuild,
// GraphRebuilt carries the old and new moduli, StaggerFinished closes it
// after the corresponding GraphRebuilt.
func TestEventStreamShape(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithMode(dex.Staggered), dex.WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	p0 := nw.P()
	var events []dex.Event
	cancel := nw.Subscribe(func(ev dex.Event) { events = append(events, ev) })
	defer cancel()

	growUntilRebuild(t, nw, rand.New(rand.NewSource(6)), 800)

	var sawStart, sawRebuilt, sawFinish bool
	rebuiltAt, finishedAt := -1, -1
	for i, ev := range events {
		switch e := ev.(type) {
		case dex.StaggerStarted:
			sawStart = true
			if e.P != p0 {
				t.Fatalf("StaggerStarted.P = %d, want old modulus %d", e.P, p0)
			}
			if e.N <= 0 || e.Step <= 0 {
				t.Fatalf("StaggerStarted with empty snapshot: %+v", e)
			}
		case dex.GraphRebuilt:
			sawRebuilt = true
			rebuiltAt = i
			if e.OldP != p0 || e.NewP == p0 {
				t.Fatalf("GraphRebuilt moduli %d -> %d, want old %d and a new value", e.OldP, e.NewP, p0)
			}
			if e.NewP != nw.P() {
				t.Fatalf("GraphRebuilt.NewP = %d, live P = %d", e.NewP, nw.P())
			}
		case dex.StaggerFinished:
			sawFinish = true
			finishedAt = i
			if e.P != nw.P() {
				t.Fatalf("StaggerFinished.P = %d, want new modulus %d", e.P, nw.P())
			}
		case dex.VertexTransferred:
			if e.From == e.To {
				t.Fatalf("self transfer of vertex %d at node %d", e.Vertex, e.From)
			}
		}
	}
	if !sawStart || !sawRebuilt || !sawFinish {
		t.Fatalf("incomplete event stream: start=%v rebuilt=%v finish=%v", sawStart, sawRebuilt, sawFinish)
	}
	if rebuiltAt > finishedAt {
		t.Fatalf("GraphRebuilt (index %d) after StaggerFinished (index %d)", rebuiltAt, finishedAt)
	}
}

// TestSimplifiedModeEmitsRebuilt: one-step rebuilds have no stagger
// phase but must still announce the modulus change.
func TestSimplifiedModeEmitsRebuilt(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithMode(dex.Simplified), dex.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, staggered := 0, 0
	defer nw.Subscribe(func(ev dex.Event) {
		switch ev.(type) {
		case dex.GraphRebuilt:
			rebuilt++
		case dex.StaggerStarted, dex.StaggerFinished:
			staggered++
		}
	})()
	growUntilRebuild(t, nw, rand.New(rand.NewSource(7)), 800)
	if rebuilt == 0 {
		t.Fatal("simplified rebuild emitted no GraphRebuilt")
	}
	if staggered != 0 {
		t.Fatalf("simplified mode emitted %d stagger events", staggered)
	}
}

// TestSubscribeCancelAndOrder: subscribers receive events in
// registration order; a cancelled subscriber stops receiving; a
// subscriber cancelling itself mid-delivery does not disturb the round.
func TestSubscribeCancelAndOrder(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	c1 := nw.Subscribe(func(dex.Event) { order = append(order, "a") })
	var c2 func()
	c2Fired := 0
	c2 = nw.Subscribe(func(dex.Event) {
		c2Fired++
		c2() // self-cancel during delivery
	})
	c3Fired := 0
	c3 := nw.Subscribe(func(dex.Event) { c3Fired++; order = append(order, "c") })
	defer c1()
	defer c3()

	rng := rand.New(rand.NewSource(8))
	growUntilRebuild(t, nw, rng, 800)

	if c2Fired != 1 {
		t.Fatalf("self-cancelling subscriber fired %d times, want exactly 1", c2Fired)
	}
	if c3Fired == 0 {
		t.Fatal("subscriber after a self-cancelling peer received nothing")
	}
	// Both remaining subscribers see every event, so the log must be
	// strict "a","c" pairs: registration order within every round.
	if len(order)%2 != 0 {
		t.Fatalf("odd delivery log length %d: a subscriber missed a round", len(order))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "c" {
			t.Fatalf("round %d delivered out of registration order: %v", i/2, order[i:i+2])
		}
	}

	// After cancelling, no further delivery.
	c1()
	c1() // idempotent
	c3()
	if nw.Subscribers() != 0 {
		t.Fatalf("Subscribers() = %d after all cancels, want 0", nw.Subscribers())
	}
	before := len(order)
	nodes := nw.Nodes()
	for i := 0; i < 50; i++ {
		if err := nw.Insert(nw.FreshID(), nodes[0]); err != nil {
			t.Fatal(err)
		}
		nodes = nw.Nodes()
	}
	if len(order) != before {
		t.Fatal("cancelled subscribers still received events")
	}
}

// TestTransferEventsMatchMigrationWork: every type-1 recovery that moves
// a vertex must surface as a VertexTransferred event with live node ids.
func TestTransferEventsMatchMigrationWork(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(24), dex.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	transfers := 0
	defer nw.Subscribe(func(ev dex.Event) {
		if e, ok := ev.(dex.VertexTransferred); ok {
			transfers++
			// Delivery is synchronous, so nw.P() is the modulus of the
			// cycle the vertex belongs to at event time.
			if e.Vertex < 0 || e.Vertex >= dex.Vertex(nw.P()) {
				t.Fatalf("transfer event vertex %d outside [0, %d)", e.Vertex, nw.P())
			}
		}
	})()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if transfers == 0 {
		t.Fatal("200 churn steps produced no vertex transfers")
	}
}
