package dex_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dex"
)

// TestCloseRacesPersistentCheckpoint: a persistent Concurrent façade
// with churn, explicit Checkpoint calls, and LastRoot readers all in
// flight when Close fires — including two racing Closes. The contract
// under test: every Checkpoint either completes before Close or is
// rejected whole with ErrClosed; whichever Close call returns first,
// the WAL is already flushed and closed when it does (a duplicate Close
// waits for the winner's teardown instead of returning early), so the
// directory can be reopened immediately; and the reopened network
// resumes at exactly the step count the closed façade froze — no WAL
// append landed after Close returned.
func TestCloseRacesPersistentCheckpoint(t *testing.T) {
	for round := 0; round < 4; round++ {
		dir := t.TempDir()
		c, err := dex.NewConcurrent(
			dex.WithInitialSize(24),
			dex.WithSeed(int64(110+round)),
			dex.WithPersistence(dir),
		)
		if err != nil {
			t.Fatal(err)
		}
		var completed atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := c.Insert(c.FreshID(), c.Sample())
					switch {
					case err == nil:
						completed.Add(1)
					case errors.Is(err, dex.ErrClosed):
						return
					case errors.Is(err, dex.ErrUnknownNode):
						// peer churn raced the sample; legal
					default:
						t.Errorf("insert: %v", err)
						return
					}
				}
			}()
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if err := c.Checkpoint(); err != nil {
						if !errors.Is(err, dex.ErrClosed) {
							t.Errorf("checkpoint: %v", err)
						}
						return
					}
					_, _ = c.LastRoot()
				}
			}()
		}
		for completed.Load() < 16 {
			time.Sleep(50 * time.Microsecond)
		}

		// Two Closes race; the first to return hands its result to main,
		// which immediately reopens the directory. Close's contract makes
		// that safe: by the time ANY Close returns, the WAL is flushed and
		// released.
		closeRet := make(chan error, 2)
		for i := 0; i < 2; i++ {
			go func() { closeRet <- c.Close() }()
		}
		if err := <-closeRet; err != nil {
			t.Fatalf("round %d: first Close returned %v", round, err)
		}
		frozen := c.Totals().Steps

		re, err := dex.New(dex.WithSeed(int64(110+round)), dex.WithPersistence(dir))
		if err != nil {
			t.Fatalf("round %d: reopen right after first Close returned: %v", round, err)
		}
		if got := re.Totals().Steps; got != frozen {
			t.Fatalf("round %d: reopened at step %d, façade froze at %d — a WAL append landed after Close returned", round, got, frozen)
		}
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("round %d: reopened state unsound: %v", round, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-closeRet; err != nil {
			t.Fatalf("round %d: second Close returned %v", round, err)
		}
		wg.Wait()
	}
}
