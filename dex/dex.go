// Package dex is the public, stable API of this repository's
// reproduction of "DEX: Self-Healing Expanders" (Pandurangan, Robinson,
// Trehan; IPPS 2014).
//
// A dex.Network maintains an overlay graph that stays a constant-degree
// expander under fully adversarial node insertions and deletions: the
// real graph G_t is the vertex contraction of a virtual p-cycle expander
// Z(p) under a balanced mapping, and every churn operation triggers the
// paper's type-1 (random-walk rebalancing) and type-2
// (inflation/deflation rebuild) recovery procedures, at O(log n) rounds
// and messages and O(1) topology changes per operation (Theorem 1).
//
// Construction uses functional options:
//
//	nw, err := dex.New(
//		dex.WithInitialSize(64),
//		dex.WithMode(dex.Staggered),
//		dex.WithSeed(42),
//	)
//
// Churn it with Insert/Delete (or InsertBatch/DeleteBatch for
// Corollary 2's multi-operation steps), inspect per-step costs with
// History/LastStep/LastCost, and verify the paper's invariants at any
// point with CheckInvariants.
//
// Multiple independent observers — DHTs, metrics collectors, loggers —
// can watch one network through the typed event stream:
//
//	cancel := nw.Subscribe(func(ev dex.Event) {
//		if r, ok := ev.(dex.GraphRebuilt); ok {
//			log.Printf("rebuilt: p %d -> %d", r.OldP, r.NewP)
//		}
//	})
//	defer cancel()
//
// Concurrency contract: a Network is single-goroutine. All methods,
// including Subscribe and the delivery of events (which happens
// synchronously, on the goroutine that called the mutating method), must
// be serialized by the caller. Event callbacks must not mutate the
// network re-entrantly — a mutating call from inside a callback returns
// ErrReentrantOp instead of corrupting recovery state mid-step. For use
// from multiple goroutines, wrap the network in a Concurrent façade
// (NewConcurrent), which adds locking, an optional asynchronous event
// dispatcher, and consistent Snapshot reads; WithWorkers additionally
// parallelizes the recovery walks inside each operation without
// changing any seeded outcome.
package dex

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pcycle"
	"repro/internal/persist"
)

// Vertex is a virtual vertex of the p-cycle expander Z(p).
type Vertex = core.Vertex

// NodeID identifies a real node of the overlay network.
type NodeID = core.NodeID

// Graph is the adjacency-multiset overlay graph type; the value returned
// by (*Network).Graph is live and must be treated as read-only.
type Graph = graph.Graph

// Cycle is the virtual p-cycle expander Z(p).
type Cycle = pcycle.Cycle

// StepMetrics records the paper's cost measures (rounds, messages,
// topology changes) plus recovery metadata for one adversarial step.
type StepMetrics = core.StepMetrics

// Totals aggregates step metrics over a network's lifetime in O(1)
// memory (see (*Network).Totals).
type Totals = core.Totals

// InsertSpec names one batch-inserted node and its adversarial attach
// point (Corollary 2).
type InsertSpec = core.InsertSpec

// OpKind identifies the adversarial operation that triggered a step.
type OpKind = core.OpKind

// Operation kinds recorded in StepMetrics.Op.
const (
	OpInsert      = core.OpInsert
	OpDelete      = core.OpDelete
	OpBatchInsert = core.OpBatchInsert
	OpBatchDelete = core.OpBatchDelete
)

// RecoveryKind identifies which recovery path handled a step.
type RecoveryKind = core.RecoveryKind

// Recovery kinds recorded in StepMetrics.Recovery.
const (
	RecoveryType1   = core.RecoveryType1
	RecoveryInflate = core.RecoveryInflate
	RecoveryDeflate = core.RecoveryDeflate
)

// Sentinel errors. They are the same values the engine returns, so
// errors.Is works across the package boundary:
//
//	if errors.Is(err, dex.ErrDuplicateID) { ... }
var (
	// ErrUnknownNode reports an operation naming a node that is not in
	// the network.
	ErrUnknownNode = core.ErrUnknownNode
	// ErrDuplicateID reports an insertion reusing a live node id.
	ErrDuplicateID = core.ErrDuplicateID
	// ErrTooSmall reports a deletion that would shrink the network below
	// the 4-node floor of the paper's construction.
	ErrTooSmall = core.ErrTooSmall
	// ErrReentrantOp reports a mutating operation attempted while another
	// one is still in flight on the same network — which single-goroutine
	// discipline only makes possible from inside an event callback.
	// Re-entrant mutation would corrupt recovery state mid-step; decouple
	// with NewConcurrent + WithAsyncEvents instead.
	ErrReentrantOp = errors.New("dex: re-entrant operation during event delivery")
	// ErrClosed reports an operation on a Concurrent façade after Close.
	ErrClosed = errors.New("dex: network closed")
)

// Network is a DEX-maintained self-healing overlay. Construct it with
// New; the zero value is not usable.
type Network struct {
	eng   *core.Network
	audit AuditMode
	lastP int64

	subs     []subscriber
	subsSnap []subscriber // cached delivery snapshot; nil after (un)subscribe
	nextSub  int
	inOp     bool // a mutating operation (and its event deliveries) is in flight

	// deferAudit is set by the pipelined façade (WithPipeline): with
	// AuditSampled, afterOp skips the inline audit and the scheduler
	// captures + verifies the targets one window later instead.
	deferAudit bool

	// Durability (WithPersistence); nil/empty otherwise. seedBuf
	// captures the walk seeds each operation consumes, rec is the
	// reused WAL record — both so steady-state commits allocate
	// nothing.
	log     *persist.Log
	rec     persist.OpRecord
	seedBuf []uint64
}

// enterOp guards the engine against re-entrant mutation: events are
// delivered synchronously while an operation runs, so a callback
// calling Insert/Delete would re-enter the engine mid-step and corrupt
// its recovery state. Such calls fail fast with ErrReentrantOp.
//
// The full discipline, machine-enforced by dexvet's guarddiscipline
// analyzer (`make lint`): every exported *Network method that mutates
// engine state — writes a façade field, calls any method on the WAL
// (nw.log), or calls an engine method marked //dexvet:mutator in
// internal/core, whether directly or through unexported helpers — must
// call enterOp and pair it with a deferred exitOp in the same body.
// Read-only accessors take no guard. The deliberate exceptions
// (Subscribe, FreshID, LastRoot, Crash) each carry a
// //dexvet:allow guarddiscipline annotation whose reason documents why
// re-entrancy is safe there.
func (nw *Network) enterOp() error {
	if nw.inOp {
		return ErrReentrantOp
	}
	nw.inOp = true
	return nil
}

func (nw *Network) exitOp() { nw.inOp = false }

// New builds an initial DEX network, mapped onto Z(p0) for the smallest
// prime p0 in (4*n0, 8*n0) exactly as Section 4's initialization
// prescribes. Defaults (initial size 64, zeta 8, theta 1/64, staggered
// type-2 recovery, seed 1) match the paper's experiments; override them
// with options.
func New(opts ...Option) (*Network, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.err == nil && o.asyncBuf >= 0 {
		o.err = errors.New("dex: WithAsyncEvents requires NewConcurrent")
	}
	if o.err == nil && o.pipeDepth > 0 {
		o.err = errors.New("dex: WithPipeline requires NewConcurrent")
	}
	if o.err != nil {
		return nil, o.err
	}
	return newFromOptions(o)
}

// newFromOptions builds a network from parsed options (shared by New
// and NewConcurrent).
func newFromOptions(o options) (*Network, error) {
	if o.persistDir != "" {
		return newPersistent(o)
	}
	eng, err := core.New(o.initialSize, o.cfg)
	if err != nil {
		return nil, err
	}
	if o.rng != nil {
		eng.SetRNG(o.rng)
	}
	return wrapEngine(eng, o), nil
}

// wrapEngine wires a constructed engine into the façade's event
// plumbing.
func wrapEngine(eng *core.Network, o options) *Network {
	nw := &Network{eng: eng, audit: o.audit, lastP: eng.P()}
	eng.SetTransferObserver(func(x Vertex, from, to NodeID) {
		// Guard before constructing the event: boxing it into the Event
		// interface allocates at this call site even when publish would
		// drop it, and this observer fires once per migrated vertex on
		// the steady-state recovery path.
		if len(nw.subs) == 0 {
			return
		}
		nw.publish(VertexTransferred{Vertex: x, From: from, To: to})
	})
	eng.SetRebuildObserver(func(pNew int64) {
		if len(nw.subs) > 0 {
			nw.publish(GraphRebuilt{OldP: nw.lastP, NewP: pNew})
		}
		nw.lastP = pNew
	})
	if o.edgeEvents {
		eng.SetEdgeObserver(func(step int, deltas []graph.EdgeDelta) {
			if len(nw.subs) == 0 {
				return
			}
			nw.publish(EdgesChanged{Step: step, Deltas: deltas})
		})
	}
	return nw
}

// afterOp publishes the stagger edge events of the step that just ran
// and runs the configured per-operation audit tier (WithAuditMode).
func (nw *Network) afterOp() error {
	st := nw.eng.LastStep()
	if st.StaggerStarted {
		nw.publish(StaggerStarted{Step: st.Step, N: st.N, P: st.P})
	}
	if st.StaggerFinished {
		nw.publish(StaggerFinished{Step: st.Step, N: st.N, P: st.P})
	}
	if nw.deferAudit && nw.audit == AuditSampled {
		// Pipelined façade: the scheduler captures this op's sampled-audit
		// targets right after it commits and verifies them, fanned across
		// the worker pool, during the next window (dex/pipeline.go).
		return nil
	}
	if err := nw.eng.Audit(nw.audit); err != nil {
		return fmt.Errorf("dex: %s audit after %s: %w", nw.audit, st.Op, err)
	}
	return nil
}

// --- churn operations ------------------------------------------------------

// Insert adds node id attached at node attach (the adversary picks
// both) and runs recovery. It returns ErrDuplicateID or ErrUnknownNode
// on illegal arguments.
func (nw *Network) Insert(id, attach NodeID) error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.beginPersist()
	if err := nw.eng.Insert(id, attach); err != nil {
		return err
	}
	if err := nw.commitPersist(core.OpInsert, id, attach, nil, nil); err != nil {
		return err
	}
	return nw.afterOp()
}

// Delete removes node id and runs recovery. It returns ErrUnknownNode
// for absent ids and ErrTooSmall when the network is at its minimum
// size.
func (nw *Network) Delete(id NodeID) error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.beginPersist()
	if err := nw.eng.Delete(id); err != nil {
		return err
	}
	if err := nw.commitPersist(core.OpDelete, id, 0, nil, nil); err != nil {
		return err
	}
	return nw.afterOp()
}

// InsertBatch performs one adversarial step inserting all specs at once
// (Corollary 2; at most a constant number of members may attach to any
// single node).
func (nw *Network) InsertBatch(specs []InsertSpec) error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.beginPersist()
	if err := nw.eng.InsertBatch(specs); err != nil {
		return err
	}
	if err := nw.commitPersist(core.OpBatchInsert, 0, 0, specs, nil); err != nil {
		return err
	}
	return nw.afterOp()
}

// DeleteBatch performs one adversarial step deleting all ids at once.
// The batch must leave the remainder connected and every deleted node
// with a surviving neighbor, per the paper's deletion model.
func (nw *Network) DeleteBatch(ids []NodeID) error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.beginPersist()
	if err := nw.eng.DeleteBatch(ids); err != nil {
		return err
	}
	if err := nw.commitPersist(core.OpBatchDelete, 0, 0, nil, ids); err != nil {
		return err
	}
	return nw.afterOp()
}

// --- inspection ------------------------------------------------------------

// Size returns the current number of real nodes n.
func (nw *Network) Size() int { return nw.eng.Size() }

// P returns the current p-cycle modulus.
func (nw *Network) P() int64 { return nw.eng.P() }

// Cycle returns the current virtual graph Z(p). Treat as read-only.
func (nw *Network) Cycle() *Cycle { return nw.eng.Cycle() }

// Graph returns the live overlay graph G_t. Treat as read-only.
func (nw *Network) Graph() *Graph { return nw.eng.Graph() }

// Nodes returns the current node ids in ascending order.
func (nw *Network) Nodes() []NodeID { return nw.eng.Nodes() }

// Load returns the number of virtual vertices node u simulates
// (current p-cycle plus, during staggering, the next one).
func (nw *Network) Load(u NodeID) int { return nw.eng.Load(u) }

// MaxLoad returns the maximum load over all nodes; Lemma 9 bounds it by
// 4*zeta.
func (nw *Network) MaxLoad() int { return nw.eng.MaxLoad() }

// Zeta returns the configured maximum cloud size (see WithZeta); Lemma 9
// bounds every node's load by 4*Zeta().
func (nw *Network) Zeta() int { return nw.eng.Zeta() }

// OwnerOf returns the node simulating virtual vertex x of the current
// p-cycle.
func (nw *Network) OwnerOf(x Vertex) NodeID { return nw.eng.OwnerOf(x) }

// SomeVertexOf exposes one (the smallest) vertex simulated at u; ok is
// false for unknown nodes.
func (nw *Network) SomeVertexOf(u NodeID) (x Vertex, ok bool) { return nw.eng.SomeVertexOf(u) }

// Coordinator returns the node currently simulating vertex 0
// (Algorithm 4.7's rebuild coordinator).
func (nw *Network) Coordinator() NodeID { return nw.eng.Coordinator() }

// SpareCount returns |Spare| = #{u : load(u) >= 2}, the coordinator's
// inflation counter.
func (nw *Network) SpareCount() int { return nw.eng.SpareCount() }

// LowCount returns |Low| = #{u : load(u) <= 2*zeta}, the coordinator's
// deflation counter.
func (nw *Network) LowCount() int { return nw.eng.LowCount() }

// Rebuilding reports whether a staggered type-2 rebuild is in flight,
// and its phase (0 when idle).
func (nw *Network) Rebuilding() (active bool, phase int) { return nw.eng.Rebuilding() }

// Dist0 returns the virtual hop distance from vertex x to vertex 0 on
// the coordinator's BFS tree (the compact-routing metric the DHT uses).
func (nw *Network) Dist0(x Vertex) int { return nw.eng.Dist0(x) }

// History returns per-step metrics since creation. Under WithHistoryCap
// only the most recent steps are retained; Totals keeps exact lifetime
// aggregates regardless.
func (nw *Network) History() []StepMetrics { return nw.eng.History() }

// Totals returns O(1)-memory lifetime aggregates of the per-step
// metrics (sums, maxima, and recovery-event counts), unaffected by
// WithHistoryCap.
func (nw *Network) Totals() Totals { return nw.eng.Totals() }

// LastStep returns the metrics of the most recent step (zero value
// before any churn).
func (nw *Network) LastStep() StepMetrics { return nw.eng.LastStep() }

// LastCost returns the most recent step's cost triple, satisfying the
// Maintainer contract.
func (nw *Network) LastCost() Cost {
	st := nw.eng.LastStep()
	return Cost{Rounds: st.Rounds, Messages: st.Messages, TopologyChanges: st.TopologyChanges}
}

// OrphanRescues returns how many times the pathological drop-time
// rescue path ran; zero in all normal operation.
func (nw *Network) OrphanRescues() int { return nw.eng.OrphanRescues() }

// FreshID returns a never-used node id and advances the internal
// counter; adversaries may instead supply their own ids to Insert.
// Safe from event callbacks: the counter bump touches no recovery
// state and is not WAL-recorded (replay re-derives it from the ids it
// replays), so it deliberately skips the re-entrancy guard.
//
//dexvet:allow guarddiscipline FreshID only bumps the monotonic id counter — no recovery state, no WAL record; callbacks may mint ids for a later, non-re-entrant Insert
func (nw *Network) FreshID() NodeID { return nw.eng.FreshID() }

// SampleNode returns a uniformly random live node id in O(1), drawing
// from rng. Unlike Nodes it performs no sorting or allocation, so
// adversaries and load generators can pick churn targets on
// million-node networks without a per-step O(n) scan.
//
// RNG ownership: rng is caller-owned and is advanced by this call. A
// *rand.Rand is not safe for concurrent use, so under the Concurrent
// façade either keep a per-goroutine rng, or use (*Concurrent).Sample,
// which draws from a façade-owned source under the façade's lock. Do
// not pass the network's own source (WithRNG) here — sampling would
// perturb the engine's seeded recovery choices.
func (nw *Network) SampleNode(rng *rand.Rand) NodeID { return nw.eng.SampleNode(rng) }

// Close releases the background worker pool created by WithWorkers, if
// any, and — under WithPersistence — flushes any staged WAL batch and
// closes the log, leaving the directory resumable. A serial,
// non-persistent network never needs Close. Close takes the
// re-entrancy guard: closing from an event callback would flush a
// half-applied operation's state into the WAL, the same hazard
// Checkpoint guards against. Such calls fail with ErrReentrantOp.
func (nw *Network) Close() error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.eng.Close()
	if nw.log != nil {
		return nw.log.Close()
	}
	return nil
}

// SpecStats reports the parallel recovery path's activity: speculative
// window walks committed straight from the worker pool (hits) versus
// re-run serially after revalidation failed (misses), and the walks
// run by the exact parallel retry tail (tail), which needs no
// revalidation. All zero without WithWorkers. Observational only —
// the recovery outcome is identical either way.
func (nw *Network) SpecStats() (hits, misses, tail int) { return nw.eng.SpecStats() }

// CheckInvariants mechanically verifies every structural invariant of
// the paper (balanced mapping, load bounds, contraction-consistent
// edges, stagger bookkeeping) and returns the first violation.
func (nw *Network) CheckInvariants() error { return nw.eng.CheckInvariants() }

// Audit runs the given invariant-checking tier immediately (the same
// check WithAuditMode schedules after every operation): AuditSampled
// re-verifies the nodes touched by the most recent operation plus a
// random sample in o(n); AuditFull equals CheckInvariants.
func (nw *Network) Audit(mode AuditMode) error { return nw.eng.Audit(mode) }

// RecomputeGraph rebuilds the overlay from the virtual structure from
// scratch and returns it — the full-rebuild oracle. The incrementally
// maintained Graph() must equal it at all times; the differential test
// suite and the ChurnFullRebuild benchmark are built on this method. It
// never mutates the network.
func (nw *Network) RecomputeGraph() *Graph { return nw.eng.RecomputeGraph() }
