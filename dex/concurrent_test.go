package dex_test

import (
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/dex"
)

// driveSeededChurn applies the identical seeded op sequence to any
// maintainer-shaped driver via the supplied closures.
func driveSeededChurn(t *testing.T, seed int64, steps int, size func() int, nodes func() []dex.NodeID, fresh func() dex.NodeID, insert func(id, at dex.NodeID) error, del func(id dex.NodeID) error) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		ns := nodes()
		var err error
		if rng.Float64() < 0.55 || size() <= 6 {
			err = insert(fresh(), ns[rng.Intn(len(ns))])
		} else {
			err = del(ns[rng.Intn(len(ns))])
		}
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// TestConcurrentMatchesPlain: a single-caller Concurrent façade (with
// parallel walk workers on top) reproduces the plain Network byte for
// byte — History, overlay, node set.
func TestConcurrentMatchesPlain(t *testing.T) {
	plain, err := dex.New(dex.WithInitialSize(24), dex.WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	conc, err := dex.NewConcurrent(dex.WithInitialSize(24), dex.WithSeed(21), dex.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()

	driveSeededChurn(t, 21, 300, plain.Size, plain.Nodes, plain.FreshID, plain.Insert, plain.Delete)
	driveSeededChurn(t, 21, 300, conc.Size, conc.Nodes, conc.FreshID, conc.Insert, conc.Delete)

	if !reflect.DeepEqual(plain.History(), conc.History()) {
		t.Fatal("histories diverged between plain and concurrent façade")
	}
	if !reflect.DeepEqual(plain.Nodes(), conc.Nodes()) {
		t.Fatal("node sets diverged")
	}
	snap, epoch := conc.Snapshot()
	if !reflect.DeepEqual(plain.Graph().Edges(), snap.Edges()) {
		t.Fatal("overlay edge multisets diverged")
	}
	if epoch == 0 {
		t.Fatal("snapshot epoch is zero after 300 churn steps")
	}
	if err := conc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHammer is the -race gate: goroutines hammering churn
// ops, subscription churn, and snapshot/history/sample readers against
// one façade with async events and parallel walk workers. Correctness
// here is "no race, no deadlock, invariants hold, events flow".
func TestConcurrentHammer(t *testing.T) {
	c, err := dex.NewConcurrent(
		dex.WithInitialSize(32),
		dex.WithSeed(31),
		dex.WithWorkers(4),
		dex.WithAsyncEvents(64),
	)
	if err != nil {
		t.Fatal(err)
	}
	var events atomic.Int64
	cancel := c.Subscribe(func(dex.Event) { events.Add(1) })
	defer cancel()

	const opsPerWorker = 150
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				if rng.Float64() < 0.6 || c.Size() <= 12 {
					// The sampled attach point can be deleted by the peer
					// goroutine before Insert takes the lock; that surfaces
					// as ErrUnknownNode and is part of the contract.
					err := c.Insert(c.FreshID(), c.Sample())
					if err != nil && !errors.Is(err, dex.ErrUnknownNode) {
						t.Errorf("insert: %v", err)
						return
					}
				} else {
					err := c.Delete(c.Sample())
					if err != nil && !errors.Is(err, dex.ErrUnknownNode) && !errors.Is(err, dex.ErrTooSmall) {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(int64(100 + w))
	}
	// Subscription churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			stop := c.Subscribe(func(dex.Event) {})
			stop()
		}
	}()
	// Readers: snapshots, history copies, aggregates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			snap, _ := c.Snapshot()
			if snap.NumNodes() == 0 {
				t.Error("empty snapshot")
				return
			}
			_ = c.History()
			_ = c.Totals()
			_ = c.MaxLoad()
			_ = c.Nodes()
		}
	}()
	wg.Wait()

	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent hammer: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Fatal("no events delivered")
	}
	if err := c.Insert(c.FreshID(), 0); !errors.Is(err, dex.ErrClosed) {
		t.Fatalf("insert after Close: %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestAsyncEventsOrderAndFlush: the async dispatcher delivers exactly
// the synchronous event stream, in order, and Close flushes everything
// still buffered.
func TestAsyncEventsOrderAndFlush(t *testing.T) {
	run := func(async bool) []dex.Event {
		opts := []dex.Option{dex.WithInitialSize(16), dex.WithSeed(41)}
		if async {
			opts = append(opts, dex.WithAsyncEvents(512))
		}
		c, err := dex.NewConcurrent(opts...)
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var got []dex.Event
		c.Subscribe(func(ev dex.Event) { mu.Lock(); got = append(got, ev); mu.Unlock() })
		driveSeededChurn(t, 41, 200, c.Size, c.Nodes, c.FreshID, c.Insert, c.Delete)
		if err := c.Close(); err != nil { // flushes the queue in async mode
			t.Fatal(err)
		}
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	sync1 := run(false)
	async1 := run(true)
	if len(sync1) == 0 {
		t.Fatal("no events in 200 churn steps")
	}
	if !reflect.DeepEqual(sync1, async1) {
		t.Fatalf("async stream diverged from sync stream: %d vs %d events", len(async1), len(sync1))
	}
}

// TestAsyncCallbackMayMutate: with async events a subscriber callback
// can call back into the façade — the very thing that is a deadlock in
// sync mode and ErrReentrantOp on the plain network.
func TestAsyncCallbackMayMutate(t *testing.T) {
	c, err := dex.NewConcurrent(dex.WithInitialSize(16), dex.WithSeed(51), dex.WithAsyncEvents(64))
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	reentry := make(chan error, 1)
	c.Subscribe(func(dex.Event) {
		once.Do(func() { reentry <- c.Insert(c.FreshID(), c.Sample()) })
	})
	driveSeededChurn(t, 51, 100, c.Size, c.Nodes, c.FreshID, c.Insert, c.Delete)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-reentry:
		if err != nil && !errors.Is(err, dex.ErrClosed) {
			t.Fatalf("callback mutation failed: %v", err)
		}
	default:
		t.Fatal("callback never ran")
	}
}

// TestAsyncCallbackMayClose: a subscriber callback calling Close in
// async mode must not deadlock the dispatcher (Close detects it is on
// the dispatcher goroutine and skips waiting for its own drain); the
// façade still shuts down cleanly and a later Close from the outside
// waits for the drain and returns.
func TestAsyncCallbackMayClose(t *testing.T) {
	c, err := dex.NewConcurrent(dex.WithInitialSize(16), dex.WithSeed(61), dex.WithAsyncEvents(8))
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	var once sync.Once
	c.Subscribe(func(dex.Event) {
		delivered.Add(1)
		once.Do(func() {
			if err := c.Close(); err != nil {
				t.Errorf("callback Close: %v", err)
			}
		})
	})
	sawClosed := false
	for i := 0; i < 100000; i++ {
		if err := c.Insert(c.FreshID(), c.Sample()); errors.Is(err, dex.ErrClosed) {
			sawClosed = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
		runtime.Gosched() // let the dispatcher (and its Close) run
	}
	if err := c.Close(); err != nil { // outside Close: waits for the drain
		t.Fatal(err)
	}
	if !sawClosed {
		t.Fatal("callback Close never took effect")
	}
	if delivered.Load() == 0 {
		t.Fatal("no events delivered")
	}
}

// TestAsyncEventsRequiresConcurrent: plain New rejects WithAsyncEvents.
func TestAsyncEventsRequiresConcurrent(t *testing.T) {
	if _, err := dex.New(dex.WithAsyncEvents(8)); err == nil {
		t.Fatal("New accepted WithAsyncEvents")
	}
	if _, err := dex.NewConcurrent(dex.WithAsyncEvents(-1)); err == nil {
		t.Fatal("negative async buffer accepted")
	}
	if _, err := dex.New(dex.WithWorkers(0)); err == nil {
		t.Fatal("WithWorkers(0) accepted")
	}
}
