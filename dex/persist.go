package dex

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/persist"
)

// ErrNotPersistent reports a durability method called on a network
// built without WithPersistence.
var ErrNotPersistent = errors.New("dex: network has no persistence directory")

// PersistOption tunes WithPersistence.
type PersistOption func(*persist.Options)

// WithCheckpointEvery sets how many operations elapse between
// automatic checkpoints (default 4096; negative disables automatic
// checkpoints, leaving only explicit Checkpoint calls).
func WithCheckpointEvery(n int) PersistOption {
	return func(o *persist.Options) { o.CheckpointEvery = n }
}

// WithGroupCommit batches n operations per WAL fsync (default 1:
// every operation is durable when its call returns). Larger batches
// amortize fsync cost; the trade is that a crash may lose up to n-1
// trailing operations — recovery then resumes from the last durable
// prefix, never from a corrupt middle.
func WithGroupCommit(n int) PersistOption {
	return func(o *persist.Options) { o.GroupCommit = n }
}

// WithNoSync disables fsync on the WAL and checkpoint paths. State
// still survives process crashes (the OS page cache persists), but
// not machine crashes. For tests and benchmarks.
func WithNoSync(on bool) PersistOption {
	return func(o *persist.Options) { o.NoSync = on }
}

// WithPersistence makes the network durable in directory dir:
// checkpoints plus a write-ahead log of every operation, with crash
// recovery on construction. If dir already holds state, the network
// resumes from it — the remaining options must match the stored
// configuration (WithWorkers may differ; worker width never changes
// seeded outcomes). Incompatible with WithRNG, whose stream position
// cannot be checkpointed.
func WithPersistence(dir string, popts ...PersistOption) Option {
	return func(o *options) {
		if dir == "" {
			o.fail("empty persistence directory")
			return
		}
		o.persistDir = dir
		for _, p := range popts {
			p(&o.popt)
		}
	}
}

// newPersistent builds or resumes a durable network (the
// WithPersistence path of newFromOptions).
func newPersistent(o options) (*Network, error) {
	if o.rng != nil {
		return nil, errors.New("dex: WithRNG is incompatible with WithPersistence")
	}
	popt := o.popt
	popt.Workers = o.cfg.Workers
	log, eng, err := persist.Open(o.persistDir, popt)
	if err != nil {
		return nil, err
	}
	if eng == nil {
		// Fresh directory: build the engine, then anchor the log with
		// its step-0 checkpoint so the directory is resumable from the
		// first moment.
		eng, err = core.New(o.initialSize, o.cfg)
		if err != nil {
			return nil, err
		}
		if err := log.Begin(eng); err != nil {
			eng.Close()
			log.Close()
			return nil, err
		}
	} else {
		stored := eng.Config()
		want := o.cfg
		want.Workers = stored.Workers
		if stored != want {
			eng.Close()
			log.Close()
			return nil, fmt.Errorf("dex: options disagree with the stored configuration (stored %+v, requested %+v)", stored, want)
		}
	}
	nw := wrapEngine(eng, o)
	nw.log = log
	eng.SetSeedObserver(func(s uint64) { nw.seedBuf = append(nw.seedBuf, s) })
	return nw, nil
}

// beginPersist opens an operation's seed-capture window.
func (nw *Network) beginPersist() {
	if nw.log != nil {
		nw.seedBuf = nw.seedBuf[:0]
	}
}

// commitPersist logs the operation that just succeeded: its
// arguments, the walk seeds it consumed, and the step metrics it
// produced. Runs the automatic checkpoint when one is due. The
// record buffer and seed slice are reused, so steady-state commits
// allocate nothing.
func (nw *Network) commitPersist(op core.OpKind, id, attach NodeID, inserts []InsertSpec, deletes []NodeID) error {
	if nw.log == nil {
		return nil
	}
	nw.rec.Op = op
	nw.rec.ID = id
	nw.rec.Attach = attach
	nw.rec.Inserts = append(nw.rec.Inserts[:0], inserts...)
	nw.rec.Deletes = append(nw.rec.Deletes[:0], deletes...)
	nw.rec.Seeds = append(nw.rec.Seeds[:0], nw.seedBuf...)
	nw.rec.Metrics = nw.eng.LastStep()
	if err := nw.log.Append(&nw.rec); err != nil {
		return fmt.Errorf("dex: persist %s: %w", op, err)
	}
	if nw.log.CheckpointDue() {
		if err := nw.log.Checkpoint(nw.eng); err != nil {
			return fmt.Errorf("dex: checkpoint: %w", err)
		}
	}
	return nil
}

// Checkpoint forces a durable checkpoint of the current state right
// now (one is also taken automatically every WithCheckpointEvery
// operations and on Close-preceding flushes). Returns
// ErrNotPersistent without WithPersistence, and ErrReentrantOp when
// called from an event callback: a checkpoint taken mid-operation
// would snapshot half-applied recovery state into the WAL, exactly the
// hazard the mutator guards exist for. (The automatic cadenced
// checkpoint is unaffected — it runs at commit time, after the
// operation's state is fully applied.)
func (nw *Network) Checkpoint() error {
	if nw.log == nil {
		return ErrNotPersistent
	}
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	return nw.log.Checkpoint(nw.eng)
}

// LastRoot returns the Merkle Mountain Range root over the entire
// per-step metrics history and the number of steps it covers. The
// root is updated incrementally on every operation and persisted in
// checkpoints, so two replicas that processed the same step sequence
// — even if one of them crash-recovered along the way — report the
// same root. Zero without WithPersistence.
//
//dexvet:allow guarddiscipline Log.Root is a pure read of the in-memory MMR peaks; it moves no WAL state, so reading it from a callback observes the pre-operation root
func (nw *Network) LastRoot() (root [32]byte, steps uint64) {
	if nw.log == nil {
		return root, 0
	}
	return nw.log.Root()
}

// Crash abandons the network the way a process kill would: the
// staged group-commit batch is discarded and the log closed without
// flushing. The directory is left exactly as a real crash leaves it,
// so the crash-recovery tests and fuzzer exercise genuine torn-tail
// recovery. A crashed network must not be used further. No-op
// without WithPersistence.
//
//dexvet:allow guarddiscipline Crash models a hard process kill — tearing whatever is in flight is exactly its contract, so the re-entrancy guard would defeat the simulation
func (nw *Network) Crash() {
	if nw.log != nil {
		nw.log.Crash()
	}
	nw.eng.Close()
}

// Checkpoint forces a durable checkpoint under the façade lock; see
// (*Network).Checkpoint.
func (c *Concurrent) Checkpoint() error {
	return c.op(func(nw *Network) error { return nw.Checkpoint() })
}

// LastRoot returns the history digest under the façade lock; see
// (*Network).LastRoot.
func (c *Concurrent) LastRoot() (root [32]byte, steps uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.LastRoot()
}
