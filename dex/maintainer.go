package dex

import "math/rand"

// Cost is the per-operation complexity triple of the paper's Table 1.
type Cost struct {
	Rounds          int
	Messages        int
	TopologyChanges int
}

// Maintainer is the public contract of a churn-maintained overlay
// network: the adversary inserts and deletes nodes, the maintainer
// repairs its topology, and LastCost reports what the repair cost in
// the paper's measures. *Network satisfies it, as do the baseline
// adapters in the experiment harness (Law-Siu, flip-chain, skip-graph,
// and the naive strawmen), so experiments, benchmarks, and user code
// drive every construction through one interface.
type Maintainer interface {
	// Insert adds node id attached at node attach and repairs.
	Insert(id, attach NodeID) error
	// Delete removes node id and repairs.
	Delete(id NodeID) error
	// Graph exposes the live overlay topology (read-only).
	Graph() *Graph
	// Nodes returns the current node ids in ascending order.
	Nodes() []NodeID
	// Size returns the current node count.
	Size() int
	// FreshID returns a never-used node id.
	FreshID() NodeID
	// LastCost reports the cost of the most recent operation.
	LastCost() Cost
}

// InvariantChecker is satisfied by maintainers that can mechanically
// verify their structural invariants (the harness audits these when
// asked).
type InvariantChecker interface {
	CheckInvariants() error
}

// Coordinated is satisfied by maintainers with a distinguished
// coordinator node (DEX's simulator of vertex 0); targeted adversaries
// use it.
type Coordinated interface {
	Coordinator() NodeID
}

// NodeSampler is satisfied by maintainers that can return a uniformly
// random live node in O(1). The harness's adversaries use it on large
// networks instead of the O(n log n) sorted Nodes() snapshot, which is
// what lets churn runs scale past 10^6 nodes.
type NodeSampler interface {
	SampleNode(rng *rand.Rand) NodeID
}

var (
	_ Maintainer       = (*Network)(nil)
	_ InvariantChecker = (*Network)(nil)
	_ Coordinated      = (*Network)(nil)
	_ NodeSampler      = (*Network)(nil)
)
