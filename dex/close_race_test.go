package dex_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dex"
)

// TestCloseRacesDo: Close fired mid-stream against goroutines running
// Do() atomic sections. The contract under test: every Do either runs
// to completion before Close (nil error) or is rejected whole with
// ErrClosed; no Do body ever starts after Close has returned; and the
// state Close freezes is a consistent one (invariants hold on the
// final network). Run under -race this also gates the memory model of
// the closed-flag handoff.
func TestCloseRacesDo(t *testing.T) {
	for round := 0; round < 8; round++ {
		c, err := dex.NewConcurrent(dex.WithInitialSize(24), dex.WithSeed(int64(70+round)))
		if err != nil {
			t.Fatal(err)
		}
		var (
			closeReturned atomic.Bool
			lateBody      atomic.Bool
			inFlight      atomic.Int64
			rejected      atomic.Int64
			completed     atomic.Int64
		)
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := c.Do(func(nw *dex.Network) error {
						if closeReturned.Load() {
							lateBody.Store(true)
						}
						inFlight.Add(1)
						defer inFlight.Add(-1)
						return nw.Insert(nw.FreshID(), nw.Nodes()[0])
					})
					switch {
					case err == nil:
						completed.Add(1)
					case errors.Is(err, dex.ErrClosed):
						rejected.Add(1)
						return
					default:
						t.Errorf("Do returned %v", err)
						return
					}
				}
			}()
		}
		// Let the mutators get going, then slam the door mid-stream.
		for completed.Load() < 16 {
			time.Sleep(50 * time.Microsecond)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		closeReturned.Store(true) // set first: narrows the late-body detection window
		if n := inFlight.Load(); n != 0 {
			t.Fatalf("Close returned with %d Do bodies in flight", n)
		}
		wg.Wait()
		if lateBody.Load() {
			t.Fatal("a Do body started after Close returned")
		}
		if rejected.Load() != 6 {
			t.Fatalf("%d goroutines saw ErrClosed, want 6", rejected.Load())
		}
		// Reads remain legal after Close; the frozen state must be sound.
		if err := c.Do((*dex.Network).CheckInvariants); !errors.Is(err, dex.ErrClosed) {
			t.Fatalf("Do after Close: %v, want ErrClosed", err)
		}
		if c.Size() < 24 {
			t.Fatalf("size shrank to %d under insert-only churn", c.Size())
		}
	}
}

// TestCloseRacesDoAsyncFlushOrdering: Close racing mutators in async
// mode must (a) deliver every event already published before it
// returns, (b) preserve publish order end to end, and (c) leave the
// stream closed — nothing may trickle in afterwards. Publish order is
// observable through the per-step edge diffs: EdgesChanged.Step is the
// engine's step counter, so the recorded sequence must be strictly
// increasing with no entry beyond the step count Close froze.
func TestCloseRacesDoAsyncFlushOrdering(t *testing.T) {
	for round := 0; round < 4; round++ {
		c, err := dex.NewConcurrent(
			dex.WithInitialSize(24),
			dex.WithSeed(int64(90+round)),
			dex.WithAsyncEvents(4),
			dex.WithEdgeEvents(true),
		)
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu    sync.Mutex
			steps []int
		)
		c.Subscribe(func(ev dex.Event) {
			if ec, ok := ev.(dex.EdgesChanged); ok {
				mu.Lock()
				steps = append(steps, ec.Step)
				mu.Unlock()
			}
		})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					err := c.Do(func(nw *dex.Network) error {
						return nw.Insert(nw.FreshID(), nw.Nodes()[0])
					})
					if errors.Is(err, dex.ErrClosed) {
						return
					}
					if err != nil {
						t.Errorf("insert: %v", err)
						return
					}
				}
			}()
		}
		for c.Size() < 64 {
			time.Sleep(50 * time.Microsecond)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		frozen := c.Totals().Steps
		mu.Lock()
		drained := len(steps)
		got := append([]int(nil), steps...)
		mu.Unlock()
		wg.Wait()

		if drained == 0 {
			t.Fatal("no edge diffs delivered before Close returned")
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("round %d: delivery order broken: step %d after %d", round, got[i], got[i-1])
			}
		}
		if last := got[len(got)-1]; last > frozen {
			t.Fatalf("round %d: delivered step %d beyond the %d steps Close froze", round, last, frozen)
		}
		// Close's contract: the queue is drained before it returns, so
		// nothing may arrive afterwards.
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		after := len(steps)
		mu.Unlock()
		if after != drained {
			t.Fatalf("round %d: %d events trickled in after Close returned", round, after-drained)
		}
	}
}
