package dex_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/dex"
)

// TestReentrantOpRejected: a subscriber that mutates the network from
// inside its callback must get ErrReentrantOp — for every mutating
// entry point — and the engine must come out of the step undamaged.
func TestReentrantOpRejected(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	var wrong []error
	defer nw.Subscribe(func(ev dex.Event) {
		if _, ok := ev.(dex.VertexTransferred); !ok {
			return
		}
		attempts++
		nodes := nw.Nodes()
		for _, reentry := range []error{
			nw.Insert(nw.FreshID(), nodes[0]),
			nw.Delete(nodes[0]),
			nw.InsertBatch([]dex.InsertSpec{{ID: nw.FreshID(), Attach: nodes[0]}}),
			nw.DeleteBatch([]dex.NodeID{nodes[0]}),
		} {
			if !errors.Is(reentry, dex.ErrReentrantOp) {
				wrong = append(wrong, reentry)
			}
		}
	})()

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatalf("outer op failed: %v", err)
		}
	}
	if attempts == 0 {
		t.Fatal("no vertex transfer fired; re-entrancy never exercised")
	}
	if len(wrong) != 0 {
		t.Fatalf("re-entrant mutations not all rejected: %v", wrong)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("invariants after rejected re-entrant ops: %v", err)
	}
	// The guard must clear once the step completes.
	if err := nw.Insert(nw.FreshID(), nw.Nodes()[0]); err != nil {
		t.Fatalf("post-step insert rejected: %v", err)
	}
}

// TestReentrantCheckpointRejected: Checkpoint from inside an event
// callback must fail with ErrReentrantOp like every other mutator — a
// checkpoint taken mid-operation would snapshot half-applied recovery
// state into the WAL — and must work again once the step completes.
func TestReentrantCheckpointRejected(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(6), dex.WithPersistence(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	attempts := 0
	var wrong []error
	defer nw.Subscribe(func(ev dex.Event) {
		if _, ok := ev.(dex.VertexTransferred); !ok {
			return
		}
		attempts++
		if reentry := nw.Checkpoint(); !errors.Is(reentry, dex.ErrReentrantOp) {
			wrong = append(wrong, reentry)
		}
	})()

	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 120; i++ {
		if err := nw.Insert(nw.FreshID(), nw.Nodes()[rng.Intn(nw.Size())]); err != nil {
			t.Fatalf("outer op failed: %v", err)
		}
	}
	if attempts == 0 {
		t.Fatal("no vertex transfer fired; checkpoint re-entrancy never exercised")
	}
	if len(wrong) != 0 {
		t.Fatalf("re-entrant checkpoints not all rejected: %v", wrong)
	}
	// The guard must clear once the step completes.
	if err := nw.Checkpoint(); err != nil {
		t.Fatalf("post-step checkpoint rejected: %v", err)
	}
}

// TestSubscribeDuringDelivery: a callback subscribing mid-delivery must
// not disturb the in-flight round; the nested subscriber starts
// receiving with the next event, so its log is a strict suffix of the
// full stream.
func TestSubscribeDuringDelivery(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	var all, nested []dex.Event
	var cancelNested func()
	defer nw.Subscribe(func(ev dex.Event) {
		all = append(all, ev)
		if cancelNested == nil {
			cancelNested = nw.Subscribe(func(ev dex.Event) { nested = append(nested, ev) })
		}
	})()

	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 60; i++ {
		if err := nw.Insert(nw.FreshID(), nw.Nodes()[rng.Intn(nw.Size())]); err != nil {
			t.Fatal(err)
		}
	}
	if cancelNested == nil {
		t.Fatal("no event delivered; nested subscribe never happened")
	}
	defer cancelNested()
	if len(nested) == 0 || len(nested) >= len(all) {
		t.Fatalf("nested log has %d events, want a non-empty strict suffix of %d", len(nested), len(all))
	}
	suffix := all[len(all)-len(nested):]
	for i := range nested {
		if nested[i] != suffix[i] {
			t.Fatalf("nested log diverges from stream suffix at %d: %#v vs %#v", i, nested[i], suffix[i])
		}
	}
	// The trigger event itself must not have reached the nested
	// subscriber (it subscribed during that delivery).
	if all[len(all)-len(nested)-1] == nested[0] && len(all) == len(nested)+1 {
		t.Fatal("nested subscriber received the event that was mid-delivery")
	}
}

// TestCancelPeerDuringDelivery: an earlier subscriber cancelling a
// later one mid-round lets the victim finish the in-flight event, then
// stops all further delivery (the pinned-snapshot semantics).
func TestCancelPeerDuringDelivery(t *testing.T) {
	nw, err := dex.New(dex.WithInitialSize(16), dex.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	victimSeen := 0
	var cancelVictim func()
	atTrigger := -1
	cancel := nw.Subscribe(func(dex.Event) {
		seen++
		if atTrigger < 0 {
			atTrigger = seen
			cancelVictim()
		}
	})
	defer cancel()
	cancelVictim = nw.Subscribe(func(dex.Event) { victimSeen++ })

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		if err := nw.Insert(nw.FreshID(), nw.Nodes()[rng.Intn(nw.Size())]); err != nil {
			t.Fatal(err)
		}
	}
	if atTrigger < 0 {
		t.Fatal("no event delivered")
	}
	if victimSeen != 1 {
		t.Fatalf("victim saw %d events, want exactly the in-flight one (1)", victimSeen)
	}
	if seen <= atTrigger {
		t.Fatal("stream ended at the trigger; cancellation semantics unexercised")
	}
	if nw.Subscribers() != 1 {
		t.Fatalf("Subscribers() = %d, want 1 after peer cancel", nw.Subscribers())
	}
}
