// Package repro's root benchmark suite regenerates the paper's
// evaluation under `go test -bench`: one benchmark (family) per table
// and figure (the experiment index lives in README.md). Custom metrics
// (msgs/op, rounds/op, topo/op, gap) carry the quantities the paper
// reports; ns/op is simulator overhead, not a paper quantity — except
// in the Churn* family, where ns/op is the measured quantity
// (incremental vs full-rebuild maintenance cost).
package repro

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/dex"
	"repro/internal/dht"
	"repro/internal/experiments"
	"repro/internal/flipgraph"
	"repro/internal/harness"
	"repro/internal/lawsiu"
	"repro/internal/naive"
	"repro/internal/pcycle"
	"repro/internal/skipgraph"
	"repro/internal/spectral"
)

func dexNet(b *testing.B, n0 int, mode dex.Mode) *dex.Network {
	b.Helper()
	nw, err := dex.New(dex.WithInitialSize(n0), dex.WithMode(mode))
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// churnSteps drives b.N random-churn steps and reports the Table 1 cost
// metrics per operation.
func churnSteps(b *testing.B, m harness.Maintainer, seed int64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	adv := harness.RandomChurn{PInsert: 0.5}
	var rounds, msgs, topo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adv.Step(m, rng); err != nil {
			b.Fatal(err)
		}
		c := m.LastCost()
		rounds += float64(c.Rounds)
		msgs += float64(c.Messages)
		topo += float64(c.TopologyChanges)
	}
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
	b.ReportMetric(topo/float64(b.N), "topo/op")
	b.ReportMetric(float64(m.Graph().MaxDistinctDegree()), "maxdeg")
}

// --- T1: Table 1 -------------------------------------------------------------

func BenchmarkTable1_DEX(b *testing.B) {
	churnSteps(b, dexNet(b, 256, dex.Staggered), 1)
}

func BenchmarkTable1_LawSiu(b *testing.B) {
	nw, err := lawsiu.New(256, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	churnSteps(b, harness.LawSiuMaintainer{Network: nw}, 1)
}

func BenchmarkTable1_SkipGraph(b *testing.B) {
	nw, err := skipgraph.New(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	churnSteps(b, harness.SkipMaintainer{Network: nw}, 1)
}

func BenchmarkTable1_FlipChain(b *testing.B) {
	nw, err := flipgraph.New(256, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	churnSteps(b, harness.FlipMaintainer{Network: nw}, 1)
}

// --- F1: Figure 1 ------------------------------------------------------------

func BenchmarkFig1_Reproduction(b *testing.B) {
	var vg, rg float64
	for i := 0; i < b.N; i++ {
		vg, rg = experiments.Figure1(io.Discard)
	}
	b.ReportMetric(vg, "virtual-gap")
	b.ReportMetric(rg, "real-gap")
}

// --- THM1: worst-case scaling -------------------------------------------------

func BenchmarkThm1_RoundsScaling(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			churnSteps(b, dexNet(b, n, dex.Staggered), 2)
		})
	}
}

func BenchmarkThm1_MessagesScaling(b *testing.B) {
	// Same sweep, insert-biased so inflations occur.
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := dexNet(b, n, dex.Staggered)
			rng := rand.New(rand.NewSource(3))
			var msgs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes := m.Nodes()
				if err := m.Insert(m.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
					b.Fatal(err)
				}
				msgs += float64(m.LastCost().Messages)
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/op")
		})
	}
}

func BenchmarkThm1_TopologyChanges(b *testing.B) {
	m := dexNet(b, 1024, dex.Staggered)
	rng := rand.New(rand.NewSource(4))
	adv := harness.RandomChurn{PInsert: 0.5}
	var topo, maxTopo float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adv.Step(m, rng); err != nil {
			b.Fatal(err)
		}
		c := float64(m.LastCost().TopologyChanges)
		topo += c
		if c > maxTopo {
			maxTopo = c
		}
	}
	b.ReportMetric(topo/float64(b.N), "topo/op")
	b.ReportMetric(maxTopo, "topo-max")
}

// --- GAP: spectral gap series --------------------------------------------------

func BenchmarkFig_SpectralGapSeries(b *testing.B) {
	m := dexNet(b, 96, dex.Staggered)
	adv := &harness.CutThinning{}
	rng := rand.New(rand.NewSource(5))
	minGap := 1.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adv.Step(m, rng); err != nil {
			b.Fatal(err)
		}
		if i%16 == 0 {
			if g := spectral.Gap(m.Graph()); g < minGap {
				minGap = g
			}
		}
	}
	b.ReportMetric(minGap, "min-gap")
}

// --- AMORT: Corollary 1 ---------------------------------------------------------

func BenchmarkCor1_AmortizedSimplified(b *testing.B) {
	m := dexNet(b, 64, dex.Simplified)
	rng := rand.New(rand.NewSource(6))
	var rounds, msgs float64
	rebuilds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes := m.Nodes()
		var err error
		if rng.Float64() < 0.8 || m.Size() <= 6 {
			err = m.Insert(m.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = m.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			b.Fatal(err)
		}
		st := m.LastStep()
		rounds += float64(st.Rounds)
		msgs += float64(st.Messages)
		if st.Recovery != dex.RecoveryType1 {
			rebuilds++
		}
	}
	b.ReportMetric(rounds/float64(b.N), "amort-rounds/op")
	b.ReportMetric(msgs/float64(b.N), "amort-msgs/op")
	b.ReportMetric(float64(rebuilds), "type2-events")
}

// --- BAL: load bounds (Lemmas 3/5/9) --------------------------------------------

func BenchmarkBal_LoadBound(b *testing.B) {
	m := dexNet(b, 128, dex.Staggered)
	rng := rand.New(rand.NewSource(7))
	adv := harness.RandomChurn{PInsert: 0.5}
	maxLoad := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adv.Step(m, rng); err != nil {
			b.Fatal(err)
		}
		if l := m.MaxLoad(); l > maxLoad {
			maxLoad = l
		}
	}
	b.ReportMetric(float64(maxLoad), "max-load")
}

// --- DHT: Section 4.4.4 ----------------------------------------------------------

func BenchmarkDHT_Ops(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := dexNet(b, n, dex.Staggered)
			d := dht.New(m)
			rng := rand.New(rand.NewSource(8))
			var msgs float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				origin := m.Nodes()[rng.Intn(m.Size())]
				key := fmt.Sprintf("key-%d", i)
				s := d.Put(origin, key, "v")
				_, _, g := d.Get(origin, key)
				msgs += float64(s.Messages + g.Messages)
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/op")
		})
	}
}

// --- MULTI: Corollary 2 ------------------------------------------------------------

func BenchmarkCor2_BatchChurn(b *testing.B) {
	m := dexNet(b, 256, dex.Simplified)
	rng := rand.New(rand.NewSource(9))
	var msgs float64
	batches := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := m.Size()
		k := n / 16
		if k < 1 {
			k = 1
		}
		// Alternate insert/delete batches, with a hard size corridor so a
		// streak of rejected (model-illegal) delete batches cannot
		// compound the network size across a long benchmark run.
		if (i%2 == 0 || n < 128) && n < 512 {
			var specs []dex.InsertSpec
			nodes := m.Nodes()
			for j := 0; j < k; j++ {
				specs = append(specs, dex.InsertSpec{ID: m.FreshID(), Attach: nodes[rng.Intn(len(nodes))]})
			}
			if err := m.InsertBatch(specs); err != nil {
				b.Fatal(err)
			}
		} else {
			nodes := m.Nodes()
			rng.Shuffle(len(nodes), func(x, y int) { nodes[x], nodes[y] = nodes[y], nodes[x] })
			if err := m.DeleteBatch(nodes[:k]); err != nil {
				continue
			}
		}
		msgs += float64(m.LastStep().Messages)
		batches++
	}
	if batches > 0 {
		b.ReportMetric(msgs/float64(batches), "msgs/batch")
	}
}

// --- CHURN: incremental maintenance vs full-rebuild baseline --------------------------
//
// The pair below quantifies the tentpole: per-operation cost of the
// incremental real-graph maintenance versus an engine that recomputes
// the contraction from scratch after every operation (the full-rebuild
// oracle), at p ~ 10^5. The incremental path is o(p) per op, the
// full-rebuild path Theta(p), so the gap is the scaling headroom.

const churnBenchN0 = 25000 // p0 in (10^5, 2*10^5)

func benchChurnMaintenance(b *testing.B, fullRebuild bool, opts ...dex.Option) {
	nw, err := dex.New(append([]dex.Option{
		dex.WithInitialSize(churnBenchN0), dex.WithMode(dex.Staggered), dex.WithSeed(17),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	adv := harness.RandomChurn{PInsert: 0.5}
	rng := rand.New(rand.NewSource(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adv.Step(nw, rng); err != nil {
			b.Fatal(err)
		}
		if fullRebuild {
			g := nw.RecomputeGraph()
			if g.NumNodes() != nw.Size() {
				b.Fatalf("oracle lost nodes: %d vs %d", g.NumNodes(), nw.Size())
			}
		}
	}
	b.ReportMetric(float64(nw.P()), "p")
}

func BenchmarkChurnIncremental(b *testing.B) { benchChurnMaintenance(b, false) }
func BenchmarkChurnFullRebuild(b *testing.B) { benchChurnMaintenance(b, true) }

// BenchmarkChurnSampledAudit prices the always-on o(n) audit tier at
// the same scale (the cost of running million-node churn "checked").
func BenchmarkChurnSampledAudit(b *testing.B) {
	benchChurnMaintenance(b, false, dex.WithAuditMode(dex.AuditSampled))
}

// --- PAR: parallel type-1 recovery ----------------------------------------------------
//
// BenchmarkRecoveryParallel prices the worker pool on multi-vertex
// recovery storms: each op deletes `stormK` random nodes and restores
// the size with one `stormK`-member InsertBatch. All widths run the
// same seed, and the serial-vs-parallel differential tests guarantee
// the recovery work is byte-identical — the ns/op delta is pure
// wall-clock. Interpreting it: in the dense steady state DEX walks
// resolve in O(1) expected hops (Lemma 2), so widths must sit at
// parity (the engine keeps short walks serial and only fans out
// scarce-regime batches — see internal/core/parallel.go); speedup
// appears on multi-core hosts when churn pressure makes acceptor sets
// scarce, and BenchmarkWalkBatchPool in internal/congest bounds what
// the walk substrate itself can return.

const stormN0 = 8192
const stormK = 24

func BenchmarkRecoveryParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			nw, err := dex.New(
				dex.WithInitialSize(stormN0),
				dex.WithSeed(23),
				dex.WithWorkers(workers),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer nw.Close()
			rng := rand.New(rand.NewSource(23))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < stormK; k++ {
					if err := nw.Delete(nw.SampleNode(rng)); err != nil {
						b.Fatal(err)
					}
				}
				specs := make([]dex.InsertSpec, stormK)
				for j := range specs {
					specs[j] = dex.InsertSpec{ID: nw.FreshID(), Attach: nw.SampleNode(rng)}
				}
				if err := nw.InsertBatch(specs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			hits, misses, tail := nw.SpecStats()
			if total := hits + misses; total > 0 {
				b.ReportMetric(float64(hits)/float64(total), "spec-hit-rate")
			}
			if tail > 0 {
				b.ReportMetric(float64(tail)/float64(b.N), "tail-walks/op")
			}
		})
	}
}

// --- PIPE: pipelined façade throughput -------------------------------------------------
//
// BenchmarkConcurrentChurn prices the tentpole: c submitter goroutines
// drive non-overlapping insert/delete churn (each owns a private id
// range anchored in its own region of the initial network) through the
// Concurrent façade, serialized versus pipelined (WithPipeline). One
// benchmark iteration is one insert+delete pair, so ns/op is directly
// comparable across the two modes; the pipelined rows should pull ahead
// as c grows because window speculation runs the insert walks and the
// deferred sampled audits fan out across the worker pool while commits
// stay serial. The lockstep oracle tests in dex/pipeline_test.go pin
// the two modes to byte-identical state, so the delta here is pure
// wall-clock.

const pipeBenchN0 = 4096

func benchConcurrentChurn(b *testing.B, submitters int, pipelined bool) {
	opts := []dex.Option{
		dex.WithInitialSize(pipeBenchN0),
		dex.WithSeed(29),
		dex.WithWorkers(8),
		dex.WithAuditMode(dex.AuditSampled),
	}
	if pipelined {
		opts = append(opts, dex.WithPipeline(2*submitters))
	}
	c, err := dex.NewConcurrent(opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	per := (b.N + submitters - 1) / submitters
	b.ResetTimer()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			anchor := dex.NodeID(g * (pipeBenchN0 / submitters))
			for i := 0; i < per; i++ {
				id := dex.NodeID(1_000_000*(g+1) + i)
				if err := c.Insert(id, anchor); err != nil {
					b.Error(err)
					return
				}
				if err := c.Delete(id); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	b.StopTimer()
	if pipelined {
		hits, misses, _ := c.PipelineStats()
		if total := hits + misses; total > 0 {
			b.ReportMetric(float64(hits)/float64(total), "spec-hit-rate")
		}
	}
}

func BenchmarkConcurrentChurn(b *testing.B) {
	for _, mode := range []string{"serialized", "pipelined"} {
		for _, subs := range []int{1, 4, 8, 16} {
			b.Run(fmt.Sprintf("%s/c=%d", mode, subs), func(b *testing.B) {
				benchConcurrentChurn(b, subs, mode == "pipelined")
			})
		}
	}
}

// --- FIG-W: walk concentration --------------------------------------------------------

func BenchmarkFig_WalkHitRate(b *testing.B) {
	rates := experiments.WalkHitRate(io.Discard, 128, 0.3, max(b.N, 50), 10)
	b.ReportMetric(rates[4], "hit-rate-4logn")
}

// --- FIG-R: permutation routing --------------------------------------------------------

func BenchmarkFig_PermRouting(b *testing.B) {
	const p = 1009
	z, err := pcycle.New(p)
	if err != nil {
		b.Fatal(err)
	}
	perm := rand.New(rand.NewSource(12)).Perm(p)
	dest := func(x pcycle.Vertex) pcycle.Vertex { return pcycle.Vertex(perm[x]) }
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rounds, _ = z.RoutePermutation(dest)
	}
	b.ReportMetric(float64(rounds), "routing-rounds")
}

// --- NAIVE: Section 3 strawmen ----------------------------------------------------------

func BenchmarkNaiveBaselines(b *testing.B) {
	for _, kind := range []naive.Kind{naive.Flooding, naive.GlobalKnowledge} {
		name := "flooding"
		if kind == naive.GlobalKnowledge {
			name = "global-knowledge"
		}
		b.Run(name, func(b *testing.B) {
			nw, err := naive.New(256, kind)
			if err != nil {
				b.Fatal(err)
			}
			m := harness.NaiveMaintainer{Network: nw}
			churnSteps(b, m, 11)
		})
	}
}

func max(a, c int) int {
	if a > c {
		return a
	}
	return c
}
