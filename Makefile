GO ?= go

.PHONY: all build test test-race vet fmt check bench sim dht experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The repository's concurrency contract is single-goroutine (see the
# dex package doc); the race-enabled run of the public API and the core
# churn tests documents that no hidden sharing violates it.
test-race:
	$(GO) test -race ./dex/... ./internal/core/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build vet fmt test

bench:
	$(GO) test -bench . -benchtime 200x -run '^$$' .

sim:
	$(GO) run ./cmd/dexsim -n0 128 -steps 1000 -adversary random -gap-every 100

dht:
	$(GO) run ./cmd/dexdht -n0 64 -keys 1000 -churn 500

experiments:
	$(GO) run ./cmd/dexbench -exp all
