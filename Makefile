GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-race vet fmt check bench fuzz sim sim-scale dht experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The repository's concurrency contract is single-goroutine (see the
# dex package doc); the race-enabled run of the public API and the core
# churn tests documents that no hidden sharing violates it.
test-race:
	$(GO) test -race ./dex/... ./internal/core/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

check: build vet fmt test

bench:
	$(GO) test -bench . -benchtime 200x -run '^$$' .

# Differential churn-trace fuzzing: random byte strings decode into
# operation traces replayed under the incremental-vs-full-rebuild
# oracle plus the exhaustive invariant check.
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzChurnTrace -fuzztime $(FUZZTIME)

sim:
	$(GO) run ./cmd/dexsim -n0 128 -steps 1000 -adversary random -gap-every 100

# Scale demonstration: grow past 10^5 nodes with the o(n) sampled audit
# verifying every step (use -steps 1000000 for the 10^6-node run).
sim-scale:
	$(GO) run ./cmd/dexsim -n0 8192 -steps 100000 -pinsert 1.0 -adversary insert -gap-every 0 -audit sampled

dht:
	$(GO) run ./cmd/dexdht -n0 64 -keys 1000 -churn 500

experiments:
	$(GO) run ./cmd/dexbench -exp all
