GO ?= go
FUZZTIME ?= 30s

# Pinned versions of the external analyzers `make lint` runs when they
# are installed (CI installs exactly these; offline dev environments
# skip them with a notice — dexvet itself always runs, it needs nothing
# beyond the repo).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test test-race vet fmt lint check bench bench-graph bench-core bench-recovery bench-json bench-diff profile-churn fuzz fuzz-churn fuzz-graph fuzz-crash sim sim-scale dht experiments

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race gate over the whole module. The concurrency hot spots (the
# dex.Concurrent façade, the parallel type-1 walk machinery in core,
# the congest walk pool, persistence) are where races have actually
# lived, but the full sweep costs little on top and has no blind spots.
test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static-analysis gate, required in CI: dexvet mechanizes the repo's
# own invariants (guard discipline, engine determinism, 0-alloc hot
# paths, slot-native mutators — see cmd/dexvet and internal/analysis);
# staticcheck and govulncheck run at the pinned versions when
# installed. Zero unannotated findings is the merge bar: fix the code
# or annotate the site with //dexvet:allow <rule> <reason>.
lint:
	$(GO) run ./cmd/dexvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed — skipped (CI pins $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed — skipped (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

check: build vet fmt lint test

bench:
	$(GO) test -bench . -benchtime 200x -run '^$$' .

# Substrate micro-benchmarks: walk-hop and edge-churn cost on the flat
# adjacency arena vs the map-of-maps Ref baseline (BenchmarkWalkHop must
# report 0 allocs/op).
bench-graph:
	$(GO) test ./internal/graph -run '^$$' -bench 'WalkHop|GraphChurn' -benchtime 100000x

# Engine-state benchmarks + alloc gates: one steady-state recovery op
# (delete+insert) at 10^5 nodes on the dense slot-indexed store vs the
# map-store oracle, the zero-allocation gates on the recovery path and
# the speculation write-set (mirrors bench-graph one layer up), and the
# pipelined-façade throughput rows (serialized vs WithPipeline at
# 1/4/8/16 submitters; dex/pipeline_test.go pins the two modes to
# byte-identical state, so the delta is pure wall-clock).
bench-core:
	$(GO) test ./internal/core -run 'ZeroAllocs' -count 1 -v
	$(GO) test ./internal/core -run '^$$' -bench RecoveryOp -benchtime 2000x -timeout 20m
	$(GO) test . -run '^$$' -bench ConcurrentChurn -benchtime 300x -timeout 20m

# Parallel-recovery benchmarks at 1/4/8 walk workers. Seeded runs are
# byte-identical at every width (enforced by TestParallelMatchesSerial*),
# so the deltas are pure wall-clock: storms must sit at parity on dense
# steady-state churn and on single-CPU hosts; WalkBatchPool bounds the
# multi-core scaling of the walk substrate the retry tail dispatches.
bench-recovery:
	$(GO) test -run '^$$' -bench RecoveryParallel -benchtime 50x .
	$(GO) test ./internal/congest -run '^$$' -bench WalkBatchPool -benchtime 200x

# Machine-readable benchmark baselines: re-run the hot-path benchmarks
# with -benchmem and emit BENCH_core.json / BENCH_graph.json via
# cmd/benchjson. CI diffs fresh runs against the committed files via
# cmd/benchdiff (see bench-diff below). The core and persist packages
# run in separate invocations — `go test p1 p2` runs the two test
# binaries concurrently, and the contention skews the gated
# RecoveryOp row by 20%+. The graph rows use a 2M-iteration window
# (at ~200ns/op, 100000x is a 20ms sample and pure scheduler noise),
# and every gated row is the fastest of several reruns — benchjson
# keeps the minimum per name, the noise-robust statistic on a host with
# steal (the recovery-op row takes 6: measured steal bursts run 2-3
# samples long, so 3 reruns can miss the floor entirely).
bench-json:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'RecoveryOp/dense' -benchtime 200x -benchmem -count 6 -timeout 20m \
		| $(GO) run ./cmd/benchjson > BENCH_core.json
	$(GO) test ./internal/persist -run '^$$' \
		-bench 'WALAppend|Checkpoint' -benchtime 200x -benchmem -timeout 20m \
		| $(GO) run ./cmd/benchjson -append BENCH_core.json
	$(GO) test . -run '^$$' \
		-bench 'ConcurrentChurn' -benchtime 300x -benchmem -timeout 20m \
		| $(GO) run ./cmd/benchjson -append BENCH_core.json
	$(GO) test ./internal/graph -run '^$$' \
		-bench 'WalkHop|GraphChurn' -benchtime 2000000x -benchmem -count 3 \
		| $(GO) run ./cmd/benchjson > BENCH_graph.json

# Thresholded benchmark ratchet: regenerate fresh measurements and diff
# them against the committed baselines. The walk-hop, graph-churn,
# recovery-op, and pipelined-churn rows fail on >10% ns/op drift or any
# allocs/op increase; all other rows are report-only (runner noise makes
# a blanket hard gate hostile).
bench-diff:
	$(GO) test ./internal/core -run '^$$' \
		-bench 'RecoveryOp/dense' -benchtime 200x -benchmem -count 6 -timeout 20m \
		| $(GO) run ./cmd/benchjson > /tmp/bench_core_fresh.json
	$(GO) test ./internal/persist -run '^$$' \
		-bench 'WALAppend|Checkpoint' -benchtime 200x -benchmem -timeout 20m \
		| $(GO) run ./cmd/benchjson -append /tmp/bench_core_fresh.json
	$(GO) test . -run '^$$' \
		-bench 'ConcurrentChurn' -benchtime 300x -benchmem -timeout 20m \
		| $(GO) run ./cmd/benchjson -append /tmp/bench_core_fresh.json
	$(GO) test ./internal/graph -run '^$$' \
		-bench 'WalkHop|GraphChurn' -benchtime 2000000x -benchmem -count 3 \
		| $(GO) run ./cmd/benchjson > /tmp/bench_graph_fresh.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_core.json -fresh /tmp/bench_core_fresh.json \
		-gate 'BenchmarkRecoveryOp/dense/n=100000,BenchmarkConcurrentChurn/pipelined/c=1'
	$(GO) run ./cmd/benchdiff -baseline BENCH_graph.json -fresh /tmp/bench_graph_fresh.json \
		-gate 'BenchmarkWalkHop,BenchmarkGraphChurn'

# Churn-trace profiling: a CPU + allocation pprof pair for the engine's
# steady-state churn hot path — the profile that motivated PR 10's
# findNbr fence and insert fast path. Artifacts land in profiles/
# (the directory is committed, its contents are git-ignored); inspect
# with `go tool pprof profiles/churn_cpu.pprof`. CI runs this with
# PROFILE_BENCHTIME=20x and PROFILE_FLAGS=-short purely as a
# does-the-target-still-build-and-run smoke, so the profiling recipe
# cannot rot.
PROFILE_BENCHTIME ?= 200x
PROFILE_FLAGS ?=

profile-churn:
	@mkdir -p profiles
	$(GO) test ./internal/core -run '^$$' -bench 'RecoveryOp/dense/n=100000' \
		-benchtime $(PROFILE_BENCHTIME) -timeout 20m $(PROFILE_FLAGS) \
		-cpuprofile profiles/churn_cpu.pprof -memprofile profiles/churn_alloc.pprof

# Differential fuzzing, one target per oracle tier: FuzzChurnTrace
# replays decoded operation traces under the incremental-vs-full-rebuild
# oracle plus the exhaustive invariant check; FuzzGraphOps replays graph
# mutation sequences against the map-of-maps Ref oracle (swap-safety for
# the flat adjacency arena); FuzzCrashRecovery kills persistent runs at
# arbitrary points (including torn/corrupted WAL tails) and demands the
# recovered network match a fresh oracle run of the surviving prefix;
# FuzzPipelineSchedule churns the pipelined scheduler from concurrent
# submitters (a header bit forces overlapping footprints so the
# retry/drain path sees traffic) and replays every admitted schedule
# against the serial façade as the linearizability oracle.
fuzz: fuzz-churn fuzz-graph fuzz-crash fuzz-pipeline

fuzz-churn:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzChurnTrace -fuzztime $(FUZZTIME)

fuzz-graph:
	$(GO) test ./internal/graph -run '^$$' -fuzz FuzzGraphOps -fuzztime $(FUZZTIME)

fuzz-crash:
	$(GO) test ./internal/persist -run '^$$' -fuzz FuzzCrashRecovery -fuzztime $(FUZZTIME)

fuzz-pipeline:
	$(GO) test ./dex -run '^$$' -fuzz FuzzPipelineSchedule -fuzztime $(FUZZTIME)

sim:
	$(GO) run ./cmd/dexsim -n0 128 -steps 1000 -adversary random -gap-every 100

# Scale demonstration: grow past 10^5 nodes with the o(n) sampled audit
# verifying every step (use -steps 1000000 for the 10^6-node run).
sim-scale:
	$(GO) run ./cmd/dexsim -n0 8192 -steps 100000 -pinsert 1.0 -adversary insert -gap-every 0 -audit sampled

dht:
	$(GO) run ./cmd/dexdht -n0 64 -keys 1000 -churn 500

experiments:
	$(GO) run ./cmd/dexbench -exp all
