package repro

import (
	"math/rand"
	"testing"

	"repro/dex"
	"repro/internal/harness"
)

// TestScaleIncrementalChurn is the scale regression gate for the
// incremental real-graph maintenance: a dexsim-style churn run past
// 10^5 nodes, with the o(n) sampled audit on every step, finished by
// the exhaustive invariant check and a full differential comparison
// against the from-scratch rebuild oracle. Before maintenance became
// incremental this size was unreachable in test time; if a per-step
// O(p) scan creeps back into the hot path, this test times out rather
// than passes quietly.
func TestScaleIncrementalChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("scale regression test skipped in -short mode")
	}
	const (
		start  = 65536
		target = 100_000
		mixed  = 1500 // mixed churn steps after growth, exercising deletes at scale
	)
	nw, err := dex.New(
		dex.WithInitialSize(start),
		dex.WithMode(dex.Staggered),
		dex.WithSeed(42),
		dex.WithAuditMode(dex.AuditSampled),
		dex.WithHistoryCap(16384),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	grow := harness.InsertOnly{}
	for nw.Size() < target {
		if err := grow.Step(nw, rng); err != nil {
			t.Fatalf("grow at n=%d: %v", nw.Size(), err)
		}
	}
	churn := harness.RandomChurn{PInsert: 0.5, MinSize: target - 500}
	for i := 0; i < mixed; i++ {
		if err := churn.Step(nw, rng); err != nil {
			t.Fatalf("churn step %d at n=%d: %v", i, nw.Size(), err)
		}
	}
	if nw.Size() < target-1000 {
		t.Fatalf("network shrank unexpectedly: n=%d", nw.Size())
	}

	// Exhaustive gate: every paper invariant, then the incremental graph
	// against the full-rebuild oracle edge-for-edge.
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	live, oracle := nw.Graph(), nw.RecomputeGraph()
	if live.NumNodes() != oracle.NumNodes() || live.NumEdges() != oracle.NumEdges() {
		t.Fatalf("live %d nodes / %d edges, oracle %d / %d",
			live.NumNodes(), live.NumEdges(), oracle.NumNodes(), oracle.NumEdges())
	}
	for _, e := range oracle.Edges() {
		if live.Multiplicity(e.U, e.V) != e.Mult {
			t.Fatalf("edge {%d,%d}: live multiplicity %d, oracle %d",
				e.U, e.V, live.Multiplicity(e.U, e.V), e.Mult)
		}
	}
	if ml, bound := nw.MaxLoad(), 8*nw.Zeta(); ml > bound {
		t.Fatalf("max load %d exceeds %d at n=%d", ml, bound, nw.Size())
	}
	t.Logf("final: n=%d p=%d steps=%d maxload=%d", nw.Size(), nw.P(), nw.Totals().Steps, nw.MaxLoad())
}
