package repro

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/dex"
	"repro/internal/graph"
	"repro/internal/harness"
)

// TestScaleIncrementalChurn is the scale regression gate for the
// incremental real-graph maintenance: a dexsim-style churn run past
// 10^5 nodes, with the o(n) sampled audit on every step, finished by
// the exhaustive invariant check and a full differential comparison
// against the from-scratch rebuild oracle. Before maintenance became
// incremental this size was unreachable in test time; if a per-step
// O(p) scan creeps back into the hot path, this test times out rather
// than passes quietly.
func TestScaleIncrementalChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("scale regression test skipped in -short mode")
	}
	const (
		start  = 65536
		target = 100_000
		mixed  = 1500 // mixed churn steps after growth, exercising deletes at scale
	)
	nw, err := dex.New(
		dex.WithInitialSize(start),
		dex.WithMode(dex.Staggered),
		dex.WithSeed(42),
		dex.WithAuditMode(dex.AuditSampled),
		dex.WithHistoryCap(16384),
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	grow := harness.InsertOnly{}
	for nw.Size() < target {
		if err := grow.Step(nw, rng); err != nil {
			t.Fatalf("grow at n=%d: %v", nw.Size(), err)
		}
	}
	churn := harness.RandomChurn{PInsert: 0.5, MinSize: target - 500}
	for i := 0; i < mixed; i++ {
		if err := churn.Step(nw, rng); err != nil {
			t.Fatalf("churn step %d at n=%d: %v", i, nw.Size(), err)
		}
	}
	if nw.Size() < target-1000 {
		t.Fatalf("network shrank unexpectedly: n=%d", nw.Size())
	}

	// Exhaustive gate: every paper invariant, then the incremental graph
	// against the full-rebuild oracle edge-for-edge.
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	live, oracle := nw.Graph(), nw.RecomputeGraph()
	if live.NumNodes() != oracle.NumNodes() || live.NumEdges() != oracle.NumEdges() {
		t.Fatalf("live %d nodes / %d edges, oracle %d / %d",
			live.NumNodes(), live.NumEdges(), oracle.NumNodes(), oracle.NumEdges())
	}
	for _, e := range oracle.Edges() {
		if live.Multiplicity(e.U, e.V) != e.Mult {
			t.Fatalf("edge {%d,%d}: live multiplicity %d, oracle %d",
				e.U, e.V, live.Multiplicity(e.U, e.V), e.Mult)
		}
	}
	if ml, bound := nw.MaxLoad(), 8*nw.Zeta(); ml > bound {
		t.Fatalf("max load %d exceeds %d at n=%d", ml, bound, nw.Size())
	}
	t.Logf("final: n=%d p=%d steps=%d maxload=%d", nw.Size(), nw.P(), nw.Totals().Steps, nw.MaxLoad())
}

// heapDelta reports the runtime.MemStats heap growth attributable to
// build(), with a GC fence on both sides so transient garbage does not
// count against the representation being measured.
func heapDelta(build func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// TestScaleGraphMemoryFootprint is the substrate memory gate: one
// deterministic 10^5-node maintenance trace — a DEX-contraction-shaped
// base overlay followed by staggered-rebuild-style degree spikes (each
// cohort of nodes transiently triples its degree, as nodes carrying both
// the old and new cycle do, then drops back) — is replayed into the flat
// adjacency arena and into the map-of-maps Ref baseline, and the retained
// runtime.MemStats bytes/node are compared. The arena must end at least
// 2x below the maps and under an absolute budget. This is the regression
// tripwire for the "~1GB of adjacency maps at n=10^6" headroom the arena
// reclaims: a Go map never returns spare buckets after a spike, while the
// arena shrinks runs back into the shared free lists for the next cohort.
func TestScaleGraphMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("memory footprint gate skipped in -short mode")
	}
	const (
		n = 100_000
		// Bytes/node budget for the arena after the spike trace (~6 live
		// distinct neighbors): measured ~150 B/node; the slack guards the
		// gate against allocator noise, not against rework.
		arenaBudget = 300
		spike       = 12 // extra edges per node during its rebuild cohort
		cohort      = 64 // nodes rebuilding concurrently (theta-staggered)
	)
	// The trace is precomputed so both representations replay byte-for-byte
	// the same operations.
	type op struct {
		u, v graph.NodeID
		add  bool
	}
	rng := rand.New(rand.NewSource(9))
	var trace []op
	for i := 0; i < n; i++ {
		u := graph.NodeID(i)
		trace = append(trace, op{u, graph.NodeID((i + 1) % n), true})
		trace = append(trace, op{u, graph.NodeID(rng.Intn(n)), true})
		switch i % 16 {
		case 0:
			trace = append(trace, op{u, u, true}) // self-loop
		case 1:
			trace = append(trace, op{u, graph.NodeID((i + 1) % n), true}) // parallel
		default:
			trace = append(trace, op{u, graph.NodeID(rng.Intn(n)), true})
		}
	}
	order := rng.Perm(n)
	for c := 0; c < n; c += cohort {
		end := c + cohort
		if end > n {
			end = n
		}
		var spiked []op
		for _, i := range order[c:end] {
			u := graph.NodeID(i)
			for s := 0; s < spike; s++ {
				e := op{u, graph.NodeID(rng.Intn(n)), true}
				trace = append(trace, e)
				spiked = append(spiked, e)
			}
		}
		for _, e := range spiked {
			trace = append(trace, op{e.u, e.v, false})
		}
	}

	replay := func(add func(u, v graph.NodeID), remove func(u, v graph.NodeID) bool) {
		for _, o := range trace {
			if o.add {
				add(o.u, o.v)
			} else if !remove(o.u, o.v) {
				t.Fatalf("trace removal of absent edge {%d,%d}", o.u, o.v)
			}
		}
	}
	var arena *graph.Graph
	arenaBytes := heapDelta(func() {
		arena = graph.New()
		replay(arena.AddEdge, arena.RemoveEdge)
	})
	var ref *graph.Ref
	refBytes := heapDelta(func() {
		ref = graph.NewRef()
		replay(ref.AddEdge, ref.RemoveEdge)
	})

	if arena.NumEdges() != ref.NumEdges() || arena.NumNodes() != ref.NumNodes() {
		t.Fatalf("replays diverged: arena %d/%d, ref %d/%d",
			arena.NumNodes(), arena.NumEdges(), ref.NumNodes(), ref.NumEdges())
	}
	if err := arena.Validate(); err != nil {
		t.Fatal(err)
	}
	arenaPer := float64(arenaBytes) / n
	refPer := float64(refBytes) / n
	t.Logf("n=%d after rebuild-spike churn: arena %.0f B/node (%.1f MB), map-of-maps %.0f B/node (%.1f MB), ratio %.1fx",
		n, arenaPer, float64(arenaBytes)/(1<<20), refPer, float64(refBytes)/(1<<20), refPer/arenaPer)
	if 2*arenaBytes > refBytes {
		t.Fatalf("arena %.0f B/node is not >=2x below the map-of-maps baseline %.0f B/node", arenaPer, refPer)
	}
	if arenaPer > arenaBudget {
		t.Fatalf("arena %.0f B/node exceeds the %d B/node budget", arenaPer, arenaBudget)
	}
	runtime.KeepAlive(arena)
	runtime.KeepAlive(ref)
	// The trace must stay reachable through both measurements: if it died
	// inside the second replay, its collection would be credited against
	// that representation's footprint.
	runtime.KeepAlive(trace)
}
