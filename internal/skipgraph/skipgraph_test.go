package skipgraph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestNewAndValidate(t *testing.T) {
	nw, err := New(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 64 {
		t.Fatalf("size = %d", nw.Size())
	}
}

func TestLevelStructureLogarithmic(t *testing.T) {
	nw, err := New(256, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Max level is Theta(log n) whp; allow generous constants.
	ml := nw.MaxLevel()
	logN := math.Log2(256)
	if float64(ml) < logN/2 || float64(ml) > 4*logN {
		t.Fatalf("max level %d not ~log n (%v)", ml, logN)
	}
	// Degree is Theta(log n), NOT constant - Table 1's key contrast.
	maxDeg := nw.Graph().MaxDistinctDegree()
	if maxDeg < int(logN/2) {
		t.Fatalf("max degree %d suspiciously small", maxDeg)
	}
}

func TestInsertErrorsAndCosts(t *testing.T) {
	nw, _ := New(32, 3)
	if err := nw.Insert(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := nw.Insert(nw.FreshID(), 12345); err == nil {
		t.Fatal("unknown introducer accepted")
	}
	id := nw.FreshID()
	if err := nw.Insert(id, 0); err != nil {
		t.Fatal(err)
	}
	c := nw.LastCost()
	if c.Messages <= 0 || c.TopologyChanges <= 0 {
		t.Fatalf("insert cost = %+v", c)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	nw, _ := New(32, 4)
	if err := nw.Delete(999); err == nil {
		t.Fatal("unknown delete accepted")
	}
	if err := nw.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 31 {
		t.Fatalf("size = %d", nw.Size())
	}
}

func TestChurnKeepsStructure(t *testing.T) {
	nw, err := New(24, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
		if i%40 == 0 {
			if err := nw.Validate(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchCostLogarithmic(t *testing.T) {
	nw, err := New(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	const probes = 64
	for i := 0; i < probes; i++ {
		_, hops := nw.searchPredecessor(0, graph.NodeID(i*7)%512)
		total += hops
	}
	mean := float64(total) / probes
	if mean > 6*math.Log2(512) {
		t.Fatalf("mean search hops %v not logarithmic", mean)
	}
}
