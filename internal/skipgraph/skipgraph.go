// Package skipgraph implements a skip graph overlay (Aspnes-Shah), the
// randomized comparison structure in the paper's Table 1: every node
// draws a random membership vector; level i links nodes agreeing on the
// first i bits into doubly-linked sorted lists. Skip graphs contain
// expanders w.h.p. [2] but their degree grows as Theta(log n) and the
// expansion guarantee is probabilistic - the properties Table 1
// contrasts with DEX's deterministic constant degree and gap.
//
// Costs are counted as real traversals: a join pays its search hops at
// level 0 plus a neighbor scan per level; a leave pays two unlink
// messages per level.
package skipgraph

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

const maxLevels = 62

// Cost mirrors the per-operation complexity measures.
type Cost struct {
	Rounds          int
	Messages        int
	TopologyChanges int
}

type node struct {
	id    graph.NodeID
	mv    uint64
	left  []graph.NodeID // per level; -1 = list end
	right []graph.NodeID
}

func (n *node) top() int { return len(n.left) - 1 }

// Network is a skip graph overlay.
type Network struct {
	nodes  map[graph.NodeID]*node
	rng    *rand.Rand
	nextID graph.NodeID
	last   Cost
}

// New builds a skip graph of n0 nodes (ids 0..n0-1) by sequential joins.
func New(n0 int, seed int64) (*Network, error) {
	if n0 < 4 {
		return nil, fmt.Errorf("skipgraph: need n0 >= 4, got %d", n0)
	}
	nw := &Network{
		nodes:  make(map[graph.NodeID]*node),
		rng:    rand.New(rand.NewSource(seed)),
		nextID: graph.NodeID(n0),
	}
	first := &node{id: 0, mv: nw.rng.Uint64(), left: []graph.NodeID{-1}, right: []graph.NodeID{-1}}
	nw.nodes[0] = first
	for i := 1; i < n0; i++ {
		if err := nw.Insert(graph.NodeID(i), 0); err != nil {
			return nil, err
		}
	}
	nw.last = Cost{}
	return nw, nil
}

// match reports whether two membership vectors agree on their first
// `bits` bits (stored in the low bits).
func match(a, b uint64, bits int) bool {
	if bits >= 64 {
		return a == b
	}
	return (a^b)&((1<<uint(bits))-1) == 0
}

// Size, Graph, Nodes, FreshID, LastCost implement the harness interface.
func (nw *Network) Size() int { return len(nw.nodes) }

// Nodes returns ids ascending.
func (nw *Network) Nodes() []graph.NodeID {
	g := graph.New()
	for id := range nw.nodes {
		g.AddNode(id)
	}
	return g.Nodes()
}

// FreshID returns an unused id.
func (nw *Network) FreshID() graph.NodeID {
	id := nw.nextID
	nw.nextID++
	return id
}

// LastCost returns the most recent operation's cost.
func (nw *Network) LastCost() Cost { return nw.last }

// Graph materializes the union of all level lists as a multigraph.
func (nw *Network) Graph() *graph.Graph {
	g := graph.New()
	for id, n := range nw.nodes {
		g.AddNode(id)
		for lvl := 0; lvl <= n.top(); lvl++ {
			if r := n.right[lvl]; r >= 0 {
				g.AddEdge(id, r)
			}
		}
	}
	return g
}

// searchPredecessor finds the level-0 node with the largest id <= key,
// starting from `from`, and returns it with the hop count. Standard skip
// search: move as far as possible per level, then descend.
func (nw *Network) searchPredecessor(from graph.NodeID, key graph.NodeID) (graph.NodeID, int) {
	cur := nw.nodes[from]
	hops := 0
	for lvl := cur.top(); lvl >= 0; lvl-- {
		for {
			if lvl > cur.top() {
				break
			}
			if key > cur.id {
				r := cur.right[lvl]
				if r >= 0 && r <= key {
					cur = nw.nodes[r]
					hops++
					continue
				}
			} else if key < cur.id {
				l := cur.left[lvl]
				if l >= 0 {
					cur = nw.nodes[l]
					hops++
					continue
				}
			}
			break
		}
	}
	// cur is now adjacent to key's position; normalize to predecessor.
	for cur.id > key {
		l := cur.left[0]
		if l < 0 {
			return cur.id, hops // key precedes the whole list
		}
		cur = nw.nodes[l]
		hops++
	}
	return cur.id, hops
}

// Insert joins id via introducer attach.
func (nw *Network) Insert(id, attach graph.NodeID) error {
	if _, dup := nw.nodes[id]; dup {
		return fmt.Errorf("skipgraph: duplicate id %d", id)
	}
	if _, ok := nw.nodes[attach]; !ok {
		return fmt.Errorf("skipgraph: unknown introducer %d", attach)
	}
	if id >= nw.nextID {
		nw.nextID = id + 1
	}
	nw.last = Cost{}
	n := &node{id: id, mv: nw.rng.Uint64(), left: []graph.NodeID{-1}, right: []graph.NodeID{-1}}

	// Level 0: search for the insertion position.
	predID, hops := nw.searchPredecessor(attach, id)
	nw.last.Messages += hops
	nw.last.Rounds += hops
	pred := nw.nodes[predID]
	if pred.id > id {
		// id precedes the whole level-0 list: insert before pred.
		n.right[0] = pred.id
		n.left[0] = -1
		pred.left[0] = id
	} else {
		n.left[0] = pred.id
		n.right[0] = pred.right[0]
		pred.right[0] = id
		if r := n.right[0]; r >= 0 {
			nw.nodes[r].left[0] = id
		}
	}
	nw.last.Messages += 2
	nw.last.TopologyChanges += 3
	nw.nodes[id] = n

	// Higher levels: scan level lvl-1 outward for the nearest node whose
	// membership vector matches lvl bits; link beside it.
	for lvl := 1; lvl < maxLevels; lvl++ {
		scan := 0
		foundLeft, foundRight := graph.NodeID(-1), graph.NodeID(-1)
		for cur := n.left[lvl-1]; cur >= 0; cur = nw.nodes[cur].left[lvl-1] {
			scan++
			if match(nw.nodes[cur].mv, n.mv, lvl) {
				foundLeft = cur
				break
			}
		}
		for cur := n.right[lvl-1]; cur >= 0; cur = nw.nodes[cur].right[lvl-1] {
			scan++
			if match(nw.nodes[cur].mv, n.mv, lvl) {
				foundRight = cur
				break
			}
		}
		nw.last.Messages += scan
		nw.last.Rounds += scan
		if foundLeft < 0 && foundRight < 0 {
			break // alone at this level: the node's top level is lvl-1
		}
		n.left = append(n.left, foundLeft)
		n.right = append(n.right, foundRight)
		if foundLeft >= 0 {
			w := nw.nodes[foundLeft]
			ensureLevel(w, lvl)
			w.right[lvl] = id
		}
		if foundRight >= 0 {
			w := nw.nodes[foundRight]
			ensureLevel(w, lvl)
			w.left[lvl] = id
		}
		nw.last.Messages += 2
		nw.last.TopologyChanges += 2
	}
	return nil
}

// ensureLevel grows a node's link arrays up to lvl (a previously-alone
// node gains the level when a peer arrives).
func ensureLevel(n *node, lvl int) {
	for len(n.left) <= lvl {
		n.left = append(n.left, -1)
		n.right = append(n.right, -1)
	}
}

// Delete unlinks id at every level.
func (nw *Network) Delete(id graph.NodeID) error {
	n, ok := nw.nodes[id]
	if !ok {
		return fmt.Errorf("skipgraph: unknown id %d", id)
	}
	if nw.Size() <= 4 {
		return fmt.Errorf("skipgraph: refusing to shrink below 4")
	}
	nw.last = Cost{Rounds: 1}
	for lvl := 0; lvl <= n.top(); lvl++ {
		l, r := n.left[lvl], n.right[lvl]
		if l >= 0 {
			nw.nodes[l].right[lvl] = r
		}
		if r >= 0 {
			nw.nodes[r].left[lvl] = l
		}
		nw.last.Messages += 2
		nw.last.TopologyChanges += 2
	}
	delete(nw.nodes, id)
	return nil
}

// MaxLevel returns the highest occupied level (tests; Theta(log n) whp).
func (nw *Network) MaxLevel() int {
	m := 0
	for _, n := range nw.nodes {
		if n.top() > m {
			m = n.top()
		}
	}
	return m
}

// Validate checks list symmetry, sortedness and prefix agreement.
func (nw *Network) Validate() error {
	for id, n := range nw.nodes {
		for lvl := 0; lvl <= n.top(); lvl++ {
			if r := n.right[lvl]; r >= 0 {
				w, ok := nw.nodes[r]
				if !ok {
					return fmt.Errorf("skipgraph: %d right[%d] dangling -> %d", id, lvl, r)
				}
				if lvl > w.top() || w.left[lvl] != id {
					return fmt.Errorf("skipgraph: asymmetric link %d<->%d at level %d", id, r, lvl)
				}
				if w.id <= id {
					return fmt.Errorf("skipgraph: unsorted at level %d: %d -> %d", lvl, id, r)
				}
				if !match(n.mv, w.mv, lvl) {
					return fmt.Errorf("skipgraph: level-%d neighbors %d,%d disagree on prefix", lvl, id, r)
				}
			}
		}
	}
	if g := nw.Graph(); !g.Connected() {
		return fmt.Errorf("skipgraph: disconnected")
	}
	return nil
}
