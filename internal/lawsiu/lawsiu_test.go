package lawsiu

import (
	"math/rand"
	"testing"

	"repro/internal/spectral"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 3, 1); err == nil {
		t.Fatal("accepted n0=2")
	}
	if _, err := New(10, 1, 1); err == nil {
		t.Fatal("accepted d=1")
	}
}

func TestInitialStructure(t *testing.T) {
	nw, err := New(32, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Union of 3 Hamiltonian cycles: every node has multigraph degree 6.
	for _, u := range nw.Nodes() {
		if d := nw.Graph().Degree(u); d != 6 {
			t.Fatalf("degree(%d) = %d, want 6", u, d)
		}
	}
	if gap := spectral.Gap(nw.Graph()); gap < 0.05 {
		t.Fatalf("initial gap = %v (should be an expander whp)", gap)
	}
}

func TestInsertDelete(t *testing.T) {
	nw, err := New(16, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := nw.FreshID()
	if err := nw.Insert(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	c := nw.LastCost()
	if c.Messages == 0 || c.Rounds == 0 || c.TopologyChanges != 9 {
		t.Fatalf("insert cost = %+v", c)
	}
	if err := nw.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if nw.LastCost().TopologyChanges != 9 {
		t.Fatalf("delete cost = %+v", nw.LastCost())
	}
}

func TestInsertDeleteErrors(t *testing.T) {
	nw, _ := New(16, 2, 1)
	if err := nw.Insert(0, 1); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	if err := nw.Insert(nw.FreshID(), 999); err == nil {
		t.Fatal("unknown introducer accepted")
	}
	if err := nw.Delete(999); err == nil {
		t.Fatal("unknown delete accepted")
	}
}

func TestChurnKeepsCyclesIntact(t *testing.T) {
	nw, err := New(24, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
		if i%25 == 0 {
			if err := nw.Validate(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	if !nw.Graph().Connected() {
		t.Fatal("disconnected after churn")
	}
}
