// Package lawsiu implements the Law-Siu distributed expander construction
// (INFOCOM 2003), the first baseline row of the paper's Table 1: the
// overlay is the union of d random Hamiltonian cycles, so it is
// 2d-regular and an expander with probability 1 - 1/n^Theta(d) - a
// probabilistic guarantee that degrades over adversarial churn, which is
// exactly the contrast DEX draws.
//
// Insertion samples a splice position in each cycle with an O(log n)
// random walk (the decentralized approximation of uniform sampling that
// Law-Siu and Gkantsidis et al. use); deletion stitches each cycle's
// predecessor to its successor locally. Costs follow Table 1's
// accounting: O(d log n) messages and O(log n) rounds per insertion,
// O(d) per deletion, O(d) topology changes.
package lawsiu

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Cost mirrors the paper's per-operation complexity measures.
type Cost struct {
	Rounds          int
	Messages        int
	TopologyChanges int
}

// Network is a Law-Siu overlay.
type Network struct {
	d      int // number of Hamiltonian cycles
	succ   []map[graph.NodeID]graph.NodeID
	pred   []map[graph.NodeID]graph.NodeID
	g      *graph.Graph
	rng    *rand.Rand
	nextID graph.NodeID
	last   Cost
}

// New builds the initial overlay of n0 nodes (ids 0..n0-1) as d random
// Hamiltonian cycles. d >= 2; n0 >= 4.
func New(n0, d int, seed int64) (*Network, error) {
	if n0 < 4 || d < 2 {
		return nil, fmt.Errorf("lawsiu: need n0 >= 4, d >= 2 (got %d, %d)", n0, d)
	}
	nw := &Network{
		d:      d,
		rng:    rand.New(rand.NewSource(seed)),
		g:      graph.New(),
		nextID: graph.NodeID(n0),
	}
	ids := make([]graph.NodeID, n0)
	for i := range ids {
		ids[i] = graph.NodeID(i)
		nw.g.AddNode(ids[i])
	}
	for c := 0; c < d; c++ {
		perm := nw.rng.Perm(n0)
		succ := make(map[graph.NodeID]graph.NodeID, n0)
		pred := make(map[graph.NodeID]graph.NodeID, n0)
		for i := range perm {
			a := ids[perm[i]]
			b := ids[perm[(i+1)%n0]]
			succ[a] = b
			pred[b] = a
			nw.g.AddEdge(a, b)
		}
		nw.succ = append(nw.succ, succ)
		nw.pred = append(nw.pred, pred)
	}
	return nw, nil
}

// Size returns the node count.
func (nw *Network) Size() int { return nw.g.NumNodes() }

// Graph returns the live overlay (treat as read-only).
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Nodes lists node ids ascending.
func (nw *Network) Nodes() []graph.NodeID { return nw.g.Nodes() }

// FreshID returns an unused id.
func (nw *Network) FreshID() graph.NodeID {
	id := nw.nextID
	nw.nextID++
	return id
}

// LastCost returns the cost of the most recent operation.
func (nw *Network) LastCost() Cost { return nw.last }

func (nw *Network) walkLen() int {
	n := nw.Size()
	if n < 2 {
		return 1
	}
	return 4 * int(math.Ceil(math.Log2(float64(n))))
}

// Insert splices id into each cycle at a walk-sampled position; attach is
// the introducer the walks start from.
func (nw *Network) Insert(id, attach graph.NodeID) error {
	if nw.g.HasNode(id) {
		return fmt.Errorf("lawsiu: duplicate id %d", id)
	}
	if !nw.g.HasNode(attach) {
		return fmt.Errorf("lawsiu: unknown introducer %d", attach)
	}
	if id >= nw.nextID {
		nw.nextID = id + 1
	}
	nw.last = Cost{}
	nw.g.AddNode(id)
	L := nw.walkLen()
	for c := 0; c < nw.d; c++ {
		res := congest.RandomWalkDirect(nw.g, attach, id, L, nw.rng.Uint64(),
			func(graph.NodeID, int32) bool { return false })
		nw.last.Messages += res.Steps + 2
		if res.Steps > nw.last.Rounds {
			nw.last.Rounds = res.Steps // the d walks run in parallel
		}
		a := res.End
		if _, ok := nw.succ[c][a]; !ok {
			a = attach
		}
		b := nw.succ[c][a]
		nw.g.RemoveEdge(a, b)
		nw.succ[c][a] = id
		nw.pred[c][id] = a
		nw.succ[c][id] = b
		nw.pred[c][b] = id
		nw.g.AddEdge(a, id)
		nw.g.AddEdge(id, b)
		nw.last.TopologyChanges += 3
	}
	return nil
}

// Delete removes id; each cycle stitches around it.
func (nw *Network) Delete(id graph.NodeID) error {
	if !nw.g.HasNode(id) {
		return fmt.Errorf("lawsiu: unknown id %d", id)
	}
	if nw.Size() <= 4 {
		return fmt.Errorf("lawsiu: refusing to shrink below 4")
	}
	nw.last = Cost{Rounds: 1}
	for c := 0; c < nw.d; c++ {
		a, b := nw.pred[c][id], nw.succ[c][id]
		delete(nw.pred[c], id)
		delete(nw.succ[c], id)
		nw.g.RemoveEdge(a, id)
		nw.g.RemoveEdge(id, b)
		if a != id && b != id {
			nw.succ[c][a] = b
			nw.pred[c][b] = a
			nw.g.AddEdge(a, b)
		}
		nw.last.Messages += 2
		nw.last.TopologyChanges += 3
	}
	nw.g.RemoveNode(id)
	return nil
}

// Validate checks the cycle structure (tests).
func (nw *Network) Validate() error {
	n := nw.Size()
	for c := 0; c < nw.d; c++ {
		if len(nw.succ[c]) != n || len(nw.pred[c]) != n {
			return fmt.Errorf("lawsiu: cycle %d covers %d/%d nodes", c, len(nw.succ[c]), n)
		}
		for a, b := range nw.succ[c] {
			if nw.pred[c][b] != a {
				return fmt.Errorf("lawsiu: cycle %d broken at %d->%d", c, a, b)
			}
			if !nw.g.HasEdge(a, b) {
				return fmt.Errorf("lawsiu: missing edge %d-%d", a, b)
			}
		}
		// Each cycle must be a single orbit.
		start := nw.g.Nodes()[0]
		seen := 1
		for cur := nw.succ[c][start]; cur != start; cur = nw.succ[c][cur] {
			seen++
			if seen > n {
				return fmt.Errorf("lawsiu: cycle %d not a single orbit", c)
			}
		}
		if seen != n {
			return fmt.Errorf("lawsiu: cycle %d orbit %d != %d", c, seen, n)
		}
	}
	return nw.g.Validate()
}
