// Package naive implements Section 3's two strawman algorithms, used by
// the NAIVE experiment to show why DEX's design is necessary:
//
//   - Flooding: every change is flooded to all nodes, each of which holds
//     the full topology and locally recomputes the ideal expander.
//     Correct and deterministic, but Theta(n) messages per step and up to
//     Theta(n) topology changes.
//
//   - GlobalKnowledge: one node p tracks the whole topology and directs
//     repairs with O(1) messages per ordinary step - but when p itself
//     is deleted, Omega(n) words of state must be handed to a successor.
//
// Both maintain the same centrally-computed balanced p-cycle topology as
// DEX would (so expansion is ideal); only the distributed costs differ -
// which is precisely the comparison the paper's Section 3 makes.
package naive

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pcycle"
	"repro/internal/primes"
)

// Cost mirrors the per-operation complexity measures.
type Cost struct {
	Rounds          int
	Messages        int
	TopologyChanges int
}

// Kind selects the strawman variant.
type Kind int

// Variants.
const (
	Flooding Kind = iota
	GlobalKnowledge
)

// Network is a centrally recomputed p-cycle overlay with strawman cost
// accounting.
type Network struct {
	kind   Kind
	ids    []graph.NodeID
	idx    map[graph.NodeID]int
	z      *pcycle.Cycle
	g      *graph.Graph
	leader graph.NodeID // the global-knowledge node
	nextID graph.NodeID
	last   Cost
}

// New builds the initial overlay.
func New(n0 int, kind Kind) (*Network, error) {
	if n0 < 4 {
		return nil, fmt.Errorf("naive: need n0 >= 4, got %d", n0)
	}
	nw := &Network{kind: kind, idx: make(map[graph.NodeID]int), nextID: graph.NodeID(n0)}
	for i := 0; i < n0; i++ {
		nw.ids = append(nw.ids, graph.NodeID(i))
	}
	nw.leader = 0
	nw.recompute()
	nw.last = Cost{}
	return nw, nil
}

// recompute rebuilds the ideal balanced p-cycle mapping centrally.
func (nw *Network) recompute() int {
	n := len(nw.ids)
	p, ok := primes.FirstPrimeIn(int64(4*n), int64(8*n))
	if !ok {
		panic("naive: no prime")
	}
	if nw.z == nil || nw.z.P() != p {
		z, err := pcycle.New(p)
		if err != nil {
			panic(err)
		}
		nw.z = z
	}
	nw.idx = make(map[graph.NodeID]int, n)
	for i, id := range nw.ids {
		nw.idx[id] = i
	}
	owner := func(x pcycle.Vertex) graph.NodeID {
		return nw.ids[int(x*int64(n)/p)]
	}
	old := nw.g
	fresh := graph.New()
	for _, id := range nw.ids {
		fresh.AddNode(id)
	}
	for x := int64(0); x < p; x++ {
		fresh.AddEdge(owner(x), owner(nw.z.Succ(x)))
		if y := nw.z.Inv(x); y >= x {
			fresh.AddEdge(owner(x), owner(y))
		}
	}
	changes := fresh.NumEdges()
	if old != nil {
		changes += old.NumEdges()
	}
	nw.g = fresh
	return changes
}

// Size, Graph, Nodes, FreshID, LastCost implement the harness interface.
func (nw *Network) Size() int             { return len(nw.ids) }
func (nw *Network) Graph() *graph.Graph   { return nw.g }
func (nw *Network) Nodes() []graph.NodeID { return nw.g.Nodes() }
func (nw *Network) LastCost() Cost        { return nw.last }

// FreshID returns an unused id.
func (nw *Network) FreshID() graph.NodeID {
	id := nw.nextID
	nw.nextID++
	return id
}

// Insert adds id; attach is the adversary's introduction point (only
// used for validation - the recompute is global either way).
func (nw *Network) Insert(id, attach graph.NodeID) error {
	if _, dup := nw.idx[id]; dup {
		return fmt.Errorf("naive: duplicate id %d", id)
	}
	if _, ok := nw.idx[attach]; !ok {
		return fmt.Errorf("naive: unknown introducer %d", attach)
	}
	if id >= nw.nextID {
		nw.nextID = id + 1
	}
	nw.ids = append(nw.ids, id)
	nw.charge(nw.recompute(), false)
	return nil
}

// Delete removes id.
func (nw *Network) Delete(id graph.NodeID) error {
	i, ok := nw.idx[id]
	if !ok {
		return fmt.Errorf("naive: unknown id %d", id)
	}
	if len(nw.ids) <= 4 {
		return fmt.Errorf("naive: refusing to shrink below 4")
	}
	nw.ids[i] = nw.ids[len(nw.ids)-1]
	nw.ids = nw.ids[:len(nw.ids)-1]
	leaderDied := id == nw.leader
	if leaderDied {
		nw.leader = nw.ids[0]
	}
	nw.charge(nw.recompute(), leaderDied)
	return nil
}

// charge applies the variant's cost model for one step.
func (nw *Network) charge(topoChanges int, leaderDied bool) {
	n := len(nw.ids)
	diam := 2 // expander diameter ~ O(log n); flood rounds measured exactly
	if nw.kind == Flooding {
		r, m := floodCost(nw.g)
		nw.last = Cost{Rounds: r + diam, Messages: m, TopologyChanges: topoChanges}
		return
	}
	// GlobalKnowledge: O(1) notification to the leader plus directed
	// repair; leader death transfers Theta(n) state words.
	nw.last = Cost{Rounds: 3, Messages: 6, TopologyChanges: 8}
	if leaderDied {
		nw.last.Messages += 2 * n // full-topology state handover
		nw.last.Rounds += n / 8   // pipelined over a constant-degree link
		nw.last.TopologyChanges = topoChanges
	}
}

// floodCost measures a full flood on g: every node forwards once.
func floodCost(g *graph.Graph) (rounds, messages int) {
	nodes := g.Nodes()
	if len(nodes) == 0 {
		return 0, 0
	}
	src := nodes[0]
	dist := g.BFSDistances(src)
	for id, d := range dist {
		if d > rounds {
			rounds = d
		}
		fan := g.DistinctDegree(id)
		if id == src {
			messages += fan
		} else if fan > 0 {
			messages += fan - 1
		}
	}
	return rounds, messages
}
