package naive

import (
	"testing"

	"repro/internal/spectral"
)

func TestFloodingMaintainsIdealExpander(t *testing.T) {
	nw, err := New(32, Flooding)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := nw.Insert(nw.FreshID(), 0); err != nil {
			t.Fatal(err)
		}
	}
	if !nw.Graph().Connected() {
		t.Fatal("disconnected")
	}
	if gap := spectral.Gap(nw.Graph()); gap < 0.02 {
		t.Fatalf("gap = %v", gap)
	}
	if nw.LastCost().Messages < nw.Size() {
		t.Fatalf("flooding cost %d below n=%d", nw.LastCost().Messages, nw.Size())
	}
}

func TestGlobalKnowledgeCheapUntilLeaderDies(t *testing.T) {
	nw, err := New(32, GlobalKnowledge)
	if err != nil {
		t.Fatal(err)
	}
	nw.Insert(nw.FreshID(), 0)
	if nw.LastCost().Messages > 10 {
		t.Fatalf("ordinary step cost %d not O(1)", nw.LastCost().Messages)
	}
	if err := nw.Delete(0); err != nil { // leader
		t.Fatal(err)
	}
	if nw.LastCost().Messages < nw.Size() {
		t.Fatalf("handover cost %d not Omega(n)", nw.LastCost().Messages)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(2, Flooding); err == nil {
		t.Fatal("accepted tiny n0")
	}
	nw, _ := New(8, Flooding)
	if err := nw.Insert(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := nw.Insert(nw.FreshID(), 999); err == nil {
		t.Fatal("unknown introducer accepted")
	}
	if err := nw.Delete(999); err == nil {
		t.Fatal("unknown delete accepted")
	}
	for i := 0; i < 4; i++ {
		nw.Delete(nw.Nodes()[0])
	}
	if err := nw.Delete(nw.Nodes()[0]); err == nil {
		t.Fatal("shrank below minimum")
	}
}
