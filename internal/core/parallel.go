package core

import (
	"runtime"

	"repro/internal/congest"
)

// This file parallelizes type-1 recovery. The paper's walks are
// independent at the token level — each displaced vertex walks on its
// own — but the implementation's serial loop interleaves walk, commit
// (vertex movement), and the next walk, and every commit can change
// what a later walk would see. Parallelism therefore has to be
// speculative: a batch of first-attempt walks runs concurrently against
// the momentarily quiescent overlay (walk stepping and stop predicates
// are pure reads), and the results are then committed strictly in the
// serial order, each one revalidated first. A speculation is used
// verbatim only when replaying it serially would provably produce the
// identical outcome:
//
//   - its seed equals the seed the serial path draws at that point
//     (seeds come from a FIFO pre-drawn from the engine RNG in serial
//     order, so the uint64 stream consumed by walks is identical at
//     every worker count — see walkSeed);
//   - no stagger-state transition happened since the batch was taken
//     (specEpoch guards predicate shape);
//   - none of the nodes the walk visited was touched by an earlier
//     commit (markDirty doubles as the write-set recorder, and both
//     adjacency rows and every predicate input — loads, stagger
//     counters — funnel through it).
//
// Anything else falls back to re-running that one walk serially with
// the same seed, which is exactly what the serial path would have done.
// Seeded runs are therefore byte-identical at any worker count — the
// differential tests enforce History()-level equality — and Workers
// only changes wall-clock time.

// specWindowMax bounds how many first attempts are speculated per
// fork-join round; deeper speculation past a mis-speculated commit is
// mostly wasted work.
const specWindowMax = 64

// minPoolBatch is the smallest live-walk batch worth a worker handoff.
// Waking a parked worker costs on the order of ten microseconds; a
// handful of expected-O(1)-hop walks (Lemma 2's steady state) is less
// work than that, so small batches run inline on the caller. Large
// batches — wide insert windows, contender rounds, the retry tail —
// are where the pool's wall-clock win lives.
const minPoolBatch = 8

// specAttempt carries one speculative first-attempt walk into the
// serial commit path.
type specAttempt struct {
	seed      uint64
	epoch     uint64
	maxLen    int
	res       congest.WalkResult
	disturbed bool // a visited node was touched by an earlier commit
}

// walkPool lazily creates the network's worker pool. A cleanup closes
// the pool if the owner never calls Close, so abandoned networks do not
// strand parked goroutines past their own lifetime.
func (nw *Network) walkPool() *congest.WalkPool {
	if nw.pool == nil {
		nw.pool = congest.NewWalkPool(nw.workers)
		runtime.AddCleanup(nw, func(p *congest.WalkPool) { p.Close() }, nw.pool)
	}
	return nw.pool
}

// Close releases the parallel-recovery worker pool, if one was created.
// The network remains fully usable — a later parallel batch recreates
// the pool on demand — and serial networks (Workers <= 1) never need
// Close at all.
//
//dexvet:mutator
func (nw *Network) Close() {
	if nw.pool != nil {
		nw.pool.Close()
		nw.pool = nil
	}
}

// SpecStats reports the parallel path's activity over the network's
// lifetime: speculative window walks committed verbatim (hits) versus
// re-run serially after revalidation failed (misses), plus the walks
// executed by the exact retry tail (tail), which needs no
// revalidation. Purely observational — used by tests to assert the
// parallel path actually engaged, and by benchmarks to report
// speculation quality.
// FastInserts reports how many inserts committed through recoverInsert's
// degree-capped steady-state short-circuit instead of the walk ladder.
func (nw *Network) FastInserts() int { return nw.fastInserts }

func (nw *Network) SpecStats() (hits, misses, tail int) {
	return nw.specHits, nw.specMisses, nw.tailWalks
}

// predrawSeedsInto tops the seed FIFO up to k entries and returns a
// stable copy of the first k in buf (the FIFO itself is consumed by
// walkSeed during the commits). Each caller owns a distinct buf: the
// retry tail nests inside an outer window's commit loop, and the outer
// loop still reads its own seed copy afterwards.
func (nw *Network) predrawSeedsInto(buf []uint64, k int) []uint64 {
	for len(nw.seedQ)-nw.seedHead < k {
		nw.seedQ = append(nw.seedQ, nw.drawU64())
	}
	return append(buf[:0], nw.seedQ[nw.seedHead:nw.seedHead+k]...)
}

// specSlots sizes the reused walk-spec and outcome buffers for the
// orphan/member/contender windows. The retry tail has its own pair
// (tailSlots) because it runs inside these windows' commit loops.
func (nw *Network) specSlots(n int) ([]congest.WalkSpec, []congest.WalkOutcome) {
	if cap(nw.specs) < n {
		nw.specs = make([]congest.WalkSpec, n)
		nw.outs = make([]congest.WalkOutcome, n)
	}
	nw.specs = nw.specs[:n]
	nw.outs = nw.outs[:n]
	return nw.specs, nw.outs
}

// tailSlots sizes the retry tail's walk-spec and outcome buffers.
func (nw *Network) tailSlots(n int) ([]congest.WalkSpec, []congest.WalkOutcome) {
	if cap(nw.tailSpecs) < n {
		nw.tailSpecs = make([]congest.WalkSpec, n)
		nw.tailOuts = make([]congest.WalkOutcome, n)
	}
	nw.tailSpecs = nw.tailSpecs[:n]
	nw.tailOuts = nw.tailOuts[:n]
	return nw.tailSpecs, nw.tailOuts
}

// runSpecWindow computes outs[j] for every spec in specs, handing the
// worker pool only the walks that cannot resolve on their start node.
// In steady state most stop predicates accept immediately (Low spans
// most of the network, so a displaced vertex rarely walks at all), and
// a fork-join handoff for 0-step walks costs more than it saves; under
// rebuild pressure the predicates turn selective and the real
// multi-hop walks fan out. The live/compact scratch slices are shared
// across nesting levels — they are transient within one call.
func (nw *Network) runSpecWindow(specs []congest.WalkSpec, outs []congest.WalkOutcome) {
	n := len(specs)
	live := nw.liveIdx[:0]
	for j := 0; j < n; j++ {
		s := &specs[j]
		if s.Stop(s.Start, s.StartSlot) {
			outs[j].Res = congest.WalkResult{End: s.Start, Hit: true, Steps: 0}
			outs[j].Visited = append(outs[j].Visited[:0], s.StartSlot)
		} else {
			live = append(live, j)
		}
	}
	nw.liveIdx = live
	switch {
	case len(live) == 0:
	case len(live) < minPoolBatch:
		for _, j := range live {
			s := specs[j]
			outs[j].Res, outs[j].Visited = congest.RandomWalkTraceInto(
				nw.real, s.Start, s.StartSlot, s.Exclude, s.MaxLen, s.Seed, s.Stop, outs[j].Visited[:0])
		}
	case len(live) == n:
		nw.walkPool().RunBatch(nw.real, specs, outs)
	default:
		if cap(nw.liveSpecs) < len(live) {
			nw.liveSpecs = make([]congest.WalkSpec, len(live))
			nw.liveOuts = make([]congest.WalkOutcome, len(live))
		}
		ls, lo := nw.liveSpecs[:len(live)], nw.liveOuts[:len(live)]
		for i, j := range live {
			ls[i] = specs[j]
		}
		nw.walkPool().RunBatch(nw.real, ls, lo)
		for i, j := range live {
			outs[j].Res = lo[i].Res
			outs[j].Visited = append(outs[j].Visited[:0], lo[i].Visited...)
		}
	}
}

// beginSpecCommits resets and arms the touched-node recorder before a
// window's serial commits; markDirty feeds it while armed. In the
// dense store the reset is a generation bump over per-shard stamp
// columns — the map-spike clear() pathology PR 4 worked around cannot
// exist here (the oracle backend still resets through the scratch-map
// helper).
func (nw *Network) beginSpecCommits() { nw.st.armSpec() }

// specDisturbed reports whether any node the speculative walk visited
// was mutated by a commit since the batch was taken. Traces carry slots,
// so membership is a raw shard-stamp comparison per visited slot — no
// id→slot probe, no allocation. (Windows never delete nodes, so every
// trace slot still names the node the walk saw.)
func (nw *Network) specDisturbed(visited []int32) bool {
	if nw.st.specSize() == 0 {
		return false
	}
	for _, s := range visited {
		if nw.st.specHasAt(s) {
			return true
		}
	}
	return false
}

// firstAttempt consumes the serial seed for a walk's first attempt and
// uses the speculative result when it is still exactly what the serial
// path would compute, re-running the walk in place otherwise. Costs are
// charged identically either way.
func (nw *Network) firstAttempt(spec *specAttempt, start NodeID, startSlot int32, exclude NodeID, stop func(NodeID, int32) bool) congest.WalkResult {
	seed := nw.walkSeed()
	var res congest.WalkResult
	if seed == spec.seed && spec.epoch == nw.specEpoch && !spec.disturbed && spec.maxLen == nw.walkLen() {
		res = spec.res
		nw.specHits++
	} else {
		res = congest.RandomWalkDirectAt(nw.real, start, startSlot, exclude, nw.walkLen(), seed, stop)
		nw.specMisses++
	}
	nw.step.Rounds += res.Steps
	nw.step.Messages += res.Steps
	return res
}

// walkRetryTail runs up to attempts retry walks for one stuck token in
// parallel windows, returning the first hit (and how the serial retry
// loop would have charged the misses before it). It is exact without
// any revalidation: a missed walk mutates nothing — it only charges
// rounds, messages, a retry, and the coordinator notification — and
// the type-2 trigger thresholds (|Low|, |Spare|) cannot change between
// misses, so every walk in a window sees precisely the state the
// serial loop would have shown it. This is where parallelism pays most:
// when the acceptor set is scarce (rebuild pressure), serial recovery
// grinds through dozens of full-length walks per displaced vertex.
func (nw *Network) walkRetryTail(start NodeID, startSlot int32, exclude, reporter NodeID, stop func(NodeID, int32) bool, attempts int) (congest.WalkResult, bool) {
	var last congest.WalkResult
	for attempts > 0 {
		window := attempts
		if lim := 4 * nw.workers; window > lim {
			window = lim
		}
		nw.tailSeedBuf = nw.predrawSeedsInto(nw.tailSeedBuf, window)
		seeds := nw.tailSeedBuf
		maxLen := nw.walkLen()
		specs, outs := nw.tailSlots(window)
		for j := 0; j < window; j++ {
			specs[j] = congest.WalkSpec{Start: start, StartSlot: startSlot, Exclude: exclude, MaxLen: maxLen, Seed: seeds[j], Stop: stop}
		}
		nw.runSpecWindow(specs, outs)
		for j := 0; j < window; j++ {
			seed := nw.walkSeed()
			res := outs[j].Res
			if seed != seeds[j] { // defensive: cannot happen, walks own the seed stream here
				res = congest.RandomWalkDirectAt(nw.real, start, startSlot, exclude, maxLen, seed, stop)
			}
			nw.tailWalks++
			nw.step.Rounds += res.Steps
			nw.step.Messages += res.Steps
			if res.Hit {
				return res, true
			}
			nw.step.WalkRetries++
			nw.chargeCoordinatorNotify(reporter)
			last = res
			attempts--
		}
	}
	return last, false
}

// Deletion orphan batches deliberately have no intra-op first-attempt
// window: every orphan's walk starts at the adopting neighbor v, and
// every committed placement moves a vertex away from v — touching v's
// row and load — so speculation j+1 is invalidated by commit j almost
// by construction (measured hit rates ~30%, a net slowdown). The serial
// first attempt is one predicate call in the dense regime; the scarce
// regime, where walks are long and retried, is covered exactly by
// walkRetryTail. Cross-op window speculation is different: the
// pipelined façade predicts a delete's whole redistribution at Phase A
// (core.SpeculateDeletes) precisely in the dense case where no orphan
// ever leaves v, which sidesteps both the intra-op invalidation above
// and the deeper problem that the op's own adoption rewrites v's row
// and load before the walks run.

// retryContendersParallel runs one non-forced contender round with
// speculative parallel walks: every eligible contender's single walk
// fans out (the donor predicate is selective early in a deflation
// phase, so these are the engine's longest walk batches), then commits
// in serial order — hit moves a spare new vertex, miss re-queues the
// contender, exactly as contendWalk(u, false) would. Eligibility (and
// each contender's start slot, in the parallel slots array) is
// precomputed by the caller; it cannot change mid-round because donors
// are never contenders (newCount >= 2 vs == 0). The per-walk exclusions
// flow struct-of-arrays through contendExcl, read by the per-index
// prebuilt predicates — a window allocates no closures.
func (nw *Network) retryContendersParallel(eligible []NodeID, slots []int32) (still []NodeID) {
	defer nw.st.disarmSpec()
	idx := 0
	for idx < len(eligible) {
		window := len(eligible) - idx
		if window > specWindowMax {
			window = specWindowMax
		}
		if window < 2 {
			if !nw.contendWalk(eligible[idx], slots[idx], false) {
				still = append(still, eligible[idx])
			}
			idx++
			continue
		}
		nw.seedBuf = nw.predrawSeedsInto(nw.seedBuf, window)
		seeds := nw.seedBuf
		epoch := nw.specEpoch
		maxLen := nw.walkLen()
		specs, outs := nw.specSlots(window)
		for j := 0; j < window; j++ {
			u := eligible[idx+j]
			stop := nw.contendStopAt(j)
			nw.contendExcl[j] = u
			specs[j] = congest.WalkSpec{
				Start:     u,
				StartSlot: slots[idx+j],
				Exclude:   -1,
				MaxLen:    maxLen,
				Seed:      seeds[j],
				Stop:      stop,
			}
		}
		nw.runSpecWindow(specs, outs)
		nw.beginSpecCommits()
		for j := 0; j < window; j++ {
			u := eligible[idx]
			sp := &specAttempt{
				seed:      seeds[j],
				epoch:     epoch,
				maxLen:    maxLen,
				res:       outs[j].Res,
				disturbed: nw.specDisturbed(outs[j].Visited),
			}
			res := nw.firstAttempt(sp, u, slots[idx], -1, nw.contendStop(u))
			if res.Hit {
				nw.moveNewVertex(nw.st.newMax(res.End), u)
			} else {
				nw.step.WalkRetries++
				still = append(still, u)
			}
			idx++
		}
	}
	return still
}

// Insert batches likewise have no first-attempt window: the donor
// predicate (load >= 2, or its staggered refinements) is dense in
// every phase — the average load is at least 4 — so member walks
// resolve in O(1) expected hops and window machinery measured as a
// net slowdown. The retry tail in recoverInsert covers the
// pathological scarce case.
