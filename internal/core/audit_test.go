package core

import (
	"math/rand"
	"strings"
	"testing"
)

// corruptible returns a churned network plus one of its nodes with at
// least one distinct-neighbor edge to tamper with.
func corruptible(t *testing.T) (*Network, NodeID) {
	t.Helper()
	nw := mustNew(t, 16, DefaultConfig())
	churnQuiet(t, nw, 50)
	for _, u := range nw.Nodes() {
		if nw.real.DistinctDegree(u) > 0 {
			return nw, u
		}
	}
	t.Fatal("no node with edges")
	return nil, 0
}

func TestCheckNodeDetectsMissingEdge(t *testing.T) {
	nw, u := corruptible(t)
	var v NodeID = -1
	for _, w := range nw.real.Neighbors(u) {
		if w != u {
			v = w
			break
		}
	}
	if v < 0 {
		t.Fatal("no distinct neighbor")
	}
	nw.real.RemoveEdge(u, v) // corruption behind the engine's back
	if err := nw.CheckNode(u); err == nil {
		t.Fatal("node-local audit missed a missing edge")
	}
	if err := nw.Audit(AuditFull); err == nil {
		t.Fatal("full audit missed a missing edge")
	}
}

func TestCheckNodeDetectsForeignEdge(t *testing.T) {
	nw, u := corruptible(t)
	nw.real.AddEdge(u, u) // spurious self-loop
	if err := nw.CheckNode(u); err == nil {
		t.Fatal("node-local audit missed a spurious edge")
	}
}

func TestCheckNodeDetectsLoadCorruption(t *testing.T) {
	nw, u := corruptible(t)
	nw.st.corruptLoad(u, 1)
	if err := nw.CheckNode(u); err == nil {
		t.Fatal("node-local audit missed a load mismatch")
	}
}

func TestCheckNodeDetectsMappingCorruption(t *testing.T) {
	nw, u := corruptible(t)
	x := nw.st.simMin(u)
	if x < 0 {
		t.Fatal("node holds no vertex")
	}
	// Point the vertex at a different owner without moving it.
	for _, w := range nw.Nodes() {
		if w != u {
			nw.simOf[x] = w
			break
		}
	}
	if err := nw.CheckNode(u); err == nil {
		t.Fatal("node-local audit missed a Phi corruption")
	}
}

// TestSampledAuditChecksDirtyNodes verifies the sampled tier re-verifies
// exactly the nodes the last operation touched: corrupting a node's row
// and then operating on it must trip the next sampled audit.
func TestSampledAuditChecksDirtyNodes(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	churnQuiet(t, nw, 30)
	if err := nw.Audit(AuditSampled); err != nil {
		t.Fatalf("sampled audit on healthy network: %v", err)
	}
	// Insert attached at a victim, then corrupt the victim's load. The
	// next operation touching it marks it dirty, so the sampled audit
	// must examine it.
	victim := nw.Nodes()[0]
	nw.st.corruptLoad(victim, 1)
	if err := nw.Insert(nw.FreshID(), victim); err != nil {
		t.Fatal(err)
	}
	if err := nw.Audit(AuditSampled); err == nil {
		t.Fatal("sampled audit missed a corrupted dirty node")
	} else if !strings.Contains(err.Error(), "load") {
		t.Fatalf("unexpected audit error: %v", err)
	}
}

func TestAuditOffIsSilent(t *testing.T) {
	nw, u := corruptible(t)
	nw.st.corruptLoad(u, 1) // corrupted on purpose
	if err := nw.Audit(AuditOff); err != nil {
		t.Fatalf("AuditOff reported %v", err)
	}
}

func TestAuditModeStrings(t *testing.T) {
	if AuditOff.String() != "off" || AuditSampled.String() != "sampled" || AuditFull.String() != "full" {
		t.Fatalf("unexpected audit mode strings: %v %v %v", AuditOff, AuditSampled, AuditFull)
	}
}

// TestSampleNodeTracksLiveSet checks the O(1) sampler stays in sync
// with the live node set under churn, including batch deletions.
func TestSampleNodeTracksLiveSet(t *testing.T) {
	nw := mustNew(t, 24, DefaultConfig())
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		if err := traceStep(nw, rng); err != nil {
			t.Fatal(err)
		}
		if len(nw.st.nodeList) != nw.Size() {
			t.Fatalf("step %d: sampler mirror has %d entries, network %d nodes", i, len(nw.st.nodeList), nw.Size())
		}
	}
	live := make(map[NodeID]bool, nw.Size())
	for _, u := range nw.Nodes() {
		live[u] = true
	}
	for i := 0; i < 500; i++ {
		if u := nw.SampleNode(rng); !live[u] {
			t.Fatalf("sampled dead node %d", u)
		}
	}
}

// TestHistoryCapCore checks the ring semantics and Totals at the engine
// level (the dex layer re-tests via options).
func TestHistoryCapCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HistoryCap = 32
	nw := mustNew(t, 16, cfg)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if len(nw.History()) > 32 {
		t.Fatalf("history %d > cap 32", len(nw.History()))
	}
	if nw.Totals().Steps != 200 {
		t.Fatalf("Totals.Steps = %d", nw.Totals().Steps)
	}
	if got := nw.LastStep().Step; got != 200 {
		t.Fatalf("last step numbered %d, want 200", got)
	}
	if _, err := New(16, Config{Zeta: 8, Theta: 1.0 / 64, WalkFactor: 4, WalkRetryLimit: 64, HistoryCap: -1}); err == nil {
		t.Fatal("accepted negative history cap")
	}
}
