package core

import (
	"fmt"

	"repro/internal/graph"
)

// This file is the engine's per-node state store. Every piece of
// per-node bookkeeping the recovery algorithms read or write — the load
// table, the Sim(u) vertex sets, the dirty-node set, the speculative
// write-set, the O(1) sampling mirror, and the per-node staggering
// state (NewSim(u), effNew, unprocOld) — lives here, behind one small
// API, in one of two interchangeable representations:
//
//   - The dense backend (the default) is a slot-indexed columnar store
//     layered on the overlay graph's own slot table (graph.SlotOf /
//     NodeAt / SetSlotHooks): state is addressed by the node's dense
//     slot, not by hashing its id. Columns are sharded along contiguous
//     slot ranges of 1024 slots, so growth allocates a fixed-size block
//     without moving any existing column (per-slot state is pointer
//     stable for the node's lifetime), and the parallel walk pool's
//     stop predicates read per-shard arrays without touching any
//     engine-level shared map. Vertex sets are small sorted runs inside
//     a shard-local arena that recycles through multiple-of-4
//     size-class free lists — the same discipline as the graph arena —
//     so steady-state churn allocates nothing and a rebuild's transient
//     8*zeta-sized sets return their cells to the shard when it
//     commits. The dirty set and the speculation write-set are
//     generation stamps plus an append list: resetting them is a
//     counter bump, which is what finally retires PR 4's
//     overgrown-map clear() workaround for good.
//
//   - The map backend is the historical representation (Go maps keyed
//     by NodeID, nested maps for the vertex sets), kept verbatim in
//     behavior as the differential oracle: engine_equiv_test drives a
//     dense engine and a map engine through identical traces and
//     requires byte-identical History, mapping, and overlay at every
//     step and worker width. It is selected only by tests and the
//     bench-core baseline (Config.useMapState is unexported).
//
// Both backends make identical externally visible choices: every
// consumer of per-node state is order-independent (minimum, maximum,
// or an explicit sort), so representation never leaks into the seeded
// recovery outcome.

const (
	// shardBits fixes the shard granularity: 1 << shardBits contiguous
	// slots per shard. 1024 slots keeps a shard's fixed columns at
	// ~44KB — big enough that a million-node overlay needs only ~1000
	// shard pointers, small enough that sparse slot ranges don't strand
	// much memory.
	shardBits  = 10
	shardSlots = 1 << shardBits
	shardMask  = shardSlots - 1
)

// vset references one node's vertex run inside its shard's arena:
// b.buf[off:off+n] is the set, sorted ascending, with cap cells
// reserved (a multiple of 4).
type vset struct{ off, n, cap int32 }

// shard holds the columnar per-node state of one contiguous slot
// range. All columns are allocated at full shard size up front, so a
// slot's state never moves and a concurrent reader (the walk pool's
// stop predicates during a speculation batch, when no mutator runs)
// indexes fixed arrays.
type shard struct {
	load      []int32  // total load incl. staggering new vertices
	pos       []int32  // position in the sampling mirror (-1 when absent)
	dirtyAt   []uint32 // dirty-set generation stamp
	specAt    []uint32 // speculation write-set generation stamp
	pipeAt    []uint32 // pipeline-window write-set generation stamp
	sim       []vset   // Sim(u): current-cycle vertices
	nxt       []vset   // NewSim(u): next-cycle vertices while staggering
	effNew    []int32  // generated + projected new vertices (staggering)
	unprocOld []int32  // unprocessed old vertices (staggering)
	bigRun    int32    // heavy-node capacity class, ~4*zeta (see runCap)
	arena     vertexArena
}

func newShard(bigRun int32) *shard {
	sh := &shard{
		load:      make([]int32, shardSlots),
		pos:       make([]int32, shardSlots),
		dirtyAt:   make([]uint32, shardSlots),
		specAt:    make([]uint32, shardSlots),
		pipeAt:    make([]uint32, shardSlots),
		sim:       make([]vset, shardSlots),
		nxt:       make([]vset, shardSlots),
		effNew:    make([]int32, shardSlots),
		unprocOld: make([]int32, shardSlots),
		bigRun:    bigRun,
	}
	for i := range sh.pos {
		sh.pos[i] = -1
	}
	return sh
}

// runCap maps a set size to its run capacity class. The ladder is
// deliberately flat — 8 cells for the steady regime (expected loads
// are O(p/n) <= 8), one 4*zeta-sized class for heavy nodes, +8 steps
// for transient adoption spikes beyond the Lemma 3 bound — so births,
// grows, and deaths trade runs in the *same* few classes and the free
// lists satisfy essentially every request. A fine-grained +4 ladder
// measured badly here: each node's capacity frontier kept moving into
// a class nothing had released yet, so the arena carved fresh tail
// cells forever (~6KB/op of append-doubling at 10^5 nodes) while the
// abandoned classes sat parked.
func (sh *shard) runCap(n int32) int32 {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 8
	case n <= sh.bigRun:
		return sh.bigRun
	default:
		return (n + 7) &^ 7
	}
}

// vertexArena is a shard-local pool for the vertex runs, with
// multiple-of-4 size classes recycled through per-class free lists —
// the same scheme the graph arena uses for adjacency runs, scaled down
// to sets bounded by 8*zeta entries.
type vertexArena struct {
	buf       []Vertex
	free      [][]int32 // freed run offsets, indexed by capacity/4
	freeCells int
}

// alloc hands out a run of at least capn cells and returns its offset
// and true capacity. The exact size class is tried first, then larger
// classes (best-fit upward): different producers park runs in
// different classes — births grow through the 4/8/12 ladder while
// rebuild commits snug runs to their exact class — and without the
// upward fallback the starved class keeps carving fresh tail cells
// while the oversupplied one ratchets freeCells toward the compaction
// threshold (measured as ~8KB/op of amortized pool copying on steady
// 10^5-node churn). Over-granting wastes at most the class gap, which
// the vset records exactly and the next release returns whole.
func (a *vertexArena) alloc(capn int32) (off, got int32) {
	for class := int(capn / 4); class < len(a.free); class++ {
		if fl := a.free[class]; len(fl) > 0 {
			off := fl[len(fl)-1]
			a.free[class] = fl[:len(fl)-1]
			got := int32(class * 4)
			a.freeCells -= int(got)
			// Split an oversized grant and hand the tail back: without
			// this, every birth (an 8-cell request, the most frequent
			// allocation) swallows a whole big-class run, the big
			// classes starve, and growth requests carve fresh tail
			// cells forever — measured as ~900B/op of arena growth on
			// sustained 10^5-node churn windows.
			if rem := got - capn; rem >= 8 {
				a.release(off+capn, rem)
				got = capn
			}
			return off, got
		}
	}
	o := len(a.buf)
	if want := o + int(capn); cap(a.buf) >= want {
		a.buf = a.buf[:want]
	} else {
		a.buf = append(a.buf, make([]Vertex, capn)...)
	}
	return int32(o), capn
}

func (a *vertexArena) release(off, capn int32) {
	if capn == 0 {
		return
	}
	class := int(capn / 4)
	for len(a.free) <= class {
		a.free = append(a.free, nil)
	}
	a.free[class] = append(a.free[class], off)
	a.freeCells += int(capn)
}

// maybeCompact repacks the shard's arena when over half its cells sit
// on free lists, mirroring the graph arena's policy: a type-2 rebuild
// transiently doubles every set's size, and after it commits the big
// runs must not pin the pool's high-water mark. Called only at the top
// of set mutations, where no run offset is held across it.
func (sh *shard) maybeCompact() {
	a := &sh.arena
	if len(a.buf) <= 2048 || 2*a.freeCells <= len(a.buf) {
		return
	}
	total := int32(0)
	for i := range sh.sim {
		total += sh.sim[i].cap + sh.nxt[i].cap
	}
	newBuf := make([]Vertex, total, int(total)+int(total)/8+16)
	off := int32(0)
	repack := func(v *vset) {
		if v.cap == 0 {
			return
		}
		copy(newBuf[off:off+v.n], a.buf[v.off:v.off+v.n])
		v.off = off
		off += v.cap
	}
	for i := range sh.sim {
		repack(&sh.sim[i])
		repack(&sh.nxt[i])
	}
	a.buf = newBuf[:off]
	for i := range a.free {
		a.free[i] = a.free[i][:0]
	}
	a.freeCells = 0
}

// run returns the live view of a slot's vertex run.
func (sh *shard) run(col []vset, i int32) []Vertex {
	v := col[i]
	return sh.arena.buf[v.off : v.off+v.n]
}

// setAdd inserts x into the sorted run, growing through the free lists
// when full. Duplicate insertion is an engine bug and panics.
func (sh *shard) setAdd(col []vset, i int32, x Vertex) {
	sh.maybeCompact()
	v := &col[i]
	if v.n == v.cap {
		newOff, got := sh.arena.alloc(sh.runCap(v.n + 1))
		copy(sh.arena.buf[newOff:newOff+v.n], sh.arena.buf[v.off:v.off+v.n])
		sh.arena.release(v.off, v.cap)
		v.off, v.cap = newOff, got
	}
	run := sh.arena.buf[v.off : v.off+v.n+1]
	j := v.n
	for j > 0 && run[j-1] > x {
		run[j] = run[j-1]
		j--
	}
	if j > 0 && run[j-1] == x {
		panic(fmt.Sprintf("core: duplicate vertex %d in slot set", x))
	}
	run[j] = x
	v.n++
}

// setRemove deletes x from the run, panicking if absent. Runs at or
// below the bigRun class are deliberately not shrunk: a set's steady
// capacity is bounded by 4*zeta plus growth slack, churn then moves
// vertices with zero arena traffic, and the cases where capacity
// really collapses — rebuild commits and node deaths — release the
// whole run anyway (promoteNew, slotReleased). Unconditional
// shrink-on-remove measured as pure thrash: the release/alloc class
// churn kept pushing shards over the compaction threshold, costing
// ~8KB/op of amortized copying on steady 10^5-node churn. Runs
// *above* bigRun are the exception — see the snap-back below.
func (sh *shard) setRemove(col []vset, i int32, x Vertex) {
	v := &col[i]
	run := sh.arena.buf[v.off : v.off+v.n]
	j := int32(0)
	for j < v.n && run[j] != x {
		j++
	}
	if j == v.n {
		panic(fmt.Sprintf("core: removing absent vertex %d from slot set", x))
	}
	copy(run[j:], run[j+1:])
	v.n--
	// Snap back over-bigRun runs once the spike decays. Adoption spikes
	// are transient (Lemma 3), but without this the spiked capacity is
	// pinned until the node dies: every new spike then carves fresh tail
	// cells (the spike classes have nothing on their free lists), and
	// once a shard's spare capacity is gone the append reallocates the
	// whole ~600KB shard buffer — measured as ~900B/op of amortized heap
	// growth on sustained 10^5-node churn. The +4 headroom is the
	// hysteresis: a node oscillating at the class boundary needs 4 adds
	// to re-grow and 4 removes to re-shrink, so boundary traffic can't
	// thrash the free lists (plain shrink-on-remove measured that way).
	// Runs at or below bigRun are left alone, as before.
	if v.cap > sh.bigRun {
		if newCap := sh.runCap(v.n + 4); newCap < v.cap {
			newOff, got := sh.arena.alloc(newCap)
			copy(sh.arena.buf[newOff:newOff+v.n], sh.arena.buf[v.off:v.off+v.n])
			sh.arena.release(v.off, v.cap)
			v.off, v.cap = newOff, got
		}
	}
}

// setReset replaces the run with vs, which must be sorted ascending.
func (sh *shard) setReset(col []vset, i int32, vs []Vertex) {
	sh.maybeCompact()
	v := &col[i]
	newCap := sh.runCap(int32(len(vs)))
	if v.cap < newCap {
		sh.arena.release(v.off, v.cap)
		v.off, v.cap = sh.arena.alloc(newCap)
	}
	v.n = int32(len(vs))
	copy(sh.arena.buf[v.off:v.off+v.n], vs)
}

// mapState is the historical map-keyed representation, preserved as
// the differential oracle for the dense columns.
type mapState struct {
	sim       map[NodeID]map[Vertex]struct{}
	load      map[NodeID]int
	nodePos   map[NodeID]int
	dirty     map[NodeID]struct{}
	spec      map[NodeID]struct{} // non-nil while the write-set is armed
	newSim    map[NodeID]map[Vertex]struct{}
	effNew    map[NodeID]int
	unprocOld map[NodeID]int
}

// state is the store façade the engine talks to. Exactly one backend
// is active: dense columns (m == nil) or the map oracle (m != nil).
type state struct {
	g      *graph.Graph
	shards []*shard

	// nodeList mirrors the live node set in insertion order for O(1)
	// uniform sampling (both backends share it; only the id->position
	// lookup differs).
	nodeList []NodeID

	dirtyGen  uint32
	dirtyList []NodeID

	specArmed bool
	specGen   uint32
	specCount int

	// Pipeline-window write-set: a second, longer-lived stamp column that
	// records every slot touched across a whole pipelined commit window
	// (many ops), where specAt only spans one op's retry window —
	// retryContendersParallel arms and disarms spec mid-op, so the two
	// cannot share a column. Dense backend only: the pipelined façade
	// never builds map-state engines.
	pipeArmed bool
	pipeGen   uint32
	pipeCount int

	bigRun int32 // heavy-node run class handed to new shards

	m *mapState
}

// init binds the store to the engine's live overlay graph. The dense
// backend registers slot hooks so its columns grow, reset, and recycle
// in lockstep with the graph's slot table; zeta sizes the heavy-node
// run class (loads are bounded by 4*zeta outside adoption spikes).
func (st *state) init(g *graph.Graph, useMap bool, zeta int) {
	st.g = g
	st.bigRun = (int32(4*zeta) + 7) &^ 7
	if st.bigRun < 16 {
		st.bigRun = 16
	}
	if useMap {
		st.m = &mapState{
			sim:     make(map[NodeID]map[Vertex]struct{}),
			load:    make(map[NodeID]int),
			nodePos: make(map[NodeID]int),
			dirty:   make(map[NodeID]struct{}),
		}
		return
	}
	st.dirtyGen, st.specGen, st.pipeGen = 1, 1, 1
	g.SetSlotHooks(st.slotAssigned, st.slotReleased)
}

func (st *state) dense() bool { return st.m == nil }

func (st *state) shardOf(s int32) (*shard, int32) {
	return st.shards[s>>shardBits], s & shardMask
}

// slotAssigned (graph hook) makes the slot's columns exist and zero.
// It fires for slot reuse too, which is what keeps generation stamps
// from leaking a dead node's dirty/spec membership to its successor.
func (st *state) slotAssigned(_ NodeID, s int32) {
	idx := int(s >> shardBits)
	for idx >= len(st.shards) {
		st.shards = append(st.shards, nil)
	}
	sh := st.shards[idx]
	if sh == nil {
		sh = newShard(st.bigRun)
		st.shards[idx] = sh
	}
	i := s & shardMask
	sh.load[i] = 0
	sh.pos[i] = -1
	sh.dirtyAt[i], sh.specAt[i] = 0, 0
	// A slot assigned mid-pipeline-window counts as touched: pipeline
	// windows (unlike one-op speculation windows) both insert and delete
	// nodes, so a recycled slot must not look untouched to a stale
	// footprint that visited its previous occupant.
	if st.pipeArmed {
		if sh.pipeAt[i] != st.pipeGen {
			sh.pipeAt[i] = st.pipeGen
			st.pipeCount++
		}
	} else {
		sh.pipeAt[i] = 0
	}
	sh.sim[i], sh.nxt[i] = vset{}, vset{}
	sh.effNew[i], sh.unprocOld[i] = 0, 0
}

// slotReleased (graph hook) recycles the slot's vertex runs and zeroes
// its columns the moment the graph frees the slot.
func (st *state) slotReleased(_ NodeID, s int32) {
	sh, i := st.shardOf(s)
	sh.arena.release(sh.sim[i].off, sh.sim[i].cap)
	sh.arena.release(sh.nxt[i].off, sh.nxt[i].cap)
	sh.sim[i], sh.nxt[i] = vset{}, vset{}
	sh.load[i] = 0
	sh.pos[i] = -1
	sh.dirtyAt[i], sh.specAt[i] = 0, 0
	if st.pipeArmed {
		if sh.pipeAt[i] != st.pipeGen {
			sh.pipeAt[i] = st.pipeGen
			st.pipeCount++
		}
	} else {
		sh.pipeAt[i] = 0
	}
	sh.effNew[i], sh.unprocOld[i] = 0, 0
}

// --- node lifecycle ---------------------------------------------------------

// size returns the live node count.
func (st *state) size() int { return len(st.nodeList) }

// has reports whether u is a live engine node.
func (st *state) has(u NodeID) bool {
	if m := st.m; m != nil {
		_, ok := m.sim[u]
		return ok
	}
	_, ok := st.g.SlotOf(u)
	return ok
}

// addNode registers a fresh node: graph slot (dense columns via the
// hook), empty Sim set, sampling-mirror entry. The load stays 0 until
// the caller's setLoad.
func (st *state) addNode(u NodeID) {
	st.g.AddNode(u)
	if m := st.m; m != nil {
		m.sim[u] = make(map[Vertex]struct{})
		m.nodePos[u] = len(st.nodeList)
	} else {
		s, _ := st.g.SlotOf(u)
		sh, i := st.shardOf(s)
		sh.pos[i] = int32(len(st.nodeList))
	}
	st.nodeList = append(st.nodeList, u)
}

// removeNode drops u's engine state and its graph node (the slot hook
// recycles the dense columns). The caller has already moved every
// vertex away and settled the load counters.
func (st *state) removeNode(u NodeID) {
	st.mirrorRemove(u)
	if m := st.m; m != nil {
		delete(m.sim, u)
		delete(m.load, u)
		if m.newSim != nil {
			delete(m.newSim, u)
			delete(m.effNew, u)
			delete(m.unprocOld, u)
		}
	}
	st.g.RemoveNode(u)
}

func (st *state) mirrorRemove(u NodeID) {
	var i int32
	if m := st.m; m != nil {
		p, ok := m.nodePos[u]
		if !ok {
			return
		}
		i = int32(p)
		delete(m.nodePos, u)
	} else {
		s, ok := st.g.SlotOf(u)
		if !ok {
			return
		}
		sh, si := st.shardOf(s)
		i = sh.pos[si]
		if i < 0 {
			return
		}
		sh.pos[si] = -1
	}
	last := len(st.nodeList) - 1
	moved := st.nodeList[last]
	st.nodeList[i] = moved
	st.nodeList = st.nodeList[:last]
	if int(i) == last {
		return
	}
	if m := st.m; m != nil {
		m.nodePos[moved] = int(i)
	} else {
		s, _ := st.g.SlotOf(moved)
		sh, si := st.shardOf(s)
		sh.pos[si] = i
	}
}

// restoreMirror rebuilds the sampling mirror from a serialized node
// list, preserving its insertion/swap order exactly (SampleNode's draws
// depend on it). Dense backend only; the graph slots must already exist
// (DecodeBinary fired the assign hooks).
func (st *state) restoreMirror(list []NodeID) error {
	if st.m != nil {
		return fmt.Errorf("store: restoreMirror requires the dense backend")
	}
	st.nodeList = append(st.nodeList[:0], list...)
	for i, u := range list {
		s, ok := st.g.SlotOf(u)
		if !ok {
			return fmt.Errorf("store: mirror node %d has no graph slot", u)
		}
		sh, si := st.shardOf(s)
		if sh.pos[si] >= 0 {
			return fmt.Errorf("store: mirror node %d listed twice", u)
		}
		sh.pos[si] = int32(i)
	}
	return nil
}

// mirrorPos returns u's sampling-mirror position, for audits.
func (st *state) mirrorPos(u NodeID) (int, bool) {
	if m := st.m; m != nil {
		p, ok := m.nodePos[u]
		return p, ok
	}
	s, ok := st.g.SlotOf(u)
	if !ok {
		return 0, false
	}
	sh, i := st.shardOf(s)
	if sh.pos[i] < 0 {
		return 0, false
	}
	return int(sh.pos[i]), true
}

// --- load -------------------------------------------------------------------

// loadOf returns u's total load (0 for absent nodes).
func (st *state) loadOf(u NodeID) int {
	if m := st.m; m != nil {
		return m.load[u]
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		return int(sh.load[i])
	}
	return 0
}

// loadAt is loadOf with u's slot already in hand (walk stop predicates
// receive (id, slot) pairs straight from the arena's run cells, so the
// dense branch costs one shard index and zero map probes). s must be u's
// live slot; the oracle branch keys by id and ignores it.
func (st *state) loadAt(u NodeID, s int32) int {
	if m := st.m; m != nil {
		return m.load[u]
	}
	sh, i := st.shardOf(s)
	return int(sh.load[i])
}

// putLoadDirty writes u's load and marks u dirty in one slot
// resolution (the caller has decided the write is a real change).
func (st *state) putLoadDirty(u NodeID, l int) {
	if m := st.m; m != nil {
		m.load[u] = l
		st.markDirtyMap(u)
		return
	}
	s, ok := st.g.SlotOf(u)
	if !ok {
		return
	}
	sh, i := st.shardOf(s)
	sh.load[i] = int32(l)
	st.markDirtySlot(sh, i, u)
}

// putLoadDirtyAt is putLoadDirty with u's live slot already in hand (the
// steady-state vertex-move path resolves each endpoint's slot once and
// reuses it for the whole edge/load/set batch). The oracle branch keys
// by id and ignores s.
//
//dexvet:noalloc
func (st *state) putLoadDirtyAt(u NodeID, s int32, l int) {
	if m := st.m; m != nil {
		m.load[u] = l
		st.markDirtyMap(u)
		return
	}
	sh, i := st.shardOf(s)
	sh.load[i] = int32(l)
	st.markDirtySlot(sh, i, u)
}

// clearLoad drops u's load entry (node deletion; counters already
// settled by the caller).
func (st *state) clearLoad(u NodeID) {
	if m := st.m; m != nil {
		delete(m.load, u)
		return
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		sh.load[i] = 0
	}
}

// --- dirty set and speculation write-set ------------------------------------

// markDirty records that u's real-edge row or load changed this step.
// While the speculation write-set is armed it doubles as the recorder
// that revalidates parallel walk batches (see parallel.go). Nodes
// already deleted are skipped — no audit or revalidation can observe
// them (speculation windows never delete nodes).
func (st *state) markDirty(u NodeID) {
	if st.m != nil {
		st.markDirtyMap(u)
		return
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		st.markDirtySlot(sh, i, u)
	}
}

// markDirtyAt is markDirty with u's live slot already in hand (the
// slot-native edge mutators hand it down, skipping the map probe).
func (st *state) markDirtyAt(u NodeID, s int32) {
	if st.m != nil {
		st.markDirtyMap(u)
		return
	}
	sh, i := st.shardOf(s)
	st.markDirtySlot(sh, i, u)
}

func (st *state) markDirtyMap(u NodeID) {
	m := st.m
	m.dirty[u] = struct{}{}
	if st.specArmed {
		m.spec[u] = struct{}{}
	}
}

func (st *state) markDirtySlot(sh *shard, i int32, u NodeID) {
	if sh.dirtyAt[i] != st.dirtyGen {
		sh.dirtyAt[i] = st.dirtyGen
		st.dirtyList = append(st.dirtyList, u)
	}
	if st.specArmed && sh.specAt[i] != st.specGen {
		sh.specAt[i] = st.specGen
		st.specCount++
	}
	if st.pipeArmed && sh.pipeAt[i] != st.pipeGen {
		sh.pipeAt[i] = st.pipeGen
		st.pipeCount++
	}
}

// resetDirty empties the dirty set: a generation bump for the dense
// columns, the PR 4 overgrown-map reset for the oracle.
func (st *state) resetDirty() {
	if m := st.m; m != nil {
		m.dirty = resetScratchMap(m.dirty)
		return
	}
	st.dirtyList = st.dirtyList[:0]
	st.dirtyGen++
	if st.dirtyGen == 0 { // wrapped: stale stamps could alias, wipe them
		for _, sh := range st.shards {
			if sh != nil {
				clear(sh.dirtyAt)
			}
		}
		st.dirtyGen = 1
	}
}

// dirtyCount returns the number of dirty marks this step (the dense
// list may retain ids deleted later in the step; audits skip them).
func (st *state) dirtyCount() int {
	if m := st.m; m != nil {
		return len(m.dirty)
	}
	return len(st.dirtyList)
}

// forEachDirty visits the step's dirty nodes until f returns false.
// Visit order is unspecified (map order on the oracle backend) and
// part of the contract: callers aggregate or audit per node.
//
//dexvet:allow determinism oracle backend only; visit order is documented as unspecified and every caller is a per-node aggregate or audit
func (st *state) forEachDirty(f func(u NodeID) bool) {
	if m := st.m; m != nil {
		for u := range m.dirty {
			if !f(u) {
				return
			}
		}
		return
	}
	for _, u := range st.dirtyList {
		if !f(u) {
			return
		}
	}
}

// armSpec resets and arms the speculation write-set before a window's
// serial commits; markDirty feeds it while armed.
func (st *state) armSpec() {
	st.specArmed = true
	if m := st.m; m != nil {
		if m.spec == nil {
			m.spec = make(map[NodeID]struct{}, 64)
		} else {
			m.spec = resetScratchMap(m.spec)
		}
		return
	}
	st.specCount = 0
	st.specGen++
	if st.specGen == 0 {
		for _, sh := range st.shards {
			if sh != nil {
				clear(sh.specAt)
			}
		}
		st.specGen = 1
	}
}

// disarmSpec stops recording at the end of a speculation window.
func (st *state) disarmSpec() {
	st.specArmed = false
	if m := st.m; m != nil {
		m.spec = nil
	}
}

// specSize returns the number of nodes the armed write-set holds.
func (st *state) specSize() int {
	if m := st.m; m != nil {
		return len(m.spec)
	}
	return st.specCount
}

// specHas reports whether u was touched by a commit since armSpec.
func (st *state) specHas(u NodeID) bool {
	if m := st.m; m != nil {
		_, ok := m.spec[u]
		return ok
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		return sh.specAt[i] == st.specGen
	}
	return false
}

// specHasAt is specHas with the slot already in hand: a dense-branch
// stamp compare with no map probe. Callers pass slots straight out of a
// walk's visited trace; the oracle branch resolves the id from the slot
// table (reverse lookups are array reads, not map probes).
func (st *state) specHasAt(s int32) bool {
	if m := st.m; m != nil {
		u, ok := st.g.NodeAt(s)
		if !ok {
			return false
		}
		_, touched := m.spec[u]
		return touched
	}
	sh, i := st.shardOf(s)
	return sh.specAt[i] == st.specGen
}

// armPipe resets and arms the pipeline-window write-set: markDirty,
// slot assignment, and slot release feed it while armed. Dense only.
func (st *state) armPipe() {
	st.pipeArmed = true
	st.pipeCount = 0
	st.pipeGen++
	if st.pipeGen == 0 { // wrapped: stale stamps could alias, wipe them
		for _, sh := range st.shards {
			if sh != nil {
				clear(sh.pipeAt)
			}
		}
		st.pipeGen = 1
	}
}

// disarmPipe stops recording at the end of a pipelined commit window.
func (st *state) disarmPipe() { st.pipeArmed = false }

// pipeSize returns the number of slots the armed pipeline write-set holds.
func (st *state) pipeSize() int { return st.pipeCount }

// pipeHasAt reports whether slot s was touched since armPipe. Dense only;
// like specHasAt this is a single stamp compare, so revalidating a
// speculative walk's visited trace costs one array read per hop.
func (st *state) pipeHasAt(s int32) bool {
	sh, i := st.shardOf(s)
	return sh.pipeAt[i] == st.pipeGen
}

// --- vertex sets: Sim(u) current-cycle, NewSim(u) next-cycle ----------------
//
// One implementation serves both families: nxt selects the dense column
// (shard.sim vs shard.nxt) and the oracle table (mapState.sim vs
// mapState.newSim), so a fix in one family cannot silently miss its
// twin. The public simX/newX wrappers keep call sites readable.

// sets returns the selected oracle table; entries may be written
// through the returned reference (newSim exists only while a rebuild
// is staggered).
func (m *mapState) sets(nxt bool) map[NodeID]map[Vertex]struct{} {
	if nxt {
		return m.newSim
	}
	return m.sim
}

// col returns the selected dense column.
func (sh *shard) col(nxt bool) []vset {
	if nxt {
		return sh.nxt
	}
	return sh.sim
}

func (st *state) setLen(u NodeID, nxt bool) int {
	if m := st.m; m != nil {
		return len(m.sets(nxt)[u])
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		return int(sh.col(nxt)[i].n)
	}
	return 0
}

// setLenAt is setLen with u's slot already resolved (see loadAt).
func (st *state) setLenAt(u NodeID, s int32, nxt bool) int {
	if m := st.m; m != nil {
		return len(m.sets(nxt)[u])
	}
	sh, i := st.shardOf(s)
	return int(sh.col(nxt)[i].n)
}

func (st *state) setAdd(u NodeID, x Vertex, nxt bool) {
	if m := st.m; m != nil {
		tbl := m.sets(nxt)
		set := tbl[u]
		if set == nil {
			set = make(map[Vertex]struct{})
			tbl[u] = set
		}
		set[x] = struct{}{}
		return
	}
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.setAdd(sh.col(nxt), i, x)
}

func (st *state) setRemove(u NodeID, x Vertex, nxt bool) {
	if m := st.m; m != nil {
		delete(m.sets(nxt)[u], x)
		return
	}
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.setRemove(sh.col(nxt), i, x)
}

// setAddAt / setRemoveAt / setMaxAt: slot-native forms for callers that
// already hold u's live slot (see loadAt). The oracle branch keys by id.
//
//dexvet:noalloc
func (st *state) setAddAt(u NodeID, s int32, x Vertex, nxt bool) {
	if m := st.m; m != nil {
		st.setAdd(u, x, nxt)
		return
	}
	sh, i := st.shardOf(s)
	sh.setAdd(sh.col(nxt), i, x)
}

//dexvet:noalloc
func (st *state) setRemoveAt(u NodeID, s int32, x Vertex, nxt bool) {
	if m := st.m; m != nil {
		delete(m.sets(nxt)[u], x)
		return
	}
	sh, i := st.shardOf(s)
	sh.setRemove(sh.col(nxt), i, x)
}

//dexvet:noalloc
func (st *state) setMaxAt(u NodeID, s int32, nxt bool) Vertex {
	if m := st.m; m != nil {
		return st.setMax(u, nxt)
	}
	sh, i := st.shardOf(s)
	if r := sh.run(sh.col(nxt), i); len(r) > 0 {
		return r[len(r)-1]
	}
	return -1
}

func (st *state) setHas(u NodeID, x Vertex, nxt bool) bool {
	if m := st.m; m != nil {
		_, ok := m.sets(nxt)[u][x]
		return ok
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		for _, y := range sh.run(sh.col(nxt), i) {
			if y == x {
				return true
			}
			if y > x {
				break
			}
		}
	}
	return false
}

// setMin returns u's smallest vertex in the selected set, or -1.
func (st *state) setMin(u NodeID, nxt bool) Vertex {
	if m := st.m; m != nil {
		best := Vertex(-1)
		for x := range m.sets(nxt)[u] {
			if best < 0 || x < best {
				best = x
			}
		}
		return best
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		if r := sh.run(sh.col(nxt), i); len(r) > 0 {
			return r[0]
		}
	}
	return -1
}

// setMax returns u's largest vertex in the selected set, or -1.
func (st *state) setMax(u NodeID, nxt bool) Vertex {
	if m := st.m; m != nil {
		best := Vertex(-1)
		for x := range m.sets(nxt)[u] {
			if x > best {
				best = x
			}
		}
		return best
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		if r := sh.run(sh.col(nxt), i); len(r) > 0 {
			return r[len(r)-1]
		}
	}
	return -1
}

// setForEach visits the selected set until f returns false (ascending
// for the dense backend, unordered for the oracle — every caller is
// order-independent).
//
//dexvet:allow determinism oracle backend only; the dense backend visits ascending and callers are documented order-independent, which the differential oracle itself verifies
func (st *state) setForEach(u NodeID, nxt bool, f func(x Vertex) bool) {
	if m := st.m; m != nil {
		for x := range m.sets(nxt)[u] {
			if !f(x) {
				return
			}
		}
		return
	}
	s, ok := st.g.SlotOf(u)
	if !ok {
		return
	}
	sh, i := st.shardOf(s)
	for _, x := range sh.run(sh.col(nxt), i) {
		if !f(x) {
			return
		}
	}
}

// setAppend appends the selected set to buf in ascending order.
func (st *state) setAppend(u NodeID, nxt bool, buf []Vertex) []Vertex {
	if m := st.m; m != nil {
		n := len(buf)
		for x := range m.sets(nxt)[u] {
			buf = append(buf, x)
		}
		sortVertices(buf[n:])
		return buf
	}
	s, ok := st.g.SlotOf(u)
	if !ok {
		return buf
	}
	sh, i := st.shardOf(s)
	return append(buf, sh.run(sh.col(nxt), i)...)
}

// Sim(u) — the current-cycle vertex set.
func (st *state) simLen(u NodeID) int                      { return st.setLen(u, false) }
func (st *state) simAdd(u NodeID, x Vertex)                { st.setAdd(u, x, false) }
func (st *state) simRemove(u NodeID, x Vertex)             { st.setRemove(u, x, false) }
func (st *state) simHas(u NodeID, x Vertex) bool           { return st.setHas(u, x, false) }
func (st *state) simMin(u NodeID) Vertex                   { return st.setMin(u, false) }
func (st *state) simMax(u NodeID) Vertex                   { return st.setMax(u, false) }
func (st *state) simForEach(u NodeID, f func(Vertex) bool) { st.setForEach(u, false, f) }
func (st *state) simAddAt(u NodeID, s int32, x Vertex)     { st.setAddAt(u, s, x, false) }
func (st *state) simRemoveAt(u NodeID, s int32, x Vertex)  { st.setRemoveAt(u, s, x, false) }
func (st *state) simMaxAt(u NodeID, s int32) Vertex        { return st.setMaxAt(u, s, false) }
func (st *state) simAppend(u NodeID, buf []Vertex) []Vertex {
	return st.setAppend(u, false, buf)
}

// NewSim(u) — the next-cycle vertex set while a rebuild is staggered.
func (st *state) newLen(u NodeID) int                      { return st.setLen(u, true) }
func (st *state) newLenAt(u NodeID, s int32) int           { return st.setLenAt(u, s, true) }
func (st *state) newAdd(u NodeID, y Vertex)                { st.setAdd(u, y, true) }
func (st *state) newRemove(u NodeID, y Vertex)             { st.setRemove(u, y, true) }
func (st *state) newHas(u NodeID, y Vertex) bool           { return st.setHas(u, y, true) }
func (st *state) newMin(u NodeID) Vertex                   { return st.setMin(u, true) }
func (st *state) newMax(u NodeID) Vertex                   { return st.setMax(u, true) }
func (st *state) newForEach(u NodeID, f func(Vertex) bool) { st.setForEach(u, true, f) }
func (st *state) newAppend(u NodeID, buf []Vertex) []Vertex {
	return st.setAppend(u, true, buf)
}

// simReset replaces u's current-cycle set with vs (one-step rebuild
// commit). vs is sorted in place; the caller's provisional assignment
// is dead after the commit.
func (st *state) simReset(u NodeID, vs []Vertex) {
	if m := st.m; m != nil {
		set := make(map[Vertex]struct{}, len(vs))
		for _, x := range vs {
			set[x] = struct{}{}
		}
		m.sim[u] = set
		return
	}
	sortVertices(vs)
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.setReset(sh.sim, i, vs)
}

// --- staggering counters ----------------------------------------------------

// stagReset prepares the per-node staggering state for a fresh rebuild
// (the dense columns are already zero between rebuilds).
func (st *state) stagReset() {
	if m := st.m; m != nil {
		m.newSim = make(map[NodeID]map[Vertex]struct{}, st.size())
		m.effNew = make(map[NodeID]int, st.size())
		m.unprocOld = make(map[NodeID]int, st.size())
	}
}

// stagDone drops the rebuild's per-node state after the commit has
// promoted every node.
func (st *state) stagDone() {
	if m := st.m; m != nil {
		m.newSim, m.effNew, m.unprocOld = nil, nil, nil
	}
}

// promoteNew installs u's new-cycle set as its current set (staggered
// rebuild commit) and zeroes u's staggering counters.
func (st *state) promoteNew(u NodeID) {
	if m := st.m; m != nil {
		set := m.newSim[u]
		if set == nil {
			set = make(map[Vertex]struct{})
		}
		m.sim[u] = set
		return
	}
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.arena.release(sh.sim[i].off, sh.sim[i].cap)
	sh.sim[i] = sh.nxt[i]
	sh.nxt[i] = vset{}
	sh.effNew[i], sh.unprocOld[i] = 0, 0
}

func (st *state) effNewOf(u NodeID) int {
	if m := st.m; m != nil {
		return m.effNew[u]
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		return int(sh.effNew[i])
	}
	return 0
}

// effNewAt is effNewOf with u's slot already resolved (see loadAt).
func (st *state) effNewAt(u NodeID, s int32) int {
	if m := st.m; m != nil {
		return m.effNew[u]
	}
	sh, i := st.shardOf(s)
	return int(sh.effNew[i])
}

func (st *state) addEffNew(u NodeID, d int) {
	if m := st.m; m != nil {
		m.effNew[u] += d
		return
	}
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.effNew[i] += int32(d)
}

func (st *state) unprocOldOf(u NodeID) int {
	if m := st.m; m != nil {
		return m.unprocOld[u]
	}
	if s, ok := st.g.SlotOf(u); ok {
		sh, i := st.shardOf(s)
		return int(sh.unprocOld[i])
	}
	return 0
}

// unprocOldAt is unprocOldOf with u's slot already resolved (see loadAt).
func (st *state) unprocOldAt(u NodeID, s int32) int {
	if m := st.m; m != nil {
		return m.unprocOld[u]
	}
	sh, i := st.shardOf(s)
	return int(sh.unprocOld[i])
}

func (st *state) addUnprocOld(u NodeID, d int) {
	if m := st.m; m != nil {
		m.unprocOld[u] += d
		return
	}
	s, _ := st.g.SlotOf(u)
	sh, i := st.shardOf(s)
	sh.unprocOld[i] += int32(d)
}

// --- scratch-buffer API -----------------------------------------------------

// scratchMapResetCap is the live-entry count past which a per-step
// scratch map is reallocated instead of cleared. clear() on a Go map
// costs its table capacity, not its live count, and the capacity never
// shrinks — after one type-2 rebuild floods a scratch map with O(n)
// entries, every later step would pay an O(n) memclr to wipe a handful
// (at 10^5 nodes that memclr once dominated the churn profile). The
// dense store's own scratch state (dirty list, spec stamps) resets by
// generation bump and never needs this; the helper remains for the
// map-keyed scratch that survives it — the edge-delta batch, keyed by
// node pair, and the oracle backend's step maps.
const scratchMapResetCap = 1024

// resetScratchMap empties a per-step scratch map without inheriting a
// spike's table capacity (see scratchMapResetCap).
func resetScratchMap[K comparable, V any](m map[K]V) map[K]V {
	if len(m) > scratchMapResetCap {
		return make(map[K]V, 64)
	}
	clear(m)
	return m
}

// --- test/oracle snapshots --------------------------------------------------

// loadSnapshot materializes the load table (test comparisons only).
func (st *state) loadSnapshot() map[NodeID]int {
	out := make(map[NodeID]int, st.size())
	for _, u := range st.nodeList {
		out[u] = st.loadOf(u)
	}
	return out
}

// simSnapshot materializes every Sim set (test comparisons only).
func (st *state) simSnapshot() map[NodeID][]Vertex {
	out := make(map[NodeID][]Vertex, st.size())
	for _, u := range st.nodeList {
		out[u] = st.simAppend(u, nil)
	}
	return out
}

// checkCoherence verifies the store's internal bookkeeping: mirror
// sizes, backend table sizes, and (dense) slot-table agreement. Used
// by audits in place of the historical map-length cross-checks.
func (st *state) checkCoherence() error {
	if m := st.m; m != nil {
		if len(m.load) != len(m.sim) {
			return fmt.Errorf("store: load table size %d != node count %d", len(m.load), len(m.sim))
		}
		if len(m.nodePos) != len(st.nodeList) {
			return fmt.Errorf("store: mirror index size %d != mirror %d", len(m.nodePos), len(st.nodeList))
		}
		if len(m.sim) != len(st.nodeList) {
			return fmt.Errorf("store: node count %d != mirror %d", len(m.sim), len(st.nodeList))
		}
		return nil
	}
	if st.g.NumNodes() != len(st.nodeList) {
		return fmt.Errorf("store: slot table holds %d nodes, mirror %d", st.g.NumNodes(), len(st.nodeList))
	}
	return nil
}
