package core

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements Section 5: handling multiple insertions/deletions
// per adversarial step (Corollary 2). The adversary may insert or delete
// up to epsilon*n nodes at once, subject to the paper's conditions:
// at most a constant number of inserted nodes attach to any single
// existing node; deletions must leave the remainder graph connected and
// every deleted node must keep at least one surviving neighbor.
//
// The batch is recovered within a single step's metrics envelope. The
// members are processed through the same walk/type-2 ladder as single
// operations - costs simply accumulate, matching the paper's
// O(n log^2 n) messages / O(log^3 n) rounds per-batch budget, which the
// MULTI experiment verifies empirically.

// InsertSpec names one inserted node and its adversarial attach point.
type InsertSpec struct {
	ID     NodeID
	Attach NodeID
}

// maxAttachFanIn bounds how many batch members may attach to one node
// (the paper's "constant number" restriction).
const maxAttachFanIn = 8

// InsertBatch performs one adversarial step inserting all specs at once.
//
//dexvet:mutator
func (nw *Network) InsertBatch(specs []InsertSpec) error {
	if len(specs) == 0 {
		return nil
	}
	fanIn := make(map[NodeID]int)
	seen := make(map[NodeID]bool, len(specs))
	for _, s := range specs {
		if seen[s.ID] {
			return fmt.Errorf("%w: %d repeated in batch", ErrDuplicateID, s.ID)
		}
		seen[s.ID] = true
		if nw.st.has(s.ID) {
			return fmt.Errorf("%w: %d", ErrDuplicateID, s.ID)
		}
		if !nw.st.has(s.Attach) {
			return fmt.Errorf("%w: attach point %d", ErrUnknownNode, s.Attach)
		}
		fanIn[s.Attach]++
		if fanIn[s.Attach] > maxAttachFanIn {
			return fmt.Errorf("core: more than %d batch members attach to node %d", maxAttachFanIn, s.Attach)
		}
	}
	nw.beginStep(OpBatchInsert, specs[0].ID)
	for _, s := range specs {
		nw.insertOneOfBatch(s)
	}
	nw.afterRecovery(specs[0].Attach)
	nw.endStep()
	return nil
}

// insertOneOfBatch bootstraps one batch member (node + temporary attach
// edge) and runs its recovery ladder. Both endpoint slots are resolved
// once here — the newborn's straight off its bootstrap, the attach
// point's for the whole ladder — so the temporary edge, the load entry,
// and the steady-state fast-path commit all run slot-native. Slots are
// stable across everything between the two temp-edge mutations: the
// ladder moves vertices and may rebuild the virtual graph, but never
// deletes a node.
func (nw *Network) insertOneOfBatch(s InsertSpec) {
	if s.ID >= nw.nextID {
		nw.nextID = s.ID + 1
	}
	nw.addNodeEntry(s.ID)
	idSlot, _ := nw.real.SlotOf(s.ID)
	attachSlot, _ := nw.real.SlotOf(s.Attach)
	nw.setLoadAt(s.ID, idSlot, 0, true)
	nw.rebuiltReal = false
	nw.addRealEdgeAt(s.ID, idSlot, s.Attach)
	nw.recoverInsert(s.ID, s.Attach, idSlot, attachSlot)
	if !nw.rebuiltReal {
		nw.removeRealEdgeAt(s.ID, idSlot, s.Attach)
	}
}

// DeleteBatch performs one adversarial step deleting all ids at once,
// enforcing Section 5's connectivity conditions.
//
//dexvet:mutator
func (nw *Network) DeleteBatch(ids []NodeID) error {
	if len(ids) == 0 {
		return nil
	}
	victim := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		if !nw.st.has(id) {
			return fmt.Errorf("%w: %d", ErrUnknownNode, id)
		}
		if victim[id] {
			return fmt.Errorf("core: %d repeated in batch", id)
		}
		victim[id] = true
	}
	if nw.Size()-len(ids) < 4 {
		return ErrTooSmall
	}
	// The adversary may only delete node sets whose removal leaves the
	// graph connected with a surviving neighbor per victim.
	remainder := nw.real.Clone()
	for id := range victim {
		remainder.RemoveNode(id)
	}
	if !remainder.Connected() {
		return fmt.Errorf("core: batch deletion would disconnect the network")
	}
	for _, id := range ids {
		hasSurvivor := false
		for _, v := range nw.real.Neighbors(id) {
			if v != id && !victim[v] {
				hasSurvivor = true
				break
			}
		}
		if !hasSurvivor {
			return fmt.Errorf("core: victim %d has no surviving neighbor", id)
		}
	}

	nw.beginStep(OpBatchDelete, ids[0])
	for _, id := range ids {
		// Adoption by the smallest surviving non-victim neighbor.
		var v NodeID = -1
		for _, nb := range nw.real.Neighbors(id) {
			if nb != id && !victim[nb] {
				v = nb
				break
			}
		}
		if v < 0 {
			// All direct neighbors were already deleted this batch; the
			// vertices were adopted along: pick any live node adjacent in
			// the virtual structure.
			v = nw.anySurvivor(victim)
		}
		coordLost := nw.simOf[0] == id
		orphans := nw.vertexHoldings(id)
		for _, h := range orphans {
			nw.moveHolding(h, v)
		}
		nw.dropLoadEntry(id)
		nw.st.removeNode(id)
		if coordLost {
			nw.step.Messages += 2
			nw.step.Rounds++
		}
		nw.redistributeFrom(v, orphans)
		if nw.rebuiltReal {
			// A type-2 rebuild re-homed everything; later victims still
			// need their own adoption, so continue the loop.
			nw.rebuiltReal = false
		}
	}
	nw.afterRecovery(nw.anySurvivor(nil))
	nw.endStep()
	return nil
}

// anySurvivor returns the smallest live node not in the exclusion set.
func (nw *Network) anySurvivor(excl map[NodeID]bool) NodeID {
	best := NodeID(-1)
	for _, u := range nw.st.nodeList {
		if excl != nil && excl[u] {
			continue
		}
		if best < 0 || u < best {
			best = u
		}
	}
	if best < 0 {
		panic("core: no survivor")
	}
	return best
}

// NewWithMapping builds a network directly from an explicit virtual
// mapping: owner[x] is the node simulating vertex x of Z(p). Used by the
// Figure 1 reproduction and by tests that need a precise starting state.
// The mapping must be surjective onto its node set with loads <= 4*zeta.
func NewWithMapping(p int64, owner []graph.NodeID, cfg Config) (*Network, error) {
	if int64(len(owner)) != p {
		return nil, fmt.Errorf("core: owner table has %d entries, want %d", len(owner), p)
	}
	z, err := newCycleChecked(p)
	if err != nil {
		return nil, err
	}
	nw := &Network{
		cfg:   cfg,
		rng:   newRng(cfg.Seed),
		z:     z,
		simOf: append([]NodeID(nil), owner...),
	}
	nw.initTracking()
	for x := int64(0); x < p; x++ {
		u := owner[x]
		if !nw.st.has(u) {
			nw.addNodeEntry(u)
		}
		nw.st.simAdd(u, x)
		if u >= nw.nextID {
			nw.nextID = u + 1
		}
	}
	for _, u := range nw.st.nodeList {
		l := nw.st.simLen(u)
		if l > 4*cfg.Zeta {
			return nil, fmt.Errorf("core: node %d load %d exceeds 4*zeta", u, l)
		}
		nw.setLoad(u, l, true)
	}
	nw.applyRealDiff(nw.expectedRealGraph())
	nw.refreshDist0()
	return nw, nil
}
