package core

import (
	"math/rand"
	"testing"
)

// driveToDeflateStagger grows the network, then deletes until a
// staggered deflation begins.
func driveToDeflateStagger(t *testing.T, nw *Network) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	// Grow well past the current p-cycle so loads rise when we shrink.
	for i := 0; i < 900; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	// Let any inflation staggering finish first.
	for {
		if active, _ := nw.Rebuilding(); !active {
			break
		}
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20000; i++ {
		nodes := nw.Nodes()
		if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
		if active, _ := nw.Rebuilding(); active {
			if nw.stag.dir == deflateDir {
				return
			}
		}
		if nw.Size() <= 8 {
			t.Skip("network shrank to minimum before a deflation trigger")
		}
	}
	t.Fatal("no staggered deflation triggered")
}

func TestInsertionsDuringStaggeredDeflation(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 24, cfg)
	driveToDeflateStagger(t, nw)

	// Insert aggressively while the deflation is mid-flight: donations
	// must pick safe holdings and all invariants must hold each step.
	rng := rand.New(rand.NewSource(37))
	steps := 0
	for {
		active, _ := nw.Rebuilding()
		if !active {
			break
		}
		nodes := nw.Nodes()
		var err error
		if steps%3 == 0 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", steps, nw.RebuildDebug(), err)
		}
		steps++
		if steps > 50000 {
			t.Fatal("deflation never completed")
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.MaxLoad() > 4*cfg.Zeta {
		t.Fatalf("post-deflation max load %d", nw.MaxLoad())
	}
}

func TestStaggeredDeflationReducesP(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 24, cfg)
	driveToDeflateStagger(t, nw)
	pDuring := nw.P()
	rng := rand.New(rand.NewSource(41))
	for {
		active, _ := nw.Rebuilding()
		if !active {
			break
		}
		nodes := nw.Nodes()
		if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
		if nw.Size() <= 8 {
			nw.finishStaggerNow()
			break
		}
	}
	if nw.P() >= pDuring {
		t.Fatalf("deflation did not shrink p: %d -> %d", pDuring, nw.P())
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
