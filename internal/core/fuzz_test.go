package core

import (
	"errors"
	"testing"
)

// FuzzChurnTrace decodes an arbitrary byte string into a DEX operation
// trace - header (seed, mode, initial size), then one operation per
// byte pair - and replays it under the differential oracle: after every
// operation the incrementally maintained real graph must equal a shadow
// full rebuild, the sampled audit must stay silent, and the exhaustive
// CheckInvariants must hold. Run it with `make fuzz` or
//
//	go test ./internal/core -run '^$' -fuzz FuzzChurnTrace
//
// The seed corpus replays as part of the ordinary test suite, covering
// insert-heavy (inflation), delete-heavy (deflation), and batch traces
// in both recovery modes.
func FuzzChurnTrace(f *testing.F) {
	inflate := []byte{7, 1} // staggered, n0 = 8
	for i := 0; i < 120; i++ {
		inflate = append(inflate, 0, byte(i*13))
	}
	f.Add(inflate)

	deflate := []byte{3, 0}   // simplified, n0 = 8
	for i := 0; i < 40; i++ { // grow first so there is room to shrink
		deflate = append(deflate, 0, byte(i*7))
	}
	for i := 0; i < 90; i++ {
		deflate = append(deflate, 1, byte(i*11))
	}
	f.Add(deflate)

	batches := []byte{9, 21} // staggered, n0 = 10
	for i := 0; i < 60; i++ {
		batches = append(batches, byte(2+i%2), byte(i*29))
	}
	f.Add(batches)

	f.Add([]byte{0, 0})
	f.Add([]byte{255, 255, 0, 0, 1, 1, 2, 2, 3, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		cfg := DefaultConfig()
		cfg.Seed = int64(data[0]) + 1
		if data[1]&1 == 0 {
			cfg.Mode = Simplified
		}
		n0 := 8 + int(data[1]>>3) // 8..39
		nw, err := New(n0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ops := data[2:]
		if len(ops) > 400 {
			ops = ops[:400] // bound trace length so each input stays fast
		}
		for i := 0; i+1 < len(ops); i += 2 {
			applyTraceOp(t, nw, ops[i], ops[i+1])
			// The exhaustive oracle is O(p) per check; checking every
			// operation is affordable while the network is small (where
			// the mutation space lives) and a divergence never self-heals,
			// so a stride loses nothing on grown traces.
			if nw.P() > 2048 && (i/2)%8 != 0 {
				continue
			}
			if err := checkDifferentialState(nw); err != nil {
				t.Fatalf("op %d (%s): %v", i/2, nw.RebuildDebug(), err)
			}
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("op %d (%s): %v", i/2, nw.RebuildDebug(), err)
			}
		}
		if err := checkDifferentialState(nw); err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := checkEveryNode(nw); err != nil {
			t.Fatal(err)
		}
	})
}

// applyTraceOp decodes one (op, arg) byte pair into an operation.
// Decoding is deterministic, so every crashing input replays exactly.
func applyTraceOp(t *testing.T, nw *Network, op, arg byte) {
	t.Helper()
	nodes := nw.Nodes()
	pick := func(off int) NodeID { return nodes[(int(arg)+off)%len(nodes)] }
	switch op % 4 {
	case 0: // insert
		if err := nw.Insert(nw.FreshID(), pick(0)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	case 1: // delete
		if err := nw.Delete(pick(0)); err != nil && !errors.Is(err, ErrTooSmall) {
			t.Fatalf("delete %d: %v", pick(0), err)
		}
	case 2: // batch insert, distinct attach points (fan-in constraint)
		k := 1 + int(arg)%5
		specs := make([]InsertSpec, k)
		for j := range specs {
			specs[j] = InsertSpec{ID: nw.FreshID(), Attach: pick(j)}
		}
		if err := nw.InsertBatch(specs); err != nil {
			t.Fatalf("insert batch: %v", err)
		}
	case 3: // batch delete; model-illegal batches are legitimately rejected
		k := 1 + int(arg)%3
		if k > len(nodes)-4 {
			return
		}
		victims := make([]NodeID, 0, k)
		seen := make(map[NodeID]bool, k)
		for j := 0; len(victims) < k && j < len(nodes); j++ {
			v := pick(j * 7)
			if !seen[v] {
				seen[v] = true
				victims = append(victims, v)
			}
		}
		if err := nw.DeleteBatch(victims); err != nil {
			if errors.Is(err, ErrDuplicateID) || errors.Is(err, ErrUnknownNode) {
				t.Fatalf("delete batch %v: %v", victims, err)
			}
			return // connectivity/survivor/size rejection: state untouched
		}
	}
}
