package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// biasedSource is the adversarial walk-seed generator for fuzzing: a
// rand.Source64 that cycles a short window of fuzz-chosen values
// instead of a healthy stream. The engine's only RNG consumer is the
// walk-seed draw (walkSeed), so a constant window makes every retry of
// a missed walk replay the identical trajectory — the worst case the
// paper's "retry forever" argument never has to face — driving the
// engine into its retry-exhaustion ladders, deterministic fallbacks
// (fallbackRebalance, fallbackAssign, forced contender scans), and the
// orphan-rescue path, all of which must keep the differential oracle
// silent.
type biasedSource struct {
	vals []uint64
	i    int
}

// newBiasedSource decodes the window from the trace's own bytes: the
// window length comes from the header, each byte expands to an extreme
// value (0 and 255 map to the two constant-seed corners, everything
// else to a fixed splitmix expansion). Decoding is deterministic, so
// crashing inputs replay exactly.
func newBiasedSource(data []byte) *biasedSource {
	width := 1 + int(data[0]&3)
	vals := make([]uint64, 0, width)
	for i := 0; i < width; i++ {
		b := byte(0)
		if 2+i < len(data) {
			b = data[2+i]
		}
		switch b {
		case 0:
			vals = append(vals, 0)
		case 255:
			vals = append(vals, ^uint64(0))
		default:
			z := uint64(b) * 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			vals = append(vals, z^(z>>27))
		}
	}
	return &biasedSource{vals: vals}
}

func (b *biasedSource) Uint64() uint64 {
	v := b.vals[b.i%len(b.vals)]
	b.i++
	return v
}

func (b *biasedSource) Int63() int64 { return int64(b.Uint64() >> 1) }
func (b *biasedSource) Seed(int64)   {}

// FuzzChurnTrace decodes an arbitrary byte string into a DEX operation
// trace - header (seed, mode, adversarial-RNG flag, initial size),
// then one operation per byte pair - and replays it under the
// differential oracle: after every operation the incrementally
// maintained real graph must equal a shadow full rebuild, the sampled
// audit must stay silent, and the exhaustive CheckInvariants must
// hold. Setting bit 1 of the second header byte swaps the engine's
// random source for the biasedSource above, so the fuzzer also steers
// the walk seeds themselves (the ROADMAP's adversarial-RNG tier). Run
// it with `make fuzz` or
//
//	go test ./internal/core -run '^$' -fuzz FuzzChurnTrace
//
// The seed corpus replays as part of the ordinary test suite, covering
// insert-heavy (inflation), delete-heavy (deflation), batch, and
// stuck-seed traces in both recovery modes.
func FuzzChurnTrace(f *testing.F) {
	inflate := []byte{7, 1} // staggered, n0 = 8
	for i := 0; i < 120; i++ {
		inflate = append(inflate, 0, byte(i*13))
	}
	f.Add(inflate)

	deflate := []byte{3, 0}   // simplified, n0 = 8
	for i := 0; i < 40; i++ { // grow first so there is room to shrink
		deflate = append(deflate, 0, byte(i*7))
	}
	for i := 0; i < 90; i++ {
		deflate = append(deflate, 1, byte(i*11))
	}
	f.Add(deflate)

	batches := []byte{9, 21} // staggered, n0 = 10
	for i := 0; i < 60; i++ {
		batches = append(batches, byte(2+i%2), byte(i*29))
	}
	f.Add(batches)

	f.Add([]byte{0, 0})
	f.Add([]byte{255, 255, 0, 0, 1, 1, 2, 2, 3, 3})

	// Adversarial-RNG seeds: constant walk seeds (every retry replays
	// the same trajectory) in the tight-zeta regime, where the scarce
	// acceptor sets turn stuck seeds into retry exhaustion. The traces
	// grow first, then deep-crash so deflations (and the feasibility
	// floor) fire under the biased stream, in both modes.
	for _, hdr := range [][]byte{
		{0, 7, 0, 0},      // staggered, zeta=3, width-1 window of zeros
		{1, 6, 255, 255},  // simplified, zeta=3, all-ones seeds
		{2, 135, 37, 251}, // staggered, zeta=3, n0=24, mixed window
	} {
		stuck := append([]byte{}, hdr...)
		for i := 0; i < 70; i++ {
			stuck = append(stuck, 0, byte(i*13)) // grow
		}
		for i := 0; i < 130; i++ {
			stuck = append(stuck, 1, byte(i*11)) // deep crash
		}
		f.Add(stuck)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip()
		}
		cfg := DefaultConfig()
		cfg.Seed = int64(data[0]) + 1
		if data[1]&1 == 0 {
			cfg.Mode = Simplified
		}
		if data[1]&4 != 0 {
			// Tight-zeta regime: acceptor sets go scarce under churn, so
			// walks actually miss and the retry/fallback ladders (and the
			// deflation feasibility floor) see real traffic.
			cfg.Zeta = 3
		}
		n0 := 8 + int(data[1]>>3) // 8..39
		nw, err := New(n0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if data[1]&2 != 0 {
			// Adversarial RNG: the fuzzer chooses the walk-seed stream.
			// Tighter retry and walk-length caps reach the exhaustion
			// ladders sooner (a stuck seed makes every retry identical
			// anyway) and keep an adversarial exec — whose rebuild
			// fallbacks otherwise grind through epochCap*T virtual-walk
			// hops — within fuzzing's per-input time budget.
			cfg.WalkRetryLimit = 12
			cfg.WalkFactor = 2
			nw, err = New(n0, cfg)
			if err != nil {
				t.Fatal(err)
			}
			nw.SetRNG(rand.New(newBiasedSource(data)))
		}
		// Under a fuzzer-chosen random source the paper's load bounds are
		// only whp guarantees and the engine's tolerated walk-exhaustion
		// paths can overshoot them; the oracle then drops to structural
		// exactness (checkInvariants without bounds). Everything else —
		// contraction equality, surjectivity, counters, stagger
		// bookkeeping — must hold unconditionally.
		check := func(tag string) {
			if data[1]&2 != 0 && nw.walkExhaustion > 0 {
				if err := nw.checkInvariants(false); err != nil {
					t.Fatalf("%s (%s, adversarial rng): %v", tag, nw.RebuildDebug(), err)
				}
				return
			}
			if err := checkDifferentialState(nw); err != nil {
				t.Fatalf("%s (%s): %v", tag, nw.RebuildDebug(), err)
			}
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("%s (%s): %v", tag, nw.RebuildDebug(), err)
			}
		}
		ops := data[2:]
		if len(ops) > 400 {
			ops = ops[:400] // bound trace length so each input stays fast
		}
		if data[1]&2 != 0 && len(ops) > 280 {
			ops = ops[:280] // adversarial ops are far more expensive each
		}
		for i := 0; i+1 < len(ops); i += 2 {
			applyTraceOp(t, nw, ops[i], ops[i+1])
			// The exhaustive oracle is O(p) per check; checking every
			// operation is affordable while the network is small (where
			// the mutation space lives) and a divergence never self-heals,
			// so a stride loses nothing on grown traces.
			if nw.P() > 2048 && (i/2)%8 != 0 {
				continue
			}
			check(fmt.Sprintf("op %d", i/2))
		}
		check("final")
		if data[1]&2 == 0 || nw.walkExhaustion == 0 {
			if err := checkEveryNode(nw); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// applyTraceOp decodes one (op, arg) byte pair into an operation.
// Decoding is deterministic, so every crashing input replays exactly.
func applyTraceOp(t *testing.T, nw *Network, op, arg byte) {
	t.Helper()
	nodes := nw.Nodes()
	pick := func(off int) NodeID { return nodes[(int(arg)+off)%len(nodes)] }
	switch op % 4 {
	case 0: // insert
		if err := nw.Insert(nw.FreshID(), pick(0)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	case 1: // delete
		if err := nw.Delete(pick(0)); err != nil && !errors.Is(err, ErrTooSmall) {
			t.Fatalf("delete %d: %v", pick(0), err)
		}
	case 2: // batch insert, distinct attach points (fan-in constraint)
		k := 1 + int(arg)%5
		specs := make([]InsertSpec, k)
		for j := range specs {
			specs[j] = InsertSpec{ID: nw.FreshID(), Attach: pick(j)}
		}
		if err := nw.InsertBatch(specs); err != nil {
			t.Fatalf("insert batch: %v", err)
		}
	case 3: // batch delete; model-illegal batches are legitimately rejected
		k := 1 + int(arg)%3
		if k > len(nodes)-4 {
			return
		}
		victims := make([]NodeID, 0, k)
		seen := make(map[NodeID]bool, k)
		for j := 0; len(victims) < k && j < len(nodes); j++ {
			v := pick(j * 7)
			if !seen[v] {
				seen[v] = true
				victims = append(victims, v)
			}
		}
		if err := nw.DeleteBatch(victims); err != nil {
			if errors.Is(err, ErrDuplicateID) || errors.Is(err, ErrUnknownNode) {
				t.Fatalf("delete batch %v: %v", victims, err)
			}
			return // connectivity/survivor/size rejection: state untouched
		}
	}
}
