package core

import (
	"fmt"

	"repro/internal/graph"
)

// CheckInvariants validates every structural property the paper
// guarantees. It is O(p + E) and intended for tests and the harness's
// audit mode, not for per-step production use.
//
// Checked invariants:
//
//	(I1) the real graph's internal adjacency is consistent;
//	(I2) Phi is a function onto the node set: simOf and the per-node Sim
//	     sets agree, and every node simulates >= 1 vertex (Definition 2);
//	(I3) loads: load(u) = |Sim(u)| (+ new holdings during staggering),
//	     bounded by 4*zeta steady-state (Lemma 3/5) and 8*zeta during a
//	     staggered rebuild (Lemma 9(a));
//	(I4) the real graph is exactly the contraction of the current virtual
//	     structure under Phi - including, mid-rebuild, the partial new
//	     cycle and its intermediate edges;
//	(I5) the real graph is connected;
//	(I6) the coordinator's |Spare| and |Low| counters match a recount;
//	(I7) p is prime and p >= n (surjectivity requires it);
//	(I8) staggering bookkeeping (effNew, unprocOld, pending) is coherent.
func (nw *Network) CheckInvariants() error { return nw.checkInvariants(true) }

// checkInvariants is CheckInvariants with the I3 load-bound comparison
// optional. Every other property is deterministic bookkeeping; the
// 4*zeta / 8*zeta bounds are the paper's with-high-probability
// guarantees over the walk randomness, which an adversarial random
// source (the fuzzer's biasedSource) legitimately voids through the
// tolerated walk-exhaustion paths. Such runs still must keep the
// structure exact — enforceLoadBounds=false checks exactly that.
//
//dexvet:allow determinism audit-only: any violation fails the check; which of several violations is reported first is immaterial and never feeds back into engine state
func (nw *Network) checkInvariants(enforceLoadBounds bool) error {
	if err := nw.real.Validate(); err != nil {
		return fmt.Errorf("I1: %w", err)
	}
	if err := nw.st.checkCoherence(); err != nil {
		return fmt.Errorf("I3: %w", err)
	}

	// (I2) mapping consistency.
	p := nw.z.P()
	if int64(len(nw.simOf)) != p {
		return fmt.Errorf("I2: simOf length %d != p %d", len(nw.simOf), p)
	}
	for x := int64(0); x < p; x++ {
		if nw.stag != nil && nw.stag.phase == 2 && nw.stag.dropped(x) {
			continue
		}
		u := nw.simOf[x]
		if !nw.st.has(u) {
			return fmt.Errorf("I2: vertex %d mapped to unknown node %d", x, u)
		}
		if !nw.st.simHas(u, x) {
			return fmt.Errorf("I2: vertex %d not in Sim(%d)", x, u)
		}
	}
	counted := 0
	for _, u := range nw.st.nodeList {
		var stray Vertex = -1
		nw.st.simForEach(u, func(x Vertex) bool {
			if nw.simOf[x] != u {
				stray = x
				return false
			}
			return true
		})
		if stray >= 0 {
			return fmt.Errorf("I2: Sim(%d) contains %d owned by %d", u, stray, nw.simOf[stray])
		}
		counted += nw.st.simLen(u)
	}
	if nw.stag == nil && int64(counted) != p {
		return fmt.Errorf("I2: %d vertices assigned, want %d", counted, p)
	}

	// (I3) loads and bounds.
	maxLoad := 4 * nw.cfg.Zeta
	if nw.stag != nil {
		maxLoad = 8 * nw.cfg.Zeta
	}
	for _, u := range nw.st.nodeList {
		want := nw.st.simLen(u)
		if nw.stag != nil {
			want += nw.st.newLen(u)
		}
		if got := nw.st.loadOf(u); got != want {
			return fmt.Errorf("I3: load(%d) = %d, want %d", u, got, want)
		}
		if want < 1 {
			return fmt.Errorf("I3: node %d simulates nothing (surjectivity broken)", u)
		}
		if enforceLoadBounds && want > maxLoad {
			return fmt.Errorf("I3: load(%d) = %d exceeds bound %d", u, want, maxLoad)
		}
	}

	// (I4) real graph = contraction of the virtual structure.
	want := nw.expectedRealGraph()
	if err := graphsEqual(nw.real, want); err != nil {
		return fmt.Errorf("I4: %w", err)
	}

	// (I5) connectivity.
	if !nw.real.Connected() {
		return fmt.Errorf("I5: real graph disconnected (n=%d)", nw.Size())
	}

	// (I6) counter recount.
	spare, low := 0, 0
	for _, u := range nw.st.nodeList {
		l := nw.st.loadOf(u)
		if l >= 2 {
			spare++
		}
		if l <= 2*nw.cfg.Zeta {
			low++
		}
	}
	if spare != nw.nSpare || low != nw.nLow {
		return fmt.Errorf("I6: counters spare=%d/%d low=%d/%d", nw.nSpare, spare, nw.nLow, low)
	}

	// (I7) modulus sanity.
	if int64(nw.Size()) > p {
		return fmt.Errorf("I7: n=%d exceeds p=%d", nw.Size(), p)
	}

	// (I8) staggering bookkeeping.
	if s := nw.stag; s != nil {
		for _, u := range nw.st.nodeList {
			unproc, proj := 0, 0
			nw.st.simForEach(u, func(x Vertex) bool {
				if !s.processedFlag[x] {
					unproc++
					proj += s.projection(x)
				}
				return true
			})
			if got := nw.st.unprocOldOf(u); got != unproc {
				return fmt.Errorf("I8: unprocOld(%d) = %d, want %d", u, got, unproc)
			}
			if got := nw.st.effNewOf(u); got != proj+nw.st.newLen(u) {
				return fmt.Errorf("I8: effNew(%d) = %d, want %d+%d", u, got, proj, nw.st.newLen(u))
			}
		}
		for y, u := range s.newSimOf {
			if u < 0 {
				continue
			}
			if !nw.st.newHas(u, Vertex(y)) {
				return fmt.Errorf("I8: new vertex %d not in NewSim(%d)", y, u)
			}
		}
		for x, pes := range s.pending {
			if s.processedFlag[x] {
				return fmt.Errorf("I8: pending entries on processed vertex %d", x)
			}
			for _, pe := range pes {
				if s.newSimOf[pe.src] < 0 {
					return fmt.Errorf("I8: pending source %d not generated", pe.src)
				}
				if s.newSimOf[pe.dst] >= 0 {
					return fmt.Errorf("I8: pending target %d already generated", pe.dst)
				}
			}
		}
	}
	return nil
}

// --- audit tiers -------------------------------------------------------------

// AuditMode selects how much invariant checking runs after an operation.
type AuditMode int

const (
	// AuditOff performs no checking.
	AuditOff AuditMode = iota
	// AuditSampled verifies node-local invariants for every node the last
	// operation touched (capped) plus a few randomly sampled nodes, and
	// O(1) global counters. Cost tracks the operation's own footprint,
	// not the network size, so it is affordable on every step of a
	// million-node run.
	AuditSampled
	// AuditFull runs the exhaustive O(p + E) CheckInvariants.
	AuditFull
)

func (m AuditMode) String() string {
	switch m {
	case AuditSampled:
		return "sampled"
	case AuditFull:
		return "full"
	}
	return "off"
}

const (
	// auditDirtyCap bounds how many of the last step's dirty nodes a
	// sampled audit re-verifies (type-2 commits dirty O(n) nodes at once).
	auditDirtyCap = 128
	// auditSampleSize is the number of extra uniformly sampled nodes a
	// sampled audit verifies.
	auditSampleSize = 8
)

// Audit verifies the paper's invariants at the cost tier selected by
// mode. AuditFull is CheckInvariants; AuditSampled checks the nodes
// dirtied by the most recent operation (up to auditDirtyCap of them)
// plus auditSampleSize random nodes, using its own random source so the
// recovery algorithm's coin flips are untouched.
func (nw *Network) Audit(mode AuditMode) error {
	switch mode {
	case AuditOff:
		return nil
	case AuditFull:
		return nw.CheckInvariants()
	}
	if err := nw.st.checkCoherence(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if int64(nw.Size()) > nw.z.P() {
		return fmt.Errorf("audit: n=%d exceeds p=%d", nw.Size(), nw.z.P())
	}
	checked := 0
	var err error
	nw.st.forEachDirty(func(u NodeID) bool {
		if !nw.st.has(u) {
			return true // deleted this step
		}
		if err = nw.CheckNode(u); err != nil {
			return false
		}
		checked++
		return checked < auditDirtyCap
	})
	if err != nil {
		return err
	}
	for i := 0; i < auditSampleSize && len(nw.st.nodeList) > 0; i++ {
		if err := nw.CheckNode(nw.SampleNode(nw.auditRng)); err != nil {
			return err
		}
	}
	return nil
}

// CheckNode verifies every node-local invariant at u: mapping coherence
// (I2), load accounting and bounds (I3), the contraction row — u's real
// edges must equal the contraction of the virtual structure restricted
// to u (I4, node-locally), stagger bookkeeping (I8), and the sampling
// mirror. It costs O(load(u)) = O(zeta), independent of n and p.
func (nw *Network) CheckNode(u NodeID) error {
	if !nw.st.has(u) {
		return fmt.Errorf("audit: unknown node %d", u)
	}
	if i, ok := nw.st.mirrorPos(u); !ok || nw.st.nodeList[i] != u {
		return fmt.Errorf("audit: node %d missing from sampling mirror", u)
	}
	var stray Vertex = -1
	nw.st.simForEach(u, func(x Vertex) bool {
		if nw.simOf[x] != u {
			stray = x
			return false
		}
		return true
	})
	if stray >= 0 {
		return fmt.Errorf("audit: Sim(%d) contains %d owned by %d", u, stray, nw.simOf[stray])
	}
	want := nw.st.simLen(u)
	s := nw.stag
	if s != nil {
		var strayNew Vertex = -1
		nw.st.newForEach(u, func(y Vertex) bool {
			if s.newSimOf[y] != u {
				strayNew = y
				return false
			}
			return true
		})
		if strayNew >= 0 {
			return fmt.Errorf("audit: NewSim(%d) contains %d owned by %d", u, strayNew, s.newSimOf[strayNew])
		}
		want += nw.st.newLen(u)
		unproc, proj := 0, 0
		nw.st.simForEach(u, func(x Vertex) bool {
			if !s.processedFlag[x] {
				unproc++
				proj += s.projection(x)
			}
			return true
		})
		if got := nw.st.unprocOldOf(u); got != unproc {
			return fmt.Errorf("audit: unprocOld(%d) = %d, want %d", u, got, unproc)
		}
		if got := nw.st.effNewOf(u); got != proj+nw.st.newLen(u) {
			return fmt.Errorf("audit: effNew(%d) = %d, want %d+%d", u, got, proj, nw.st.newLen(u))
		}
	}
	if got := nw.st.loadOf(u); got != want {
		return fmt.Errorf("audit: load(%d) = %d, want %d", u, got, want)
	}
	if want < 1 {
		return fmt.Errorf("audit: node %d simulates nothing", u)
	}
	maxLoad := 4 * nw.cfg.Zeta
	if s != nil {
		maxLoad = 8 * nw.cfg.Zeta
	}
	if want > maxLoad {
		return fmt.Errorf("audit: load(%d) = %d exceeds bound %d", u, want, maxLoad)
	}
	row, err := nw.wantRow(u)
	if err != nil {
		return err
	}
	nbrs := nw.real.Neighbors(u)
	if len(nbrs) != len(row) {
		return fmt.Errorf("audit: node %d has %d distinct real neighbors, contraction wants %d", u, len(nbrs), len(row))
	}
	for _, v := range nbrs {
		if got, want := nw.real.Multiplicity(u, v), row[v]; got != want {
			return fmt.Errorf("audit: edge {%d,%d} multiplicity %d, contraction wants %d", u, v, got, want)
		}
	}
	return nil
}

// wantRow computes u's expected real adjacency row — the contraction of
// the virtual structure restricted to edges incident to u — in O(load(u))
// time by enumerating the edge slots of u's own vertices (old cycle,
// and, mid-rebuild, generated new vertices plus the intermediate edges
// anchored at u's unprocessed old vertices). Every non-loop virtual edge
// with both endpoints at u is enumerated from both sides, so its
// incidence count is halved; virtual self-loops are enumerated once.
// The rules mirror expectedRealGraph exactly, which the differential
// tests enforce.
func (nw *Network) wantRow(u NodeID) (map[NodeID]int, error) {
	s := nw.stag
	row := make(map[NodeID]int)
	loops, same := 0, 0
	add := func(other NodeID) {
		if other == u {
			same++
		} else {
			row[other]++
		}
	}
	nw.st.simForEach(u, func(x Vertex) bool {
		for _, t := range nw.z.NeighborSlots(x) {
			if t == x {
				loops++ // chord self-loop of the old cycle
				continue
			}
			if s != nil && s.droppedFlag[t] {
				continue
			}
			add(nw.simOf[t])
		}
		return true
	})
	if s != nil {
		resolve := func(t Vertex) NodeID {
			if v := s.newSimOf[t]; v >= 0 {
				return v // endpoint generated: direct edge
			}
			return nw.simOf[s.ownerOld(t)] // intermediate edge anchor
		}
		nw.st.newForEach(u, func(y Vertex) bool {
			add(resolve(s.zNew.Succ(y))) // successor edge, owned by y
			if yp := s.zNew.Pred(y); s.newSimOf[yp] >= 0 {
				add(s.newSimOf[yp]) // predecessor's successor edge
			}
			c := s.zNew.Inv(y)
			switch {
			case c == y:
				loops++ // chord self-loop, owned by y
			case y < c:
				add(resolve(c)) // chord owned by the smaller endpoint y
			case s.newSimOf[c] >= 0:
				add(s.newSimOf[c]) // chord owned by generated c
			}
			return true
		})
		nw.st.simForEach(u, func(x Vertex) bool {
			for _, pe := range s.pending[x] {
				add(s.newSimOf[pe.src]) // intermediate edges anchored at u
			}
			return true
		})
	}
	if same%2 != 0 {
		return nil, fmt.Errorf("audit: node %d has odd self-incidence count %d", u, same)
	}
	if l := loops + same/2; l > 0 {
		row[u] = l
	}
	return row, nil
}

// RecomputeGraph rebuilds the real overlay from the virtual structure
// from scratch and returns it: the full-rebuild oracle the differential
// tests and benchmarks compare the incrementally maintained graph
// against. It never mutates the network.
func (nw *Network) RecomputeGraph() *graph.Graph { return nw.expectedRealGraph() }

// expectedRealGraph recomputes the contraction of the current virtual
// structure from scratch (ground truth for I4).
func (nw *Network) expectedRealGraph() *graph.Graph {
	g := graph.New()
	for _, u := range nw.st.nodeList {
		g.AddNode(u)
	}
	s := nw.stag
	p := nw.z.P()
	aliveOld := func(x Vertex) bool {
		return s == nil || !s.droppedFlag[x]
	}
	for x := int64(0); x < p; x++ {
		if !aliveOld(x) {
			continue
		}
		if t := nw.z.Succ(x); aliveOld(t) {
			g.AddEdge(nw.simOf[x], nw.simOf[t])
		}
		if t := nw.z.Inv(x); t >= x && aliveOld(t) {
			g.AddEdge(nw.simOf[x], nw.simOf[t])
		}
	}
	if s == nil {
		return g
	}
	pNew := s.zNew.P()
	for y := int64(0); y < pNew; y++ {
		u := s.newSimOf[y]
		if u < 0 {
			continue
		}
		// Successor edge, owned by y.
		if t := s.zNew.Succ(y); s.newSimOf[t] >= 0 {
			g.AddEdge(u, s.newSimOf[t])
		} else {
			g.AddEdge(u, nw.simOf[s.ownerOld(t)])
		}
		// Chord, owned by the smaller endpoint (self-loops own themselves).
		t := s.zNew.Inv(y)
		switch {
		case t == y:
			g.AddEdge(u, u)
		case y < t && s.newSimOf[t] >= 0:
			g.AddEdge(u, s.newSimOf[t])
		case y < t:
			g.AddEdge(u, nw.simOf[s.ownerOld(t)])
		}
	}
	return g
}

// graphsEqual compares node sets and edge multisets.
func graphsEqual(got, want *graph.Graph) error {
	if got.NumNodes() != want.NumNodes() {
		return fmt.Errorf("node count %d != %d", got.NumNodes(), want.NumNodes())
	}
	for _, u := range want.Nodes() {
		if !got.HasNode(u) {
			return fmt.Errorf("missing node %d", u)
		}
	}
	if got.NumEdges() != want.NumEdges() {
		return fmt.Errorf("edge count %d != %d", got.NumEdges(), want.NumEdges())
	}
	for _, e := range want.Edges() {
		if got.Multiplicity(e.U, e.V) != e.Mult {
			return fmt.Errorf("edge {%d,%d} multiplicity %d != %d",
				e.U, e.V, got.Multiplicity(e.U, e.V), e.Mult)
		}
	}
	return nil
}
