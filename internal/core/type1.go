package core

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
)

// Insert handles an adversarial insertion (Algorithm 4.2): the adversary
// creates node id and attaches it to the existing node attach. DEX then
// finds a spare virtual vertex via random walks (type-1) or rebuilds the
// virtual graph (type-2) and assigns the new node at least one vertex.
//
//dexvet:mutator
func (nw *Network) Insert(id, attach NodeID) error {
	if nw.st.has(id) || nw.real.HasNode(id) {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	if !nw.st.has(attach) {
		return fmt.Errorf("%w: attach point %d", ErrUnknownNode, attach)
	}
	nw.beginStep(OpInsert, id)
	// The adversary wires u to v; insertOneOfBatch bootstraps the node
	// with that temporary edge (dropped later unless required by the
	// virtual graph, Alg 4.2 line 3) and runs the recovery ladder — the
	// identical sequence a batch member goes through.
	nw.insertOneOfBatch(InsertSpec{ID: id, Attach: attach})
	nw.afterRecovery(attach)
	nw.endStep()
	return nil
}

// recoverInsert runs the walk/retry/type-2 ladder for an insertion.
// The first attempt runs serially (the donor predicate load >= 2 is
// dense in every phase, so it resolves in O(1) expected hops); once it
// misses, the remaining retries fan out in parallel (walkRetryTail).
// Both endpoint slots arrive from insertOneOfBatch (id's from its own
// bootstrap, attach's resolved once for the whole ladder — insertion
// never deletes nodes, so both survive every retry and the tail).
func (nw *Network) recoverInsert(id, attach NodeID, idSlot, attachSlot int32) {
	// Degree-capped steady-state fast path. In the dense regime the first
	// walk stops at its own start: steadyInsertStop(attach) reduces to
	// load(attach) >= 2, tested before a single seed bit is consumed or a
	// step is taken. When that outcome is already decided — no rebuild
	// staggered, no speculated first attempt to honor, attach Spare, and
	// its degree under the cap that keeps the commit O(zeta) — short-
	// circuit: consume the serial walk seed (stream + WAL identity), then
	// donate attach's largest vertex through the fully slot-native move,
	// skipping predicate setup, walk-length computation, the walk call,
	// and the exhaustion ladder. History and mapping are byte-identical
	// to the generic path by construction; engine_equiv_test and
	// FuzzChurnTrace enforce it.
	if nw.stag == nil && nw.pipeAttempt == nil &&
		nw.st.loadAt(attach, attachSlot) >= 2 &&
		nw.real.DistinctDegreeAt(attachSlot) <= 8*nw.cfg.Zeta {
		nw.stopExclude = id // keep the predicate state exactly as insertStop leaves it
		_ = nw.walkSeed()   // 0-step walks draw nothing from the seed
		best := nw.st.simMaxAt(attach, attachSlot)
		if best < 0 {
			panic("core: donor has no vertex")
		}
		nw.fastInserts++
		nw.moveVertexAt(best, attach, id, attachSlot, idSlot)
		return
	}
	stop := nw.insertStop(id)
	for attempt := 0; attempt < nw.cfg.WalkRetryLimit; attempt++ {
		var res congest.WalkResult
		if attempt == 0 && nw.pipeAttempt != nil {
			// The pipelined façade speculated this insert's first walk
			// against the window-start state; firstAttempt consumes the
			// serial seed and keeps the result only when replaying it
			// would provably be identical (seed, epoch, walk length,
			// undisturbed footprint), re-running in place otherwise.
			sp := nw.pipeAttempt
			nw.pipeAttempt = nil
			res = nw.firstAttempt(sp, attach, attachSlot, id, stop)
		} else {
			res = nw.runWalkAt(attach, attachSlot, id, stop)
		}
		if res.Hit {
			nw.donateVertexTo(res.End, id)
			return
		}
		nw.step.WalkRetries++
		if nw.cfg.Mode == Staggered {
			// Ask the coordinator (Alg 4.7 line 8): one round trip of
			// shortest-path control messages.
			nw.chargeCoordinatorNotify(attach)
			if nw.stag == nil && float64(nw.nSpare) < 3*nw.cfg.Theta*float64(nw.Size()) {
				if nw.startStagger(inflateDir) {
					nw.step.Recovery = RecoveryInflate
					nw.step.StaggerStarted = true
					stop = nw.insertStop(id) // predicates change under staggering
				}
			}
			if nw.workers > 1 && attempt+1 < nw.cfg.WalkRetryLimit {
				// The trigger thresholds are frozen until something moves,
				// so the remaining retries can fan out in parallel.
				res, hit := nw.walkRetryTail(attach, attachSlot, id, attach, stop, nw.cfg.WalkRetryLimit-attempt-1)
				if hit {
					nw.donateVertexTo(res.End, id)
					return
				}
				break
			}
			continue
		}
		// Simplified mode: flood computeSpare (Alg 4.4), then decide.
		agg := congest.FloodAggregate(nw.real, attach, func(u graph.NodeID) int64 {
			if u != id && nw.st.loadOf(u) >= 2 {
				return 1
			}
			return 0
		})
		nw.step.Rounds += agg.Rounds
		nw.step.Messages += agg.Messages
		nw.step.Floods++
		if float64(agg.Sum) < nw.cfg.Theta*float64(nw.Size()) {
			nw.simplifiedInflate(attach, id)
			nw.step.Recovery = RecoveryInflate
			return
		}
	}
	// The retry cap exists only to surface implementation bugs; fall back
	// to a forced rebuild so the invariants survive even if it trips.
	nw.walkExhaustion++
	nw.simplifiedInflate(attach, id)
	nw.step.Recovery = RecoveryInflate
}

// insertStop returns the walk stop predicate for finding a donor for a
// newly inserted node. Every variant is prebuilt (no per-op closure):
// the excluded newborn flows through nw.stopExclude, and the rebuild
// phase through nw.stagPhase2 — both stable for the ladder's duration.
// Predicates read only slot-indexed columns via the (id, slot) pairs the
// walk hands them, so the parallel walk pool evaluates them without
// touching a shared map.
func (nw *Network) insertStop(id NodeID) func(NodeID, int32) bool {
	nw.stopExclude = id
	if nw.stag != nil {
		nw.stagPhase2 = nw.stag.phase == 2
		return nw.stagInsertStop
	}
	return nw.steadyInsertStop
}

// donateVertexTo moves one virtual vertex from donor to the new node id.
// In steady state any current-cycle vertex works (we pick the largest, so
// vertex 0 - the coordinator anchor - moves as rarely as possible).
func (nw *Network) donateVertexTo(donor, id NodeID) {
	if nw.stag != nil {
		nw.stag.donate(nw, donor, id)
		return
	}
	best := nw.st.simMax(donor)
	if best < 0 {
		panic("core: donor has no vertex")
	}
	nw.moveVertex(best, id)
}

// Delete handles an adversarial deletion (Algorithm 4.3): node id leaves;
// a surviving neighbor v adopts its virtual vertices and then
// redistributes them via random walks to nodes in Low.
//
//dexvet:mutator
func (nw *Network) Delete(id NodeID) error {
	if !nw.st.has(id) {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if nw.Size() <= 4 {
		return ErrTooSmall
	}
	nw.beginStep(OpDelete, id)

	v := nw.survivingNeighbor(id)
	coordLost := nw.simOf[0] == id

	// v attaches all of u's edges to itself: move every vertex u simulated
	// to v (Alg 4.3 line 1).
	orphans := nw.vertexHoldings(id)
	for _, h := range orphans {
		nw.moveHolding(h, v)
	}
	if nw.real.Degree(id) != 0 {
		panic("core: deleted node still has edges after adoption")
	}
	nw.dropLoadEntry(id)
	nw.st.removeNode(id)
	if coordLost {
		// Neighbors transfer the replicated coordinator state to the new
		// simulator of vertex 0 (Alg 4.7 line 2): O(1) messages.
		nw.step.Messages += 2
		nw.step.Rounds++
	}

	nw.redistributeFrom(v, orphans)
	nw.afterRecovery(v)
	nw.endStep()
	return nil
}

// survivingNeighbor picks the smallest distinct neighbor of id. It scans
// the node's arena run in place (ascending order) rather than snapshotting
// a neighbor slice.
func (nw *Network) survivingNeighbor(id NodeID) NodeID {
	found := NodeID(-1)
	nw.real.ForEachNeighbor(id, func(v NodeID, _ int) bool {
		if v != id {
			found = v
			return false
		}
		return true
	})
	if found < 0 {
		panic("core: node has no surviving neighbor")
	}
	return found
}

// holding identifies one virtual vertex a node simulates, in either the
// current cycle or (during staggering) the next one.
type holding struct {
	x     Vertex
	isNew bool
}

// vertexHoldings lists everything id simulates, deterministically
// (ascending per cycle; the store hands both runs back sorted). The
// returned slice aliases a per-network scratch buffer — it is valid
// until the next vertexHoldings call, which the strictly sequential
// delete/redistribute flow guarantees is after its last use.
func (nw *Network) vertexHoldings(id NodeID) []holding {
	hs := nw.holdScratch[:0]
	nw.vertScratch = nw.st.simAppend(id, nw.vertScratch[:0])
	for _, x := range nw.vertScratch {
		hs = append(hs, holding{x: x})
	}
	if nw.stag != nil {
		nw.vertScratch = nw.st.newAppend(id, nw.vertScratch[:0])
		for _, y := range nw.vertScratch {
			hs = append(hs, holding{x: y, isNew: true})
		}
	}
	nw.holdScratch = hs
	return hs
}

func (nw *Network) moveHolding(h holding, to NodeID) {
	if h.isNew {
		nw.moveNewVertex(h.x, to)
	} else {
		nw.moveVertex(h.x, to)
	}
}

// redistributeFrom walks each adopted vertex from v to a node in Low
// (Alg 4.3 lines 2-5), falling back to type-2 deflation per the paper.
// First attempts run serially (in the dense steady state they resolve
// on a predicate call or two); once a token starts missing, the
// remaining retries fan out across the worker pool (walkRetryTail).
func (nw *Network) redistributeFrom(v NodeID, orphans []holding) {
	for _, h := range orphans {
		if nw.redistributeOne(v, h) {
			return
		}
	}
}

// redistributeOne runs the full walk/retry/type-2 ladder for a single
// adopted holding. It reports true when a one-step type-2 rebuild fired
// (the rebuild re-homes every remaining orphan, so the caller stops).
func (nw *Network) redistributeOne(v NodeID, h holding) bool {
	stop := nw.holdingStop(h)
	// v's slot survives the ladder (redistribution moves vertices, never
	// deletes nodes), so one resolution covers every retry and the tail.
	vSlot, _ := nw.real.SlotOf(v)
	placed := false
	for attempt := 0; attempt < nw.cfg.WalkRetryLimit; attempt++ {
		var res congest.WalkResult
		if attempt == 0 && nw.pipeDel != nil {
			// The pipelined façade predicted this delete's redistribution:
			// every orphan 0-step-hits the adopter (SpeculateDeletes proved
			// load(v) + load(victim) <= 2*zeta at Phase A). The prediction
			// is shared — each orphan consumes its serial seed and keeps
			// the staged hit only while replaying it would provably be
			// identical: no stagger transition (epoch), the predicted walk
			// length, an undisturbed footprint, and the predicted adopter.
			// A 0-step hit is seed-independent, so the drawn seed needs no
			// comparison; on any mismatch the walk re-runs in place with
			// that same seed — the serial path, drained.
			sp := nw.pipeDel
			seed := nw.walkSeed()
			if sp.epoch == nw.specEpoch && !sp.disturbed &&
				sp.maxLen == nw.walkLen() && sp.res.End == v {
				res = sp.res
				nw.specHits++
			} else {
				res = congest.RandomWalkDirectAt(nw.real, v, vSlot, -1, nw.walkLen(), seed, stop)
				nw.specMisses++
			}
			nw.step.Rounds += res.Steps
			nw.step.Messages += res.Steps
		} else {
			res = nw.runWalkAt(v, vSlot, -1, stop)
		}
		if res.Hit {
			if res.End != v {
				nw.moveHolding(h, res.End)
			}
			placed = true
			break
		}
		nw.step.WalkRetries++
		if nw.cfg.Mode == Staggered {
			nw.chargeCoordinatorNotify(v)
			if nw.stag == nil && float64(nw.nLow) < 3*nw.cfg.Theta*float64(nw.Size()) {
				if nw.startStagger(deflateDir) {
					nw.step.Recovery = RecoveryDeflate
					nw.step.StaggerStarted = true
					stop = nw.holdingStop(h)
				}
			}
			if nw.workers > 1 && attempt+1 < nw.cfg.WalkRetryLimit {
				// The trigger thresholds are frozen until something moves,
				// so the remaining retries can fan out in parallel.
				res, hit := nw.walkRetryTail(v, vSlot, -1, v, stop, nw.cfg.WalkRetryLimit-attempt-1)
				if hit {
					if res.End != v {
						nw.moveHolding(h, res.End)
					}
					placed = true
				}
				break
			}
			continue
		}
		agg := congest.FloodAggregate(nw.real, v, func(u graph.NodeID) int64 {
			if nw.st.loadOf(u) <= 2*nw.cfg.Zeta {
				return 1
			}
			return 0
		})
		nw.step.Rounds += agg.Rounds
		nw.step.Messages += agg.Messages
		nw.step.Floods++
		if float64(agg.Sum) < nw.cfg.Theta*float64(nw.Size()) {
			if _, ok := nw.deflationFor(false); ok {
				// simplifiedDeflate rebuilds the whole mapping; the
				// remaining orphans are re-homed by the rebuild itself.
				nw.simplifiedDeflate(v)
				nw.step.Recovery = RecoveryDeflate
				return true
			}
			// No admissible smaller cycle (pNew would undercut n): keep
			// walking; leaving the vertex at v is safe if all retries miss.
		}
	}
	if !placed {
		nw.walkExhaustion++
		// Leaving the vertex at v is always safe (v adopted it); load
		// bounds are restored by the next rebuild.
	}
	return false
}

// holdingStop returns the stop predicate for redistributing one adopted
// holding. The acceptance thresholds are chosen so that every bound the
// paper states survives: recipients stay within Low's slack in steady
// state (Lemma 3(a)), within the 8*zeta union envelope during a rebuild,
// and - crucially - new-cycle holdings only land where the *new* count
// stays below 4*zeta, so the bound holds again the moment the rebuild
// commits (Lemma 9(a) -> Lemma 3(a) handover). Every variant is prebuilt
// in initTracking and reads only slot-indexed columns (loads, new
// counts, effNew) through the walk's (id, slot) pairs.
func (nw *Network) holdingStop(h holding) func(NodeID, int32) bool {
	s := nw.stag
	if s == nil {
		return nw.steadyLowStop // load(u) <= 2*zeta
	}
	if h.isNew {
		return nw.holdNewStop // newLen(u) < 4*zeta && load(u) < 8*zeta-1
	}
	if s.dir == inflateDir {
		if s.phase == 1 {
			// The paper proves |Low| >= theta*n throughout a staggered
			// inflation; the standard threshold applies and the cloud
			// overflow is shed when the vertex is processed.
			return nw.steadyLowStop
		}
		// Inflate phase 2: the old vertex is about to be dropped anyway.
		return nw.inflateP2Stop // load(u) <= 6*zeta
	}
	// Deflation: an old vertex may carry a dominator, so also require
	// headroom in the projected new load.
	return nw.deflateHoldStop // load(u) <= 6*zeta && effNew(u) < 4*zeta
}

// afterRecovery performs the end-of-step bookkeeping shared by insert and
// delete: coordinator counter notification, proactive threshold checks
// and one batch of staggered rebuild progress.
func (nw *Network) afterRecovery(reporter NodeID) {
	nw.chargeCoordinatorNotify(reporter)
	if nw.cfg.Mode == Staggered && nw.stag == nil {
		n := float64(nw.Size())
		if float64(nw.nSpare) < 3*nw.cfg.Theta*n {
			if nw.startStagger(inflateDir) {
				nw.step.StaggerStarted = true
				nw.step.Recovery = RecoveryInflate
			}
		} else if float64(nw.nLow) < 3*nw.cfg.Theta*n {
			if nw.startStagger(deflateDir) {
				nw.step.StaggerStarted = true
				nw.step.Recovery = RecoveryDeflate
			}
		}
	}
	if nw.stag != nil {
		nw.advanceStagger()
	}
}

func sortVertices(vs []Vertex) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
