package core

import (
	"fmt"

	"repro/internal/pcycle"
	"repro/internal/wire"
)

// This file makes the engine's full state serializable: AppendState
// writes everything a byte-identical continuation needs, RestoreNetwork
// rebuilds a live engine from it. The design leans on two facts the
// earlier PRs established:
//
//   - The engine's only RNG consumer is the walk-seed stream (walkSeed /
//     predrawSeedsInto, both through drawU64), so RNG state is exactly
//     (cfg.Seed, rngDraws, the pending seedQ suffix): a restore
//     fast-forwards a fresh source and repopulates the FIFO, and the
//     next walk sees the same uint64 the uncrashed run would have.
//
//   - Most per-node state is recomputable from the mapping: load(u) =
//     |Sim(u)| + |NewSim(u)|, the |Spare|/|Low| counters rebuild through
//     setLoad, unprocOld/effNew follow from the stagger flags by the
//     invariants audits already check, and the overlay's adjacency is
//     a function of the mapping — but the overlay's *slot table* is
//     serialized exactly (graph.AppendBinary), because slot numbering
//     and the free-slot stack determine how the columnar store addresses
//     state and must survive a restore bit-for-bit.
//
// Not serialized (and provably unobservable between steps): the
// in-flight step scratch (nw.step, dirty set, speculation buffers, spec
// counters), the audit RNG (audits never mutate engine state), and the
// arena layouts on both sides (content, not placement, is what walks
// read).

// stateVersion is the engine snapshot format version.
const stateVersion = 1

// AppendBinary serializes the step metrics onto enc. The encoding is
// shared by engine checkpoints, WAL records, and the persistence
// layer's Merkle leaves.
func (m *StepMetrics) AppendBinary(enc *wire.Encoder) {
	enc.Varint(int64(m.Step))
	enc.Uvarint(uint64(m.Op))
	enc.Varint(int64(m.Target))
	enc.Varint(int64(m.Rounds))
	enc.Varint(int64(m.Messages))
	enc.Varint(int64(m.TopologyChanges))
	enc.Uvarint(uint64(m.Recovery))
	enc.Varint(int64(m.WalkRetries))
	enc.Varint(int64(m.Floods))
	enc.Bool(m.StaggerActive)
	enc.Bool(m.StaggerStarted)
	enc.Bool(m.StaggerFinished)
	enc.Varint(int64(m.N))
	enc.Varint(m.P)
}

// DecodeBinary reads a StepMetrics serialized by AppendBinary.
func (m *StepMetrics) DecodeBinary(dec *wire.Decoder) {
	m.Step = int(dec.Varint())
	m.Op = OpKind(dec.Uvarint())
	m.Target = NodeID(dec.Varint())
	m.Rounds = int(dec.Varint())
	m.Messages = int(dec.Varint())
	m.TopologyChanges = int(dec.Varint())
	m.Recovery = RecoveryKind(dec.Uvarint())
	m.WalkRetries = int(dec.Varint())
	m.Floods = int(dec.Varint())
	m.StaggerActive = dec.Bool()
	m.StaggerStarted = dec.Bool()
	m.StaggerFinished = dec.Bool()
	m.N = int(dec.Varint())
	m.P = dec.Varint()
}

func appendTotals(enc *wire.Encoder, t *Totals) {
	enc.Varint(int64(t.Steps))
	enc.Varint(t.Rounds)
	enc.Varint(t.Messages)
	enc.Varint(t.TopologyChanges)
	enc.Varint(int64(t.MaxRounds))
	enc.Varint(int64(t.MaxMessages))
	enc.Varint(int64(t.MaxTopologyChanges))
	enc.Varint(t.WalkRetries)
	enc.Varint(t.Floods)
	enc.Varint(int64(t.InflateEvents))
	enc.Varint(int64(t.DeflateEvents))
	enc.Varint(int64(t.StaggerStarts))
	enc.Varint(int64(t.StaggerFinishes))
}

func decodeTotals(dec *wire.Decoder) Totals {
	var t Totals
	t.Steps = int(dec.Varint())
	t.Rounds = dec.Varint()
	t.Messages = dec.Varint()
	t.TopologyChanges = dec.Varint()
	t.MaxRounds = int(dec.Varint())
	t.MaxMessages = int(dec.Varint())
	t.MaxTopologyChanges = int(dec.Varint())
	t.WalkRetries = dec.Varint()
	t.Floods = dec.Varint()
	t.InflateEvents = int(dec.Varint())
	t.DeflateEvents = int(dec.Varint())
	t.StaggerStarts = int(dec.Varint())
	t.StaggerFinishes = int(dec.Varint())
	return t
}

// appendBitset packs bits LSB-first into bytes (length known to both
// sides).
func appendBitset(enc *wire.Encoder, bits []bool) {
	var cur byte
	for i, b := range bits {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			enc.Byte(cur)
			cur = 0
		}
	}
	if len(bits)&7 != 0 {
		enc.Byte(cur)
	}
}

func decodeBitset(dec *wire.Decoder, n int) []bool {
	bits := make([]bool, n)
	var cur byte
	for i := range bits {
		if i&7 == 0 {
			cur = dec.Byte()
		}
		bits[i] = cur&(1<<(i&7)) != 0
	}
	return bits
}

// AppendState serializes the engine's complete logical state onto enc.
// It must be called between operations (never from a callback). It
// fails on the map-backed oracle store and on engines whose RNG was
// replaced via SetRNG: neither has checkpointable state.
func (nw *Network) AppendState(enc *wire.Encoder) error {
	if nw.st.m != nil {
		return fmt.Errorf("core: map-backed oracle store is not checkpointable")
	}
	if nw.rngReplaced {
		return fmt.Errorf("core: RNG replaced via SetRNG; stream position unknown")
	}
	enc.Uvarint(stateVersion)
	cfg := nw.cfg
	enc.Varint(int64(cfg.Zeta))
	enc.F64(cfg.Theta)
	enc.Varint(int64(cfg.WalkFactor))
	enc.Varint(int64(cfg.WalkRetryLimit))
	enc.Uvarint(uint64(cfg.Mode))
	enc.Varint(cfg.Seed)
	enc.Varint(int64(cfg.Workers))
	enc.Varint(int64(cfg.HistoryCap))

	enc.Varint(nw.z.P())
	enc.Varint(int64(nw.nextID))
	enc.Varint(int64(nw.orphanRescues))
	enc.Varint(int64(nw.walkExhaustion))
	appendTotals(enc, &nw.totals)
	enc.Uvarint(uint64(len(nw.history)))
	for i := range nw.history {
		nw.history[i].AppendBinary(enc)
	}
	enc.U64(nw.rngDraws)
	pend := nw.seedQ[nw.seedHead:]
	enc.Uvarint(uint64(len(pend)))
	for _, s := range pend {
		enc.U64(s)
	}
	nw.real.AppendBinary(enc)
	enc.Uvarint(uint64(len(nw.st.nodeList)))
	for _, u := range nw.st.nodeList {
		enc.Varint(int64(u))
	}
	for _, u := range nw.simOf {
		enc.Varint(int64(u))
	}
	s := nw.stag
	enc.Bool(s != nil)
	if s == nil {
		return nil
	}
	enc.Uvarint(uint64(s.dir))
	enc.Varint(s.zNew.P())
	enc.Uvarint(uint64(s.phase))
	enc.Varint(s.frontier)
	enc.Varint(s.batch)
	appendBitset(enc, s.processedFlag)
	appendBitset(enc, s.droppedFlag)
	for _, u := range s.newSimOf {
		enc.Varint(int64(u))
	}
	// Pending intermediate edges, keyed by generating old vertex, in
	// ascending key order; each key's edge list keeps its append order
	// (moveVertex replays it in order).
	keys := make([]Vertex, 0, len(s.pending))
	for x := range s.pending {
		keys = append(keys, x)
	}
	sortVertices(keys)
	enc.Uvarint(uint64(len(keys)))
	for _, x := range keys {
		enc.Varint(x)
		pes := s.pending[x]
		enc.Uvarint(uint64(len(pes)))
		for _, pe := range pes {
			enc.Varint(pe.src)
			enc.Varint(pe.dst)
		}
	}
	enc.Uvarint(uint64(len(s.contenders)))
	for _, u := range s.contenders {
		enc.Varint(int64(u))
	}
	return nil
}

// RestoreNetwork rebuilds a live engine from a stream produced by
// AppendState. The restored engine continues byte-identically to the
// engine that was serialized: same History, mapping, loads, overlay,
// and walk-seed stream. workersOverride >= 0 replaces the serialized
// worker count (worker width never affects outcomes, only wall-clock);
// pass -1 to keep the stored value.
func RestoreNetwork(dec *wire.Decoder, workersOverride int) (*Network, error) {
	if v := dec.Uvarint(); dec.Err() == nil && v != stateVersion {
		return nil, fmt.Errorf("core: unknown state version %d", v)
	}
	var cfg Config
	cfg.Zeta = int(dec.Varint())
	cfg.Theta = dec.F64()
	cfg.WalkFactor = int(dec.Varint())
	cfg.WalkRetryLimit = int(dec.Varint())
	cfg.Mode = RecoveryMode(dec.Uvarint())
	cfg.Seed = dec.Varint()
	cfg.Workers = int(dec.Varint())
	cfg.HistoryCap = int(dec.Varint())
	if workersOverride >= 0 {
		cfg.Workers = workersOverride
	}

	p := dec.Varint()
	nextID := NodeID(dec.Varint())
	orphanRescues := int(dec.Varint())
	walkExhaustion := int(dec.Varint())
	totals := decodeTotals(dec)
	nHist := dec.Uvarint()
	if nHist > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("core: history length %d exceeds input", nHist)
	}
	history := make([]StepMetrics, nHist)
	for i := range history {
		history[i].DecodeBinary(dec)
	}
	rngDraws := dec.U64()
	nSeeds := dec.Uvarint()
	if nSeeds*8 > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("core: pending seed count %d exceeds input", nSeeds)
	}
	seedQ := make([]uint64, nSeeds)
	for i := range seedQ {
		seedQ[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if cfg.Zeta < 2 || cfg.Theta <= 0 || cfg.Theta > 0.5 || cfg.WalkFactor < 1 ||
		cfg.HistoryCap < 0 || cfg.Workers < 0 || cfg.Mode > Staggered {
		return nil, fmt.Errorf("core: invalid restored config %+v", cfg)
	}
	z, err := pcycle.New(p)
	if err != nil {
		return nil, fmt.Errorf("core: restored modulus: %w", err)
	}
	nw := &Network{
		cfg:    cfg,
		rng:    newRng(cfg.Seed),
		z:      z,
		nextID: nextID,
	}
	nw.initTracking()
	if err := nw.real.DecodeBinary(dec); err != nil {
		return nil, fmt.Errorf("core: restoring overlay: %w", err)
	}
	nNodes := dec.Uvarint()
	if nNodes > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("core: node count %d exceeds input", nNodes)
	}
	nodeList := make([]NodeID, nNodes)
	for i := range nodeList {
		nodeList[i] = NodeID(dec.Varint())
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if int(nNodes) != nw.real.NumNodes() {
		return nil, fmt.Errorf("core: node list holds %d nodes, overlay %d", nNodes, nw.real.NumNodes())
	}
	if err := nw.st.restoreMirror(nodeList); err != nil {
		return nil, err
	}
	if uint64(p) > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("core: mapping length %d exceeds input", p)
	}
	nw.simOf = make([]NodeID, p)
	for x := range nw.simOf {
		nw.simOf[x] = NodeID(dec.Varint())
	}
	var stag *stagger
	if dec.Bool() {
		s := &stagger{pending: make(map[Vertex][]pendEdge)}
		s.dir = stagDirection(dec.Uvarint())
		pNew := dec.Varint()
		s.phase = int(dec.Uvarint())
		s.frontier = dec.Varint()
		s.batch = dec.Varint()
		if err := dec.Err(); err != nil {
			return nil, err
		}
		if s.dir != inflateDir && s.dir != deflateDir {
			return nil, fmt.Errorf("core: bad stagger direction %d", s.dir)
		}
		if s.phase != 1 && s.phase != 2 {
			return nil, fmt.Errorf("core: bad stagger phase %d", s.phase)
		}
		if s.frontier < 0 || s.frontier > p || s.batch < 1 {
			return nil, fmt.Errorf("core: bad stagger schedule frontier=%d batch=%d", s.frontier, s.batch)
		}
		// The in-flight maps are rebuilt as literals from the stored
		// primes: NewDeflationFloor's admissibility floor depended on the
		// node count when the rebuild started, so recomputing it here
		// could legally pick a different prime — the stored pNew is the
		// truth.
		if s.dir == inflateDir {
			s.inf = pcycle.Inflation{POld: p, PNew: pNew}
		} else {
			s.def = pcycle.Deflation{POld: p, PNew: pNew}
		}
		zNew, err := pcycle.New(pNew)
		if err != nil {
			return nil, fmt.Errorf("core: restored rebuild modulus: %w", err)
		}
		s.zNew = zNew
		if uint64(2*((p+7)/8)) > uint64(dec.Remaining()) {
			return nil, fmt.Errorf("core: stagger flags exceed input")
		}
		s.processedFlag = decodeBitset(dec, int(p))
		s.droppedFlag = decodeBitset(dec, int(p))
		if uint64(pNew) > uint64(dec.Remaining()) {
			return nil, fmt.Errorf("core: new mapping length %d exceeds input", pNew)
		}
		s.newSimOf = make([]NodeID, pNew)
		for y := range s.newSimOf {
			s.newSimOf[y] = NodeID(dec.Varint())
		}
		nPend := dec.Uvarint()
		if nPend > uint64(dec.Remaining()) {
			return nil, fmt.Errorf("core: pending-edge count %d exceeds input", nPend)
		}
		for i := uint64(0); i < nPend; i++ {
			x := dec.Varint()
			nes := dec.Uvarint()
			if nes > uint64(dec.Remaining()) {
				return nil, fmt.Errorf("core: pending-edge list length %d exceeds input", nes)
			}
			if dec.Err() != nil {
				return nil, dec.Err()
			}
			if x < 0 || x >= p {
				return nil, fmt.Errorf("core: pending key %d out of range", x)
			}
			pes := make([]pendEdge, nes)
			for j := range pes {
				pes[j].src = dec.Varint()
				pes[j].dst = dec.Varint()
				if dec.Err() == nil && (pes[j].src < 0 || pes[j].src >= pNew ||
					pes[j].dst < 0 || pes[j].dst >= pNew) {
					return nil, fmt.Errorf("core: pending edge {%d,%d} out of range", pes[j].src, pes[j].dst)
				}
			}
			s.pending[x] = pes
		}
		nCont := dec.Uvarint()
		if nCont > uint64(dec.Remaining()) {
			return nil, fmt.Errorf("core: contender count %d exceeds input", nCont)
		}
		s.contenders = make([]NodeID, nCont)
		for i := range s.contenders {
			s.contenders[i] = NodeID(dec.Varint())
		}
		stag = s
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}

	// Rebuild the derived per-node state from the mapping. Sim sets:
	// every vertex of the current cycle lives at simOf[x], except those
	// already dropped by a phase-2 rebuild (dropOldVertex removes the set
	// entry but deliberately leaves simOf[x] stale).
	for x, u := range nw.simOf {
		if stag != nil && stag.droppedFlag[x] {
			continue
		}
		if !nw.st.has(u) {
			return nil, fmt.Errorf("core: vertex %d mapped to dead node %d", x, u)
		}
		nw.st.simAdd(u, Vertex(x))
	}
	if stag != nil {
		nw.st.stagReset()
		for y, u := range stag.newSimOf {
			if u < 0 {
				continue
			}
			if !nw.st.has(u) {
				return nil, fmt.Errorf("core: new vertex %d mapped to dead node %d", y, u)
			}
			nw.st.newAdd(u, Vertex(y))
		}
		// unprocOld / effNew follow from the flags by the engine's own
		// invariants: unprocOld(u) counts u's unprocessed holdings, and
		// effNew(u) = |NewSim(u)| + the projected clouds of those
		// holdings (what processing them will generate at u).
		for _, u := range nw.st.nodeList {
			unproc, proj := 0, 0
			nw.st.simForEach(u, func(x Vertex) bool {
				if !stag.processedFlag[x] {
					unproc++
					proj += stag.projection(x)
				}
				return true
			})
			if unproc != 0 {
				nw.st.addUnprocOld(u, unproc)
			}
			if d := proj + nw.st.newLen(u); d != 0 {
				nw.st.addEffNew(u, d)
			}
		}
	}
	for _, u := range nw.st.nodeList {
		nw.setLoad(u, nw.st.simLen(u)+nw.st.newLen(u), true)
	}
	nw.stag = stag
	nw.refreshDist0()

	// RNG: fast-forward a fresh source to the recorded stream position,
	// then restore the pre-drawn FIFO suffix.
	for i := uint64(0); i < rngDraws; i++ {
		nw.rng.Uint64()
	}
	nw.rngDraws = rngDraws
	if len(seedQ) > 0 {
		nw.seedQ = seedQ
	}
	nw.totals = totals
	nw.history = history
	nw.orphanRescues = orphanRescues
	nw.walkExhaustion = walkExhaustion
	return nw, nil
}
