package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/spectral"
)

func mustNew(t testing.TB, n0 int, cfg Config) *Network {
	t.Helper()
	nw, err := New(n0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("initial invariants: %v", err)
	}
	return nw
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2, DefaultConfig()); err == nil {
		t.Fatal("accepted n0=2")
	}
	bad := DefaultConfig()
	bad.Theta = 0
	if _, err := New(16, bad); err == nil {
		t.Fatal("accepted theta=0")
	}
}

func TestInitialNetworkShape(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if nw.Size() != 16 {
		t.Fatalf("size = %d", nw.Size())
	}
	p := nw.P()
	if p <= 64 || p >= 128 {
		t.Fatalf("p0 = %d outside (64, 128)", p)
	}
	// Every node has at most 3*Load incident edge slots (Section 3.1;
	// virtual edges internal to a node contract to self-loops, so the
	// multigraph degree can only be smaller).
	for _, u := range nw.Nodes() {
		d, l := nw.Graph().Degree(u), nw.Load(u)
		if d > 3*l || d < 1 {
			t.Fatalf("degree(%d) = %d, load = %d", u, d, l)
		}
	}
	if gap := spectral.Gap(nw.Graph()); gap < 0.01 {
		t.Fatalf("initial gap = %v", gap)
	}
}

func TestInsertBasic(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	id := nw.FreshID()
	if err := nw.Insert(id, 0); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 17 {
		t.Fatalf("size = %d", nw.Size())
	}
	if nw.Load(id) < 1 {
		t.Fatal("inserted node has no vertex")
	}
	m := nw.LastStep()
	if m.Op != OpInsert || m.Recovery != RecoveryType1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Rounds <= 0 || m.Messages <= 0 {
		t.Fatalf("no cost recorded: %+v", m)
	}
}

func TestInsertErrors(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if err := nw.Insert(3, 0); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := nw.Insert(nw.FreshID(), 999); err == nil {
		t.Fatal("unknown attach point accepted")
	}
}

func TestDeleteBasic(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if err := nw.Delete(5); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 15 {
		t.Fatalf("size = %d", nw.Size())
	}
	if nw.Graph().HasNode(5) {
		t.Fatal("deleted node still present")
	}
}

func TestDeleteErrors(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if err := nw.Delete(999); err == nil {
		t.Fatal("unknown node accepted")
	}
	small := mustNew(t, 4, DefaultConfig())
	if err := small.Delete(0); err != ErrTooSmall {
		t.Fatalf("expected ErrTooSmall, got %v", err)
	}
}

func TestDeleteCoordinator(t *testing.T) {
	// Deleting the simulator of vertex 0 must hand the coordinator role
	// to the adopting node without breaking anything.
	nw := mustNew(t, 16, DefaultConfig())
	for i := 0; i < 8; i++ {
		coord := nw.Coordinator()
		if err := nw.Delete(coord); err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("after deleting coordinator %d: %v", coord, err)
		}
		if nw.Coordinator() == coord {
			t.Fatal("coordinator unchanged after deletion")
		}
	}
}

// churn drives mixed random operations and validates invariants after
// every step.
func churn(t *testing.T, nw *Network, steps int, pInsert float64, seed int64, checkEvery int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < pInsert || nw.Size() <= 6 {
			attach := nodes[rng.Intn(len(nodes))]
			if err := nw.Insert(nw.FreshID(), attach); err != nil {
				t.Fatalf("step %d insert: %v", i, err)
			}
		} else {
			victim := nodes[rng.Intn(len(nodes))]
			if err := nw.Delete(victim); err != nil {
				t.Fatalf("step %d delete %d: %v", i, victim, err)
			}
		}
		if checkEvery > 0 && i%checkEvery == 0 {
			if err := nw.CheckInvariants(); err != nil {
				t.Fatalf("step %d (%s): %v\nstag: %s", i, nw.LastStep().Op, err, nw.RebuildDebug())
			}
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatalf("final: %v", err)
	}
}

func TestChurnMixedSimplified(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Simplified
	nw := mustNew(t, 24, cfg)
	churn(t, nw, 400, 0.5, 42, 1)
}

func TestChurnMixedStaggered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Staggered
	nw := mustNew(t, 24, cfg)
	churn(t, nw, 400, 0.5, 42, 1)
}

func TestChurnInsertHeavyForcesInflation(t *testing.T) {
	for _, mode := range []RecoveryMode{Simplified, Staggered} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		nw := mustNew(t, 16, cfg)
		p0 := nw.P()
		churn(t, nw, 600, 0.95, 7, 1)
		if nw.P() <= p0 {
			t.Fatalf("mode %v: no inflation after insert-heavy churn (p=%d, n=%d)", mode, nw.P(), nw.Size())
		}
		inflations := 0
		for _, m := range nw.History() {
			if m.Recovery == RecoveryInflate || m.StaggerStarted {
				inflations++
			}
		}
		if inflations == 0 {
			t.Fatalf("mode %v: no inflation recorded", mode)
		}
	}
}

func TestChurnDeleteHeavyForcesDeflation(t *testing.T) {
	for _, mode := range []RecoveryMode{Simplified, Staggered} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		nw := mustNew(t, 16, cfg)
		// Grow first so there is room to shrink.
		churn(t, nw, 700, 1.0, 11, 50)
		pGrown := nw.P()
		churn(t, nw, 900, 0.02, 13, 1)
		if nw.P() >= pGrown {
			t.Fatalf("mode %v: no deflation after delete-heavy churn (p=%d, n=%d)", mode, nw.P(), nw.Size())
		}
	}
}

func TestLoadsBoundedUnderChurn(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 32, cfg)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		bound := 4 * cfg.Zeta
		if active, _ := nw.Rebuilding(); active {
			bound = 8 * cfg.Zeta
		}
		if ml := nw.MaxLoad(); ml > bound {
			t.Fatalf("step %d: max load %d exceeds %d", i, ml, bound)
		}
	}
}

func TestSpectralGapConstantUnderChurn(t *testing.T) {
	// Lemma 7 / Lemma 9(b): the gap never collapses, at any step,
	// including mid-rebuild.
	cfg := DefaultConfig()
	nw := mustNew(t, 24, cfg)
	rng := rand.New(rand.NewSource(9))
	minGap := math.Inf(1)
	for i := 0; i < 300; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 || nw.Size() <= 6 {
			nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if i%10 == 0 {
			if gap := spectral.Gap(nw.Graph()); gap < minGap {
				minGap = gap
			}
		}
	}
	if minGap < 0.008 {
		t.Fatalf("spectral gap collapsed to %v", minGap)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []StepMetrics {
		cfg := DefaultConfig()
		nw, _ := New(16, cfg)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 120; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < 0.5 || nw.Size() <= 6 {
				nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
			} else {
				nw.Delete(nodes[rng.Intn(len(nodes))])
			}
		}
		return nw.History()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("history lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d diverged:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestAdversarialAttachToSameVictim(t *testing.T) {
	// Failure injection: the adversary attaches every new node to the
	// same victim; constant degree must survive because the attachment
	// edge is dropped after recovery.
	nw := mustNew(t, 16, DefaultConfig())
	for i := 0; i < 150; i++ {
		if err := nw.Insert(nw.FreshID(), 0); err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if d := nw.Graph().DistinctDegree(0); d > 3*4*nw.cfg.Zeta {
		t.Fatalf("victim degree grew to %d", d)
	}
}

func TestDeleteHighestLoadAdversary(t *testing.T) {
	// Adaptive adversary: always delete the most loaded node (it knows
	// the full state). Loads must stay bounded.
	cfg := DefaultConfig()
	nw := mustNew(t, 48, cfg)
	for i := 0; i < 40; i++ {
		var victim NodeID
		best := -1
		for _, u := range nw.Nodes() {
			if l := nw.Load(u); l > best {
				best = l
				victim = u
			}
		}
		if err := nw.Delete(victim); err != nil {
			if err == ErrTooSmall {
				break
			}
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestWalkExhaustionZeroInNormalChurn(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 24, cfg)
	churn(t, nw, 300, 0.5, 21, 0)
	if nw.walkExhaustion != 0 {
		t.Fatalf("walk exhaustion fallback fired %d times", nw.walkExhaustion)
	}
}

func TestHistoryAndAccessors(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if (nw.LastStep() != StepMetrics{}) {
		t.Fatal("empty history should yield zero metrics")
	}
	nw.Insert(nw.FreshID(), 0)
	if len(nw.History()) != 1 {
		t.Fatal("history not recorded")
	}
	if nw.SpareCount() <= 0 || nw.LowCount() <= 0 {
		t.Fatal("counters not tracking")
	}
	if nw.OwnerOf(0) != nw.Coordinator() {
		t.Fatal("coordinator must simulate vertex 0")
	}
	if nw.OrphanRescues() != 0 {
		t.Fatal("unexpected orphan rescues")
	}
}
