package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pcycle"
)

// The seed implementation panicked whenever a small-zeta network
// deep-crashed — "unresolved contenders at end of phase 1" (staggered)
// or "no donor for contender" (simplified): with zeta <= 3 the
// deflation trigger |Low| < 3*theta*n fires while n is still far above
// pOld/8, so the rebuild targeted a cycle with pNew < n — a mapping
// that cannot be surjective, making the forced contender resolution
// structurally infeasible. deflationFor now floors the new prime at
// the node count (plus insert slack for staggered flights) and skips
// the rebuild entirely when no admissible prime exists.
//
// At zeta = 3 the fixed engine keeps every paper invariant through the
// whole crash. zeta = 2 sits below the regime where the paper's
// constants compose (4*zeta = 8 leaves no adoption headroom, so
// stacked adoptions overshoot any constant envelope while deflation is
// infeasible), so its gate is relaxed: no panic, the contraction/graph
// structure stays exact, connectivity and surjectivity hold, and the
// cycle still deflates once an admissible prime exists.

// deepCrash grows nw and then deletes down to the 8-node floor, the
// trace that reproduced the seed panic on every tested seed.
func deepCrash(t *testing.T, nw *Network, seed int64, check func(*Network) error) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 400; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	step := 0
	for nw.Size() > 8 {
		nodes := nw.Nodes()
		if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
		if step%50 == 0 {
			if err := check(nw); err != nil {
				t.Fatalf("crash step %d (n=%d p=%d, %s): %v", step, nw.Size(), nw.P(), nw.RebuildDebug(), err)
			}
		}
		step++
	}
}

// relaxedCrashCheck is the zeta=2 gate: structural exactness without
// the 4*zeta steady-state load bound (see the file comment).
func relaxedCrashCheck(nw *Network) error {
	if err := nw.real.Validate(); err != nil {
		return err
	}
	if err := graphsEqual(nw.real, nw.expectedRealGraph()); err != nil {
		return fmt.Errorf("contraction diverged: %w", err)
	}
	if !nw.real.Connected() {
		return fmt.Errorf("overlay disconnected at n=%d", nw.Size())
	}
	for _, u := range nw.st.nodeList {
		if nw.st.loadOf(u) < 1 {
			return fmt.Errorf("node %d simulates nothing", u)
		}
	}
	return nil
}

func crashCheckFor(zeta int) func(*Network) error {
	if zeta >= 3 {
		return (*Network).CheckInvariants
	}
	return relaxedCrashCheck
}

// TestDeflationFloorSurvivesDeepCrash is the regression gate for the
// documented zeta<=3 corner: the full grow-then-crash trace must run
// panic-free with every invariant intact, and the cycle must actually
// deflate along the way (the floor must not simply disable type-2
// shrink recovery).
func TestDeflationFloorSurvivesDeepCrash(t *testing.T) {
	for _, zeta := range []int{2, 3} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("zeta=%d/seed=%d", zeta, seed), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Zeta = zeta
				cfg.Seed = seed
				nw := mustNew(t, 64, cfg)
				pPeak := nw.P()
				obs := 0
				nw.SetRebuildObserver(func(pNew int64) {
					if pNew < pPeak {
						obs++
					}
					if p := nw.P(); p > pPeak {
						pPeak = p
					}
				})
				deepCrash(t, nw, seed, crashCheckFor(zeta))
				// Drain any in-flight rebuild so the final state is steady.
				rng := rand.New(rand.NewSource(seed * 7))
				for i := 0; i < 50000; i++ {
					if active, _ := nw.Rebuilding(); !active {
						break
					}
					nodes := nw.Nodes()
					if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
						t.Fatal(err)
					}
				}
				if err := crashCheckFor(zeta)(nw); err != nil {
					t.Fatal(err)
				}
				if nw.P() >= pPeak {
					t.Fatalf("deep crash never deflated: p stayed at %d (peak %d)", nw.P(), pPeak)
				}
				if obs == 0 {
					t.Fatal("no shrinking rebuild observed during the crash")
				}
			})
		}
	}
}

// TestDeflationFloorSimplifiedMode runs the same deep crash in
// simplified mode, where the one-step deflation used to hit the same
// infeasibility through fallbackAssign.
func TestDeflationFloorSimplifiedMode(t *testing.T) {
	for _, zeta := range []int{2, 3} {
		cfg := DefaultConfig()
		cfg.Zeta = zeta
		cfg.Mode = Simplified
		cfg.Seed = int64(zeta)
		nw := mustNew(t, 64, cfg)
		deepCrash(t, nw, int64(zeta), crashCheckFor(zeta))
		if err := crashCheckFor(zeta)(nw); err != nil {
			t.Fatalf("zeta=%d: %v", zeta, err)
		}
	}
}

// TestNewDeflationFloorSelection pins the floor semantics: unfloored
// choice unchanged, binding floors honored, infeasible floors refused.
func TestNewDeflationFloorSelection(t *testing.T) {
	base, err := pcycle.NewDeflation(1031)
	if err != nil {
		t.Fatal(err)
	}
	free, err := pcycle.NewDeflationFloor(1031, 0)
	if err != nil || free.PNew != base.PNew {
		t.Fatalf("floor 0 changed the choice: %v vs %v (%v)", free.PNew, base.PNew, err)
	}
	bound, err := pcycle.NewDeflationFloor(1031, 200)
	if err != nil {
		t.Fatal(err)
	}
	if bound.PNew < 200 || bound.PNew >= 1031/4 {
		t.Fatalf("floored prime %d outside [200, %d)", bound.PNew, 1031/4)
	}
	if _, err := pcycle.NewDeflationFloor(1031, 300); err == nil {
		t.Fatal("accepted a floor above pOld/4")
	}
}
