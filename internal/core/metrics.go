package core

// OpKind identifies the adversarial operation that triggered a step.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpBatchInsert
	OpBatchDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpBatchInsert:
		return "batch-insert"
	case OpBatchDelete:
		return "batch-delete"
	}
	return "?"
}

// RecoveryKind identifies which recovery path handled the step.
type RecoveryKind int

// Recovery kinds.
const (
	RecoveryType1 RecoveryKind = iota
	RecoveryInflate
	RecoveryDeflate
)

func (k RecoveryKind) String() string {
	switch k {
	case RecoveryInflate:
		return "type2-inflate"
	case RecoveryDeflate:
		return "type2-deflate"
	}
	return "type1"
}

// StepMetrics records the paper's cost measures for one adversarial step
// (Theorem 1's quantities: rounds, messages, topology changes).
type StepMetrics struct {
	Step   int
	Op     OpKind
	Target NodeID

	Rounds          int
	Messages        int
	TopologyChanges int

	Recovery    RecoveryKind
	WalkRetries int
	Floods      int

	// StaggerActive reports whether a staggered rebuild was in flight
	// during the step; StaggerStarted/StaggerFinished flag its endpoints.
	StaggerActive   bool
	StaggerStarted  bool
	StaggerFinished bool

	// Post-step state snapshot.
	N int
	P int64
}

// Totals aggregates step metrics over the network's lifetime in O(1)
// memory, so long runs can cap the per-step history (Config.HistoryCap)
// without losing the headline numbers.
type Totals struct {
	Steps int

	Rounds          int64
	Messages        int64
	TopologyChanges int64

	MaxRounds          int
	MaxMessages        int
	MaxTopologyChanges int

	WalkRetries int64
	Floods      int64

	// InflateEvents / DeflateEvents count steps whose recovery was a
	// type-2 inflation/deflation (one-step rebuilds and staggered rebuild
	// triggers alike). StaggerStarts/StaggerFinishes count the staggered
	// rebuild endpoints.
	InflateEvents   int
	DeflateEvents   int
	StaggerStarts   int
	StaggerFinishes int
}

func (t *Totals) absorb(s StepMetrics) {
	t.Steps++
	t.Rounds += int64(s.Rounds)
	t.Messages += int64(s.Messages)
	t.TopologyChanges += int64(s.TopologyChanges)
	if s.Rounds > t.MaxRounds {
		t.MaxRounds = s.Rounds
	}
	if s.Messages > t.MaxMessages {
		t.MaxMessages = s.Messages
	}
	if s.TopologyChanges > t.MaxTopologyChanges {
		t.MaxTopologyChanges = s.TopologyChanges
	}
	t.WalkRetries += int64(s.WalkRetries)
	t.Floods += int64(s.Floods)
	switch s.Recovery {
	case RecoveryInflate:
		t.InflateEvents++
	case RecoveryDeflate:
		t.DeflateEvents++
	}
	if s.StaggerStarted {
		t.StaggerStarts++
	}
	if s.StaggerFinished {
		t.StaggerFinishes++
	}
}

// Totals returns the lifetime aggregate metrics; unlike History it is
// unaffected by Config.HistoryCap.
func (nw *Network) Totals() Totals { return nw.totals }

func (nw *Network) beginStep(op OpKind, target NodeID) {
	nw.step = StepMetrics{Step: nw.totals.Steps + 1, Op: op, Target: target}
	nw.rebuiltReal = false
	// Dirty tracking resets by generation bump in the dense store (the
	// map oracle still pays the scratch-map reset; see store.go).
	nw.st.resetDirty()
	if len(nw.edgeDeltas) > 0 {
		nw.edgeDeltas = resetScratchMap(nw.edgeDeltas)
	}
}

func (nw *Network) endStep() StepMetrics {
	nw.step.N = nw.Size()
	nw.step.P = nw.z.P()
	nw.step.StaggerActive = nw.stag != nil || nw.step.StaggerFinished
	nw.totals.absorb(nw.step)
	nw.appendHistory(nw.step)
	nw.flushEdgeDeltas()
	return nw.step
}

// appendHistory stores the step, dropping the older half when the
// configured cap is reached (amortized O(1) per step).
func (nw *Network) appendHistory(s StepMetrics) {
	if limit := nw.cfg.HistoryCap; limit > 0 && len(nw.history) >= limit {
		keep := limit / 2 // 0 when limit == 1: the append below restores len 1
		n := copy(nw.history, nw.history[len(nw.history)-keep:])
		nw.history = nw.history[:n]
	}
	nw.history = append(nw.history, s)
}

// LastStep returns the metrics of the most recent step.
func (nw *Network) LastStep() StepMetrics {
	if len(nw.history) == 0 {
		return StepMetrics{}
	}
	return nw.history[len(nw.history)-1]
}
