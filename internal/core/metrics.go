package core

// OpKind identifies the adversarial operation that triggered a step.
type OpKind int

// Operation kinds.
const (
	OpInsert OpKind = iota
	OpDelete
	OpBatchInsert
	OpBatchDelete
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpBatchInsert:
		return "batch-insert"
	case OpBatchDelete:
		return "batch-delete"
	}
	return "?"
}

// RecoveryKind identifies which recovery path handled the step.
type RecoveryKind int

// Recovery kinds.
const (
	RecoveryType1 RecoveryKind = iota
	RecoveryInflate
	RecoveryDeflate
)

func (k RecoveryKind) String() string {
	switch k {
	case RecoveryInflate:
		return "type2-inflate"
	case RecoveryDeflate:
		return "type2-deflate"
	}
	return "type1"
}

// StepMetrics records the paper's cost measures for one adversarial step
// (Theorem 1's quantities: rounds, messages, topology changes).
type StepMetrics struct {
	Step   int
	Op     OpKind
	Target NodeID

	Rounds          int
	Messages        int
	TopologyChanges int

	Recovery    RecoveryKind
	WalkRetries int
	Floods      int

	// StaggerActive reports whether a staggered rebuild was in flight
	// during the step; StaggerStarted/StaggerFinished flag its endpoints.
	StaggerActive   bool
	StaggerStarted  bool
	StaggerFinished bool

	// Post-step state snapshot.
	N int
	P int64
}

func (nw *Network) beginStep(op OpKind, target NodeID) {
	nw.step = StepMetrics{Step: len(nw.history) + 1, Op: op, Target: target}
	nw.rebuiltReal = false
}

func (nw *Network) endStep() StepMetrics {
	nw.step.N = nw.Size()
	nw.step.P = nw.z.P()
	nw.step.StaggerActive = nw.stag != nil || nw.step.StaggerFinished
	nw.history = append(nw.history, nw.step)
	return nw.step
}

// LastStep returns the metrics of the most recent step.
func (nw *Network) LastStep() StepMetrics {
	if len(nw.history) == 0 {
		return StepMetrics{}
	}
	return nw.history[len(nw.history)-1]
}
