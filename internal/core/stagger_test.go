package core

import (
	"math/rand"
	"testing"

	"repro/internal/spectral"
)

// driveToStagger churns insert-only until a staggered rebuild starts,
// returning the step at which it began.
func driveToStagger(t *testing.T, nw *Network, maxSteps int) int {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < maxSteps; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
		if active, _ := nw.Rebuilding(); active {
			return i
		}
	}
	t.Fatalf("no staggered rebuild within %d inserts", maxSteps)
	return -1
}

func TestStaggeredInflationLifecycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = Staggered
	nw := mustNew(t, 32, cfg)
	pOld := nw.P()
	driveToStagger(t, nw, 4000)

	// Phase 1: invariants hold at every step; the union structure keeps a
	// constant gap (Lemma 9(b)).
	rng := rand.New(rand.NewSource(5))
	sawPhase2 := false
	steps := 0
	for {
		active, phase := nw.Rebuilding()
		if !active {
			break
		}
		if phase == 2 {
			sawPhase2 = true
		}
		nodes := nw.Nodes()
		var err error
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("mid-rebuild (%s): %v", nw.RebuildDebug(), err)
		}
		if gap := spectral.Gap(nw.Graph()); gap < 0.005 {
			t.Fatalf("gap collapsed mid-rebuild: %v (%s)", gap, nw.RebuildDebug())
		}
		steps++
		if steps > 100000 {
			t.Fatal("rebuild never completed")
		}
	}
	if !sawPhase2 {
		t.Fatal("phase 2 never observed")
	}
	if nw.P() <= pOld {
		t.Fatalf("p did not grow: %d -> %d", pOld, nw.P())
	}
	// After commit, the steady-state bound applies again.
	if nw.MaxLoad() > 4*cfg.Zeta {
		t.Fatalf("post-commit max load %d > 4*zeta", nw.MaxLoad())
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The commit step is flagged exactly once in the history.
	finishes := 0
	for _, m := range nw.History() {
		if m.StaggerFinished {
			finishes++
		}
	}
	if finishes != 1 {
		t.Fatalf("StaggerFinished flagged %d times", finishes)
	}
}

func TestStaggeredRebuildWorstStepEnvelope(t *testing.T) {
	// Theorem 1's point: even the steps that advance a rebuild stay
	// within an O(log n)-ish round/message envelope and never do O(n)
	// topology work in one step.
	cfg := DefaultConfig()
	cfg.Mode = Staggered
	nw := mustNew(t, 64, cfg)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	n := float64(nw.Size())
	for _, m := range nw.History() {
		if m.Rounds > 60*int(logish(n)) {
			t.Fatalf("step %d: %d rounds breaks the envelope (n=%d)", m.Step, m.Rounds, m.N)
		}
		if float64(m.TopologyChanges) > n/2 {
			t.Fatalf("step %d: %d topology changes ~ O(n)", m.Step, m.TopologyChanges)
		}
	}
}

func logish(n float64) float64 {
	l := 1.0
	for v := n; v > 1; v /= 2 {
		l++
	}
	return l
}

func TestDeletionDuringStaggeredRebuild(t *testing.T) {
	// Failure injection: delete heavily while a rebuild is mid-flight,
	// including the coordinator.
	cfg := DefaultConfig()
	nw := mustNew(t, 32, cfg)
	driveToStagger(t, nw, 4000)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		active, _ := nw.Rebuilding()
		if !active {
			break
		}
		var victim NodeID
		if i%3 == 0 {
			victim = nw.Coordinator()
		} else {
			nodes := nw.Nodes()
			victim = nodes[rng.Intn(len(nodes))]
		}
		if err := nw.Delete(victim); err != nil {
			t.Fatal(err)
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d (%s): %v", i, nw.RebuildDebug(), err)
		}
	}
}

func TestFinishStaggerNowViaForcedRebuild(t *testing.T) {
	// A batch operation in simplified style can preempt a staggered
	// rebuild; finishStaggerNow must complete it coherently first.
	cfg := DefaultConfig()
	nw := mustNew(t, 32, cfg)
	driveToStagger(t, nw, 4000)
	if active, _ := nw.Rebuilding(); !active {
		t.Fatal("not rebuilding")
	}
	nw.finishStaggerNow()
	if active, _ := nw.Rebuilding(); active {
		t.Fatal("rebuild still active")
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaggerStateAccessors(t *testing.T) {
	nw := mustNew(t, 32, DefaultConfig())
	if s := nw.RebuildDebug(); s != "" {
		t.Fatalf("idle RebuildDebug = %q", s)
	}
	driveToStagger(t, nw, 4000)
	if s := nw.RebuildDebug(); s == "" {
		t.Fatal("active RebuildDebug empty")
	}
	if active, phase := nw.Rebuilding(); !active || phase == 0 {
		t.Fatalf("Rebuilding() = %v, %d", active, phase)
	}
}
