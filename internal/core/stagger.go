package core

import (
	"fmt"
	"sort"

	"repro/internal/pcycle"
)

// This file implements the staggered type-2 recovery of Section 4.4
// (Algorithms 4.7/4.8/4.9), which yields Theorem 1's worst-case bounds:
// instead of rebuilding the virtual graph in one step, the coordinator
// (simulator of vertex 0) triggers the rebuild early - at |Spare| < 3*theta*n
// for inflation, |Low| < 3*theta*n for deflation - and the rebuild is
// spread over Theta(n) subsequent steps, each step processing a constant
// batch of old vertices:
//
//   Phase 1 builds the next p-cycle alongside the current one. Processing
//   old vertex x generates its cloud (inflation) or its dominated new
//   vertex (deflation) at x's simulator, adds the new cycle/chord edges -
//   or *intermediate edges* anchored at the old vertex that will generate
//   a not-yet-existing endpoint - and rebalances overfull nodes with
//   random walks.
//
//   Phase 2 discards the old p-cycle batch by batch. Orphan rescue keeps
//   the mapping surjective if a node's last holding is dropped.
//
// Throughout, every node simulates at most 4*zeta vertices of each cycle
// (8*zeta total, Lemma 9(a)) and the union structure always contains one
// complete p-cycle, which lower-bounds the edge expansion and hence keeps
// the spectral gap constant (Lemma 9(b), via Cheeger both ways).
//
// Per-node rebuild state (NewSim sets, effNew, unprocOld) lives in the
// engine's slot-indexed store next to the steady-state columns (see
// store.go); this struct keeps only the schedule — frontier, flags,
// pending intermediate edges, and the contender queue.
//
// Deviation (documented in README.md): the paper creates intermediate edges for
// all three slots of a new vertex; we create each undirected new edge
// exactly once, owned canonically (a vertex owns its successor edge, and
// the chord is owned by its smaller endpoint). The union structure is
// sparser during the transition but the complete old (phase 1) or new
// (phase 2) cycle provides the expansion bound either way, and every
// final edge is present when the rebuild commits.

type stagDirection int

const (
	inflateDir stagDirection = iota
	deflateDir
)

func (d stagDirection) String() string {
	if d == deflateDir {
		return "deflate"
	}
	return "inflate"
}

// pendEdge records an intermediate edge: new vertex src is waiting for
// new vertex dst, which will be generated when the old vertex keying this
// entry is processed.
type pendEdge struct {
	src, dst Vertex
}

// stagger holds the in-flight rebuild schedule.
type stagger struct {
	dir  stagDirection
	inf  pcycle.Inflation
	def  pcycle.Deflation
	zNew *pcycle.Cycle

	phase    int // 1 = build new cycle, 2 = discard old cycle
	frontier Vertex
	batch    int64 // old vertices processed per step

	processedFlag []bool
	droppedFlag   []bool

	newSimOf []NodeID // Phi' (-1 = not generated yet)

	pending map[Vertex][]pendEdge // keyed by the generating old vertex

	contenders []NodeID // deflation: nodes awaiting a new vertex
}

func (s *stagger) processed(x Vertex) bool { return s.processedFlag[x] }
func (s *stagger) dropped(x Vertex) bool   { return s.droppedFlag[x] }

// projection returns how many new vertices old vertex x will generate.
func (s *stagger) projection(x Vertex) int {
	if s.dir == inflateDir {
		return s.inf.CloudSize(x)
	}
	if s.def.Dominates(x) {
		return 1
	}
	return 0
}

// ownerOld returns the old vertex that generates new vertex t.
func (s *stagger) ownerOld(t Vertex) Vertex {
	if s.dir == inflateDir {
		return s.inf.OldOwner(t)
	}
	return s.def.DominatorOf(t)
}

// --- starting a staggered rebuild -------------------------------------------

// startStagger initializes the rebuild state (it does not process any
// batch yet; advanceStagger does one batch per step). Returns false if
// the virtual graph is too small to rebuild in the given direction —
// including a deflation whose admissible primes all sit below the node
// count (see deflationFor), which the seed implementation started
// anyway and then crashed resolving.
func (nw *Network) startStagger(dir stagDirection) bool {
	pOld := nw.z.P()
	s := &stagger{
		dir:     dir,
		phase:   1,
		pending: make(map[Vertex][]pendEdge),
	}
	var pNew int64
	switch dir {
	case inflateDir:
		inf, err := pcycle.NewInflation(pOld)
		if err != nil {
			return false
		}
		s.inf = inf
		pNew = inf.PNew
	case deflateDir:
		def, ok := nw.deflationFor(true)
		if !ok {
			return false // no admissible smaller cycle yet; try again as n shrinks
		}
		s.def = def
		pNew = def.PNew
	}
	z, err := pcycle.New(pNew)
	if err != nil {
		return false
	}
	s.zNew = z
	s.processedFlag = make([]bool, pOld)
	s.droppedFlag = make([]bool, pOld)
	s.newSimOf = make([]NodeID, pNew)
	for i := range s.newSimOf {
		s.newSimOf[i] = -1
	}
	// Each phase spans ~theta*n steps (the paper's schedule), so the
	// per-step batch is pOld/(theta*n): constant in n, O(1/theta^2) in the
	// rebuild parameter.
	steps := int64(nw.cfg.Theta * float64(nw.Size()))
	if steps < 1 {
		steps = 1
	}
	s.batch = (pOld + steps - 1) / steps
	nw.specEpoch++ // predicate shape changes with the rebuild state
	nw.st.stagReset()
	for _, u := range nw.st.nodeList {
		nw.st.addUnprocOld(u, nw.st.simLen(u))
		proj := 0
		nw.st.simForEach(u, func(x Vertex) bool {
			proj += s.projection(x)
			return true
		})
		nw.st.addEffNew(u, proj)
	}
	nw.stag = s
	// Coordinator locally computes the new prime and notifies the first
	// batch of simulators along virtual shortest paths.
	nw.step.Messages += nw.routeCharge()
	nw.step.Rounds += 2
	return true
}

// routeCharge is the hop budget for one shortest-path control message on
// the current virtual graph (2*ecc(0) bounds the diameter).
func (nw *Network) routeCharge() int { return nw.z.DiameterUpperBound() }

// --- per-step progress -------------------------------------------------------

// advanceStagger performs one step's batch of rebuild work
// (Algorithms 4.8/4.9 advance "when the adversary triggers the next
// step").
func (nw *Network) advanceStagger() {
	s := nw.stag
	nw.specEpoch++                         // frontier/phase progress invalidates in-flight speculation
	nw.step.Rounds += nw.routeCharge() + 2 // batch activation + parallel edge setup
	nw.step.Messages += 2                  // coordinator hand-off bookkeeping
	if s.phase == 1 {
		end := s.frontier + s.batch
		if end > nw.z.P() {
			end = nw.z.P()
		}
		for x := s.frontier; x < end; x++ {
			nw.processOldVertex(x)
		}
		s.frontier = end
		nw.retryContenders(false)
		if s.frontier >= nw.z.P() {
			nw.retryContenders(true)
			if len(s.pending) != 0 {
				panic("core: unresolved intermediate edges at end of phase 1")
			}
			s.phase = 2
			s.frontier = 0
		}
		return
	}
	end := s.frontier + s.batch
	if end > nw.z.P() {
		end = nw.z.P()
	}
	for x := s.frontier; x < end; x++ {
		nw.dropOldVertex(x)
	}
	s.frontier = end
	if s.frontier >= nw.z.P() {
		nw.commitStagger()
	}
}

// finishStaggerNow drives the staggered rebuild to completion inside the
// current step (used when a forced one-step rebuild preempts it).
func (nw *Network) finishStaggerNow() {
	for nw.stag != nil {
		nw.advanceStagger()
	}
}

// processOldVertex runs Phase-1 work for one old vertex.
func (nw *Network) processOldVertex(x Vertex) {
	s := nw.stag
	if s.processedFlag[x] {
		return
	}
	u := nw.simOf[x]
	s.processedFlag[x] = true
	nw.st.addUnprocOld(u, -1)
	nw.markDirty(u) // bookkeeping changed even when x generates nothing

	if s.dir == inflateDir {
		cloud := s.inf.Cloud(x)
		nw.st.addEffNew(u, -len(cloud)) // projection becomes actual below
		for _, y := range cloud {
			nw.assignNew(y, u)
		}
		nw.resolvePending(x)
		for _, y := range cloud {
			nw.createNewEdges(y)
		}
		nw.shedNewOverflow(u)
		return
	}

	// Deflation: x generates a new vertex only if it dominates its
	// deflation cloud.
	y := s.def.NewVertexOf(x)
	if s.def.DominatorOf(y) == x {
		nw.st.addEffNew(u, -1)
		nw.assignNew(y, u)
		nw.resolvePending(x)
		nw.createNewEdges(y)
	}
	if nw.st.unprocOldOf(u) == 0 && nw.st.newLen(u) == 0 {
		s.contenders = append(s.contenders, u)
	}
}

// assignNew places new vertex y at node u (no edges yet).
func (nw *Network) assignNew(y Vertex, u NodeID) {
	nw.stag.newSimOf[y] = u
	nw.st.newAdd(u, y)
	nw.st.addEffNew(u, 1)
	nw.bumpLoad(u, 1)
}

// resolvePending converts the intermediate edges anchored at old vertex x
// into their final form. Because clouds are generated at x's simulator,
// the real endpoints coincide and only the bookkeeping (plus one
// notification message each) changes.
func (nw *Network) resolvePending(x Vertex) {
	s := nw.stag
	for _, pe := range s.pending[x] {
		if s.newSimOf[pe.dst] < 0 {
			panic(fmt.Sprintf("core: pending edge resolved before %d generated", pe.dst))
		}
		nw.step.Messages++
	}
	delete(s.pending, x)
}

// createNewEdges adds the canonically-owned new-cycle edges of freshly
// generated vertex y: its successor edge, and its chord when y is the
// smaller endpoint (chord self-loops at 0, 1, p-1 belong to y).
func (nw *Network) createNewEdges(y Vertex) {
	s := nw.stag
	owner := s.newSimOf[y]
	nw.linkNewEdge(y, s.zNew.Succ(y), owner, true)
	chord := s.zNew.Inv(y)
	if chord == y {
		nw.addRealEdge(owner, owner)
		nw.step.Messages++
	} else if y < chord {
		nw.linkNewEdge(y, chord, owner, false)
	}
	// The predecessor edge and larger-endpoint chords are created (or
	// were created as intermediates) by their owners.
}

// linkNewEdge wires the undirected new edge {y, t}: directly when t is
// already generated, else as an intermediate edge to the simulator of the
// old vertex that will generate t.
func (nw *Network) linkNewEdge(y, t Vertex, owner NodeID, isCycleEdge bool) {
	s := nw.stag
	if s.newSimOf[t] >= 0 {
		nw.addRealEdge(owner, s.newSimOf[t])
	} else {
		x := s.ownerOld(t)
		nw.addRealEdge(owner, nw.simOf[x])
		s.pending[x] = append(s.pending[x], pendEdge{src: y, dst: t})
	}
	if isCycleEdge {
		nw.step.Messages += 2 // reachable via O(1) old-cycle hops
	} else {
		nw.step.Messages += nw.routeCharge() // routed along the old cycle
	}
}

// shedNewOverflow rebalances u's new-cycle holdings while its effective
// new load exceeds 4*zeta (Alg 4.8 line 6): sequential random walks on
// the live overlay to nodes with effective new load < 4*zeta.
func (nw *Network) shedNewOverflow(u NodeID) {
	st := &nw.st
	zeta4 := 4 * nw.cfg.Zeta
	nw.shedExcl = u // parameterizes the prebuilt shedStop
	for st.effNewOf(u) > zeta4 && st.newLen(u) > 1 {
		placed := false
		for attempt := 0; attempt < nw.cfg.WalkRetryLimit; attempt++ {
			res := nw.runWalk(u, -1, nw.shedStop)
			if res.Hit {
				nw.moveNewVertex(st.newMax(u), res.End)
				placed = true
				break
			}
			nw.step.WalkRetries++
		}
		if !placed {
			// Tolerated: Lemma 9(a) allows up to 8*zeta during staggering.
			nw.walkExhaustion++
			return
		}
	}
}

// retryContenders gives each waiting deflation contender one walk per
// step; with force set (end of Phase 1) it insists, falling back to a
// deterministic donor scan. The per-step round is the engine's biggest
// type-1 walk batch — every live contender walks once, against a donor
// predicate that is selective early in the phase — so with a worker
// pool the non-forced round fans out in parallel (parallel.go).
func (nw *Network) retryContenders(force bool) {
	s := nw.stag
	if len(s.contenders) == 0 {
		return
	}
	// The eligibility scan resolves each survivor's slot exactly once;
	// eligible ids and slots run struct-of-arrays (contendSlots) so the
	// parallel window builds its specs — and the serial loop its walks —
	// with no further map probes. Slots stay valid for the whole round:
	// contender resolution moves vertices but never deletes nodes.
	eligible := s.contenders[:0]
	slots := nw.contendSlots[:0]
	for _, u := range s.contenders {
		sl, ok := nw.real.SlotOf(u)
		if !ok {
			continue // node deleted while waiting
		}
		if nw.st.newLenAt(u, sl) > 0 {
			continue // received a vertex meanwhile
		}
		eligible = append(eligible, u)
		slots = append(slots, sl)
	}
	nw.contendSlots = slots
	if !force && nw.workers > 1 && len(eligible) > 1 {
		s.contenders = nw.retryContendersParallel(eligible, slots)
		return
	}
	var still []NodeID
	for i, u := range eligible {
		if nw.contendWalk(u, slots[i], force) {
			continue
		}
		still = append(still, u)
	}
	s.contenders = still
	if force && len(s.contenders) > 0 {
		panic("core: unresolved contenders at end of phase 1")
	}
}

// contendStop is the contender donor predicate: donors must keep one
// vertex (the paper's "taken" reservation), hence newCount >= 2. The
// serial variant is prebuilt (serialContendStop, parameterized by
// nw.contendU); parallel windows use the per-index contendStops so
// concurrent walks each exclude their own contender. Both read only the
// store's dense new-count column (or the oracle's map), so pool workers
// evaluate them without touching any shared engine map.
func (nw *Network) contendStop(u NodeID) func(NodeID, int32) bool {
	nw.contendU = u
	return nw.serialContendStop
}

// contendWalk tries to fetch a spare new vertex for u (at slot su).
func (nw *Network) contendWalk(u NodeID, su int32, force bool) bool {
	stop := nw.contendStop(u)
	attempts := 1
	if force {
		attempts = nw.cfg.WalkRetryLimit
	}
	for i := 0; i < attempts; i++ {
		res := nw.runWalkAt(u, su, -1, stop)
		if res.Hit {
			nw.moveNewVertex(nw.st.newMax(res.End), u)
			return true
		}
		nw.step.WalkRetries++
	}
	if !force {
		return false
	}
	nw.walkExhaustion++
	for _, w := range nw.real.Nodes() {
		if w != u && nw.st.newLen(w) >= 2 {
			nw.moveNewVertex(nw.st.newMax(w), u)
			return true
		}
	}
	return false
}

// moveNewVertex transfers new-cycle vertex y to node to, moving each of
// its existing real edges: direct edges where both endpoints are
// generated, intermediate edges where y is the canonical owner and the
// target is not yet generated.
func (nw *Network) moveNewVertex(y Vertex, to NodeID) {
	s := nw.stag
	from := s.newSimOf[y]
	if from == to {
		return
	}
	type slotEdge struct {
		t       Vertex
		ownedBy bool // canonical owner is y
	}
	chord := s.zNew.Inv(y)
	slots := [3]slotEdge{
		{s.zNew.Pred(y), false},
		{s.zNew.Succ(y), true},
		{chord, y <= chord},
	}
	apply := func(at NodeID, add bool) {
		for _, se := range slots {
			var other NodeID
			switch {
			case se.t == y:
				other = at // chord self-loop
			case s.newSimOf[se.t] >= 0:
				other = s.newSimOf[se.t]
			case se.ownedBy:
				other = nw.simOf[s.ownerOld(se.t)] // intermediate edge
			default:
				continue // edge not created yet (owner not generated)
			}
			if add {
				nw.addRealEdge(at, other)
			} else {
				nw.removeRealEdge(at, other)
			}
		}
	}
	apply(from, false)
	nw.st.newRemove(from, y)
	nw.st.addEffNew(from, -1)
	nw.bumpLoad(from, -1)
	s.newSimOf[y] = to
	nw.st.newAdd(to, y)
	nw.st.addEffNew(to, 1)
	nw.bumpLoad(to, 1)
	apply(to, true)
}

// dropOldVertex runs Phase-2 work for one old vertex: remove its
// remaining old edges and release it. If it is its simulator's last
// holding, the orphan rescue first fetches a new-cycle vertex so the
// mapping stays surjective.
func (nw *Network) dropOldVertex(x Vertex) {
	s := nw.stag
	if s.droppedFlag[x] {
		return
	}
	u := nw.simOf[x]
	if nw.st.loadOf(u) == 1 {
		nw.orphanRescue(u)
	}
	s.droppedFlag[x] = true
	for _, t := range nw.z.NeighborSlots(x) {
		if t == x {
			nw.removeRealEdge(u, u)
		} else if !s.droppedFlag[t] {
			nw.removeRealEdge(u, nw.simOf[t])
		}
	}
	nw.st.simRemove(u, x)
	nw.bumpLoad(u, -1)
}

// orphanRescue fetches a spare new-cycle vertex for a node about to lose
// its last holding. It runs while the node is still connected.
func (nw *Network) orphanRescue(u NodeID) {
	nw.orphanRescues++
	su, ok := nw.real.SlotOf(u)
	if !ok {
		panic("core: orphan rescue for a node without a slot")
	}
	if !nw.contendWalk(u, su, true) {
		panic("core: orphan rescue found no donor")
	}
}

// commitStagger finalizes the rebuild: the new cycle becomes current.
func (nw *Network) commitStagger() {
	s := nw.stag
	// A node inserted in the current step can still be awaiting its first
	// vertex when a forced one-step rebuild drives the stagger to
	// completion (the walk-exhaustion fallback preempting an in-flight
	// rebuild). Re-home such nodes from donors before the old cycle
	// disappears so the mapping stays surjective (found by FuzzChurnTrace).
	var unassigned []NodeID
	for _, u := range nw.st.nodeList {
		if nw.st.simLen(u) == 0 && nw.st.newLen(u) == 0 {
			unassigned = append(unassigned, u)
		}
	}
	if len(unassigned) > 0 {
		sort.Slice(unassigned, func(i, j int) bool { return unassigned[i] < unassigned[j] })
		for _, u := range unassigned {
			nw.orphanRescue(u)
		}
	}
	for _, u := range nw.st.nodeList {
		if nw.st.simLen(u) != 0 {
			panic(fmt.Sprintf("core: node %d still holds old vertices at commit", u))
		}
		if nw.st.newLen(u) == 0 {
			panic(fmt.Sprintf("core: node %d has no new vertices at commit", u))
		}
	}
	nw.z = s.zNew
	nw.simOf = s.newSimOf
	for _, u := range nw.st.nodeList {
		nw.st.promoteNew(u)
	}
	nw.st.stagDone()
	nw.refreshDist0()
	nw.stag = nil
	nw.specEpoch++
	nw.step.StaggerFinished = true
	if nw.rebuildObserver != nil {
		nw.rebuildObserver(nw.z.P())
	}
}

// --- type-1 predicates and donations while staggering ------------------------

// The insertion donor predicate during a rebuild is the prebuilt
// nw.stagInsertStop (see initTracking), parameterized by nw.stopExclude
// and nw.stagPhase2; nw.insertStop selects and arms it.

// donate transfers one vertex from donor to the freshly inserted id,
// preferring newly generated vertices (Section 4.4.1: "we can simply
// assign one of the newly inflated vertices").
func (s *stagger) donate(nw *Network, donor, id NodeID) {
	if nw.st.newLen(donor) >= 2 {
		nw.moveNewVertex(nw.st.newMax(donor), id)
		return
	}
	// Unprocessed old vertex: the recipient will generate its cloud when
	// the frontier reaches it.
	var best Vertex = -1
	nw.st.simForEach(donor, func(x Vertex) bool {
		if !s.processedFlag[x] && x > best {
			best = x
		}
		return true
	})
	if best < 0 {
		panic("core: staggered donor has nothing to give")
	}
	nw.moveVertex(best, id)
}

// DebugString summarizes the rebuild state (tests/examples).
func (s *stagger) DebugString() string {
	return fmt.Sprintf("%s phase=%d frontier=%d/%d pNew=%d pending=%d contenders=%d",
		s.dir, s.phase, s.frontier, len(s.processedFlag), s.zNew.P(), len(s.pending), len(s.contenders))
}

// RebuildDebug exposes the in-flight rebuild state description, or "".
func (nw *Network) RebuildDebug() string {
	if nw.stag == nil {
		return ""
	}
	return nw.stag.DebugString()
}
