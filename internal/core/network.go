// Package core implements DEX, the paper's self-healing expander
// maintenance algorithm (Sections 3-5).
//
// A Network simulates the distributed system at the protocol level: the
// real overlay graph G_t is maintained as the vertex contraction of a
// virtual p-cycle expander Z(p) under the balanced virtual mapping Phi
// (Definitions 1-3), and every insertion or deletion triggers the paper's
// recovery procedures:
//
//   - type-1 recovery (Algorithms 4.2/4.3): O(log n)-step random walks
//     rebalance O(1) virtual vertices;
//   - simplified type-2 recovery (Algorithms 4.5/4.6): one-step inflation
//     or deflation of the whole p-cycle, amortized over the Omega(n)
//     type-1 steps between rebuilds (Corollary 1);
//   - staggered type-2 recovery (Algorithms 4.7/4.8/4.9): a coordinator
//     (the simulator of vertex 0) triggers rebuilds early and spreads
//     them over Theta(n) steps, giving the worst-case O(log n)
//     rounds/messages and O(1) topology changes of Theorem 1.
//
// Costs (rounds, messages, topology changes) are counted exactly as the
// paper counts them: every walk hop, flood crossing, routed control hop
// and edge change increments a counter. The congest package proves the
// walk and flood fast paths equal their goroutine message-passing
// executions, so these counters are faithful to the CONGEST model.
//
// Per-node engine state (loads, vertex sets, dirty tracking, staggering
// bookkeeping) lives in a slot-indexed columnar store layered on the
// overlay graph's dense slot table — see store.go for the layout and
// the map-based oracle it is differentially tested against.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/pcycle"
	"repro/internal/primes"
)

// Vertex aliases a p-cycle vertex.
type Vertex = pcycle.Vertex

// NodeID aliases the real-network node identifier.
type NodeID = graph.NodeID

// RecoveryMode selects how type-2 recovery is performed.
type RecoveryMode int

const (
	// Simplified rebuilds the whole virtual graph in a single step
	// (Algorithms 4.5/4.6): amortized bounds of Corollary 1.
	Simplified RecoveryMode = iota
	// Staggered spreads rebuilds over Theta(n) steps via the coordinator
	// (Algorithms 4.7-4.9): worst-case bounds of Theorem 1.
	Staggered
)

func (m RecoveryMode) String() string {
	if m == Staggered {
		return "staggered"
	}
	return "simplified"
}

// Config parameterizes a DEX network.
type Config struct {
	// Zeta is the maximum cloud size of the p-cycle construction; the
	// paper fixes zeta <= 8 and so do we (it is exposed for ablations).
	Zeta int
	// Theta is the rebuilding parameter theta. The paper's proofs need
	// theta <= 1/(68*zeta+1); experiments default to a larger 1/64, which
	// keeps staggering phases short while all invariants continue to hold
	// empirically (ablation AB-THETA explores this).
	Theta float64
	// WalkFactor is c in the walk length c*ceil(log2 n).
	WalkFactor int
	// WalkRetryLimit caps type-1 walk retries before the implementation
	// reports a failure (the paper retries forever; the cap only guards
	// against implementation bugs and is never hit in the experiments).
	WalkRetryLimit int
	// Mode selects simplified or staggered type-2 recovery.
	Mode RecoveryMode
	// Seed drives all randomized choices.
	Seed int64
	// Workers is the width of the worker pool that speculates type-1
	// walk batches in parallel (0 or 1 = serial, the default). For any
	// fixed seed the recovery outcome — mapping, overlay, and per-step
	// metrics — is byte-identical at every width; Workers only changes
	// wall-clock time (see parallel.go).
	Workers int
	// HistoryCap bounds the in-memory per-step metrics history; 0 keeps
	// every step (the default). When the cap is reached the older half is
	// discarded, so long churn runs hold O(cap) metrics memory while
	// Totals keeps exact lifetime aggregates.
	HistoryCap int

	// useMapState selects the historical map-keyed state store instead
	// of the dense slot-indexed columns: the differential oracle for
	// engine_equiv_test and the bench-core baseline. Test-only, hence
	// unexported; the two backends are byte-identical in behavior.
	useMapState bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Zeta:           8,
		Theta:          1.0 / 64,
		WalkFactor:     4,
		WalkRetryLimit: 64,
		Mode:           Staggered,
		Seed:           1,
	}
}

// Network is a DEX-maintained overlay network.
type Network struct {
	cfg Config
	rng *rand.Rand

	z     *pcycle.Cycle // current virtual graph Z(p)
	simOf []NodeID      // Phi: vertex -> simulating node
	real  *graph.Graph  // the overlay graph G_t (contraction of Z under Phi)

	// st holds every per-node table — loads, Sim/NewSim vertex sets,
	// dirty + speculation tracking, the O(1) sampling mirror, and the
	// staggering counters — in slot-indexed columns over nw.real's slot
	// table (or, for the differential oracle, in the historical maps).
	st state

	dist0 []int32 // cached BFS distances from vertex 0 (coordinator routing)

	nSpare int // |{u : load(u) >= 2}|
	nLow   int // |{u : load(u) <= 2*zeta}|

	stag *stagger // non-nil while a staggered rebuild is in flight

	nextID NodeID // smallest never-used node id (callers may pass their own)

	step        StepMetrics
	history     []StepMetrics
	totals      Totals
	rebuiltReal bool // set when a one-step type-2 rebuild rewired nw.real

	// edgeDeltas accumulates the step's net real-edge changes per node
	// pair; it is only maintained while an edge observer is registered and
	// is flushed (sorted, zeroes dropped) at the end of each step.
	edgeDeltas   map[edgeKey]int
	edgeObserver func(step int, deltas []graph.EdgeDelta)

	// auditRng drives sampled audits; it is separate from rng so auditing
	// never perturbs the recovery algorithm's random choices.
	auditRng *rand.Rand

	// failure counters for the pathological paths (never hit in normal
	// operation; exercised by failure-injection tests).
	orphanRescues  int
	walkExhaustion int

	// transferObserver, when set, is invoked after a current-cycle vertex
	// migrates between nodes (the DHT uses it to migrate and account for
	// the vertex's key/value items, cf. Section 4.4.4).
	transferObserver func(x Vertex, from, to NodeID)
	// rebuildObserver, when set, is invoked after the virtual graph is
	// replaced (inflation/deflation commit) with the new modulus.
	rebuildObserver func(pNew int64)

	// Walk stop predicates, built once in initTracking: closures capture
	// the network, per-op parameters flow through the fields below
	// (stopExclude, contendU, shedExcl, stagPhase2), so the recovery path
	// allocates no closure per operation — every predicate the engine ever
	// hands a walk is one of these. They take (id, slot) pairs straight
	// from the arena's run cells and read only slot-indexed columns, so
	// predicate evaluation performs no id→slot map probe. Scratch buffers
	// for vertexHoldings live here for the same reason.
	steadyInsertStop  func(NodeID, int32) bool
	steadyLowStop     func(NodeID, int32) bool
	holdNewStop       func(NodeID, int32) bool // staggered new-cycle holding placement
	inflateP2Stop     func(NodeID, int32) bool // inflate phase 2 holding placement
	deflateHoldStop   func(NodeID, int32) bool // deflation holding placement
	stagInsertStop    func(NodeID, int32) bool // insertion donor during a rebuild
	serialContendStop func(NodeID, int32) bool
	shedStop          func(NodeID, int32) bool
	stopExclude       NodeID
	contendU          NodeID // serialContendStop's excluded contender
	shedExcl          NodeID // shedStop's excluded overflowing node
	stagPhase2        bool   // stagInsertStop: rebuild is in phase 2
	holdScratch       []holding
	vertScratch       []Vertex

	// Parallel contender rounds need one predicate per window index —
	// the excluded contender differs per walk and the walks run
	// concurrently — so the exclusions live struct-of-arrays in
	// contendExcl and contendStops[j] reads contendExcl[j] at call time.
	// Both grow to the window cap once and are reused forever.
	contendExcl  []NodeID
	contendStops []func(NodeID, int32) bool
	contendSlots []int32 // eligible contenders' start slots, parallel to eligible

	// Parallel-recovery state (see parallel.go). seedQ/seedHead form the
	// FIFO that keeps the walk-seed stream identical to the serial
	// path's; the store's speculation write-set records commit
	// footprints while armed; specEpoch versions stagger-state
	// transitions.
	workers     int
	pool        *congest.WalkPool
	seedQ       []uint64
	seedHead    int
	seedBuf     []uint64
	tailSeedBuf []uint64
	specs       []congest.WalkSpec
	outs        []congest.WalkOutcome
	tailSpecs   []congest.WalkSpec
	tailOuts    []congest.WalkOutcome
	liveIdx     []int
	liveSpecs   []congest.WalkSpec
	liveOuts    []congest.WalkOutcome
	specEpoch   uint64
	specHits    int
	specMisses  int
	tailWalks   int
	// fastInserts counts steady-state inserts committed through
	// recoverInsert's degree-capped short-circuit (diagnostics only —
	// the fast path is byte-identical to the ladder, so this is never
	// part of History or the checkpoint image).
	fastInserts int

	// Pipelined-façade state (see pipeline.go). pipeAttempt, when
	// non-nil, is consumed by the next recoverInsert as its first-attempt
	// speculation; pipeExcl/pipeStops are the window's per-index stop
	// predicates (struct-of-arrays, like contendExcl/contendStops);
	// the remaining fields are the window's reused buffers.
	pipeAttempt    *specAttempt
	pipeAttemptBuf specAttempt
	// pipeDel, when non-nil, is the staged prediction for the current
	// delete's redistribution walks: one shared attempt every orphan's
	// first walk consumes (see InjectDeleteAttempts — the dense-regime
	// prediction is that all of them 0-step-hit the adopter).
	pipeDel     *specAttempt
	pipeDelBuf  specAttempt
	pipeExcl    []NodeID
	pipeStops   []func(NodeID, int32) bool
	pipeSeedBuf []uint64
	pipeSpecs   []congest.WalkSpec
	pipeOuts    []congest.WalkOutcome
	pipeIdx     []int

	// rngDraws counts uint64 draws taken from rng since construction.
	// Both draw sites (the walkSeed fallback and predrawSeedsInto) go
	// through drawU64, so a checkpoint can record the stream position and
	// a restore can fast-forward a fresh source to it — RNG state is then
	// (Seed, rngDraws, pending seedQ suffix), nothing more.
	rngDraws uint64
	// seedObserver, when set, is invoked with every walk seed the moment
	// it is consumed (walkSeed, in serial commit order). The persistence
	// layer records the per-step seed stream in WAL records with it and
	// verifies the stream during replay.
	seedObserver func(seed uint64)
	// rngReplaced marks that SetRNG swapped in a caller-owned source, so
	// (Seed, rngDraws) no longer describes the stream and the network
	// cannot be checkpointed.
	rngReplaced bool
}

// New builds an initial DEX network of n0 >= 4 nodes with ids 0..n0-1,
// mapped onto Z(p0) for the smallest prime p0 in (4*n0, 8*n0), exactly as
// Section 4's initialization prescribes.
func New(n0 int, cfg Config) (*Network, error) {
	if n0 < 4 {
		return nil, fmt.Errorf("core: initial size %d < 4", n0)
	}
	if cfg.Zeta < 2 || cfg.Theta <= 0 || cfg.Theta > 0.5 || cfg.WalkFactor < 1 || cfg.HistoryCap < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("core: invalid config %+v", cfg)
	}
	p0, ok := primes.FirstPrimeIn(int64(4*n0), int64(8*n0))
	if !ok {
		return nil, fmt.Errorf("core: no prime in (4*%d, 8*%d)", n0, n0)
	}
	z, err := pcycle.New(p0)
	if err != nil {
		return nil, err
	}
	nw := &Network{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		z:      z,
		simOf:  make([]NodeID, p0),
		nextID: NodeID(n0),
	}
	nw.initTracking()
	for u := 0; u < n0; u++ {
		nw.addNodeEntry(NodeID(u))
	}
	for x := int64(0); x < p0; x++ {
		u := NodeID(x * int64(n0) / p0)
		nw.simOf[x] = u
		nw.st.simAdd(u, x)
	}
	for u := 0; u < n0; u++ {
		nw.setLoad(NodeID(u), nw.st.simLen(NodeID(u)), true)
	}
	nw.applyRealDiff(nw.expectedRealGraph())
	nw.refreshDist0()
	return nw, nil
}

// initTracking allocates the bookkeeping shared by both constructors:
// the slot-indexed state store (O(1) node sampling, dirty-node
// tracking, vertex sets) and the audit random source. nw.real is
// assigned once here (and never replaced afterwards: rebuilds mutate it
// in place via applyRealDiff, so references stay live) and the store's
// columns grow and recycle with its slot table from here on.
func (nw *Network) initTracking() {
	nw.real = graph.New()
	nw.st.init(nw.real, nw.cfg.useMapState, nw.cfg.Zeta)
	nw.auditRng = rand.New(rand.NewSource(nw.cfg.Seed ^ 0x5eed_a0d1))
	nw.workers = nw.cfg.Workers
	if nw.workers < 1 {
		nw.workers = 1
	}
	st := &nw.st
	zeta := nw.cfg.Zeta
	lowT := 2 * zeta
	nw.steadyInsertStop = func(u NodeID, s int32) bool { return u != nw.stopExclude && st.loadAt(u, s) >= 2 }
	nw.steadyLowStop = func(u NodeID, s int32) bool { return st.loadAt(u, s) <= lowT }
	nw.holdNewStop = func(u NodeID, s int32) bool {
		return st.newLenAt(u, s) < 4*zeta && st.loadAt(u, s) < 8*zeta-1
	}
	nw.inflateP2Stop = func(u NodeID, s int32) bool { return st.loadAt(u, s) <= 6*zeta }
	nw.deflateHoldStop = func(u NodeID, s int32) bool {
		return st.loadAt(u, s) <= 6*zeta && st.effNewAt(u, s) < 4*zeta
	}
	nw.stagInsertStop = func(w NodeID, s int32) bool {
		if w == nw.stopExclude {
			return false
		}
		if nw.stagPhase2 {
			return st.newLenAt(w, s) >= 2
		}
		if st.newLenAt(w, s) >= 2 {
			return true
		}
		return st.loadAt(w, s) >= 2 && st.unprocOldAt(w, s) >= 1
	}
	nw.serialContendStop = func(w NodeID, s int32) bool { return w != nw.contendU && st.newLenAt(w, s) >= 2 }
	nw.shedStop = func(w NodeID, s int32) bool { return w != nw.shedExcl && st.effNewAt(w, s) < 4*zeta }
}

// contendStopAt returns the prebuilt predicate for window index j of a
// parallel contender round; it excludes whatever contendExcl[j] holds
// when the walk runs. The closure array grows to the window cap once.
func (nw *Network) contendStopAt(j int) func(NodeID, int32) bool {
	st := &nw.st
	for len(nw.contendStops) <= j {
		k := len(nw.contendStops)
		nw.contendExcl = append(nw.contendExcl, -1)
		nw.contendStops = append(nw.contendStops, func(w NodeID, s int32) bool {
			return w != nw.contendExcl[k] && st.newLenAt(w, s) >= 2
		})
	}
	return nw.contendStops[j]
}

// --- basic accessors -------------------------------------------------------

// Size returns the current number of real nodes n.
func (nw *Network) Size() int { return nw.st.size() }

// P returns the current p-cycle modulus.
func (nw *Network) P() int64 { return nw.z.P() }

// Cycle returns the current virtual graph (read-only).
func (nw *Network) Cycle() *pcycle.Cycle { return nw.z }

// Graph returns the live overlay graph. Treat as read-only.
func (nw *Network) Graph() *graph.Graph { return nw.real }

// Nodes returns the current node ids in ascending order.
func (nw *Network) Nodes() []NodeID { return nw.real.Nodes() }

// Load returns the total number of virtual vertices simulated by u
// (current p-cycle plus, during staggering, the next one).
func (nw *Network) Load(u NodeID) int { return nw.st.loadOf(u) }

// OwnerOf returns the node simulating virtual vertex x of the current
// p-cycle.
func (nw *Network) OwnerOf(x Vertex) NodeID { return nw.simOf[x] }

// Coordinator returns the node currently simulating vertex 0
// (Algorithm 4.7's coordinator).
func (nw *Network) Coordinator() NodeID { return nw.simOf[0] }

// Zeta returns the configured maximum cloud size zeta (Lemma 9 bounds
// every load by 4*zeta).
func (nw *Network) Zeta() int { return nw.cfg.Zeta }

// Config returns the network's configuration (a copy). Persistence uses
// it to reject resuming a checkpoint under incompatible options.
func (nw *Network) Config() Config { return nw.cfg }

// SpareCount and LowCount expose the coordinator's counters.
func (nw *Network) SpareCount() int { return nw.nSpare }

// LowCount returns |Low| = #{u : load(u) <= 2*zeta}.
func (nw *Network) LowCount() int { return nw.nLow }

// Rebuilding reports whether a staggered type-2 rebuild is in flight, and
// its phase (0 when idle).
func (nw *Network) Rebuilding() (active bool, phase int) {
	if nw.stag == nil {
		return false, 0
	}
	return true, nw.stag.phase
}

// History returns per-step metrics since creation.
func (nw *Network) History() []StepMetrics { return nw.history }

// OrphanRescues returns how many times the drop-time rescue path ran
// (see stagger.go); zero in all normal operation.
func (nw *Network) OrphanRescues() int { return nw.orphanRescues }

// FreshID returns an unused node id and advances the internal counter;
// adversaries may instead supply their own ids to Insert.
//
//dexvet:mutator
func (nw *Network) FreshID() NodeID {
	id := nw.nextID
	nw.nextID++
	return id
}

// addNodeEntry registers a fresh node with the store: graph slot (and
// hence dense columns), empty vertex set, and the O(1) sampling mirror.
func (nw *Network) addNodeEntry(u NodeID) { nw.st.addNode(u) }

// SampleNode returns a uniformly random live node id in O(1), drawing
// from r. Unlike Nodes() it performs no sorting or allocation, so
// adversaries can churn million-node networks without a per-step O(n)
// scan.
func (nw *Network) SampleNode(r *rand.Rand) NodeID {
	return nw.st.nodeList[r.Intn(len(nw.st.nodeList))]
}

// SetEdgeObserver registers a callback receiving, once per step, the
// step's net real-edge changes as a batched, deterministically sorted
// diff (nil to clear). Only net changes are reported: an edge added and
// removed within one step cancels out.
//
//dexvet:mutator
func (nw *Network) SetEdgeObserver(f func(step int, deltas []graph.EdgeDelta)) {
	nw.edgeObserver = f
	if f != nil && nw.edgeDeltas == nil {
		nw.edgeDeltas = make(map[edgeKey]int)
	}
}

// flushEdgeDeltas delivers the step's accumulated edge diff.
func (nw *Network) flushEdgeDeltas() {
	if nw.edgeObserver == nil || len(nw.edgeDeltas) == 0 {
		return
	}
	out := make([]graph.EdgeDelta, 0, len(nw.edgeDeltas))
	for k, d := range nw.edgeDeltas {
		if d != 0 {
			out = append(out, graph.EdgeDelta{U: k.u, V: k.v, Delta: d})
		}
	}
	// A rebuild's O(n)-entry diff must not leave every later clear()
	// paying for the spike's table capacity (see scratchMapResetCap).
	nw.edgeDeltas = resetScratchMap(nw.edgeDeltas)
	if len(out) == 0 {
		return
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	nw.edgeObserver(nw.step.Step, out)
}

// MaxLoad returns the maximum total load over all nodes.
func (nw *Network) MaxLoad() int {
	m := 0
	for _, u := range nw.st.nodeList {
		if l := nw.st.loadOf(u); l > m {
			m = l
		}
	}
	return m
}

// walkLen returns the type-1 walk length c*ceil(log2 n).
func (nw *Network) walkLen() int { return walkLenFor(nw.Size(), nw.cfg.WalkFactor) }

// walkLenFor is walkLen at an arbitrary network size: the pipelined
// façade predicts each insert's walk length from its predicted size at
// execution time (see pipeline.go).
func walkLenFor(n, factor int) int {
	if n < 2 {
		return 1
	}
	return factor * int(math.Ceil(math.Log2(float64(n))))
}

// --- load & set-size tracking ----------------------------------------------

// setLoad updates u's load and the |Spare| / |Low| counters. fresh marks
// a node that had no previous load entry. A no-change write is skipped
// entirely (in particular, it marks nothing dirty).
func (nw *Network) setLoad(u NodeID, l int, fresh bool) {
	old := -1
	if !fresh {
		old = nw.st.loadOf(u)
		if old == l {
			return
		}
	}
	lowT := 2 * nw.cfg.Zeta
	if !fresh {
		if old >= 2 {
			nw.nSpare--
		}
		if old <= lowT {
			nw.nLow--
		}
	}
	if l >= 2 {
		nw.nSpare++
	}
	if l <= lowT {
		nw.nLow++
	}
	nw.st.putLoadDirty(u, l)
}

// dropLoadEntry removes u from the load tracking (node deletion).
func (nw *Network) dropLoadEntry(u NodeID) {
	l := nw.st.loadOf(u)
	if l >= 2 {
		nw.nSpare--
	}
	if l <= 2*nw.cfg.Zeta {
		nw.nLow--
	}
	nw.st.clearLoad(u)
}

func (nw *Network) bumpLoad(u NodeID, delta int) {
	nw.setLoad(u, nw.st.loadOf(u)+delta, false)
}

// setLoadAt / bumpLoadAt are the slot-native load setters: identical
// counter bookkeeping to setLoad, with u's live slot already in hand so
// neither the read nor the write pays an id→slot probe. moveVertexAt
// runs both endpoints' load updates through these.
//
//dexvet:noalloc
func (nw *Network) setLoadAt(u NodeID, s int32, l int, fresh bool) {
	old := -1
	if !fresh {
		old = nw.st.loadAt(u, s)
		if old == l {
			return
		}
	}
	lowT := 2 * nw.cfg.Zeta
	if !fresh {
		if old >= 2 {
			nw.nSpare--
		}
		if old <= lowT {
			nw.nLow--
		}
	}
	if l >= 2 {
		nw.nSpare++
	}
	if l <= lowT {
		nw.nLow++
	}
	nw.st.putLoadDirtyAt(u, s, l)
}

//dexvet:noalloc
func (nw *Network) bumpLoadAt(u NodeID, s int32, delta int) {
	nw.setLoadAt(u, s, nw.st.loadAt(u, s)+delta, false)
}

// --- virtual-edge enumeration and vertex movement --------------------------

// slotTargets returns the three virtual edge slots of x in the current
// p-cycle.
func (nw *Network) slotTargets(x Vertex) [3]Vertex { return nw.z.NeighborSlots(x) }

// edgeKey canonically orders an undirected node pair for delta tracking.
type edgeKey struct{ u, v NodeID }

func pairKey(a, b NodeID) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{a, b}
}

// markDirty records that u's real-edge row or load changed this step;
// sampled audits re-verify exactly the dirty nodes. Every mutation a
// walk or stop predicate can observe funnels through here (edge rows
// via rawAdd/RemoveEdge*, loads and stagger counters via setLoad), so
// while the store's write-set is armed it doubles as the recorder that
// revalidates speculative parallel walks.
func (nw *Network) markDirty(u NodeID) { nw.st.markDirty(u) }

// rawAddEdge / rawRemoveEdge mutate the live overlay and feed the
// dirty-node set and (when observed) the step's edge-delta batch, without
// charging the paper's topology-change counter. All real-graph edge
// mutations, including rebuild diffs, go through these two functions.
func (nw *Network) rawAddEdge(a, b NodeID) {
	nw.real.AddEdge(a, b)
	nw.markDirty(a)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)]++
	}
}

func (nw *Network) rawRemoveEdge(a, b NodeID) {
	if !nw.real.RemoveEdge(a, b) {
		panic(fmt.Sprintf("core: removing absent real edge {%d,%d}", a, b))
	}
	nw.markDirty(a)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)]--
	}
}

// rawAddEdgeAt / rawRemoveEdgeAt are the slot-native forms for callers
// that already hold endpoint a's slot: moveVertex resolves its anchor
// node's slot once and reuses it for the whole three-edge batch, instead
// of paying an id->slot map probe inside every graph mutation. The graph
// treats {a,b} symmetrically, so anchoring on either endpoint is valid.
//
//dexvet:noalloc
func (nw *Network) rawAddEdgeAt(a NodeID, sa int32, b NodeID) {
	nw.real.AddEdgeAt(sa, a, b)
	nw.st.markDirtyAt(a, sa)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)]++
	}
}

//dexvet:noalloc
func (nw *Network) rawRemoveEdgeAt(a NodeID, sa int32, b NodeID) {
	if !nw.real.RemoveEdgeAt(sa, a, b) {
		panic(fmt.Sprintf("core: removing absent real edge {%d,%d}", a, b))
	}
	nw.st.markDirtyAt(a, sa)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)]--
	}
}

// rawAddEdgeMult / rawRemoveEdgeMult are the bulk forms used by the
// rebuild diff replay: one arena operation applies a whole multiplicity
// delta instead of k single-edge mutations.
func (nw *Network) rawAddEdgeMult(a, b NodeID, k int) {
	if k <= 0 {
		return
	}
	nw.real.AddEdgeMult(a, b, k)
	nw.markDirty(a)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)] += k
	}
}

func (nw *Network) rawRemoveEdgeMult(a, b NodeID, k int) {
	if k <= 0 {
		return
	}
	if got := nw.real.RemoveEdgeMult(a, b, k); got != k {
		panic(fmt.Sprintf("core: removing %d of edge {%d,%d}, only %d present", k, a, b, got))
	}
	nw.markDirty(a)
	nw.markDirty(b)
	if nw.edgeObserver != nil {
		nw.edgeDeltas[pairKey(a, b)] -= k
	}
}

// addRealEdge / removeRealEdge wrap graph mutations and count topology
// changes for the current step.
func (nw *Network) addRealEdge(a, b NodeID) {
	nw.rawAddEdge(a, b)
	nw.step.TopologyChanges++
}

func (nw *Network) removeRealEdge(a, b NodeID) {
	nw.rawRemoveEdge(a, b)
	nw.step.TopologyChanges++
}

// addRealEdgeAt / removeRealEdgeAt: slot-native counterparts.
//
//dexvet:noalloc
func (nw *Network) addRealEdgeAt(a NodeID, sa int32, b NodeID) {
	nw.rawAddEdgeAt(a, sa, b)
	nw.step.TopologyChanges++
}

//dexvet:noalloc
func (nw *Network) removeRealEdgeAt(a NodeID, sa int32, b NodeID) {
	nw.rawRemoveEdgeAt(a, sa, b)
	nw.step.TopologyChanges++
}

// moveVertex transfers current-cycle vertex x from its simulator to node
// w, updating the contraction's real edges slot by slot. During a
// staggered rebuild the pending intermediate edges anchored at x move
// with it (they are virtual edges (ySrc, x)).
func (nw *Network) moveVertex(x Vertex, w NodeID) {
	u := nw.simOf[x]
	if u == w {
		return
	}
	// Pin the anchor slots once: every removal below is incident to u and
	// every insertion to w, so the whole edge batch runs slot-native (one
	// map probe per endpoint instead of one per edge; edges are
	// undirected, so anchoring the stagger pending edges on u/w is the
	// same mutation). Both lookups are pure reads, so resolving w's slot
	// up front (rather than mid-move) changes nothing observable.
	su, ok := nw.real.SlotOf(u)
	if !ok {
		panic(fmt.Sprintf("core: moveVertex from absent node %d", u))
	}
	sw, ok := nw.real.SlotOf(w)
	if !ok {
		panic(fmt.Sprintf("core: moveVertex to absent node %d", w))
	}
	nw.moveVertexAt(x, u, w, su, sw)
}

// moveVertexAt is moveVertex with both endpoints' slots (and x's current
// simulator u) already resolved: the steady-state insert fast path holds
// all three and skips every map probe of the move — the graph edges, the
// Sim sets, and the load counters all mutate slot-native. The mutation
// sequence is exactly moveVertex's.
func (nw *Network) moveVertexAt(x Vertex, u, w NodeID, su, sw int32) {
	for _, t := range nw.slotTargets(x) {
		if nw.stag != nil && nw.stag.phase == 2 && nw.stag.dropped(t) {
			continue // edge already removed with the dropped endpoint
		}
		nw.removeRealEdgeAt(u, su, nw.endpointOwner(x, t))
	}
	if nw.stag != nil {
		for _, pe := range nw.stag.pending[x] {
			nw.removeRealEdgeAt(u, su, nw.stag.newSimOf[pe.src])
		}
	}
	nw.st.simRemoveAt(u, su, x)
	nw.bumpLoadAt(u, su, -1)
	nw.simOf[x] = w
	nw.st.simAddAt(w, sw, x)
	nw.bumpLoadAt(w, sw, 1)
	for _, t := range nw.slotTargets(x) {
		if nw.stag != nil && nw.stag.phase == 2 && nw.stag.dropped(t) {
			continue
		}
		nw.addRealEdgeAt(w, sw, nw.endpointOwner(x, t))
	}
	if nw.stag != nil {
		for _, pe := range nw.stag.pending[x] {
			nw.addRealEdgeAt(w, sw, nw.stag.newSimOf[pe.src])
		}
		// An unprocessed vertex carries its projected cloud load and its
		// pending-work accounting with it.
		if !nw.stag.processed(x) {
			proj := nw.stag.projection(x)
			nw.st.addEffNew(u, -proj)
			nw.st.addEffNew(w, proj)
			nw.st.addUnprocOld(u, -1)
			nw.st.addUnprocOld(w, 1)
		}
	}
	if nw.transferObserver != nil {
		nw.transferObserver(x, u, w)
	}
}

// SetTransferObserver registers a callback fired after each
// current-cycle vertex migration (nil to clear).
//
//dexvet:mutator
func (nw *Network) SetTransferObserver(f func(x Vertex, from, to NodeID)) {
	nw.transferObserver = f
}

// SetRNG replaces the network's random source. Construction itself is
// deterministic (the balanced virtual mapping draws no coins), so
// swapping the source right after New yields a network whose every
// random choice comes from r.
//
//dexvet:mutator
func (nw *Network) SetRNG(r *rand.Rand) {
	if r != nil {
		nw.rng = r
		nw.rngReplaced = true
	}
}

// SetRebuildObserver registers a callback fired after each virtual-graph
// replacement with the new modulus (nil to clear).
//
//dexvet:mutator
func (nw *Network) SetRebuildObserver(f func(pNew int64)) {
	nw.rebuildObserver = f
}

// SomeVertexOf exposes one (the smallest) vertex simulated at u.
func (nw *Network) SomeVertexOf(u NodeID) (Vertex, bool) { return nw.anyVertexOf(u) }

// endpointOwner resolves the simulating node of slot target t of edge
// (x, t); when t == x the edge is a self-loop at x's simulator.
func (nw *Network) endpointOwner(x, t Vertex) NodeID {
	if t == x {
		return nw.simOf[x]
	}
	return nw.simOf[t]
}

// applyRealDiff mutates the live overlay in place until it equals want,
// touching only the node pairs whose multiplicity actually differs. The
// graph pointer is never replaced, so references returned by Graph()
// stay live across type-2 rebuilds, every net change lands in the
// dirty-node set, and subscribers see one batched edge diff instead of a
// wholesale swap. The seed engine rebuilt a fresh graph here; the diff
// is what lets a rebuild re-emit only the edges that changed.
func (nw *Network) applyRealDiff(want *graph.Graph) {
	for _, u := range nw.real.Nodes() {
		if want.HasNode(u) {
			continue
		}
		for _, v := range nw.real.Neighbors(u) {
			nw.rawRemoveEdgeMult(u, v, nw.real.Multiplicity(u, v))
		}
		nw.markDirty(u)
		nw.real.RemoveNode(u)
	}
	for _, u := range want.Nodes() {
		if !nw.real.HasNode(u) {
			nw.real.AddNode(u)
			nw.markDirty(u)
		}
	}
	for _, u := range want.Nodes() {
		for _, v := range want.Neighbors(u) {
			if v < u {
				continue
			}
			d := want.Multiplicity(u, v) - nw.real.Multiplicity(u, v)
			if d > 0 {
				nw.rawAddEdgeMult(u, v, d)
			} else if d < 0 {
				nw.rawRemoveEdgeMult(u, v, -d)
			}
		}
		for _, v := range nw.real.Neighbors(u) {
			if v < u || want.Multiplicity(u, v) > 0 {
				continue
			}
			nw.rawRemoveEdgeMult(u, v, nw.real.Multiplicity(u, v))
		}
	}
}

// refreshDist0 recomputes the cached BFS tree of vertex 0 on the current
// p-cycle (used for coordinator routing charges and the DHT router).
func (nw *Network) refreshDist0() {
	nw.dist0 = nw.z.DistancesFrom(0)
}

// Dist0 returns the virtual hop distance from x to vertex 0.
func (nw *Network) Dist0(x Vertex) int { return int(nw.dist0[x]) }

// anyVertexOf returns some vertex simulated at u (smallest for
// determinism).
func (nw *Network) anyVertexOf(u NodeID) (Vertex, bool) {
	if best := nw.st.simMin(u); best >= 0 {
		return best, true
	}
	if nw.stag != nil {
		if best := nw.st.newMin(u); best >= 0 {
			return best, true
		}
	}
	return 0, false
}

// chargeCoordinatorNotify accounts the post-recovery counter update
// message from v to the coordinator (Algorithm 4.7 lines 5/11): one
// O(log n)-bit message routed along a shortest virtual path to vertex 0,
// plus the O(1) neighbor replication of the coordinator state.
func (nw *Network) chargeCoordinatorNotify(v NodeID) {
	x, ok := nw.anyVertexOf(v)
	if !ok {
		return
	}
	d := nw.z.DiameterUpperBound()
	if x >= 0 && x < int64(len(nw.dist0)) && int(nw.dist0[x]) < d {
		d = int(nw.dist0[x])
	}
	nw.step.Rounds += d
	nw.step.Messages += d
	coordDeg := nw.real.DistinctDegree(nw.simOf[0])
	nw.step.Messages += coordDeg // state replication to neighbors
	nw.step.Rounds++
}

// walkSeed draws the next token seed. Seeds pre-drawn for speculative
// parallel batches sit in a FIFO and are consumed here first; since
// this is the engine's only RNG consumer, the uint64 stream any run
// observes is identical whether or not (and how far) batches were
// speculated — the cornerstone of the worker-count determinism
// guarantee.
func (nw *Network) walkSeed() uint64 {
	var s uint64
	if nw.seedHead < len(nw.seedQ) {
		s = nw.seedQ[nw.seedHead]
		nw.seedHead++
		if nw.seedHead == len(nw.seedQ) {
			nw.seedQ = nw.seedQ[:0]
			nw.seedHead = 0
		}
	} else {
		s = nw.drawU64()
	}
	if nw.seedObserver != nil {
		nw.seedObserver(s)
	}
	return s
}

// drawU64 is the only call site of rng.Uint64: it keeps rngDraws equal
// to the number of values consumed from the source, which is what makes
// the RNG checkpointable (see EncodeState).
func (nw *Network) drawU64() uint64 {
	nw.rngDraws++
	return nw.rng.Uint64()
}

// SetSeedObserver registers a callback fired with every walk seed as it
// is consumed, in serial commit order (nil to clear). The callback must
// not reenter the network.
//
//dexvet:mutator
func (nw *Network) SetSeedObserver(f func(seed uint64)) {
	nw.seedObserver = f
}

// runWalk performs one type-1 token walk on the live overlay and charges
// its cost. The start's slot is resolved here (the walk's only id→slot
// probe); callers that already hold it use runWalkAt.
func (nw *Network) runWalk(start NodeID, exclude NodeID, stop func(NodeID, int32) bool) congest.WalkResult {
	res := congest.RandomWalkDirect(nw.real, start, exclude, nw.walkLen(), nw.walkSeed(), stop)
	nw.step.Rounds += res.Steps
	nw.step.Messages += res.Steps
	return res
}

// runWalkAt is runWalk with the start's slot already resolved: the whole
// walk — stepping, stop predicate, cost charge — touches no id→slot map.
//
//dexvet:noalloc
func (nw *Network) runWalkAt(start NodeID, startSlot int32, exclude NodeID, stop func(NodeID, int32) bool) congest.WalkResult {
	res := congest.RandomWalkDirectAt(nw.real, start, startSlot, exclude, nw.walkLen(), nw.walkSeed(), stop)
	nw.step.Rounds += res.Steps
	nw.step.Messages += res.Steps
	return res
}

// errors exposed to adversaries / examples.
var (
	ErrUnknownNode = errors.New("core: unknown node")
	ErrDuplicateID = errors.New("core: node id already present")
	ErrTooSmall    = errors.New("core: refusing to shrink below 4 nodes")
)

// newCycleChecked and newRng keep batch.go free of direct dependencies.
func newCycleChecked(p int64) (*pcycle.Cycle, error) { return pcycle.New(p) }

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// deflationFor returns the deflation map a type-2 rebuild from the
// current state may use, requiring pNew to stay at or above the live
// node count (plus, for a staggered rebuild, slack for the adversarial
// insertions its Theta(n)-step flight can absorb). Without the floor a
// small-zeta network whose loads cross 2*zeta while n is still large
// would start a deflation with pNew < n — a mapping that cannot be
// surjective, so its forced contender resolution is structurally
// infeasible and the seed implementation panicked (the documented
// zeta<=3 deep-crash corner). ok=false means no admissible prime
// exists and the rebuild must simply not run yet; loads stay bounded
// because |Low| >= 1 whenever deflation is infeasible at this floor
// (pNew >= n forces average load <= 4 right after the commit, and the
// trigger re-fires as n keeps shrinking).
func (nw *Network) deflationFor(staggered bool) (pcycle.Deflation, bool) {
	n := nw.Size()
	floor := int64(n)
	if staggered {
		floor += int64(2*nw.cfg.Theta*float64(n)) + 8
	}
	def, err := pcycle.NewDeflationFloor(nw.z.P(), floor)
	if err != nil {
		return pcycle.Deflation{}, false
	}
	return def, true
}
