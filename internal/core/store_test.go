package core

import (
	"math/rand"
	"testing"
)

// corruptLoad bumps u's stored load behind the engine's back — without
// touching counters, sets, or dirty marks — for audit-detection tests.
func (st *state) corruptLoad(u NodeID, d int) {
	if m := st.m; m != nil {
		m.load[u] += d
		return
	}
	s, ok := st.g.SlotOf(u)
	if !ok {
		panic("corruptLoad: unknown node")
	}
	sh, i := st.shardOf(s)
	sh.load[i] += int32(d)
}

// newMapConfig returns cfg with the map-backed oracle store selected.
func newMapConfig(cfg Config) Config {
	cfg.useMapState = true
	return cfg
}

// TestStoreBackendsAgreeUnderChurn drives a dense-store engine and a
// map-store engine through the identical randomized trace and checks
// the full externally observable state after every operation — the
// store-level differential gate under all the rebuild machinery.
func TestStoreBackendsAgreeUnderChurn(t *testing.T) {
	for _, mode := range []RecoveryMode{Staggered, Simplified} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		cfg.Seed = 7
		dense := mustNew(t, 16, cfg)
		oracle := mustNew(t, 16, newMapConfig(cfg))
		if dense.st.dense() == oracle.st.dense() {
			t.Fatal("backends not distinct")
		}
		rngD := rand.New(rand.NewSource(99))
		rngO := rand.New(rand.NewSource(99))
		for i := 0; i < 250; i++ {
			errD := traceStep(dense, rngD)
			errO := traceStep(oracle, rngO)
			if (errD == nil) != (errO == nil) {
				t.Fatalf("%v op %d: errors diverged: %v vs %v", mode, i, errD, errO)
			}
			if dense.LastStep() != oracle.LastStep() {
				t.Fatalf("%v op %d: metrics diverged:\ndense:  %+v\noracle: %+v", mode, i, dense.LastStep(), oracle.LastStep())
			}
		}
		equalEngineState(t, mode.String(), dense, oracle)
	}
}

// TestStoreVertexArenaRecycles checks the store's size-class free
// lists: churn at steady degree must reuse arena cells rather than
// growing the pool, and a rebuild's transient big runs must be
// reclaimed (compaction) instead of pinning the high-water mark.
func TestStoreVertexArenaRecycles(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 32, cfg)
	rng := rand.New(rand.NewSource(5))
	churn := func(steps int) {
		for i := 0; i < steps; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < 0.5 || nw.Size() <= 8 {
				if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
					t.Fatal(err)
				}
			} else if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(600) // crosses several rebuilds
	poolCells := 0
	freeCells := 0
	liveCells := 0
	for _, sh := range nw.st.shards {
		if sh == nil {
			continue
		}
		poolCells += cap(sh.arena.buf)
		freeCells += sh.arena.freeCells
		for i := range sh.sim {
			liveCells += int(sh.sim[i].n + sh.nxt[i].n)
		}
	}
	if liveCells == 0 {
		t.Fatal("no live vertex cells after churn")
	}
	// The pool may round runs up and keep some free-list slack, but it
	// must stay within a small constant of the live vertex count — the
	// compaction and shrink policies cap parked capacity at half the
	// pool plus per-run rounding.
	if poolCells > 4*liveCells+8*shardSlots {
		t.Fatalf("vertex pool holds %d cells for %d live vertices (free %d)", poolCells, liveCells, freeCells)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreSlotReuseResetsTracking inserts a node into the slot a
// deleted node freed within the same step window and checks dirty /
// spec stamps cannot leak from the dead node to its successor.
func TestStoreSlotReuseResetsTracking(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 16, cfg)
	victim := nw.Nodes()[3]
	slotBefore, _ := nw.real.SlotOf(victim)
	if err := nw.Delete(victim); err != nil {
		t.Fatal(err)
	}
	id := nw.FreshID()
	if err := nw.Insert(id, nw.Nodes()[0]); err != nil {
		t.Fatal(err)
	}
	slotAfter, ok := nw.real.SlotOf(id)
	if !ok {
		t.Fatal("inserted node has no slot")
	}
	if slotAfter != slotBefore {
		t.Skipf("slot %d not recycled to %d on this trace", slotBefore, slotAfter)
	}
	// The fresh node must be tracked as dirty for its own insert step.
	found := false
	nw.st.forEachDirty(func(u NodeID) bool {
		if u == id {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Fatal("fresh node in a recycled slot missing from the dirty set")
	}
	if err := nw.Audit(AuditSampled); err != nil {
		t.Fatal(err)
	}
}
