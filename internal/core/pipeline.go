package core

import (
	"fmt"
	"sync"

	"repro/internal/congest"
)

// This file is the engine half of the pipelined façade (dex/pipeline.go):
// primitives that let an external scheduler speculate a whole window of
// insert first attempts against the quiescent overlay, commit the window
// serially through the ordinary Insert/Delete entry points (injecting
// each speculation back just before its op runs), and defer the sampled
// audits of one window into the next, where they fan out across cores.
//
// The determinism story is unchanged from parallel.go: walk seeds come
// from the serial FIFO, an injected speculation is consumed through
// firstAttempt (which re-runs the walk in place unless seed, epoch, walk
// length, and footprint all still match), and the commits themselves are
// strictly serial. A wrong prediction by the scheduler — seed offset,
// network size, anything — therefore costs a speculation, never
// correctness.
//
// Conflict detection uses a dedicated generation-stamp column (pipeAt):
// the spec column spans one op's retry window and is re-armed mid-op by
// retryContendersParallel, while a pipeline window spans many ops and —
// unlike speculation windows — may delete nodes, so slot recycling must
// count as a touch (slotAssigned/slotReleased stamp while armed).

// PipelinedInsert carries one insert through the scheduler's speculation
// window. The caller fills the exported fields (op identity plus its
// predictions); SpeculateInserts fills the rest. A value is reusable
// across windows — the visited buffer is recycled in place.
type PipelinedInsert struct {
	ID     NodeID
	Attach NodeID
	// SizeAtExec is the predicted network size at the moment the
	// insert's first walk runs, newborn included (the engine registers
	// the node before recoverInsert).
	SizeAtExec int
	// Seed is the walk seed the serial path is predicted to draw for
	// the first attempt (from PredrawSeeds at the predicted offset).
	Seed uint64

	ok      bool
	epoch   uint64
	maxLen  int
	res     congest.WalkResult
	visited []int32
}

// PredrawSeeds tops the walk-seed FIFO up to k entries and returns a
// stable copy of the first k. The FIFO itself is consumed by walkSeed
// during the window's serial commits, so the copy tells the scheduler
// which seed the serial path will draw at each future offset.
//
//dexvet:mutator
func (nw *Network) PredrawSeeds(k int) []uint64 {
	nw.pipeSeedBuf = nw.predrawSeedsInto(nw.pipeSeedBuf, k)
	return nw.pipeSeedBuf
}

// pipeStopAt returns the reusable steady-state insert predicate for
// window index j, its exclusion flowing struct-of-arrays through
// pipeExcl (same scheme as contendStopAt — concurrent walks need one
// predicate per index, and a window must allocate no closures).
func (nw *Network) pipeStopAt(j int) func(NodeID, int32) bool {
	st := &nw.st
	for len(nw.pipeStops) <= j {
		k := len(nw.pipeStops)
		nw.pipeExcl = append(nw.pipeExcl, -1)
		nw.pipeStops = append(nw.pipeStops, func(w NodeID, s int32) bool {
			return w != nw.pipeExcl[k] && st.loadAt(w, s) >= 2
		})
	}
	return nw.pipeStops[j]
}

// SpeculateInserts runs the first-attempt walks of a window of pending
// inserts concurrently against the quiescent overlay, recording for each
// the result, its visited-slot trace, and the guards (epoch, predicted
// walk length) that InjectFirstAttempt/firstAttempt later revalidate.
// Ops whose attach point is missing, or any window taken mid-stagger
// (the staggered predicates depend on per-op phase state), are left
// unspeculated — their commits simply run the serial walk.
//
//dexvet:mutator
func (nw *Network) SpeculateInserts(ops []*PipelinedInsert) {
	for _, op := range ops {
		op.ok = false
	}
	if nw.stag != nil || len(ops) == 0 {
		return
	}
	if cap(nw.pipeOuts) < len(ops) {
		nw.pipeSpecs = make([]congest.WalkSpec, 0, len(ops))
		nw.pipeOuts = make([]congest.WalkOutcome, len(ops))
		nw.pipeIdx = make([]int, 0, len(ops))
	}
	specs, idx := nw.pipeSpecs[:0], nw.pipeIdx[:0]
	epoch := nw.specEpoch
	for i, op := range ops {
		slot, ok := nw.real.SlotOf(op.Attach)
		if !ok {
			continue
		}
		j := len(specs)
		stop := nw.pipeStopAt(j)
		nw.pipeExcl[j] = op.ID
		op.epoch = epoch
		op.maxLen = walkLenFor(op.SizeAtExec, nw.cfg.WalkFactor)
		specs = append(specs, congest.WalkSpec{
			Start:     op.Attach,
			StartSlot: slot,
			Exclude:   op.ID,
			MaxLen:    op.maxLen,
			Seed:      op.Seed,
			Stop:      stop,
		})
		idx = append(idx, i)
	}
	outs := nw.pipeOuts[:len(specs)]
	nw.runSpecWindow(specs, outs)
	for j, i := range idx {
		op := ops[i]
		op.res = outs[j].Res
		// Own the trace: the engine's walk buffers are recycled by the
		// ops committed underneath this window.
		op.visited = append(op.visited[:0], outs[j].Visited...)
		op.ok = true
	}
	nw.pipeSpecs, nw.pipeIdx = specs, idx
}

// PipelinedDelete carries one delete through the scheduler's speculation
// window. The caller fills the exported fields; SpeculateDeletes fills
// the rest. A value is reusable across windows.
//
// Delete speculation is prediction, not execution. A delete's own
// adoption phase moves every vertex the victim simulated onto the
// adopting neighbor v — rewriting v's adjacency row and load — before
// the first redistribution walk runs, so a walk taken against the
// quiescent Phase A state is stale by construction the moment it leaves
// v (this is the same force that makes intra-op orphan windows a net
// loss; see the note in parallel.go). What Phase A can do soundly is
// prove the walks never leave v at all: when the predicted post-adoption
// load, load(v) + load(victim), is within the Low threshold 2*zeta,
// every orphan's first attempt is a 0-step hit at v — an outcome that
// consumes its serial walk seed but does not depend on it. The staged
// prediction is therefore seed-free; the scheduler's seed-offset
// accounting still counts one seed per redistributed vertex so that
// later inserts in the window keep their predicted offsets.
type PipelinedDelete struct {
	ID NodeID
	// SizeAtExec is the predicted network size at the moment the
	// delete's redistribution walks run (the victim already removed).
	SizeAtExec int

	ok      bool
	v       NodeID // predicted adopting neighbor (smallest distinct)
	epoch   uint64
	maxLen  int
	visited [2]int32 // conflict footprint: adopter's slot, victim's slot
}

// SpeculateDeletes predicts each pending delete's redistribution outcome
// against the quiescent overlay. A delete is speculated only when the
// dense-regime proof holds — predicted adopter v exists and
// load(v) + load(victim) <= 2*zeta — because then every orphan walk is a
// 0-step hit at v regardless of its seed. The prediction's validity
// footprint is exactly {v's slot, victim's slot}: those two loads (and
// the victim's adjacency row, which picks v) are the only state it
// reads. Windows taken mid-stagger are left unspeculated, as are victims
// missing at Phase A (window-born nodes, bad ids) — their commits simply
// run the serial walks.
//
//dexvet:mutator
func (nw *Network) SpeculateDeletes(ops []*PipelinedDelete) {
	for _, op := range ops {
		op.ok = false
	}
	if nw.stag != nil {
		return
	}
	epoch := nw.specEpoch
	for _, op := range ops {
		idSlot, ok := nw.real.SlotOf(op.ID)
		if !ok {
			continue
		}
		v, vSlot := NodeID(-1), int32(-1)
		nw.real.ForEachNeighborAt(idSlot, func(w NodeID, ws int32, _ int) bool {
			if w != op.ID {
				v, vSlot = w, ws
				return false
			}
			return true
		})
		if v < 0 {
			continue
		}
		if nw.st.loadAt(v, vSlot)+nw.st.loadAt(op.ID, idSlot) > 2*nw.cfg.Zeta {
			continue // real walks would run post-adoption state we cannot see
		}
		op.v = v
		op.epoch = epoch
		op.maxLen = walkLenFor(op.SizeAtExec, nw.cfg.WalkFactor)
		op.visited[0], op.visited[1] = vSlot, idSlot
		op.ok = true
	}
}

// ArmPipeline resets and arms the pipeline-window write-set; every slot
// a subsequent commit touches (including slots assigned or recycled by
// inserts and deletes) is stamped until DisarmPipeline.
//
//dexvet:mutator
func (nw *Network) ArmPipeline() { nw.st.armPipe() }

// DisarmPipeline stops recording at the end of a pipelined commit window.
//
//dexvet:mutator
func (nw *Network) DisarmPipeline() { nw.st.disarmPipe() }

// pipeDisturbed reports whether any slot the speculative walk visited
// was touched by a commit since ArmPipeline.
func (nw *Network) pipeDisturbed(visited []int32) bool {
	if nw.st.pipeSize() == 0 {
		return false
	}
	for _, s := range visited {
		if nw.st.pipeHasAt(s) {
			return true
		}
	}
	return false
}

// InjectFirstAttempt stages op's speculation for the next recoverInsert:
// the disturbed flag is computed here, immediately before the op runs,
// because the insert's own self-touches (node registration, temp edge)
// land before the walk and must not count as conflicts. No-op for
// unspeculated ops.
//
//dexvet:mutator
func (nw *Network) InjectFirstAttempt(op *PipelinedInsert) {
	if !op.ok {
		return
	}
	nw.pipeAttemptBuf = specAttempt{
		seed:      op.Seed,
		epoch:     op.epoch,
		maxLen:    op.maxLen,
		res:       op.res,
		disturbed: nw.pipeDisturbed(op.visited),
	}
	nw.pipeAttempt = &nw.pipeAttemptBuf
}

// ClearInjectedAttempt drops a staged speculation that was not consumed
// (the op failed validation before reaching its first walk).
//
//dexvet:mutator
func (nw *Network) ClearInjectedAttempt() { nw.pipeAttempt = nil }

// InjectDeleteAttempts stages op's prediction for the next Delete: one
// shared attempt that every orphan's first redistribution walk consumes
// (redistributeOne). As with inserts, the disturbed flag is computed
// here, immediately before the op runs: the delete's own adoption moves
// stamp the adopter's slot during the op, and those self-touches are
// exactly what the prediction already accounts for — only *earlier*
// commits touching the footprint invalidate it. No-op for unspeculated
// ops.
//
//dexvet:mutator
func (nw *Network) InjectDeleteAttempts(op *PipelinedDelete) {
	if !op.ok {
		return
	}
	nw.pipeDelBuf = specAttempt{
		epoch:     op.epoch,
		maxLen:    op.maxLen,
		res:       congest.WalkResult{End: op.v, Hit: true},
		disturbed: nw.pipeDisturbed(op.visited[:]),
	}
	nw.pipeDel = &nw.pipeDelBuf
}

// ClearDeleteAttempts drops a staged delete prediction after its op
// commits (or fails validation), so nothing leaks into the next op —
// in particular not into batch deletes, which are never speculated.
//
//dexvet:mutator
func (nw *Network) ClearDeleteAttempts() { nw.pipeDel = nil }

// AuditPrelude is the window-level half of Audit(AuditSampled): store
// coherence plus the n <= p bound. The scheduler runs it once per
// deferred-audit batch instead of once per op.
func (nw *Network) AuditPrelude() error {
	if err := nw.st.checkCoherence(); err != nil {
		return fmt.Errorf("audit: %w", err)
	}
	if int64(nw.Size()) > nw.z.P() {
		return fmt.Errorf("audit: n=%d exceeds p=%d", nw.Size(), nw.z.P())
	}
	return nil
}

// CaptureAuditTargets records the node set Audit(AuditSampled) would
// verify right now — the step's dirty nodes (capped) plus the uniform
// sample — appending to buf and returning it. It consumes exactly the
// auditRng draws the inline audit would, so a run that defers audits
// keeps the audit RNG stream byte-identical to one that doesn't. The
// CheckNode calls themselves happen later (CheckNodesParallel), when
// the ops of the next window speculate: targets deleted in between are
// skipped there.
func (nw *Network) CaptureAuditTargets(buf []NodeID) []NodeID {
	checked := 0
	nw.st.forEachDirty(func(u NodeID) bool {
		if !nw.st.has(u) {
			return true // deleted this step
		}
		buf = append(buf, u)
		checked++
		return checked < auditDirtyCap
	})
	for i := 0; i < auditSampleSize && len(nw.st.nodeList) > 0; i++ {
		buf = append(buf, nw.SampleNode(nw.auditRng))
	}
	return buf
}

// minAuditFan is the batch size below which CheckNodesParallel stays
// serial: a handful of O(zeta) node checks costs less than waking the
// goroutines that would share them.
const minAuditFan = 32

// CheckNodesParallel runs CheckNode over ids, fanned across up to
// Workers goroutines. CheckNode is a pure read (it never touches the
// engine RNG, History, or any mutable column), so any quiescent point is
// a valid check point and the goroutines share nothing but the graph and
// the columns they read. Ids no longer alive are skipped. On multiple
// failures the lowest-index error wins, keeping reports deterministic.
func (nw *Network) CheckNodesParallel(ids []NodeID) error {
	if len(ids) == 0 {
		return nil
	}
	w := nw.workers
	if len(ids) < minAuditFan {
		w = 1
	}
	if w > len(ids) {
		w = len(ids)
	}
	if w <= 1 {
		for _, u := range ids {
			if !nw.st.has(u) {
				continue
			}
			if err := nw.CheckNode(u); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, w)
	chunk := (len(ids) + w - 1) / w
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		lo, hi := g*chunk, (g+1)*chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(g int, ids []NodeID) {
			defer wg.Done()
			for _, u := range ids {
				if !nw.st.has(u) {
					continue
				}
				if err := nw.CheckNode(u); err != nil {
					errs[g] = err
					return
				}
			}
		}(g, ids[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
