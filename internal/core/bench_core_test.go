package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// This file is the bench-core tier: the engine-state benchmarks and
// allocation-regression gates for the dense slot-indexed store, the
// per-op analogue of internal/graph's bench/alloc gates for the arena.
// BenchmarkRecoveryOp prices one steady-state recovery operation
// (delete + insert at fixed n) on the dense columns against the
// map-store oracle; the Test*Allocs gates pin the dense recovery path
// at zero allocations per op so a map or slice can't silently sneak
// back into it.

// steadyEngine builds an n-node network, churned enough that the
// store's free lists and the arena runs are at steady-state capacity,
// with history capped so metrics append-growth can't masquerade as a
// recovery-path allocation.
func steadyEngine(tb testing.TB, n int, useMap bool) *Network {
	cfg := DefaultConfig()
	cfg.HistoryCap = 128
	cfg.useMapState = useMap
	nw, err := New(64, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for nw.Size() < n {
		k := n - nw.Size()
		if k > 512 {
			k = 512
		}
		nodes := nw.Nodes()
		specs := make([]InsertSpec, k)
		for j := range specs {
			specs[j] = InsertSpec{ID: nw.FreshID(), Attach: nodes[j%len(nodes)]}
		}
		if err := nw.InsertBatch(specs); err != nil {
			tb.Fatal(err)
		}
	}
	// Settle: cross any in-flight rebuild and warm the churn path.
	for i := 0; i < 2*n/100+200; i++ {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			tb.Fatal(err)
		}
		if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
			tb.Fatal(err)
		}
	}
	return nw
}

// BenchmarkRecoveryOp measures one steady-state recovery operation — a
// delete (adoption + redistribution walks) followed by an insert
// (donor walk) at constant n — on the dense slot-indexed store versus
// the historical map store. Both engines run the identical seeded op
// stream (the two backends are byte-identical in behavior, enforced by
// TestDenseMatchesMapOracle), so the delta is pure representation
// cost. Run via `make bench-core`.
func BenchmarkRecoveryOp(b *testing.B) {
	for _, size := range []int{100000} {
		for _, backend := range []struct {
			name   string
			useMap bool
		}{{"dense", false}, {"mapstore", true}} {
			b.Run(fmt.Sprintf("%s/n=%d", backend.name, size), func(b *testing.B) {
				nw := steadyEngine(b, size, backend.useMap)
				rng := rand.New(rand.NewSource(23))
				// Start the window GC-clean: setup churns through
				// hundreds of MB, and whether the pacer fires a cycle
				// inside the short timed window is otherwise a coin
				// flip worth ±20% on ns/op (the loop itself allocates
				// nothing, so a fresh pacer epoch stays quiet).
				runtime.GC()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := nw.Delete(nw.SampleNode(rng)); err != nil {
						b.Fatal(err)
					}
					if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestRecoveryOpZeroAllocsSteadyState is the alloc-regression gate on
// the recovery path: at steady state (no type-2 rebuild in the
// window), a delete+insert pair must not allocate — walks, vertex-set
// moves, load updates, dirty tracking, and capped-history append all
// run in recycled storage. The window is placed between rebuilds by
// construction: theta*n steps separate triggers at this size, far
// more than the samples consumed.
func TestRecoveryOpZeroAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is a few thousand ops")
	}
	nw := steadyEngine(t, 4096, false)
	rng := rand.New(rand.NewSource(29))
	// One more warm lap so FreshID growth and scratch slices are sized.
	for i := 0; i < 256; i++ {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
		if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
		if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state delete+insert allocates %.2f per pair, want 0", allocs)
	}
}

// TestSpecWriteSetZeroAllocs pins the speculation write-set reset and
// membership path: arming, marking through a commit, and probing must
// not allocate once the shard columns exist — this is the read path
// pool workers race through on every revalidated batch.
func TestSpecWriteSetZeroAllocs(t *testing.T) {
	nw := mustNew(t, 64, DefaultConfig())
	nodes := nw.Nodes()
	visited := make([]int32, 0, 3)
	for _, u := range []NodeID{nodes[1], nodes[3], nodes[5]} {
		s, ok := nw.real.SlotOf(u)
		if !ok {
			t.Fatalf("node %d has no slot", u)
		}
		visited = append(visited, s)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		nw.st.armSpec()
		nw.st.markDirty(nodes[3])
		if !nw.specDisturbed(visited) {
			t.Fatal("write-set lost a mark")
		}
		nw.st.disarmSpec()
	})
	if allocs != 0 {
		t.Fatalf("spec write-set cycle allocates %.2f, want 0", allocs)
	}
}
