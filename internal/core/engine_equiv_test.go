package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestWalkFastPathMatchesEngineOnOverlay is the fidelity bridge promised
// in README.md: the direct token walk the maintainer uses for type-1
// recovery behaves identically - same endpoint, same hit flag, same step
// count (= messages = rounds) - to the goroutine message-passing
// execution on the live DEX overlay graph.
func TestWalkFastPathMatchesEngineOnOverlay(t *testing.T) {
	nw := mustNew(t, 24, DefaultConfig())
	churnQuiet(t, nw, 60)
	g := nw.Graph()
	stop := func(u graph.NodeID, _ int32) bool { return nw.Load(u) >= 2 }
	start := nw.Nodes()[0]
	for seed := uint64(1); seed <= 30; seed++ {
		d := congest.RandomWalkDirect(g, start, -1, nw.walkLen(), seed, stop)
		e := congest.NewEngine(g)
		w := congest.RandomWalkEngine(e, start, -1, nw.walkLen(), seed, stop)
		if d != w {
			t.Fatalf("seed %d: direct %+v vs engine %+v", seed, d, w)
		}
	}
}

// TestFloodMatchesCounters checks that Algorithm 4.4's flood, executed as
// a real message-passing protocol on the overlay, reports exactly the
// coordinator's |Spare| counter.
func TestFloodMatchesCounters(t *testing.T) {
	nw := mustNew(t, 24, DefaultConfig())
	churnQuiet(t, nw, 80)
	agg := congest.FloodAggregate(nw.Graph(), nw.Coordinator(), func(u graph.NodeID) int64 {
		if nw.Load(u) >= 2 {
			return 1
		}
		return 0
	})
	if int(agg.Sum) != nw.SpareCount() {
		t.Fatalf("flooded |Spare| = %d, counter = %d", agg.Sum, nw.SpareCount())
	}
	if int(agg.Count) != nw.Size() {
		t.Fatalf("flooded n = %d, actual = %d", agg.Count, nw.Size())
	}
}

func churnQuiet(t testing.TB, nw *Network, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < steps; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// --- differential oracle -------------------------------------------------------
//
// The incremental real-graph maintenance must be indistinguishable from
// recomputing the contraction from scratch after every operation. The
// helpers below are the reusable oracle: the fuzz target, the randomized
// trace tests, and the scale tests all drive churn through them.

// checkDifferentialState compares the incrementally maintained real
// graph against the full-rebuild oracle and runs the sampled audit (the
// o(n) tier must agree with the ground truth whenever the state is
// healthy).
func checkDifferentialState(nw *Network) error {
	if err := graphsEqual(nw.real, nw.expectedRealGraph()); err != nil {
		return fmt.Errorf("incremental real graph diverged from full rebuild: %w", err)
	}
	if err := nw.Audit(AuditSampled); err != nil {
		return fmt.Errorf("sampled audit disagrees with healthy state: %w", err)
	}
	return nil
}

// checkEveryNode runs the node-local audit on the whole network,
// validating wantRow against the live graph for every node (including
// mid-rebuild states with intermediate edges).
func checkEveryNode(nw *Network) error {
	for _, u := range nw.Nodes() {
		if err := nw.CheckNode(u); err != nil {
			return err
		}
	}
	return nil
}

// traceStep performs one randomized operation - single insert/delete or
// a batch - against nw, mirroring the adversarial op mix the public
// harness generates.
func traceStep(nw *Network, rng *rand.Rand) error {
	nodes := nw.Nodes()
	r := rng.Float64()
	switch {
	case r < 0.50 || nw.Size() <= 6:
		return nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
	case r < 0.85:
		return nw.Delete(nodes[rng.Intn(len(nodes))])
	case r < 0.93:
		k := 1 + rng.Intn(4)
		specs := make([]InsertSpec, k)
		for j := range specs {
			specs[j] = InsertSpec{ID: nw.FreshID(), Attach: nodes[(rng.Intn(len(nodes))+j)%len(nodes)]}
		}
		return nw.InsertBatch(specs)
	default:
		k := 1 + rng.Intn(3)
		perm := rng.Perm(len(nodes))
		victims := make([]NodeID, 0, k)
		for _, i := range perm[:k] {
			victims = append(victims, nodes[i])
		}
		err := nw.DeleteBatch(victims)
		if err != nil && nw.Size() > 4 {
			// Model-illegal batches (disconnection, no surviving
			// neighbor, too small) are legitimately rejected; the state
			// must be untouched, which the caller's oracle check proves.
			return nil
		}
		return err
	}
}

// TestDifferentialChurnTraces replays randomized churn traces -
// single ops, batches, staggered and simplified rebuilds - asserting
// after every operation that the incremental real graph is identical to
// a shadow full rebuild, and periodically that every node-local audit
// and the exhaustive invariant check agree.
func TestDifferentialChurnTraces(t *testing.T) {
	for _, mode := range []RecoveryMode{Staggered, Simplified} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", mode, seed), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.Seed = seed
				nw := mustNew(t, 12, cfg)
				rng := rand.New(rand.NewSource(seed * 101))
				for i := 0; i < 300; i++ {
					if err := traceStep(nw, rng); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					if err := checkDifferentialState(nw); err != nil {
						t.Fatalf("op %d (%s): %v", i, nw.RebuildDebug(), err)
					}
					if i%10 == 0 {
						if err := checkEveryNode(nw); err != nil {
							t.Fatalf("op %d (%s): %v", i, nw.RebuildDebug(), err)
						}
						if err := nw.CheckInvariants(); err != nil {
							t.Fatalf("op %d: %v", i, err)
						}
					}
				}
				if err := nw.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDenseMatchesMapOracle is the store-swap safety gate, mirroring
// how PR 3 gated the graph arena against graph.Ref: the dense
// slot-indexed store and the historical map store must be externally
// indistinguishable — byte-identical History, virtual mapping, loads,
// vertex sets, and overlay — through growth, deletion storms, batches,
// and both rebuild modes, at every parallel worker width and with the
// per-operation audit tiers running on both engines throughout.
func TestDenseMatchesMapOracle(t *testing.T) {
	for _, mode := range []RecoveryMode{Staggered, Simplified} {
		for _, workers := range []int{1, 4, 8} {
			for _, audit := range []AuditMode{AuditOff, AuditSampled, AuditFull} {
				if audit == AuditFull && workers == 4 {
					continue // full audit is O(p) per op; two widths suffice
				}
				t.Run(fmt.Sprintf("%v/workers=%d/audit=%v", mode, workers, audit), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.Mode = mode
					cfg.Workers = workers
					cfg.Seed = int64(19 + workers)
					dense, err := New(32, cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer dense.Close()
					cfgM := cfg
					cfgM.useMapState = true
					oracle, err := New(32, cfgM)
					if err != nil {
						t.Fatal(err)
					}
					defer oracle.Close()
					rngD := rand.New(rand.NewSource(cfg.Seed * 31))
					rngM := rand.New(rand.NewSource(cfg.Seed * 31))
					steps := 220
					if audit == AuditFull {
						steps = 120
					}
					for i := 0; i < steps; i++ {
						errD := traceStep(dense, rngD)
						errM := traceStep(oracle, rngM)
						if (errD == nil) != (errM == nil) {
							t.Fatalf("op %d: errors diverged: %v vs %v", i, errD, errM)
						}
						if dense.LastStep() != oracle.LastStep() {
							t.Fatalf("op %d: metrics diverged:\ndense:  %+v\noracle: %+v", i, dense.LastStep(), oracle.LastStep())
						}
						if err := dense.Audit(audit); err != nil {
							t.Fatalf("op %d: dense audit: %v", i, err)
						}
						if err := oracle.Audit(audit); err != nil {
							t.Fatalf("op %d: oracle audit: %v", i, err)
						}
					}
					equalEngineState(t, "after oracle churn", dense, oracle)
					if err := dense.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestDirtySetBoundedOnType1Steps asserts the tentpole's o(p) claim at
// the mechanism level: an operation that triggers no rebuild commit
// dirties O(zeta * operation footprint) nodes, independent of n and p.
func TestDirtySetBoundedOnType1Steps(t *testing.T) {
	cfg := DefaultConfig()
	nw := mustNew(t, 64, cfg)
	rng := rand.New(rand.NewSource(17))
	bound := 64 * cfg.Zeta // generous constant envelope, still ≪ p
	for i := 0; i < 400; i++ {
		nodes := nw.Nodes()
		var err error
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			t.Fatal(err)
		}
		st := nw.LastStep()
		if active, _ := nw.Rebuilding(); active || st.StaggerActive || st.Recovery != RecoveryType1 {
			continue // rebuild steps may legitimately touch more
		}
		if got := nw.st.dirtyCount(); got > bound {
			t.Fatalf("step %d: type-1 op dirtied %d nodes (> %d) at n=%d p=%d",
				i, got, bound, nw.Size(), nw.P())
		}
	}
}

// Property: arbitrary operation sequences preserve all invariants, in
// both recovery modes (testing/quick drives the op mix and seeds).
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, insertBias uint8) bool {
		cfg := DefaultConfig()
		if seed%2 == 0 {
			cfg.Mode = Simplified
		}
		cfg.Seed = seed
		nw, err := New(12, cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		p := 0.2 + float64(insertBias%60)/100.0 // insert prob in [0.2, 0.8)
		for i := 0; i < 120; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < p || nw.Size() <= 6 {
				if nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]) != nil {
					return false
				}
			} else {
				if nw.Delete(nodes[rng.Intn(len(nodes))]) != nil {
					return false
				}
			}
			if i%7 == 0 && nw.CheckInvariants() != nil {
				return false
			}
		}
		return nw.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
