package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/graph"
)

// TestWalkFastPathMatchesEngineOnOverlay is the fidelity bridge promised
// in DESIGN.md: the direct token walk the maintainer uses for type-1
// recovery behaves identically - same endpoint, same hit flag, same step
// count (= messages = rounds) - to the goroutine message-passing
// execution on the live DEX overlay graph.
func TestWalkFastPathMatchesEngineOnOverlay(t *testing.T) {
	nw := mustNew(t, 24, DefaultConfig())
	churnQuiet(t, nw, 60)
	g := nw.Graph()
	stop := func(u graph.NodeID) bool { return nw.Load(u) >= 2 }
	start := nw.Nodes()[0]
	for seed := uint64(1); seed <= 30; seed++ {
		d := congest.RandomWalkDirect(g, start, -1, nw.walkLen(), seed, stop)
		e := congest.NewEngine(g)
		w := congest.RandomWalkEngine(e, start, -1, nw.walkLen(), seed, stop)
		if d != w {
			t.Fatalf("seed %d: direct %+v vs engine %+v", seed, d, w)
		}
	}
}

// TestFloodMatchesCounters checks that Algorithm 4.4's flood, executed as
// a real message-passing protocol on the overlay, reports exactly the
// coordinator's |Spare| counter.
func TestFloodMatchesCounters(t *testing.T) {
	nw := mustNew(t, 24, DefaultConfig())
	churnQuiet(t, nw, 80)
	agg := congest.FloodAggregate(nw.Graph(), nw.Coordinator(), func(u graph.NodeID) int64 {
		if nw.Load(u) >= 2 {
			return 1
		}
		return 0
	})
	if int(agg.Sum) != nw.SpareCount() {
		t.Fatalf("flooded |Spare| = %d, counter = %d", agg.Sum, nw.SpareCount())
	}
	if int(agg.Count) != nw.Size() {
		t.Fatalf("flooded n = %d, actual = %d", agg.Count, nw.Size())
	}
}

func churnQuiet(t testing.TB, nw *Network, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < steps; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// Property: arbitrary operation sequences preserve all invariants, in
// both recovery modes (testing/quick drives the op mix and seeds).
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, insertBias uint8) bool {
		cfg := DefaultConfig()
		if seed%2 == 0 {
			cfg.Mode = Simplified
		}
		cfg.Seed = seed
		nw, err := New(12, cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		p := 0.2 + float64(insertBias%60)/100.0 // insert prob in [0.2, 0.8)
		for i := 0; i < 120; i++ {
			nodes := nw.Nodes()
			if rng.Float64() < p || nw.Size() <= 6 {
				if nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]) != nil {
					return false
				}
			} else {
				if nw.Delete(nodes[rng.Intn(len(nodes))]) != nil {
					return false
				}
			}
			if i%7 == 0 && nw.CheckInvariants() != nil {
				return false
			}
		}
		return nw.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
