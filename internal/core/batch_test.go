package core

import (
	"math/rand"
	"testing"
)

func TestInsertBatchBasic(t *testing.T) {
	nw := mustNew(t, 32, DefaultConfig())
	var specs []InsertSpec
	for i := 0; i < 8; i++ {
		specs = append(specs, InsertSpec{ID: nw.FreshID(), Attach: NodeID(i)})
	}
	if err := nw.InsertBatch(specs); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 40 {
		t.Fatalf("size = %d", nw.Size())
	}
	m := nw.LastStep()
	if m.Op != OpBatchInsert {
		t.Fatalf("op = %v", m.Op)
	}
	for _, s := range specs {
		if nw.Load(s.ID) < 1 {
			t.Fatalf("batch member %d has no vertex", s.ID)
		}
	}
}

func TestInsertBatchValidation(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	id := nw.FreshID()
	if err := nw.InsertBatch([]InsertSpec{{id, 0}, {id, 1}}); err == nil {
		t.Fatal("repeated id accepted")
	}
	if err := nw.InsertBatch([]InsertSpec{{nw.FreshID(), 999}}); err == nil {
		t.Fatal("unknown attach accepted")
	}
	var crowd []InsertSpec
	for i := 0; i < maxAttachFanIn+1; i++ {
		crowd = append(crowd, InsertSpec{nw.FreshID(), 0})
	}
	if err := nw.InsertBatch(crowd); err == nil {
		t.Fatal("fan-in restriction not enforced")
	}
	if err := nw.InsertBatch(nil); err != nil {
		t.Fatal("empty batch should be a no-op")
	}
}

func TestDeleteBatchBasic(t *testing.T) {
	nw := mustNew(t, 32, DefaultConfig())
	ids := []NodeID{3, 7, 11, 19}
	if err := nw.DeleteBatch(ids); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 28 {
		t.Fatalf("size = %d", nw.Size())
	}
	for _, id := range ids {
		if nw.Graph().HasNode(id) {
			t.Fatalf("victim %d survived", id)
		}
	}
}

func TestDeleteBatchValidation(t *testing.T) {
	nw := mustNew(t, 16, DefaultConfig())
	if err := nw.DeleteBatch([]NodeID{999}); err == nil {
		t.Fatal("unknown victim accepted")
	}
	if err := nw.DeleteBatch([]NodeID{1, 1}); err == nil {
		t.Fatal("repeated victim accepted")
	}
	var all []NodeID
	for _, u := range nw.Nodes() {
		all = append(all, u)
	}
	if err := nw.DeleteBatch(all[:13]); err != ErrTooSmall {
		t.Fatalf("expected ErrTooSmall, got %v", err)
	}
}

func TestBatchChurnEpsilonFraction(t *testing.T) {
	// Corollary 2 regime: batches of ~n/16 nodes per step, alternating
	// insert and delete bursts, invariants audited each step.
	cfg := DefaultConfig()
	cfg.Mode = Simplified
	nw := mustNew(t, 64, cfg)
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 30; step++ {
		n := nw.Size()
		batch := n / 16
		if batch < 1 {
			batch = 1
		}
		if step%2 == 0 {
			nodes := nw.Nodes()
			var specs []InsertSpec
			for i := 0; i < batch; i++ {
				specs = append(specs, InsertSpec{nw.FreshID(), nodes[rng.Intn(len(nodes))]})
			}
			if err := nw.InsertBatch(specs); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		} else {
			nodes := nw.Nodes()
			rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			var victims []NodeID
			for _, u := range nodes {
				if len(victims) == batch {
					break
				}
				victims = append(victims, u)
			}
			if err := nw.DeleteBatch(victims); err != nil {
				// Connectivity-violating victim sets are the adversary's
				// problem; skip that batch like the model forbids it.
				continue
			}
		}
		if err := nw.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestNewWithMappingFigure1(t *testing.T) {
	// Reproduce Figure 1: Z(23) mapped 4-balanced onto 7 nodes.
	owner := make([]NodeID, 23)
	for x := range owner {
		owner[x] = NodeID(x * 7 / 23) // loads 3..4
	}
	nw, err := NewWithMapping(23, owner, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 7 {
		t.Fatalf("size = %d", nw.Size())
	}
	if nw.MaxLoad() > 4 {
		t.Fatalf("mapping not 4-balanced: max load %d", nw.MaxLoad())
	}
	// The network remains operable from this custom state.
	if err := nw.Insert(nw.FreshID(), 0); err != nil {
		t.Fatal(err)
	}
	if err := nw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewWithMappingValidation(t *testing.T) {
	if _, err := NewWithMapping(23, make([]NodeID, 5), DefaultConfig()); err == nil {
		t.Fatal("length mismatch accepted")
	}
	owner := make([]NodeID, 23) // everything on node 0: load 23 ches 4*zeta=32? fine; force violation
	cfg := DefaultConfig()
	cfg.Zeta = 4
	if _, err := NewWithMapping(23, owner, cfg); err == nil {
		t.Fatal("overloaded mapping accepted")
	}
}
