package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// equalEngineState fails the test unless the two networks are in
// byte-identical externally observable states: mapping, loads, vertex
// sets, overlay edges, modulus, and per-step metrics history. It is
// backend-agnostic (the snapshots materialize either store), so the
// serial/parallel and dense/oracle gates share it.
func equalEngineState(t *testing.T, tag string, a, b *Network) {
	t.Helper()
	if a.P() != b.P() || a.Size() != b.Size() {
		t.Fatalf("%s: shape diverged: p %d vs %d, n %d vs %d", tag, a.P(), b.P(), a.Size(), b.Size())
	}
	if !reflect.DeepEqual(a.simOf, b.simOf) {
		t.Fatalf("%s: virtual mapping diverged", tag)
	}
	if !reflect.DeepEqual(a.st.loadSnapshot(), b.st.loadSnapshot()) {
		t.Fatalf("%s: load tables diverged", tag)
	}
	if !reflect.DeepEqual(a.st.simSnapshot(), b.st.simSnapshot()) {
		t.Fatalf("%s: vertex sets diverged", tag)
	}
	if !reflect.DeepEqual(a.real.Edges(), b.real.Edges()) {
		t.Fatalf("%s: overlay edge multisets diverged", tag)
	}
	if !reflect.DeepEqual(a.History(), b.History()) {
		ah, bh := a.History(), b.History()
		for i := range ah {
			if i < len(bh) && ah[i] != bh[i] {
				t.Fatalf("%s: history diverged at step %d:\nserial:   %+v\nparallel: %+v", tag, i+1, ah[i], bh[i])
			}
		}
		t.Fatalf("%s: history lengths diverged: %d vs %d", tag, len(ah), len(bh))
	}
}

// driveChurnPair drives ser and par through the identical adversarial
// trace — growth, deletion storms, batch inserts, mixed churn — and
// asserts byte-identical state after every operation.
func driveChurnPair(t *testing.T, ser, par *Network, seed int64) {
	t.Helper()
	rngS := rand.New(rand.NewSource(seed))
	rngP := rand.New(rand.NewSource(seed))
	stepBoth := func(tag string, f func(nw *Network, rng *rand.Rand) error) {
		t.Helper()
		errS := f(ser, rngS)
		errP := f(par, rngP)
		if (errS == nil) != (errP == nil) || (errS != nil && errS.Error() != errP.Error()) {
			t.Fatalf("%s: errors diverged: %v vs %v", tag, errS, errP)
		}
		if ser.LastStep() != par.LastStep() {
			t.Fatalf("%s: step metrics diverged:\nserial:   %+v\nparallel: %+v", tag, ser.LastStep(), par.LastStep())
		}
	}

	// Growth: batch inserts big enough to open speculation windows.
	for r := 0; r < 6; r++ {
		stepBoth(fmt.Sprintf("grow-batch %d", r), func(nw *Network, rng *rand.Rand) error {
			nodes := nw.Nodes()
			specs := make([]InsertSpec, 16)
			for j := range specs {
				specs[j] = InsertSpec{ID: nw.FreshID(), Attach: nodes[rng.Intn(len(nodes))]}
			}
			return nw.InsertBatch(specs)
		})
		equalEngineState(t, fmt.Sprintf("after grow-batch %d", r), ser, par)
	}

	// Deletion storms: multi-victim batches, each victim's orphans
	// fanning out through the parallel redistribute path.
	for r := 0; r < 8; r++ {
		stepBoth(fmt.Sprintf("storm %d", r), func(nw *Network, rng *rand.Rand) error {
			nodes := nw.Nodes()
			rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			k := 6
			if k > len(nodes)-8 {
				k = len(nodes) - 8
			}
			return nw.DeleteBatch(nodes[:k])
		})
		equalEngineState(t, fmt.Sprintf("after storm %d", r), ser, par)
	}

	// Mixed single-op churn to cross stagger phases and rebuilds.
	for i := 0; i < 400; i++ {
		stepBoth(fmt.Sprintf("mixed %d", i), func(nw *Network, rng *rand.Rand) error {
			nodes := nw.Nodes()
			if rng.Float64() < 0.45 || nw.Size() <= 8 {
				return nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
			}
			return nw.Delete(nodes[rng.Intn(len(nodes))])
		})
	}
	equalEngineState(t, "after mixed churn", ser, par)

	if err := par.CheckInvariants(); err != nil {
		t.Fatalf("parallel engine invariants: %v", err)
	}
}

// TestParallelMatchesSerial is the worker-count determinism gate: for a
// fixed seed, the parallel recovery path must produce byte-identical
// mapping, overlay, and History to the serial path, in both recovery
// modes. In the dense steady state the pool may legitimately never
// engage (walks resolve in O(1) hops and the engine keeps them
// serial); TestParallelMatchesSerialUnderPressure asserts engagement
// in the scarce regime where the retry tail takes over.
func TestParallelMatchesSerial(t *testing.T) {
	for _, mode := range []RecoveryMode{Staggered, Simplified} {
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.Seed = int64(42 + workers)
				ser, err := New(48, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfgP := cfg
				cfgP.Workers = workers
				par, err := New(48, cfgP)
				if err != nil {
					t.Fatal(err)
				}
				defer par.Close()
				driveChurnPair(t, ser, par, cfg.Seed)
				if sh, sm, st := ser.SpecStats(); sh != 0 || sm != 0 || st != 0 {
					t.Fatalf("serial engine touched the speculation path: hits=%d misses=%d tail=%d", sh, sm, st)
				}
				hits, misses, tail := par.SpecStats()
				t.Logf("speculation: %d hits, %d misses, %d tail walks", hits, misses, tail)
			})
		}
	}
}

// TestParallelMatchesSerialUnderPressure drives the stressed regime —
// tight zeta, delete-heavy churn — where acceptor sets shrink, walks
// miss, and the parallel retry tail takes over from the serial retry
// loop. The byte-identity bar is the same, and the trace must actually
// accumulate walk retries for the scenario to count.
func TestParallelMatchesSerialUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Zeta = 3 // tight but clear of the zeta=2 forced-contender corner
	cfg.Seed = 77
	ser, err := New(64, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgP := cfg
	cfgP.Workers = 4
	par, err := New(64, cfgP)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	rngS := rand.New(rand.NewSource(cfg.Seed))
	rngP := rand.New(rand.NewSource(cfg.Seed))
	step := func(nw *Network, rng *rand.Rand) error {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 && nw.Size() > 24 {
			return nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		return nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
	}
	for i := 0; i < 600; i++ {
		errS, errP := step(ser, rngS), step(par, rngP)
		if (errS == nil) != (errP == nil) {
			t.Fatalf("step %d: errors diverged: %v vs %v", i, errS, errP)
		}
		if ser.LastStep() != par.LastStep() {
			t.Fatalf("step %d: metrics diverged:\nserial:   %+v\nparallel: %+v", i, ser.LastStep(), par.LastStep())
		}
	}
	equalEngineState(t, "after pressure churn", ser, par)
	if ser.Totals().WalkRetries == 0 {
		t.Fatal("pressure trace produced no walk retries; retry tail unexercised")
	}
	hits, misses, tail := par.SpecStats()
	if tail == 0 {
		t.Fatal("retry tail never engaged under pressure")
	}
	t.Logf("retries=%d, spec hits=%d misses=%d tail=%d", ser.Totals().WalkRetries, hits, misses, tail)
}

// TestWorkersConfigValidation: negative widths are rejected; 0 and 1
// both mean serial.
func TestWorkersConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = -1
	if _, err := New(8, cfg); err == nil {
		t.Fatal("Workers=-1 accepted")
	}
	cfg.Workers = 0
	nw, err := New(8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nw.workers != 1 {
		t.Fatalf("Workers=0 normalized to %d, want 1", nw.workers)
	}
	nw.Close() // no pool created: must be a no-op
}
