package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/congest"
	"repro/internal/pcycle"
)

// This file implements the simplified one-step type-2 recovery
// (Algorithms 4.5 and 4.6): the entire virtual graph is replaced within
// the current step, costing O(n) topology changes and O(n log n) messages
// once, which Lemma 8 amortizes over the Omega(n) type-1 steps between
// rebuilds (Corollary 1).
//
// Both procedures share the same skeleton:
//
//  1. flood the rebuild request (counted as a plain broadcast);
//  2. compute the new p-cycle and the provisional vertex assignment
//     (clouds for inflation, dominators for deflation);
//  3. run the paper's Phase-2 token walks on the *new virtual graph* to
//     fix the provisional assignment (rebalance loads > 4*zeta after
//     inflation; re-home empty nodes after deflation);
//  4. commit: swap the virtual graph and mapping, rebuild the real graph,
//     and charge the construction costs (cycle edges O(1) rounds;
//     inverse edges one permutation-routing allowance; O(n) topology
//     changes).
//
// Running the fix-up walks on the provisional assignment before the
// single commit is equivalent to the paper's in-place order and keeps the
// graph swap atomic; the counted costs are identical.

// provisional carries the under-construction mapping during a rebuild.
type provisional struct {
	zNew  *pcycle.Cycle
	owner []NodeID            // provisional Phi'
	verts map[NodeID][]Vertex // provisional Sim', ascending per node
}

func (pv *provisional) assign(y Vertex, u NodeID) {
	pv.owner[y] = u
	pv.verts[u] = append(pv.verts[u], y)
}

// transferLast moves the largest provisional vertex of from to to and
// returns it.
func (pv *provisional) transferLast(from, to NodeID) Vertex {
	vs := pv.verts[from]
	y := vs[len(vs)-1]
	pv.verts[from] = vs[:len(vs)-1]
	pv.owner[y] = to
	pv.verts[to] = append(pv.verts[to], y)
	return y
}

// transferVertex moves a specific provisional vertex y to node to.
func (pv *provisional) transferVertex(y Vertex, to NodeID) {
	from := pv.owner[y]
	vs := pv.verts[from]
	for i, v := range vs {
		if v == y {
			vs[i] = vs[len(vs)-1]
			pv.verts[from] = vs[:len(vs)-1]
			break
		}
	}
	pv.owner[y] = to
	pv.verts[to] = append(pv.verts[to], y)
}

// virtualWalk runs a token walk of exactly T steps on the new virtual
// graph (the paper simulates it on the real network with constant
// overhead); costs are charged by the caller per epoch.
func (nw *Network) virtualWalk(z *pcycle.Cycle, start Vertex, T int) Vertex {
	cur := start
	state := nw.walkSeed()
	for s := 0; s < T; s++ {
		slots := z.NeighborSlots(cur)
		state += 0x9e3779b97f4a7c15
		h := state
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
		cur = slots[h%3]
	}
	return cur
}

// simplifiedInflate implements Algorithm 4.5. initiator floods the
// request; newborn (or -1) is a just-inserted node that receives one
// newly generated vertex from the initiator (Alg 4.5 line 6).
func (nw *Network) simplifiedInflate(initiator, newborn NodeID) {
	if nw.stag != nil {
		nw.finishStaggerNow()
	}
	r, m := congest.BroadcastCost(nw.real, initiator)
	nw.step.Rounds += r + 1
	nw.step.Messages += m
	nw.step.Floods++

	inf, err := pcycle.NewInflation(nw.z.P())
	if err != nil {
		panic(fmt.Sprintf("core: inflation: %v", err))
	}
	zNew, err := pcycle.New(inf.PNew)
	if err != nil {
		panic(fmt.Sprintf("core: inflation: %v", err))
	}
	pv := &provisional{
		zNew:  zNew,
		owner: make([]NodeID, inf.PNew),
		verts: make(map[NodeID][]Vertex, nw.Size()),
	}
	for _, u := range nw.st.nodeList {
		pv.verts[u] = nil
	}
	pOld := nw.z.P()
	for x := int64(0); x < pOld; x++ {
		u := nw.simOf[x]
		for _, y := range inf.Cloud(x) {
			pv.assign(y, u)
		}
	}
	if newborn >= 0 && len(pv.verts[newborn]) == 0 {
		if len(pv.verts[initiator]) < 2 {
			panic("core: initiator cannot spare a vertex for the newborn")
		}
		pv.transferLast(initiator, newborn)
	}

	// Phase 2: rebalance nodes with provisional load > 4*zeta via token
	// walks on Z(p_{i+1}); targets accept while their load < 2*zeta.
	zeta := nw.cfg.Zeta
	nw.rebalanceWalks(pv,
		func(u NodeID) int { return len(pv.verts[u]) - 4*zeta },  // excess per node
		func(w NodeID) bool { return len(pv.verts[w]) < 2*zeta }, // acceptance
	)

	nw.commitRebuild(pv)
}

// simplifiedDeflate implements Algorithm 4.6; initiator floods the
// request. Callers must have checked deflationFor(false) — a deflation
// whose pNew undercuts the node count cannot re-home every node.
func (nw *Network) simplifiedDeflate(initiator NodeID) {
	if nw.stag != nil {
		nw.finishStaggerNow()
	}
	r, m := congest.BroadcastCost(nw.real, initiator)
	nw.step.Rounds += r + 1
	nw.step.Messages += m
	nw.step.Floods++

	def, ok := nw.deflationFor(false)
	if !ok {
		panic(fmt.Sprintf("core: deflation from p=%d infeasible at n=%d", nw.z.P(), nw.Size()))
	}
	zNew, err := pcycle.New(def.PNew)
	if err != nil {
		panic(fmt.Sprintf("core: deflation: %v", err))
	}
	pv := &provisional{
		zNew:  zNew,
		owner: make([]NodeID, def.PNew),
		verts: make(map[NodeID][]Vertex, nw.Size()),
	}
	for _, u := range nw.st.nodeList {
		pv.verts[u] = nil
	}
	for y := int64(0); y < def.PNew; y++ {
		pv.assign(y, nw.simOf[def.DominatorOf(y)])
	}

	// Phase 2: every node whose NewSim came out empty is contending and
	// walks Z(p_s) for a non-taken vertex; owners keep one reserved
	// vertex each (their first), so donors need >= 2 vertices.
	var contenders []NodeID
	for _, u := range nw.st.nodeList {
		if len(pv.verts[u]) == 0 {
			contenders = append(contenders, u)
		}
	}
	sort.Slice(contenders, func(i, j int) bool { return contenders[i] < contenders[j] })
	reserved := make(map[NodeID]Vertex, len(pv.verts))
	for u, vs := range pv.verts {
		if len(vs) > 0 {
			reserved[u] = vs[0]
		}
	}
	T := nw.cfg.WalkFactor * int(math.Ceil(math.Log2(float64(def.PNew))))
	epochCap := 4*T + 64
	for epoch := 0; len(contenders) > 0; epoch++ {
		if epoch > epochCap {
			// Deterministic fallback so invariants survive pathological
			// randomness; counted so experiments can assert it never fires.
			nw.walkExhaustion++
			for _, u := range contenders {
				nw.fallbackAssign(pv, u, reserved)
			}
			break
		}
		nw.step.Rounds += T + 1
		var still []NodeID
		for _, u := range contenders {
			start := nw.contenderStart(def, u)
			zEnd := nw.virtualWalk(zNew, start, T)
			nw.step.Messages += T
			w := pv.owner[zEnd]
			if len(pv.verts[w]) >= 2 && reserved[w] != zEnd {
				pv.transferVertex(zEnd, u)
				reserved[u] = zEnd
			} else {
				still = append(still, u)
			}
		}
		contenders = still
	}

	nw.commitRebuild(pv)
}

// contenderStart picks the new-cycle vertex that absorbed one of u's old
// vertices, the natural walk origin for a contending node.
func (nw *Network) contenderStart(def pcycle.Deflation, u NodeID) Vertex {
	best := nw.st.simMin(u)
	if best < 0 {
		return 0
	}
	return def.NewVertexOf(best)
}

// rebalanceWalks runs the Phase-2 epochs of Algorithm 4.5: every node
// with positive excess keeps walking one token per surplus vertex per
// epoch until placed at an accepting node.
func (nw *Network) rebalanceWalks(pv *provisional, excess func(NodeID) int, accepts func(NodeID) bool) {
	T := nw.cfg.WalkFactor * int(math.Ceil(math.Log2(float64(pv.zNew.P()))))
	epochCap := 4*T + 64
	for epoch := 0; ; epoch++ {
		var heavy []NodeID
		for u := range pv.verts {
			//dexvet:allow determinism excess is a pure load query; the collected set is sorted before any token moves
			if excess(u) > 0 {
				heavy = append(heavy, u)
			}
		}
		if len(heavy) == 0 {
			return
		}
		sort.Slice(heavy, func(i, j int) bool { return heavy[i] < heavy[j] })
		if epoch > epochCap {
			nw.walkExhaustion++
			nw.fallbackRebalance(pv, heavy, excess, accepts)
			return
		}
		nw.step.Rounds += T + 1
		for _, u := range heavy {
			for k := excess(u); k > 0; k-- {
				vs := pv.verts[u]
				start := vs[len(vs)-1]
				zEnd := nw.virtualWalk(pv.zNew, start, T)
				nw.step.Messages += T
				w := pv.owner[zEnd]
				if w != u && accepts(w) {
					pv.transferLast(u, w)
				}
			}
		}
	}
}

// fallbackRebalance deterministically drains remaining excess to the
// least-loaded nodes (never triggered in the experiments; kept so the
// structure survives adversarial RNG in fuzzing).
func (nw *Network) fallbackRebalance(pv *provisional, heavy []NodeID, excess func(NodeID) int, accepts func(NodeID) bool) {
	var sinks []NodeID
	for u := range pv.verts {
		//dexvet:allow determinism accepts is a pure capacity predicate; the collected set is sorted before any token moves
		if accepts(u) {
			sinks = append(sinks, u)
		}
	}
	sort.Slice(sinks, func(i, j int) bool { return sinks[i] < sinks[j] })
	si := 0
	for _, u := range heavy {
		for excess(u) > 0 && si < len(sinks) {
			w := sinks[si]
			if !accepts(w) || w == u {
				si++
				continue
			}
			pv.transferLast(u, w)
		}
	}
}

// fallbackAssign deterministically re-homes a contender.
func (nw *Network) fallbackAssign(pv *provisional, u NodeID, reserved map[NodeID]Vertex) {
	var donors []NodeID
	for w, vs := range pv.verts {
		if len(vs) >= 2 {
			donors = append(donors, w)
		}
	}
	sort.Slice(donors, func(i, j int) bool { return donors[i] < donors[j] })
	for _, w := range donors {
		vs := pv.verts[w]
		y := vs[len(vs)-1]
		if reserved[w] == y {
			continue
		}
		pv.transferVertex(y, u)
		reserved[u] = y
		return
	}
	panic("core: no donor for contender")
}

// commitRebuild swaps in the new virtual graph and mapping, rebuilds the
// real overlay and charges the construction costs.
func (nw *Network) commitRebuild(pv *provisional) {
	oldEdges := nw.real.NumEdges()

	nw.z = pv.zNew
	p := pv.zNew.P()
	nw.simOf = pv.owner
	for u, vs := range pv.verts {
		if len(vs) == 0 {
			panic(fmt.Sprintf("core: rebuild left node %d without vertices", u))
		}
		nw.st.simReset(u, vs)
		nw.setLoad(u, len(vs), false)
	}
	// Apply the new contraction as an in-place diff: only node pairs whose
	// multiplicity actually changed are touched, the graph pointer stays
	// stable, and subscribers receive the net edge changes as one batch.
	// The counted topology-change cost below stays the paper's (tear down
	// + rebuild), independent of how small the diff happens to be.
	nw.stag = nil
	nw.specEpoch++
	nw.applyRealDiff(nw.expectedRealGraph())
	nw.refreshDist0()
	nw.rebuiltReal = true

	// Construction cost charges (Lemma 4 / Lemma 6): cycle edges are O(1)
	// rounds via the old cycle edges; inverse edges need one permutation
	// routing on a bounded-degree expander, allowed O~(log n) rounds and
	// one routed path of O(log n) hops per vertex (validated empirically
	// by experiment FIG-R).
	L := int(math.Ceil(math.Log2(float64(p))))
	nw.step.Rounds += 2 + L*L
	nw.step.Messages += int(p) + int(p)*nw.z.DiameterUpperBound()
	nw.step.TopologyChanges += oldEdges + nw.real.NumEdges()
	if nw.rebuildObserver != nil {
		nw.rebuildObserver(p)
	}
}
