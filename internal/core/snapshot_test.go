package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// encodeState serializes nw, failing the test on error.
func encodeState(t *testing.T, nw *Network) []byte {
	t.Helper()
	enc := wire.NewEncoder(nil)
	if err := nw.AppendState(enc); err != nil {
		t.Fatalf("AppendState: %v", err)
	}
	return append([]byte(nil), enc.Bytes()...)
}

// restoreState decodes a snapshot, failing the test on error.
func restoreState(t *testing.T, data []byte, workers int) *Network {
	t.Helper()
	nw, err := RestoreNetwork(wire.NewDecoder(data), workers)
	if err != nil {
		t.Fatalf("RestoreNetwork: %v", err)
	}
	return nw
}

// requireSameState compares everything observable between two engines.
func requireSameState(t *testing.T, tag string, a, b *Network) {
	t.Helper()
	if a.P() != b.P() {
		t.Fatalf("%s: P %d != %d", tag, a.P(), b.P())
	}
	if a.Size() != b.Size() {
		t.Fatalf("%s: size %d != %d", tag, a.Size(), b.Size())
	}
	if !reflect.DeepEqual(a.simOf, b.simOf) {
		t.Fatalf("%s: mappings differ", tag)
	}
	if !reflect.DeepEqual(a.st.nodeList, b.st.nodeList) {
		t.Fatalf("%s: sampling mirrors differ", tag)
	}
	if !reflect.DeepEqual(a.st.loadSnapshot(), b.st.loadSnapshot()) {
		t.Fatalf("%s: loads differ", tag)
	}
	if !reflect.DeepEqual(a.st.simSnapshot(), b.st.simSnapshot()) {
		t.Fatalf("%s: sim sets differ", tag)
	}
	if !reflect.DeepEqual(a.History(), b.History()) {
		t.Fatalf("%s: histories differ", tag)
	}
	if a.Totals() != b.Totals() {
		t.Fatalf("%s: totals differ:\n%+v\n%+v", tag, a.Totals(), b.Totals())
	}
	if err := graphsEqual(a.Graph(), b.Graph()); err != nil {
		t.Fatalf("%s: overlays differ: %v", tag, err)
	}
	if a.nSpare != b.nSpare || a.nLow != b.nLow {
		t.Fatalf("%s: counters (%d,%d) != (%d,%d)", tag, a.nSpare, a.nLow, b.nSpare, b.nLow)
	}
	aAct, aPh := a.Rebuilding()
	bAct, bPh := b.Rebuilding()
	if aAct != bAct || aPh != bPh {
		t.Fatalf("%s: rebuild state (%v,%d) != (%v,%d)", tag, aAct, aPh, bAct, bPh)
	}
}

// churnBoth applies an identical adversarial schedule to both engines,
// requiring byte-identical outcomes after every step.
func churnBoth(t *testing.T, a, b *Network, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			id := a.FreshID()
			if got := b.FreshID(); got != id {
				t.Fatalf("step %d: fresh ids diverge: %d vs %d", i, id, got)
			}
			attach := a.SampleNode(rand.New(rand.NewSource(int64(i) ^ seed)))
			if err := a.Insert(id, attach); err != nil {
				t.Fatalf("step %d: insert a: %v", i, err)
			}
			if err := b.Insert(id, attach); err != nil {
				t.Fatalf("step %d: insert b: %v", i, err)
			}
		case 2:
			victim := a.SampleNode(rand.New(rand.NewSource(int64(i) ^ seed)))
			errA := a.Delete(victim)
			errB := b.Delete(victim)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("step %d: delete diverges: %v vs %v", i, errA, errB)
			}
		default:
			id := a.FreshID()
			b.FreshID()
			attach := a.SampleNode(rand.New(rand.NewSource(int64(i) ^ seed)))
			specs := []InsertSpec{{ID: id, Attach: attach}, {ID: id + 1_000_000, Attach: attach}}
			if err := a.InsertBatch(specs); err != nil {
				t.Fatalf("step %d: batch a: %v", i, err)
			}
			if err := b.InsertBatch(specs); err != nil {
				t.Fatalf("step %d: batch b: %v", i, err)
			}
		}
		if a.LastStep() != b.LastStep() {
			t.Fatalf("step %d: metrics diverge:\n%+v\n%+v", i, a.LastStep(), b.LastStep())
		}
	}
	requireSameState(t, "after continuation churn", a, b)
	if err := a.CheckInvariants(); err != nil {
		t.Fatalf("original invariants: %v", err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("restored invariants: %v", err)
	}
	if err := graphsEqual(b.Graph(), b.RecomputeGraph()); err != nil {
		t.Fatalf("restored engine diverged from its rebuilt overlay: %v", err)
	}
}

func TestSnapshotRoundTripSteady(t *testing.T) {
	for _, mode := range []RecoveryMode{Simplified, Staggered} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%v/w%d", mode, workers), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Mode = mode
				cfg.Workers = workers
				cfg.Seed = 42
				nw, err := New(64, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer nw.Close()
				snapChurn(t, nw, 7, 300)

				data := encodeState(t, nw)
				re := restoreState(t, data, workers)
				defer re.Close()
				requireSameState(t, "immediately after restore", nw, re)
				churnBoth(t, nw, re, 99, 300)
			})
		}
	}
}

// churn drives one engine with simple random churn.
func snapChurn(t *testing.T, nw *Network, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		if rng.Intn(2) == 0 || nw.Size() <= 8 {
			if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
				t.Fatalf("churn insert: %v", err)
			}
		} else if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			t.Fatalf("churn delete: %v", err)
		}
	}
}

// TestSnapshotRoundTripMidStagger snapshots while a staggered rebuild is
// in flight — in both phases — and requires the restored engine to drive
// the rebuild to the same commit.
func TestSnapshotRoundTripMidStagger(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Workers = workers
			cfg.Seed = 11
			nw, err := New(64, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()

			rng := rand.New(rand.NewSource(5))
			snapshots := 0
			for i := 0; i < 4000 && snapshots < 4; i++ {
				if err := nw.Insert(nw.FreshID(), nw.SampleNode(rng)); err != nil {
					t.Fatal(err)
				}
				active, phase := nw.Rebuilding()
				if !active {
					continue
				}
				// Snapshot once per phase per rebuild encountered.
				if (phase == 1 && snapshots%2 == 0) || (phase == 2 && snapshots%2 == 1) {
					snapshots++
					data := encodeState(t, nw)
					re := restoreState(t, data, workers)
					requireSameState(t, fmt.Sprintf("mid-stagger phase %d", phase), nw, re)
					// Drive both to the rebuild commit and beyond.
					churnBoth(t, nw, re, int64(1000+i), 200)
					re.Close()
				}
			}
			if snapshots < 2 {
				t.Fatalf("only %d mid-stagger snapshots taken; rebuild never engaged?", snapshots)
			}
		})
	}
}

func TestSnapshotRejectsOracleAndForeignRNG(t *testing.T) {
	cfg := DefaultConfig()
	cfg.useMapState = true
	nw, err := New(16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.AppendState(wire.NewEncoder(nil)); err == nil {
		t.Fatal("AppendState accepted the map-backed oracle store")
	}

	nw2, err := New(16, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nw2.SetRNG(rand.New(rand.NewSource(7)))
	if err := nw2.AppendState(wire.NewEncoder(nil)); err == nil {
		t.Fatal("AppendState accepted a replaced RNG")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	nw, err := New(32, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snapChurn(t, nw, 9, 100)
	data := encodeState(t, nw)
	stride := len(data)/97 + 1
	for cut := 0; cut < len(data); cut += stride {
		if _, err := RestoreNetwork(wire.NewDecoder(data[:cut]), -1); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
}
