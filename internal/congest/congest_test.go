package congest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func ringGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

func expanderish(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := ringGraph(n)
	perm := rng.Perm(n)
	for i := 0; i+1 < n; i += 2 {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
	}
	return g
}

func TestEngineSendToNonNeighborPanics(t *testing.T) {
	g := ringGraph(4)
	e := NewEngine(g)
	e.SetProgram(0, func(ctx *Ctx, inbox []Message) {
		defer func() {
			if recover() == nil {
				t.Error("Send to non-neighbor did not panic")
			}
		}()
		ctx.Send(2, "x", 0, 0, 0)
	})
	e.Run([]graph.NodeID{0}, 2)
}

func TestEnginePingPong(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	e := NewEngine(g)
	count := 0
	e.SetProgram(1, func(ctx *Ctx, inbox []Message) {
		if ctx.Round == 0 {
			ctx.Send(2, "ping", 0, 0, 0)
			return
		}
		count++
	})
	e.SetProgram(2, func(ctx *Ctx, inbox []Message) {
		for _, m := range inbox {
			if m.Kind == "ping" {
				ctx.Send(m.From, "pong", 0, 0, 0)
			}
		}
	})
	rounds := e.Run([]graph.NodeID{1}, 10)
	if count != 1 {
		t.Fatalf("pong not received, count=%d", count)
	}
	if e.Messages != 2 {
		t.Fatalf("messages=%d, want 2", e.Messages)
	}
	if rounds != 3 {
		t.Fatalf("rounds=%d, want 3", rounds)
	}
}

func TestWalkEngineMatchesDirect(t *testing.T) {
	// The engine-executed token walk and the direct walk must make
	// identical choices for identical seeds: same end node, hit flag and
	// step count. This is the fidelity bridge that lets the churn
	// experiments use the fast path.
	g := expanderish(64, 3)
	stop := func(u graph.NodeID, _ int32) bool { return u%7 == 3 }
	for seed := uint64(1); seed <= 25; seed++ {
		d := RandomWalkDirect(g, 5, -1, 30, seed, stop)
		e := NewEngine(g)
		w := RandomWalkEngine(e, 5, -1, 30, seed, stop)
		if d.End != w.End || d.Hit != w.Hit || d.Steps != w.Steps {
			t.Fatalf("seed %d: direct %+v vs engine %+v", seed, d, w)
		}
		if w.Steps != e.Messages {
			t.Fatalf("seed %d: engine messages %d != steps %d", seed, e.Messages, w.Steps)
		}
	}
}

func TestWalkRespectsExclusion(t *testing.T) {
	g := expanderish(40, 9)
	const excluded = graph.NodeID(11)
	for seed := uint64(0); seed < 40; seed++ {
		res := RandomWalkDirect(g, 0, excluded, 200, seed, func(graph.NodeID, int32) bool { return false })
		_ = res
		// Re-run recording the trajectory via the stop callback.
		visited := make(map[graph.NodeID]bool)
		RandomWalkDirect(g, 0, excluded, 200, seed, func(u graph.NodeID, s int32) bool {
			if ws, ok := g.SlotOf(u); !ok || ws != s {
				t.Fatalf("seed %d: stop saw slot %d for node %d, graph says %d", seed, s, u, ws)
			}
			visited[u] = true
			return false
		})
		if visited[excluded] {
			t.Fatalf("seed %d: walk visited excluded node", seed)
		}
	}
}

func TestWalkStopsAtStart(t *testing.T) {
	g := ringGraph(5)
	res := RandomWalkDirect(g, 2, -1, 10, 1, func(u graph.NodeID, _ int32) bool { return u == 2 })
	if !res.Hit || res.Steps != 0 || res.End != 2 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWalkStuckWhenOnlyNeighborExcluded(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	res := RandomWalkDirect(g, 1, 2, 10, 1, func(graph.NodeID, int32) bool { return false })
	if res.Hit || res.Steps != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWalkWeightedByMultiplicity(t *testing.T) {
	// Node 0 has 9 parallel edges to 1 and 1 edge to 2: the walk's first
	// step should land on 1 roughly 90% of the time.
	g := graph.New()
	for i := 0; i < 9; i++ {
		g.AddEdge(0, 1)
	}
	g.AddEdge(0, 2)
	hits := 0
	const trials = 2000
	for seed := uint64(0); seed < trials; seed++ {
		res := RandomWalkDirect(g, 0, -1, 1, seed, func(u graph.NodeID, _ int32) bool { return u == 1 })
		if res.Hit {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("multiplicity weighting off: first-step fraction to 1 = %v", frac)
	}
}

func TestFloodAggregateCorrectSum(t *testing.T) {
	g := expanderish(50, 4)
	res := FloodAggregate(g, 7, func(u graph.NodeID) int64 { return int64(u) })
	want := int64(49 * 50 / 2)
	if res.Sum != want {
		t.Fatalf("sum = %d, want %d", res.Sum, want)
	}
	if res.Count != 50 {
		t.Fatalf("count = %d, want 50", res.Count)
	}
	if res.Rounds < g.Eccentricity(7) {
		t.Fatalf("rounds %d below eccentricity", res.Rounds)
	}
	// PIF costs at most one req+echo pair per directed edge.
	if res.Messages > 4*g.NumEdges() {
		t.Fatalf("messages %d exceed 4|E|=%d", res.Messages, 4*g.NumEdges())
	}
}

func TestFloodAggregateDeterministic(t *testing.T) {
	g := expanderish(64, 5)
	a := FloodAggregate(g, 0, func(u graph.NodeID) int64 { return 1 })
	b := FloodAggregate(g, 0, func(u graph.NodeID) int64 { return 1 })
	if a != b {
		t.Fatalf("non-deterministic flood: %+v vs %+v", a, b)
	}
}

func TestFloodAggregateSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode(3)
	res := FloodAggregate(g, 3, func(u graph.NodeID) int64 { return 42 })
	if res.Sum != 42 || res.Count != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestFloodAggregateQuickAgainstSpec(t *testing.T) {
	// Property: on random connected graphs, the flood sum equals the
	// direct sum and count equals n.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := expanderish(n, seed)
		res := FloodAggregate(g, graph.NodeID(rng.Intn(n)), func(u graph.NodeID) int64 {
			return int64(u) % 3
		})
		var want int64
		for _, u := range g.Nodes() {
			want += int64(u) % 3
		}
		return res.Sum == want && res.Count == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastCost(t *testing.T) {
	g := ringGraph(8)
	rounds, msgs := BroadcastCost(g, 0)
	if rounds != 4 {
		t.Fatalf("rounds = %d, want 4", rounds)
	}
	// Ring flood: initiator sends 2, everyone else forwards 1; the two
	// farthest-side duplicates still count: total = 2 + 7*1 = 9... each
	// non-initiator has fan 2, forwards fan-1 = 1. Total = 2 + 7 = 9.
	if msgs != 9 {
		t.Fatalf("messages = %d, want 9", msgs)
	}
}

func BenchmarkFloodAggregate256(b *testing.B) {
	g := expanderish(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FloodAggregate(g, 0, func(u graph.NodeID) int64 { return 1 })
	}
}

func BenchmarkRandomWalkDirect(b *testing.B) {
	g := expanderish(4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomWalkDirect(g, 0, -1, 40, uint64(i), func(graph.NodeID, int32) bool { return false })
	}
}
