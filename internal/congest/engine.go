// Package congest simulates the paper's distributed computing model: a
// synchronous message-passing network (CONGEST) in which, each round,
// every node may send one O(log n)-bit message along each incident edge,
// messages are neither lost nor corrupted, and local computation is free
// (Section 2).
//
// The engine executes one goroutine per active node per round and joins
// them with a WaitGroup, so node programs really run concurrently; the
// round barrier and deterministic inbox ordering make runs reproducible
// for a fixed seed. Every delivered message increments the message
// counter, every barrier the round counter - these counted quantities are
// the paper's complexity measures.
//
// Two protocols used by DEX are provided in protocols.go: flood/echo
// aggregation (Algorithm 4.4's computeSpare/computeLow) and token random
// walks (the type-1 recovery workhorse), each in both an engine-executed
// form and a fast direct form; the test suite proves the two forms
// produce identical traces, which is what lets the churn experiments use
// the fast forms without losing fidelity.
package congest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// NodeID aliases the graph node identifier.
type NodeID = graph.NodeID

// Message is a CONGEST message. Payload is limited to a handful of words,
// consistent with O(log n)-bit messages.
type Message struct {
	From, To NodeID
	Kind     string
	A, B, C  int64
}

// Ctx is the per-node API available to a Program during one activation.
type Ctx struct {
	ID     NodeID
	Round  int
	engine *Engine
	out    []Message
}

// Neighbors returns the node's current distinct neighbors in ascending
// order (local knowledge only).
func (c *Ctx) Neighbors() []NodeID { return c.engine.topo.Neighbors(c.ID) }

// Degree returns the node's multigraph degree.
func (c *Ctx) Degree() int { return c.engine.topo.Degree(c.ID) }

// WeightedNeighbors exposes neighbor multiplicities for multigraph walks.
func (c *Ctx) WeightedNeighbors() ([]NodeID, []int) {
	return c.engine.topo.WeightedNeighbors(c.ID)
}

// ForEachNeighbor visits the node's distinct neighbors in ascending order
// with edge multiplicities, without allocating (the arena-backed analogue
// of Neighbors; fn returns false to stop early).
func (c *Ctx) ForEachNeighbor(fn func(v NodeID, mult int) bool) {
	c.engine.topo.ForEachNeighbor(c.ID, fn)
}

// RandomNeighborStep picks a multiplicity-weighted neighbor using the
// random word r, excluding exclude (-1 to disable): the zero-allocation
// walk-hop primitive.
func (c *Ctx) RandomNeighborStep(exclude NodeID, r uint64) (NodeID, bool) {
	return c.engine.topo.RandomNeighborStep(c.ID, exclude, r)
}

// Send enqueues a message to a neighbor for delivery next round. Sending
// to a non-neighbor is a protocol bug and panics.
func (c *Ctx) Send(to NodeID, kind string, a, b, d int64) {
	if to != c.ID && !c.engine.topo.HasEdge(c.ID, to) {
		panic(fmt.Sprintf("congest: %d sending to non-neighbor %d", c.ID, to))
	}
	c.out = append(c.out, Message{From: c.ID, To: to, Kind: kind, A: a, B: b, C: d})
}

// Program is a node's message handler; it is invoked each round the node
// has mail (and at round 0 for initiators).
type Program func(ctx *Ctx, inbox []Message)

// Engine runs programs over a fixed topology snapshot.
type Engine struct {
	topo     *graph.Graph
	programs map[NodeID]Program

	// Rounds counts executed synchronous rounds; Messages counts
	// delivered messages.
	Rounds   int
	Messages int
}

// NewEngine creates an engine over the given topology. The graph is used
// read-only during Run.
func NewEngine(topo *graph.Graph) *Engine {
	return &Engine{topo: topo, programs: make(map[NodeID]Program)}
}

// SetProgram installs the handler for node id.
func (e *Engine) SetProgram(id NodeID, p Program) { e.programs[id] = p }

// SetUniformProgram installs p on every node of the topology.
func (e *Engine) SetUniformProgram(p Program) {
	for _, id := range e.topo.Nodes() {
		e.programs[id] = p
	}
}

// Run executes rounds until no messages are in flight or maxRounds is
// reached. initiators are activated in round 0 with empty inboxes.
// It returns the number of rounds executed.
func (e *Engine) Run(initiators []NodeID, maxRounds int) int {
	inflight := make(map[NodeID][]Message)
	active := make([]NodeID, len(initiators))
	copy(active, initiators)
	start := e.Rounds
	for round := 0; ; round++ {
		if len(active) == 0 && len(inflight) == 0 {
			break
		}
		if round >= maxRounds {
			break
		}
		e.Rounds++
		// Determine this round's activations: initiators (round 0) plus
		// every node with mail.
		var ids []NodeID
		if round == 0 {
			ids = append(ids, active...)
		}
		for id := range inflight {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ids = dedupe(ids)

		ctxs := make([]*Ctx, len(ids))
		var wg sync.WaitGroup
		for i, id := range ids {
			prog := e.programs[id]
			if prog == nil {
				continue
			}
			inbox := inflight[id]
			sort.Slice(inbox, func(a, b int) bool {
				ma, mb := inbox[a], inbox[b]
				if ma.From != mb.From {
					return ma.From < mb.From
				}
				if ma.Kind != mb.Kind {
					return ma.Kind < mb.Kind
				}
				if ma.A != mb.A {
					return ma.A < mb.A
				}
				return ma.B < mb.B
			})
			ctx := &Ctx{ID: id, Round: round, engine: e}
			ctxs[i] = ctx
			wg.Add(1)
			go func(p Program, c *Ctx, in []Message) {
				defer wg.Done()
				p(c, in)
			}(prog, ctx, inbox)
		}
		wg.Wait()

		next := make(map[NodeID][]Message)
		for _, ctx := range ctxs {
			if ctx == nil {
				continue
			}
			for _, m := range ctx.out {
				next[m.To] = append(next[m.To], m)
				e.Messages++
			}
		}
		inflight = next
		active = nil
	}
	return e.Rounds - start
}

func dedupe(ids []NodeID) []NodeID {
	out := ids[:0]
	var prev NodeID = -1 << 62
	for _, id := range ids {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}
