package congest

import (
	"sync"

	"repro/internal/graph"
)

// splitmix64 advances a deterministic PRNG state; walk tokens carry the
// state so the engine-executed and direct walks make identical choices.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// pickWeighted selects a neighbor of cur proportionally to edge
// multiplicity, excluding the node `exclude` (pass -1 to disable) and
// self-loops' own-node entry only when cur != loop target (self-loops are
// legitimate walk steps that stay put). It returns the chosen node and ok.
// This is the walk-hop hot path: it delegates to the graph arena's
// allocation-free RandomNeighborStep instead of materializing the
// neighbor slices, while making the identical choice for a given r.
func pickWeighted(g *graph.Graph, cur graph.NodeID, exclude graph.NodeID, r uint64) (graph.NodeID, bool) {
	return g.RandomNeighborStep(cur, exclude, r)
}

// WalkResult reports the outcome of a token random walk.
type WalkResult struct {
	End   graph.NodeID // final node of the token
	Hit   bool         // whether the stop predicate was satisfied
	Steps int          // edges traversed (= messages = rounds)
}

// RandomWalkDirect performs a multiplicity-weighted token walk of at most
// maxLen steps starting at start; it stops early when stop(node, slot) is
// true for the node the token reaches (the start node itself is tested
// first, costing no messages). exclude (-1 to disable) is never stepped
// onto - the paper excludes the freshly inserted node from insertion walks.
//
// The walk is slot-native: the start's id→slot lookup happens once, and
// every subsequent hop reads the neighbor's slot straight out of the
// arena's run cell (RandomNeighborStepAt), so the stop predicate can probe
// slot-indexed columnar state without ever touching the id→slot map. A
// start node absent from the graph yields a zero-step miss without calling
// stop.
func RandomWalkDirect(g *graph.Graph, start graph.NodeID, exclude graph.NodeID, maxLen int, seed uint64, stop func(graph.NodeID, int32) bool) WalkResult {
	cs, ok := g.SlotOf(start)
	if !ok {
		return WalkResult{End: start}
	}
	return RandomWalkDirectAt(g, start, cs, exclude, maxLen, seed, stop)
}

// RandomWalkDirectAt is RandomWalkDirect with the start's slot already
// resolved; startSlot must be start's live slot.
func RandomWalkDirectAt(g *graph.Graph, start graph.NodeID, startSlot int32, exclude graph.NodeID, maxLen int, seed uint64, stop func(graph.NodeID, int32) bool) WalkResult {
	if stop(start, startSlot) {
		return WalkResult{End: start, Hit: true, Steps: 0}
	}
	cur, cs := start, startSlot
	state := seed
	for s := 1; s <= maxLen; s++ {
		var r uint64
		state, r = splitmix64(state)
		next, ns, ok := g.RandomNeighborStepAt(cs, exclude, r)
		if !ok {
			return WalkResult{End: cur, Hit: false, Steps: s - 1}
		}
		cur, cs = next, ns
		if stop(cur, cs) {
			return WalkResult{End: cur, Hit: true, Steps: s}
		}
	}
	return WalkResult{End: cur, Hit: false, Steps: maxLen}
}

// RandomWalkEngine executes the identical walk as a token-forwarding
// program on the engine: one message per step, one activation per round.
// Intended for the equivalence tests and demonstrations; the churn
// experiments use RandomWalkDirect.
func RandomWalkEngine(e *Engine, start graph.NodeID, exclude graph.NodeID, maxLen int, seed uint64, stop func(graph.NodeID, int32) bool) WalkResult {
	var (
		mu  sync.Mutex
		res WalkResult
	)
	const tokenKind = "walk"
	// The engine activates programs by id, so this path re-resolves the
	// slot per activation; it exists for equivalence tests and demos, not
	// the recovery hot path.
	slotOf := func(u graph.NodeID) int32 {
		s, _ := e.topo.SlotOf(u)
		return s
	}
	prog := func(ctx *Ctx, inbox []Message) {
		for _, m := range inbox {
			if m.Kind != tokenKind {
				continue
			}
			steps := m.B
			state := uint64(m.A)
			mu.Lock()
			res.End = ctx.ID
			res.Steps = int(steps)
			mu.Unlock()
			if stop(ctx.ID, slotOf(ctx.ID)) {
				mu.Lock()
				res.Hit = true
				mu.Unlock()
				return
			}
			if int(steps) >= maxLen {
				return
			}
			ns, r := splitmix64(state)
			next, ok := pickWeighted(e.topo, ctx.ID, exclude, r)
			if !ok {
				return
			}
			mu.Lock()
			res.End = next
			res.Steps = int(steps) + 1
			mu.Unlock()
			ctx.Send(next, tokenKind, int64(ns), steps+1, 0)
		}
	}
	e.SetUniformProgram(prog)
	ss, ok := e.topo.SlotOf(start)
	if !ok {
		return WalkResult{End: start}
	}
	if stop(start, ss) {
		return WalkResult{End: start, Hit: true, Steps: 0}
	}
	// Bootstrap: the start node behaves as if it received the token with
	// step count 0; emulate by a self-delivered round-0 activation.
	e.SetProgram(start, func(ctx *Ctx, inbox []Message) {
		if ctx.Round == 0 && len(inbox) == 0 {
			ns, r := splitmix64(seed)
			next, ok := pickWeighted(e.topo, ctx.ID, exclude, r)
			if !ok {
				return
			}
			mu.Lock()
			res.End = next
			res.Steps = 1
			mu.Unlock()
			ctx.Send(next, tokenKind, int64(ns), 1, 0)
			return
		}
		prog(ctx, inbox)
	})
	e.Run([]graph.NodeID{start}, maxLen+2)
	mu.Lock()
	defer mu.Unlock()
	if res.Steps == 0 && !res.Hit {
		res.End = start
	}
	if res.Hit {
		return res
	}
	// A walk that ran to completion without hitting ends wherever the
	// token stopped.
	return res
}

// AggregateResult is the outcome of a flood/echo aggregation
// (Algorithm 4.4, computeSpare / computeLow / network size).
type AggregateResult struct {
	Sum      int64 // sum of value(u) over all reachable nodes
	Count    int64 // number of reachable nodes (the network size n)
	Rounds   int
	Messages int
}

// floodState is the per-node PIF state.
type floodState struct {
	seen    bool
	parent  graph.NodeID
	pending int
	sum     int64
	count   int64
}

// FloodAggregate runs the classic propagation-of-information-with-feedback
// protocol from initiator over the topology, summing value(u) across all
// nodes and counting the nodes (network size). Handlers execute in
// parallel goroutines each round; results are deterministic for a fixed
// topology, which the tests verify by running twice.
func FloodAggregate(topo *graph.Graph, initiator graph.NodeID, value func(graph.NodeID) int64) AggregateResult {
	e := NewEngine(topo)
	return floodAggregateOn(e, topo, initiator, value)
}

func floodAggregateOn(e *Engine, topo *graph.Graph, initiator graph.NodeID, value func(graph.NodeID) int64) AggregateResult {
	states := make(map[graph.NodeID]*floodState, topo.NumNodes())
	for _, id := range topo.Nodes() {
		states[id] = &floodState{}
	}
	var (
		mu  sync.Mutex
		res AggregateResult
	)
	const (
		req  = "req"
		echo = "echo"
	)
	othersOf := func(ctx *Ctx, except graph.NodeID) []graph.NodeID {
		var out []graph.NodeID
		ctx.ForEachNeighbor(func(v graph.NodeID, _ int) bool {
			if v != ctx.ID && v != except {
				out = append(out, v)
			}
			return true
		})
		return out
	}
	finish := func(ctx *Ctx, st *floodState) {
		if ctx.ID == initiator {
			mu.Lock()
			res.Sum = st.sum
			res.Count = st.count
			mu.Unlock()
			return
		}
		ctx.Send(st.parent, echo, st.sum, st.count, 0)
	}
	prog := func(ctx *Ctx, inbox []Message) {
		st := states[ctx.ID]
		if ctx.Round == 0 && len(inbox) == 0 && ctx.ID == initiator {
			st.seen = true
			st.parent = ctx.ID
			st.sum = value(ctx.ID)
			st.count = 1
			nbrs := othersOf(ctx, ctx.ID)
			st.pending = len(nbrs)
			for _, v := range nbrs {
				ctx.Send(v, req, 0, 0, 0)
			}
			if st.pending == 0 {
				finish(ctx, st)
			}
			return
		}
		for _, m := range inbox {
			switch m.Kind {
			case req:
				if st.seen {
					// Duplicate request: answer with an empty echo so the
					// sender's pending count settles.
					ctx.Send(m.From, echo, 0, 0, 0)
					continue
				}
				st.seen = true
				st.parent = m.From
				st.sum = value(ctx.ID)
				st.count = 1
				nbrs := othersOf(ctx, m.From)
				st.pending = len(nbrs)
				for _, v := range nbrs {
					ctx.Send(v, req, 0, 0, 0)
				}
				if st.pending == 0 {
					finish(ctx, st)
				}
			case echo:
				st.sum += m.A
				st.count += m.B
				st.pending--
				if st.pending == 0 && st.seen {
					finish(ctx, st)
				}
			}
		}
	}
	e.SetUniformProgram(prog)
	rounds := e.Run([]graph.NodeID{initiator}, 4*topo.NumNodes()+8)
	res.Rounds = rounds
	res.Messages = e.Messages
	return res
}

// BroadcastCost returns the rounds and messages of a plain flood from
// initiator: every node forwards the notice to all neighbors on first
// receipt (the Section 3 strawman uses this). Computed analytically from
// BFS; rounds = eccentricity, messages = sum over nodes of forwarded
// copies.
func BroadcastCost(topo *graph.Graph, initiator graph.NodeID) (rounds, messages int) {
	dist := topo.BFSDistances(initiator)
	for id, d := range dist {
		if d > rounds {
			rounds = d
		}
		fan := topo.DistinctDegree(id)
		if id == initiator {
			messages += fan
		} else if fan > 0 {
			messages += fan - 1
		}
	}
	return rounds, messages
}
