package congest

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file provides the worker-pool substrate for parallel type-1
// recovery: the engine speculatively runs a batch of independent token
// walks concurrently against the (momentarily quiescent) overlay, then
// commits their outcomes serially. Determinism is the caller's job —
// each walk carries its own splitmix64 seed drawn in serial order, and
// the commit path revalidates every speculation — so the pool itself is
// a plain fork-join executor over pure-read walks.

// RandomWalkTraceInto performs exactly the walk RandomWalkDirectAt would
// perform (same choices for the same seed and graph) while appending to
// buf the *slot* of every node whose state the walk read: the start node
// and every node the token reached. The trace is what lets a speculative
// walk be revalidated after earlier commits mutate the graph — a walk
// whose visited slots all kept their adjacency rows and predicate inputs
// unchanged must produce the identical result. Slots are the natural
// trace currency: revalidation probes slot-stamped spec state directly,
// and a recycled slot (node removed, slot reused) is exactly the kind of
// disturbance the revalidator must see. startSlot must be start's live
// slot. buf is reused via buf[:0] by callers; the returned slice aliases
// it.
func RandomWalkTraceInto(g *graph.Graph, start graph.NodeID, startSlot int32, exclude graph.NodeID, maxLen int, seed uint64, stop func(graph.NodeID, int32) bool, buf []int32) (WalkResult, []int32) {
	buf = append(buf, startSlot)
	if stop(start, startSlot) {
		return WalkResult{End: start, Hit: true, Steps: 0}, buf
	}
	cur, cs := start, startSlot
	state := seed
	for s := 1; s <= maxLen; s++ {
		var r uint64
		state, r = splitmix64(state)
		next, ns, ok := g.RandomNeighborStepAt(cs, exclude, r)
		if !ok {
			return WalkResult{End: cur, Hit: false, Steps: s - 1}, buf
		}
		cur, cs = next, ns
		buf = append(buf, cs)
		if stop(cur, cs) {
			return WalkResult{End: cur, Hit: true, Steps: s}, buf
		}
	}
	return WalkResult{End: cur, Hit: false, Steps: maxLen}, buf
}

// WalkSpec describes one speculative walk of a batch. StartSlot must be
// Start's live slot at batch-build time; the builder resolves it once so
// the workers never touch the id→slot map.
type WalkSpec struct {
	Start     graph.NodeID
	StartSlot int32
	Exclude   graph.NodeID // -1 to disable
	MaxLen    int
	Seed      uint64
	Stop      func(graph.NodeID, int32) bool // must be safe for concurrent pure reads
}

// WalkOutcome is the result of one speculative walk: the outcome plus
// the visited-slot trace used for commit-time revalidation. Visited's
// backing array is owned by the caller and reused across batches.
type WalkOutcome struct {
	Res     WalkResult
	Visited []int32
}

// WalkPool runs batches of independent walks across a fixed set of
// worker goroutines. The workers only ever read the graph (walk
// stepping and stop predicates are pure), so a batch may run without
// locks as long as no goroutine mutates the graph until RunBatch
// returns. Workers park between batches; Close releases them.
type WalkPool struct {
	workers int
	work    chan *walkBatch
	close   sync.Once
}

type walkBatch struct {
	g     *graph.Graph
	specs []WalkSpec
	out   []WalkOutcome
	next  atomic.Int64
	wg    sync.WaitGroup
}

// NewWalkPool creates a pool of the given width. workers <= 1 yields a
// pool that runs batches on the calling goroutine only.
func NewWalkPool(workers int) *WalkPool {
	if workers < 1 {
		workers = 1
	}
	p := &WalkPool{workers: workers, work: make(chan *walkBatch, workers)}
	for i := 1; i < workers; i++ {
		go func() {
			for b := range p.work {
				b.run()
			}
		}()
	}
	return p
}

// Workers returns the pool width.
func (p *WalkPool) Workers() int { return p.workers }

// RunBatch executes specs[i] into out[i] for every i, returning when
// the whole batch is done. The calling goroutine participates, so a
// batch of one costs no synchronization beyond an atomic add. The graph
// must not be mutated while RunBatch runs.
func (p *WalkPool) RunBatch(g *graph.Graph, specs []WalkSpec, out []WalkOutcome) {
	if len(specs) == 0 {
		return
	}
	b := &walkBatch{g: g, specs: specs, out: out}
	b.wg.Add(len(specs))
	helpers := p.workers - 1
	if helpers > len(specs)-1 {
		helpers = len(specs) - 1
	}
	for i := 0; i < helpers; i++ {
		p.work <- b
	}
	b.run()
	b.wg.Wait()
}

func (b *walkBatch) run() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= len(b.specs) {
			return
		}
		s := b.specs[i]
		res, vis := RandomWalkTraceInto(b.g, s.Start, s.StartSlot, s.Exclude, s.MaxLen, s.Seed, s.Stop, b.out[i].Visited[:0])
		b.out[i].Res = res
		b.out[i].Visited = vis
		b.wg.Done()
	}
}

// Close releases the pool's worker goroutines. Idempotent; a closed
// pool must not be handed another RunBatch.
func (p *WalkPool) Close() {
	p.close.Do(func() { close(p.work) })
}
