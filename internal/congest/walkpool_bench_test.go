package congest

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// BenchmarkWalkBatchPool prices the fork-join walk substrate on the
// batch shape the engine's retry tail dispatches under rebuild
// pressure: full-length walks whose stop predicate is scarce (here:
// never satisfied), on an expander big enough that every hop is a
// cache miss. This is the component-level scaling bound for parallel
// type-1 recovery; end-to-end speedup is further capped by how much of
// a recovery step is walking (see BenchmarkRecoveryParallel). On a
// single-CPU host all widths must be at parity — the regression this
// guards is the pool costing more than it can return.
func BenchmarkWalkBatchPool(b *testing.B) {
	const (
		nodes   = 1 << 17
		batch   = 64
		walkLen = 68 // 4*ceil(log2 n)
	)
	g := expanderish(nodes, 9)
	stop := func(graph.NodeID, int32) bool { return false }
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := NewWalkPool(workers)
			defer p.Close()
			specs := make([]WalkSpec, batch)
			outs := make([]WalkOutcome, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range specs {
					start := graph.NodeID((i*batch + j*977) % nodes)
					slot, _ := g.SlotOf(start)
					specs[j] = WalkSpec{
						Start:     start,
						StartSlot: slot,
						Exclude:   -1,
						MaxLen:    walkLen,
						Seed:      uint64(i*batch + j),
						Stop:      stop,
					}
				}
				p.RunBatch(g, specs, outs)
			}
		})
	}
}
