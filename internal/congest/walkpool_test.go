package congest

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestWalkTraceMatchesDirect: for any seed, the traced walk and the
// direct walk make identical choices, and the trace records the start
// plus every node the token reached.
func TestWalkTraceMatchesDirect(t *testing.T) {
	g := expanderish(64, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		start := graph.NodeID(rng.Intn(64))
		exclude := graph.NodeID(-1)
		if i%3 == 0 {
			exclude = graph.NodeID(rng.Intn(64))
		}
		seed := rng.Uint64()
		maxLen := 1 + rng.Intn(24)
		target := graph.NodeID(rng.Intn(64))
		stop := func(u graph.NodeID, _ int32) bool { return u == target }
		want := RandomWalkDirect(g, start, exclude, maxLen, seed, stop)
		startSlot, _ := g.SlotOf(start)
		got, trace := RandomWalkTraceInto(g, start, startSlot, exclude, maxLen, seed, stop, nil)
		if got != want {
			t.Fatalf("traced walk diverged: got %+v want %+v", got, want)
		}
		if len(trace) != want.Steps+1 {
			t.Fatalf("trace length %d, want steps+1 = %d", len(trace), want.Steps+1)
		}
		// The trace carries slots; map the endpoints back to ids.
		first, _ := g.NodeAt(trace[0])
		last, _ := g.NodeAt(trace[len(trace)-1])
		if first != start || last != want.End {
			t.Fatalf("trace endpoints %d..%d, want %d..%d", first, last, start, want.End)
		}
	}
}

// TestWalkPoolMatchesSerial: a pooled batch produces, per index, the
// identical outcome a serial loop over RandomWalkDirect produces —
// at every pool width, with outcome buffers reused across batches.
func TestWalkPoolMatchesSerial(t *testing.T) {
	g := expanderish(128, 7)
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewWalkPool(workers)
		rng := rand.New(rand.NewSource(int64(workers)))
		out := make([]WalkOutcome, 64)
		for round := 0; round < 20; round++ {
			n := 1 + rng.Intn(64)
			specs := make([]WalkSpec, n)
			for i := range specs {
				target := graph.NodeID(rng.Intn(128))
				start := graph.NodeID(rng.Intn(128))
				startSlot, _ := g.SlotOf(start)
				specs[i] = WalkSpec{
					Start:     start,
					StartSlot: startSlot,
					Exclude:   -1,
					MaxLen:    1 + rng.Intn(30),
					Seed:      rng.Uint64(),
					Stop:      func(u graph.NodeID, _ int32) bool { return u == target },
				}
			}
			p.RunBatch(g, specs, out[:n])
			for i, s := range specs {
				want := RandomWalkDirect(g, s.Start, s.Exclude, s.MaxLen, s.Seed, s.Stop)
				if out[i].Res != want {
					t.Fatalf("workers=%d round=%d walk %d: got %+v want %+v", workers, round, i, out[i].Res, want)
				}
				if len(out[i].Visited) != want.Steps+1 {
					t.Fatalf("workers=%d walk %d: trace length %d, want %d", workers, i, len(out[i].Visited), want.Steps+1)
				}
			}
		}
		p.Close()
		p.Close() // idempotent
	}
}
