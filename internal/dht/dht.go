// Package dht implements the distributed hash table of Section 4.4.4 on
// top of a DEX-maintained overlay.
//
// Every node knows the current p-cycle modulus s, so all nodes share the
// hash function h_s mapping keys uniformly onto the virtual vertex set.
// A key k lives at the node simulating vertex h_s(k); insert and lookup
// route O(log n)-bit messages along virtual shortest paths, which every
// node can compute locally (Fact 1 maps them to real paths).
//
// The router charges hops along the coordinator's BFS tree (up from the
// origin vertex to vertex 0, down to the target), a compact-routing
// scheme at most 2x the true shortest path and still O(log n); the DHT
// experiment verifies the logarithmic shape.
//
// Data follows the mapping: when DEX transfers a virtual vertex between
// nodes, that vertex's items move with it (one message per item), and
// when the virtual graph is replaced by inflation or deflation every item
// re-homes under the new hash function - the paper piggybacks this on the
// staggered rebuild at constant overhead, and the migration counters here
// expose exactly that cost.
//
// A DHT watches its network through the public dex event stream, so any
// number of DHTs (and other subscribers: metrics collectors, loggers)
// may observe one network concurrently; Close detaches a DHT without
// disturbing its peers.
package dht

import (
	"hash/fnv"

	"repro/dex"
)

// Stats reports the cost of one DHT operation in the paper's measures.
type Stats struct {
	Rounds   int
	Messages int
}

// DHT is a key/value store layered over a DEX network.
type DHT struct {
	nw     *dex.Network
	cancel func()

	items       map[string]string
	vertexItems map[dex.Vertex]int // #items homed at each virtual vertex
	p           int64

	// MigrationMessages accumulates item-movement costs caused by vertex
	// transfers and virtual-graph rebuilds.
	MigrationMessages int
	// Rehashes counts virtual-graph replacements observed.
	Rehashes int
}

// New attaches a DHT to the network by subscribing to its event stream.
// Multiple DHTs and other subscribers may observe the same network.
func New(nw *dex.Network) *DHT {
	d := &DHT{
		nw:          nw,
		items:       make(map[string]string),
		vertexItems: make(map[dex.Vertex]int),
		p:           nw.P(),
	}
	d.cancel = nw.Subscribe(d.onEvent)
	return d
}

// Close detaches the DHT from the network's event stream; the stored
// items remain readable but stop tracking churn. Idempotent.
func (d *DHT) Close() { d.cancel() }

// onEvent keeps item placement in sync with the overlay's self-healing.
func (d *DHT) onEvent(ev dex.Event) {
	switch e := ev.(type) {
	case dex.VertexTransferred:
		if n := d.vertexItems[e.Vertex]; n > 0 {
			// The vertex's items ride along the transfer: one message
			// each over the freshly established edge.
			d.MigrationMessages += n
		}
	case dex.GraphRebuilt:
		d.rehash(e.NewP)
	}
}

// hash maps a key to a virtual vertex under the current modulus.
func (d *DHT) hash(key string) dex.Vertex {
	h := fnv.New64a()
	h.Write([]byte(key))
	return dex.Vertex(h.Sum64() % uint64(d.p))
}

// rehash re-homes every item under the new modulus, charging one routed
// message per item (the per-step constant-factor overhead of the paper's
// staggered hand-off, aggregated).
func (d *DHT) rehash(pNew int64) {
	d.Rehashes++
	d.p = pNew
	d.vertexItems = make(map[dex.Vertex]int, len(d.vertexItems))
	for k := range d.items {
		d.vertexItems[d.hash(k)]++
		d.MigrationMessages++
	}
}

// routeHops returns the hop count of the tree route from vertex x to
// vertex z (up to vertex 0, down to z).
func (d *DHT) routeHops(x, z dex.Vertex) int {
	return d.nw.Dist0(x) + d.nw.Dist0(z)
}

// originVertex picks the virtual vertex of the requesting node.
func (d *DHT) originVertex(origin dex.NodeID) dex.Vertex {
	x, ok := d.nw.SomeVertexOf(origin)
	if !ok {
		return 0
	}
	return x
}

// Put stores (key, value), initiated by node origin, and returns the
// operation cost.
func (d *DHT) Put(origin dex.NodeID, key, value string) Stats {
	z := d.hash(key)
	hops := d.routeHops(d.originVertex(origin), z)
	if _, existed := d.items[key]; !existed {
		d.vertexItems[z]++
	}
	d.items[key] = value
	return Stats{Rounds: hops, Messages: hops}
}

// Get looks up key from node origin; found is false for absent keys. The
// cost covers the request route and the response route back.
func (d *DHT) Get(origin dex.NodeID, key string) (value string, found bool, s Stats) {
	z := d.hash(key)
	hops := d.routeHops(d.originVertex(origin), z)
	value, found = d.items[key]
	return value, found, Stats{Rounds: 2 * hops, Messages: 2 * hops}
}

// Delete removes key, returning whether it existed and the cost.
func (d *DHT) Delete(origin dex.NodeID, key string) (bool, Stats) {
	z := d.hash(key)
	hops := d.routeHops(d.originVertex(origin), z)
	_, existed := d.items[key]
	if existed {
		delete(d.items, key)
		if d.vertexItems[z] > 0 {
			d.vertexItems[z]--
		}
	}
	return existed, Stats{Rounds: hops, Messages: hops}
}

// Len returns the number of stored items.
func (d *DHT) Len() int { return len(d.items) }

// Owner returns the node currently responsible for key.
func (d *DHT) Owner(key string) dex.NodeID { return d.nw.OwnerOf(d.hash(key)) }

// ItemsPerNode returns the storage load distribution over real nodes,
// the balance claim of Section 4.4.4.
func (d *DHT) ItemsPerNode() map[dex.NodeID]int {
	out := make(map[dex.NodeID]int)
	for _, u := range d.nw.Nodes() {
		out[u] = 0
	}
	for x, n := range d.vertexItems {
		if n > 0 && x < d.nw.P() {
			out[d.nw.OwnerOf(x)] += n
		}
	}
	return out
}
