package dht

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/dex"
)

func newNet(t testing.TB, n0 int) *dex.Network {
	t.Helper()
	nw, err := dex.New(dex.WithInitialSize(n0))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestPutGetDelete(t *testing.T) {
	nw := newNet(t, 16)
	d := New(nw)
	s := d.Put(0, "alpha", "1")
	if s.Messages <= 0 {
		t.Fatal("Put cost not recorded")
	}
	v, ok, s2 := d.Get(1, "alpha")
	if !ok || v != "1" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if s2.Messages < s.Messages {
		t.Fatal("Get should cost a round trip")
	}
	if _, ok, _ := d.Get(1, "missing"); ok {
		t.Fatal("found a missing key")
	}
	existed, _ := d.Delete(2, "alpha")
	if !existed || d.Len() != 0 {
		t.Fatal("Delete failed")
	}
	if existed, _ := d.Delete(2, "alpha"); existed {
		t.Fatal("double delete reported existing")
	}
}

func TestGetAfterPutSurvivesChurn(t *testing.T) {
	nw := newNet(t, 24)
	d := New(nw)
	keys := make(map[string]string)
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		keys[k] = v
		d.Put(0, k, v)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
	}
	origin := nw.Nodes()[0]
	for k, want := range keys {
		got, ok, _ := d.Get(origin, k)
		if !ok || got != want {
			t.Fatalf("key %q lost across churn: %q,%v", k, got, ok)
		}
	}
	if d.Rehashes == 0 {
		// 300 insert-heavy steps from n=24 should have inflated at least once.
		t.Log("note: no rehash occurred in this run")
	}
}

func TestRehashOnInflation(t *testing.T) {
	nw := newNet(t, 16)
	d := New(nw)
	for i := 0; i < 50; i++ {
		d.Put(0, fmt.Sprintf("k%d", i), "v")
	}
	p0 := nw.P()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 400 && nw.P() == p0; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if nw.P() == p0 {
		t.Fatal("network never inflated")
	}
	if d.Rehashes == 0 {
		t.Fatal("DHT did not observe the rebuild")
	}
	if d.MigrationMessages == 0 {
		t.Fatal("no migration cost recorded")
	}
	got, ok, _ := d.Get(nw.Nodes()[0], "k7")
	if !ok || got != "v" {
		t.Fatal("item lost across inflation")
	}
}

func TestRouteCostLogarithmic(t *testing.T) {
	// Section 4.4.4: insert and lookup take O(log n) rounds/messages.
	nw := newNet(t, 256)
	d := New(nw)
	bound := 8 * int(math.Ceil(math.Log2(float64(nw.P()))))
	for i := 0; i < 100; i++ {
		s := d.Put(nw.Nodes()[i%nw.Size()], fmt.Sprintf("key-%d", i), "v")
		if s.Messages > bound {
			t.Fatalf("Put cost %d exceeds O(log n) bound %d", s.Messages, bound)
		}
	}
}

func TestStorageBalanced(t *testing.T) {
	// Uniform hashing onto a balanced mapping keeps per-node storage
	// within a small factor of the mean.
	nw := newNet(t, 64)
	d := New(nw)
	const items = 6400
	for i := 0; i < items; i++ {
		d.Put(0, fmt.Sprintf("key-%d", i), "v")
	}
	dist := d.ItemsPerNode()
	mean := float64(items) / float64(len(dist))
	for u, c := range dist {
		if float64(c) > 6*mean {
			t.Fatalf("node %d stores %d items (mean %.1f)", u, c, mean)
		}
	}
	total := 0
	for _, c := range dist {
		total += c
	}
	if total != items {
		t.Fatalf("items accounted %d, want %d", total, items)
	}
}

func TestOwnerTracksMapping(t *testing.T) {
	nw := newNet(t, 16)
	d := New(nw)
	d.Put(0, "k", "v")
	owner := d.Owner("k")
	if !nw.Graph().HasNode(owner) {
		t.Fatal("owner is not a live node")
	}
	// Delete the owner; the key must re-home to a live node and stay
	// readable.
	if err := nw.Delete(owner); err != nil {
		t.Fatal(err)
	}
	owner2 := d.Owner("k")
	if owner2 == owner || !nw.Graph().HasNode(owner2) {
		t.Fatalf("ownership did not migrate: %d -> %d", owner, owner2)
	}
	if v, ok, _ := d.Get(nw.Nodes()[0], "k"); !ok || v != "v" {
		t.Fatal("key unreadable after owner deletion")
	}
}

// TestTwoSubscribersObserveSameRebuild is the regression test for the
// old "only one DHT should observe a given network" restriction: a DHT
// and an independent metrics collector subscribe to the same network,
// and both must observe the same inflation without interfering.
func TestTwoSubscribersObserveSameRebuild(t *testing.T) {
	nw := newNet(t, 16)
	d := New(nw)

	// Second, independent subscriber: a bare metrics collector.
	rebuilds := 0
	transfers := 0
	cancel := nw.Subscribe(func(ev dex.Event) {
		switch ev.(type) {
		case dex.GraphRebuilt:
			rebuilds++
		case dex.VertexTransferred:
			transfers++
		}
	})
	defer cancel()
	if nw.Subscribers() != 2 {
		t.Fatalf("Subscribers() = %d, want 2", nw.Subscribers())
	}

	for i := 0; i < 60; i++ {
		d.Put(0, fmt.Sprintf("k%d", i), "v")
	}
	p0 := nw.P()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 600 && nw.P() == p0; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if nw.P() == p0 {
		t.Fatal("network never inflated")
	}
	if rebuilds == 0 {
		t.Fatal("metrics subscriber missed the rebuild")
	}
	if transfers == 0 {
		t.Fatal("metrics subscriber saw no vertex transfers")
	}
	if d.Rehashes != rebuilds {
		t.Fatalf("DHT saw %d rebuilds, metrics subscriber saw %d", d.Rehashes, rebuilds)
	}
	for i := 0; i < 60; i++ {
		if v, ok, _ := d.Get(nw.Nodes()[0], fmt.Sprintf("k%d", i)); !ok || v != "v" {
			t.Fatalf("key k%d lost with a second subscriber attached", i)
		}
	}
}

// TestTwoDHTsOnOneNetwork verifies that two key/value stores can share
// one overlay: each keeps its own items consistent across churn and a
// rebuild, and detaching one (Close) leaves the other tracking.
func TestTwoDHTsOnOneNetwork(t *testing.T) {
	nw := newNet(t, 16)
	a, b := New(nw), New(nw)
	for i := 0; i < 40; i++ {
		a.Put(0, fmt.Sprintf("a%d", i), "va")
		b.Put(0, fmt.Sprintf("b%d", i), "vb")
	}
	p0 := nw.P()
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 600 && nw.P() == p0; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if nw.P() == p0 {
		t.Fatal("network never inflated")
	}
	if a.Rehashes == 0 || b.Rehashes == 0 {
		t.Fatalf("rebuild missed: a=%d b=%d rehashes", a.Rehashes, b.Rehashes)
	}
	for i := 0; i < 40; i++ {
		if v, ok, _ := a.Get(nw.Nodes()[0], fmt.Sprintf("a%d", i)); !ok || v != "va" {
			t.Fatalf("store a lost a%d", i)
		}
		if v, ok, _ := b.Get(nw.Nodes()[0], fmt.Sprintf("b%d", i)); !ok || v != "vb" {
			t.Fatalf("store b lost b%d", i)
		}
	}

	// Detach a; b must keep observing alone.
	a.Close()
	a.Close() // idempotent
	if nw.Subscribers() != 1 {
		t.Fatalf("Subscribers() = %d after Close, want 1", nw.Subscribers())
	}
	before := b.Rehashes
	p1 := nw.P()
	for i := 0; i < 1200 && nw.P() == p1; i++ {
		nodes := nw.Nodes()
		if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
			t.Fatal(err)
		}
	}
	if nw.P() == p1 {
		t.Fatal("network never inflated a second time")
	}
	if b.Rehashes == before {
		t.Fatal("surviving DHT missed a rebuild after peer detached")
	}
}
