package spectral

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func completeGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return g
}

func cycleGraph(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return g
}

func randomRegularish(n, d int, seed int64) *graph.Graph {
	// Union of d/2 random perfect matchings on a cycle base: connected and
	// near-regular, a good expander whp.
	rng := rand.New(rand.NewSource(seed))
	g := cycleGraph(n)
	for r := 0; r < d/2; r++ {
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i += 2 {
			g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[i+1]))
		}
	}
	return g
}

func TestJacobiKnownMatrix(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := JacobiEigen(a)
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-10 || math.Abs(got[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", got)
	}
	// Columns orthonormal.
	dot := vecs[0][0]*vecs[0][1] + vecs[1][0]*vecs[1][1]
	if math.Abs(dot) > 1e-10 {
		t.Fatalf("eigenvectors not orthogonal: %v", dot)
	}
}

func TestNormalizedEigenvaluesComplete(t *testing.T) {
	// K_n normalized adjacency has eigenvalues 1 and -1/(n-1) (n-1 times).
	const n = 8
	ev := NormalizedEigenvalues(completeGraph(n))
	if math.Abs(ev[0]-1) > 1e-9 {
		t.Fatalf("lambda1 = %v", ev[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(ev[i]+1.0/(n-1)) > 1e-9 {
			t.Fatalf("lambda%d = %v, want %v", i+1, ev[i], -1.0/(n-1))
		}
	}
}

func TestGapCycleMatchesClosedForm(t *testing.T) {
	// C_n normalized eigenvalues are cos(2*pi*k/n); gap = 1 - cos(2*pi/n).
	for _, n := range []int{4, 7, 12, 40} {
		want := 1 - math.Cos(2*math.Pi/float64(n))
		got := GapDense(cycleGraph(n))
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("C_%d gap = %v, want %v", n, got, want)
		}
	}
}

func TestGapDisconnected(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if gap := GapDense(g); gap > 1e-9 {
		t.Fatalf("disconnected gap = %v, want 0", gap)
	}
}

func TestGapIterativeMatchesDense(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomRegularish(120, 4, seed)
		dense := GapDense(g)
		iter := GapIterative(g)
		if math.Abs(dense-iter) > 5e-3 {
			t.Fatalf("seed %d: dense gap %v vs iterative %v", seed, dense, iter)
		}
	}
}

func hypercube(k uint) *graph.Graph {
	g := graph.New()
	n := 1 << k
	for i := 0; i < n; i++ {
		for b := uint(0); b < k; b++ {
			j := i ^ (1 << b)
			if i < j {
				g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			}
		}
	}
	return g
}

func TestGapIterativeHypercubeClosedForm(t *testing.T) {
	// Q_k (above DenseLimit for k=10) has normalized eigenvalues
	// (k-2i)/k, so lambda2 = (k-2)/k and gap = 2/k.
	const k = 10
	want := 2.0 / k
	got := Gap(hypercube(k))
	if math.Abs(got-want) > 1e-4 {
		t.Fatalf("Q_%d iterative gap = %v, want %v", k, got, want)
	}
}

func TestGapIterativeDetectsPoorExpansion(t *testing.T) {
	// A long cycle has a vanishing gap; power iteration may not fully
	// converge in the nearly-degenerate spectrum but must still report a
	// near-zero gap rather than an expander-sized one.
	if gap := Gap(cycleGraph(600)); gap > 5e-3 {
		t.Fatalf("C_600 gap = %v, want < 5e-3", gap)
	}
}

func TestContractionDoesNotShrinkGap(t *testing.T) {
	// Lemma 10 / Lemma 1: quotient gap >= original gap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomRegularish(40, 4, seed)
		groups := make(map[graph.NodeID]graph.NodeID)
		for _, u := range g.Nodes() {
			groups[u] = graph.NodeID(rng.Intn(20))
		}
		q := g.Quotient(func(u graph.NodeID) graph.NodeID { return groups[u] })
		return GapDense(q) >= GapDense(g)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCheegerSandwich(t *testing.T) {
	// (1-lambda2)/2 <= phi(G) <= sqrt(2(1-lambda2)) for the exact
	// min-conductance, on small regular-ish graphs (Theorem 2).
	for _, seed := range []int64{1, 5, 9} {
		g := randomRegularish(12, 4, seed)
		gap := GapDense(g)
		phi := ConductanceExact(g)
		if phi < gap/2-1e-9 {
			t.Fatalf("seed %d: phi=%v < gap/2=%v", seed, phi, gap/2)
		}
		if phi > math.Sqrt(2*gap)+1e-9 {
			t.Fatalf("seed %d: phi=%v > sqrt(2*gap)=%v", seed, phi, math.Sqrt(2*gap))
		}
	}
}

func TestSweepCutUpperBoundsExact(t *testing.T) {
	for _, seed := range []int64{2, 4} {
		g := randomRegularish(14, 4, seed)
		exact := ConductanceExact(g)
		_, sweep := SweepCut(g)
		if sweep < exact-1e-9 {
			t.Fatalf("sweep %v below exact minimum %v", sweep, exact)
		}
		if sweep > math.Inf(1) {
			t.Fatal("sweep returned no cut")
		}
	}
}

func TestSweepCutFindsPlantedBottleneck(t *testing.T) {
	// Two K8 cliques joined by one edge: sweep cut should find a
	// conductance close to the single bridge edge.
	g := graph.New()
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			g.AddEdge(graph.NodeID(i+8), graph.NodeID(j+8))
		}
	}
	g.AddEdge(0, 8)
	set, phi := SweepCut(g)
	if len(set) != 8 {
		t.Fatalf("sweep set size = %d, want 8", len(set))
	}
	if phi > 0.02 {
		t.Fatalf("sweep conductance = %v, want small", phi)
	}
}

func TestExpansionOfSet(t *testing.T) {
	g := cycleGraph(8)
	set := map[graph.NodeID]bool{0: true, 1: true, 2: true, 3: true}
	if h := ExpansionOfSet(g, set); math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("expansion = %v, want 0.5", h)
	}
	if !math.IsInf(ExpansionOfSet(g, nil), 1) {
		t.Fatal("empty set expansion should be +Inf")
	}
}

func TestEdgeExpansionExactCycle(t *testing.T) {
	// C_8: best cut is a contiguous arc of 4 nodes, h = 2/4 = 0.5.
	if h := EdgeExpansionExact(cycleGraph(8)); math.Abs(h-0.5) > 1e-12 {
		t.Fatalf("h(C8) = %v", h)
	}
	// K_6: any S of size k has cut k(6-k), h = min over k<=3 of (6-k) = 3.
	if h := EdgeExpansionExact(completeGraph(6)); math.Abs(h-3) > 1e-12 {
		t.Fatalf("h(K6) = %v", h)
	}
}

func TestWalkDistributionMixes(t *testing.T) {
	g := randomRegularish(64, 6, 3)
	d0 := WalkDistribution(g, 0, 1)
	if math.Abs(sum(d0)-1) > 1e-9 {
		t.Fatalf("distribution does not sum to 1: %v", sum(d0))
	}
	tvShort := TotalVariationFromStationary(g, WalkDistribution(g, 0, 2))
	tvLong := TotalVariationFromStationary(g, WalkDistribution(g, 0, 40))
	if tvLong > tvShort {
		t.Fatalf("walk not mixing: tv(2)=%v tv(40)=%v", tvShort, tvLong)
	}
	if tvLong > 0.01 {
		t.Fatalf("walk far from stationary after 40 steps: %v", tvLong)
	}
}

func sum(m map[graph.NodeID]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}

func TestFiedlerVectorSeparatesCliques(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(graph.NodeID(i), graph.NodeID(j))
			g.AddEdge(graph.NodeID(i+6), graph.NodeID(j+6))
		}
	}
	g.AddEdge(0, 6)
	vec, ids := FiedlerVector(g)
	signs := make(map[bool]int)
	for i, id := range ids {
		if id < 6 {
			signs[vec[i] > 0]++
		} else {
			signs[vec[i] < 0]++
		}
	}
	// All of one clique should share a sign, all of the other the opposite
	// (one of the two consistent labelings).
	consistent := (signs[true] == 12) || (signs[false] == 12)
	if !consistent {
		t.Fatalf("Fiedler vector does not separate cliques: %v / vec=%v", signs, vec)
	}
}

func TestGapTrivialGraphs(t *testing.T) {
	if Gap(graph.New()) != 1 {
		t.Fatal("empty graph gap should be 1")
	}
	g := graph.New()
	g.AddNode(1)
	if Gap(g) != 1 {
		t.Fatal("singleton gap should be 1")
	}
}

func BenchmarkGapDense128(b *testing.B) {
	g := randomRegularish(128, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GapDense(g)
	}
}

func BenchmarkGapIterative4096(b *testing.B) {
	g := randomRegularish(4096, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GapIterative(g)
	}
}
