// Package spectral measures expansion: spectral gaps, conductance, edge
// expansion, Fiedler vectors and Cheeger-inequality checks for the
// multigraphs in this repository.
//
// The central quantity is the spectral gap 1 - lambda2 of the normalized
// adjacency matrix N = D^{-1/2} A D^{-1/2}, where A includes edge
// multiplicities (self-loops once) and D is the multigraph degree
// diagonal. For d-regular graphs this coincides with the paper's
// 1 - lambda(G) with lambda the second-largest adjacency eigenvalue
// divided by d; for the contracted (non-regular) real network it is the
// standard generalization under which Lemma 10 (contraction does not
// shrink the gap) continues to hold.
//
// Two engines are provided: an exact dense Jacobi eigensolver for graphs
// up to a few hundred nodes (used by tests as ground truth) and a
// matrix-free deflated power iteration on the lazy operator
// (I + N) / 2 that scales to the tens of thousands of nodes used by the
// churn experiments.
package spectral

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// DenseLimit is the node-count threshold below which Gap uses the exact
// Jacobi solver.
const DenseLimit = 384

// Gap returns the spectral gap 1 - lambda2(N) of g. Graphs with fewer than
// two nodes have gap 1 by convention. Disconnected graphs have gap <= 0.
func Gap(g *graph.Graph) float64 {
	if g.NumNodes() < 2 {
		return 1
	}
	if g.NumNodes() <= DenseLimit {
		return GapDense(g)
	}
	return GapIterative(g)
}

// GapDense computes the gap with the exact dense eigensolver.
func GapDense(g *graph.Graph) float64 {
	ev := NormalizedEigenvalues(g)
	if len(ev) < 2 {
		return 1
	}
	return 1 - ev[1]
}

// NormalizedEigenvalues returns all eigenvalues of N = D^{-1/2} A D^{-1/2}
// in descending order, computed densely. Isolated nodes contribute a zero
// row (eigenvalue 0).
func NormalizedEigenvalues(g *graph.Graph) []float64 {
	c := g.ToCSR()
	n := len(c.IDs)
	if n == 0 {
		return nil
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			j := int(c.Adj[k])
			di, dj := c.Deg[i], c.Deg[j]
			if di > 0 && dj > 0 {
				a[i][j] = c.Wt[k] / math.Sqrt(di*dj)
			}
		}
	}
	vals, _ := JacobiEigen(a)
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	return vals
}

// JacobiEigen diagonalizes the symmetric matrix a (destructively) via the
// cyclic Jacobi method and returns its eigenvalues and an orthonormal
// eigenvector matrix whose column j (vecs[i][j] over i) corresponds to
// vals[j]. Eigenvalues are unsorted.
func JacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-15 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				for k := 0; k < n; k++ {
					akp, akq := a[k][p], a[k][q]
					a[k][p] = cos*akp - sin*akq
					a[k][q] = sin*akp + cos*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := a[p][k], a[q][k]
					a[p][k] = cos*apk - sin*aqk
					a[q][k] = sin*apk + cos*aqk
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v[k][p], v[k][q]
					v[k][p] = cos*vkp - sin*vkq
					v[k][q] = sin*vkp + cos*vkq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}

// GapIterative computes the gap with matrix-free deflated power iteration
// on the lazy operator M = (I+N)/2, whose spectrum lies in [0,1] so the
// dominant remaining eigenvalue after deflating the known top eigenvector
// (sqrt of degrees) is exactly the second-largest signed eigenvalue.
func GapIterative(g *graph.Graph) float64 {
	c := g.ToCSR()
	n := len(c.IDs)
	if n < 2 {
		return 1
	}
	// Known top eigenvector of N for each connected component would be
	// degree-weighted; for a connected graph it is v1(i) = sqrt(d_i),
	// normalized. Disconnected graphs then report lambda2 ~ 1 => gap ~ 0,
	// which is the correct signal for the experiments.
	v1 := make([]float64, n)
	var norm float64
	for i := 0; i < n; i++ {
		v1[i] = math.Sqrt(c.Deg[i])
		norm += v1[i] * v1[i]
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return 0
	}
	for i := range v1 {
		v1[i] /= norm
	}

	x := make([]float64, n)
	// Deterministic pseudo-random start, orthogonalized against v1.
	s := uint64(0x9e3779b97f4a7c15)
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(s%2048)/1024 - 1
	}
	orthogonalize(x, v1)
	normalize(x)

	y := make([]float64, n)
	mu := 0.0
	iters := 80 * int(math.Ceil(math.Log2(float64(n+2))))
	if iters < 400 {
		iters = 400
	}
	for it := 0; it < iters; it++ {
		applyLazy(c, x, y)
		orthogonalize(y, v1)
		nrm := normalize(y)
		x, y = y, x
		newMu := nrm
		if it > 40 && math.Abs(newMu-mu) < 1e-12 {
			mu = newMu
			break
		}
		mu = newMu
	}
	// mu approximates the top eigenvalue of M restricted to v1-perp, i.e.
	// (1+lambda2)/2; gap = 1-lambda2 = 2(1-mu).
	gap := 2 * (1 - mu)
	if gap < 0 {
		gap = 0
	}
	return gap
}

// applyLazy computes y = (x + N x)/2 in CSR form.
func applyLazy(c *graph.CSR, x, y []float64) {
	n := len(c.IDs)
	for i := 0; i < n; i++ {
		sum := 0.0
		di := c.Deg[i]
		if di > 0 {
			si := math.Sqrt(di)
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				j := int(c.Adj[k])
				dj := c.Deg[j]
				if dj > 0 {
					sum += c.Wt[k] * x[j] / (si * math.Sqrt(dj))
				}
			}
		}
		y[i] = (x[i] + sum) / 2
	}
}

func orthogonalize(x, v []float64) {
	dot := 0.0
	for i := range x {
		dot += x[i] * v[i]
	}
	for i := range x {
		x[i] -= dot * v[i]
	}
}

func normalize(x []float64) float64 {
	nrm := 0.0
	for _, xi := range x {
		nrm += xi * xi
	}
	nrm = math.Sqrt(nrm)
	if nrm > 0 {
		for i := range x {
			x[i] /= nrm
		}
	}
	return nrm
}

// FiedlerVector returns the eigenvector for the second-largest eigenvalue
// of N together with the node ordering it refers to. For graphs above
// DenseLimit it uses deflated power iteration; below, the dense solver.
// The vector's sign structure separates the sparsest-cut sides, which the
// adaptive adversary exploits (experiment GAP).
func FiedlerVector(g *graph.Graph) ([]float64, []graph.NodeID) {
	c := g.ToCSR()
	n := len(c.IDs)
	if n == 0 {
		return nil, nil
	}
	if n <= DenseLimit {
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				j := int(c.Adj[k])
				if c.Deg[i] > 0 && c.Deg[j] > 0 {
					a[i][j] = c.Wt[k] / math.Sqrt(c.Deg[i]*c.Deg[j])
				}
			}
		}
		vals, vecs := JacobiEigen(a)
		// Pick the column with the second-largest eigenvalue.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return vals[idx[x]] > vals[idx[y]] })
		col := idx[0]
		if n > 1 {
			col = idx[1]
		}
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = vecs[i][col]
		}
		return vec, c.IDs
	}
	// Iterative: same deflated power iteration as GapIterative but return
	// the vector.
	v1 := make([]float64, n)
	for i := 0; i < n; i++ {
		v1[i] = math.Sqrt(c.Deg[i])
	}
	normalize(v1)
	x := make([]float64, n)
	s := uint64(0x2545f4914f6cdd1d)
	for i := range x {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		x[i] = float64(s%2048)/1024 - 1
	}
	orthogonalize(x, v1)
	normalize(x)
	y := make([]float64, n)
	iters := 60 * int(math.Ceil(math.Log2(float64(n+2))))
	for it := 0; it < iters; it++ {
		applyLazy(c, x, y)
		orthogonalize(y, v1)
		normalize(y)
		x, y = y, x
	}
	return x, c.IDs
}

// ConductanceOfSet returns the conductance phi(S) = |E(S, S-bar)| /
// min(vol(S), vol(S-bar)) where vol is the sum of multigraph degrees.
// Returns +Inf for empty or full S.
func ConductanceOfSet(g *graph.Graph, set map[graph.NodeID]bool) float64 {
	volS, volT := 0.0, 0.0
	cut := 0.0
	for _, u := range g.Nodes() {
		d := float64(g.Degree(u))
		if set[u] {
			volS += d
		} else {
			volT += d
		}
	}
	if volS == 0 || volT == 0 {
		return math.Inf(1)
	}
	for _, e := range g.Edges() {
		if e.U != e.V && set[e.U] != set[e.V] {
			cut += float64(e.Mult)
		}
	}
	return cut / math.Min(volS, volT)
}

// ExpansionOfSet returns the paper's Definition 5 quantity
// |E(S, S-bar)| / |S| for the given S (no size restriction applied).
func ExpansionOfSet(g *graph.Graph, set map[graph.NodeID]bool) float64 {
	if len(set) == 0 {
		return math.Inf(1)
	}
	cut := 0.0
	for _, e := range g.Edges() {
		if e.U != e.V && set[e.U] != set[e.V] {
			cut += float64(e.Mult)
		}
	}
	return cut / float64(len(set))
}

// SweepCut scans the Fiedler ordering and returns the prefix set with the
// smallest conductance, along with that conductance. This is the standard
// Cheeger rounding and upper-bounds the true conductance.
func SweepCut(g *graph.Graph) (map[graph.NodeID]bool, float64) {
	vec, ids := FiedlerVector(g)
	n := len(ids)
	if n < 2 {
		return nil, math.Inf(1)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vec[order[a]] < vec[order[b]] })

	deg := make(map[graph.NodeID]float64, n)
	totalVol := 0.0
	for _, u := range ids {
		d := float64(g.Degree(u))
		deg[u] = d
		totalVol += d
	}
	inS := make(map[graph.NodeID]bool, n)
	volS := 0.0
	cut := 0.0
	best := math.Inf(1)
	bestK := 0
	for k := 0; k < n-1; k++ {
		u := ids[order[k]]
		inS[u] = true
		volS += deg[u]
		// Update cut: edges from u to S leave the cut, edges to outside join.
		for _, v := range g.Neighbors(u) {
			if v == u {
				continue
			}
			m := float64(g.Multiplicity(u, v))
			if inS[v] {
				cut -= m
			} else {
				cut += m
			}
		}
		denom := math.Min(volS, totalVol-volS)
		if denom > 0 {
			if phi := cut / denom; phi < best {
				best = phi
				bestK = k + 1
			}
		}
	}
	bestSet := make(map[graph.NodeID]bool, bestK)
	for k := 0; k < bestK; k++ {
		bestSet[ids[order[k]]] = true
	}
	return bestSet, best
}

// EdgeExpansionExact computes h(G) = min_{|S| <= n/2} |E(S,S-bar)|/|S| by
// exhaustive enumeration. It panics for graphs with more than 24 nodes;
// intended for ground-truth verification in tests.
func EdgeExpansionExact(g *graph.Graph) float64 {
	ids := g.Nodes()
	n := len(ids)
	if n > 24 {
		panic("spectral: EdgeExpansionExact limited to 24 nodes")
	}
	if n < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for mask := 1; mask < 1<<uint(n)-1; mask++ {
		size := 0
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				size++
			}
		}
		if size > n/2 {
			continue
		}
		set := make(map[graph.NodeID]bool, size)
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				set[ids[b]] = true
			}
		}
		if h := ExpansionOfSet(g, set); h < best {
			best = h
		}
	}
	return best
}

// ConductanceExact computes min-conductance by exhaustive enumeration for
// graphs up to 24 nodes (test ground truth for the Cheeger sandwich).
func ConductanceExact(g *graph.Graph) float64 {
	ids := g.Nodes()
	n := len(ids)
	if n > 24 {
		panic("spectral: ConductanceExact limited to 24 nodes")
	}
	if n < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for mask := 1; mask < 1<<uint(n)-1; mask++ {
		set := make(map[graph.NodeID]bool)
		for b := 0; b < n; b++ {
			if mask&(1<<uint(b)) != 0 {
				set[ids[b]] = true
			}
		}
		if phi := ConductanceOfSet(g, set); phi < best {
			best = phi
		}
	}
	return best
}

// WalkDistribution returns the probability distribution of a
// multiplicity-weighted random walk on g after the given number of steps,
// starting from src. Used by the walk-concentration experiment (FIG-W).
func WalkDistribution(g *graph.Graph, src graph.NodeID, steps int) map[graph.NodeID]float64 {
	c := g.ToCSR()
	n := len(c.IDs)
	cur := make([]float64, n)
	i0, ok := c.Index[src]
	if !ok {
		return nil
	}
	cur[i0] = 1
	next := make([]float64, n)
	for s := 0; s < steps; s++ {
		for i := range next {
			next[i] = 0
		}
		for i := 0; i < n; i++ {
			if cur[i] == 0 || c.Deg[i] == 0 {
				continue
			}
			p := cur[i] / c.Deg[i]
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				next[c.Adj[k]] += p * c.Wt[k]
			}
		}
		cur, next = next, cur
	}
	out := make(map[graph.NodeID]float64, n)
	for i, id := range c.IDs {
		out[id] = cur[i]
	}
	return out
}

// TotalVariationFromStationary returns the TV distance between dist and
// the stationary distribution pi(x) = d_x / 2|E| of the weighted walk.
func TotalVariationFromStationary(g *graph.Graph, dist map[graph.NodeID]float64) float64 {
	total := 0.0
	for _, u := range g.Nodes() {
		total += float64(g.Degree(u))
	}
	tv := 0.0
	for _, u := range g.Nodes() {
		pi := float64(g.Degree(u)) / total
		tv += math.Abs(dist[u] - pi)
	}
	return tv / 2
}
