// Package pcycle implements the paper's virtual expander family: the
// p-cycle Z(p) of Definition 1, together with the inflation and deflation
// vertex maps used by type-2 recovery (Algorithms 4.5/4.6 and their
// staggered variants), shortest-path routing, and a store-and-forward
// permutation-routing simulator (the Scheideler Corollary 7.7.3 substrate).
//
// For a prime p, Z(p) has vertex set Z_p = {0, ..., p-1} and edges
// (x, x+1 mod p), (x, x-1 mod p), and the chord (x, x^{-1} mod p) for
// x > 0; vertex 0 carries a self-loop. Because modular inversion is an
// involution the chords are well-defined undirected edges; 1 and p-1 are
// self-inverse so their chords are self-loops. Counting each of the three
// neighbor slots once, every vertex has exactly three incident edge slots,
// making Z(p) a 3-regular multigraph with a constant spectral gap
// (Lubotzky; cf. Definition 1 and [14] in the paper).
package pcycle

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/primes"
)

// Vertex is a vertex of a p-cycle, an element of Z_p.
type Vertex = int64

// Cycle is the p-cycle expander Z(p) for a fixed prime p.
type Cycle struct {
	p    int64
	inv  []Vertex // cached inverses; inv[0] = 0 by the self-loop convention
	ecc0 int      // eccentricity of vertex 0, lazily computed (-1 = unset)
}

// New returns Z(p). p must be a prime >= 5 (below that the cycle and
// chord edges collapse in ways Definition 1 does not intend).
func New(p int64) (*Cycle, error) {
	if p < 5 || !primes.IsPrime(p) {
		return nil, fmt.Errorf("pcycle: p = %d is not a prime >= 5", p)
	}
	c := &Cycle{p: p, ecc0: -1}
	c.inv = make([]Vertex, p)
	// Batch-compute inverses in O(p): inv[x] via inv[x] = -(p/x)*inv[p%x].
	c.inv[0] = 0
	if p > 1 {
		c.inv[1] = 1
	}
	for x := int64(2); x < p; x++ {
		c.inv[x] = ((p - (p/x)*c.inv[p%x]%p) % p)
	}
	return c, nil
}

// P returns the prime modulus.
func (c *Cycle) P() int64 { return c.p }

// Contains reports whether x is a vertex of Z(p).
func (c *Cycle) Contains(x Vertex) bool { return x >= 0 && x < c.p }

// Inv returns the chord partner of x: x^{-1} mod p for x > 0, and 0 for
// x = 0 (the self-loop of Definition 1).
func (c *Cycle) Inv(x Vertex) Vertex { return c.inv[x] }

// Succ returns x+1 mod p.
func (c *Cycle) Succ(x Vertex) Vertex {
	if x == c.p-1 {
		return 0
	}
	return x + 1
}

// Pred returns x-1 mod p.
func (c *Cycle) Pred(x Vertex) Vertex {
	if x == 0 {
		return c.p - 1
	}
	return x - 1
}

// NeighborSlots returns the three incident edge slots of x in order
// (predecessor, successor, chord). Slots may repeat x itself (self-loops
// at 0, 1, p-1) but for p >= 5 the three slots are the complete incident
// edge list of the 3-regular multigraph.
func (c *Cycle) NeighborSlots(x Vertex) [3]Vertex {
	return [3]Vertex{c.Pred(x), c.Succ(x), c.inv[x]}
}

// Graph materializes Z(p) as a multigraph. Each undirected edge appears
// once; self-loop chords appear as loops.
func (c *Cycle) Graph() *graph.Graph {
	g := graph.New()
	for x := int64(0); x < c.p; x++ {
		g.AddEdge(graph.NodeID(x), graph.NodeID(c.Succ(x)))
		if y := c.inv[x]; y >= x { // add each chord once (y == x => loop)
			g.AddEdge(graph.NodeID(x), graph.NodeID(y))
		}
	}
	return g
}

// DistancesFrom returns BFS hop distances from x to every vertex.
func (c *Cycle) DistancesFrom(x Vertex) []int32 {
	dist := make([]int32, c.p)
	for i := range dist {
		dist[i] = -1
	}
	dist[x] = 0
	queue := []Vertex{x}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.NeighborSlots(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns a shortest path from x to y (inclusive) using BFS
// with deterministic tie-breaking. Every node that knows the virtual graph
// can compute this locally (cf. Section 4.4: "this shortest path can be
// computed locally").
func (c *Cycle) ShortestPath(x, y Vertex) []Vertex {
	if x == y {
		return []Vertex{x}
	}
	dist := c.DistancesFrom(y)
	path := []Vertex{x}
	cur := x
	for cur != y {
		next := cur
		best := dist[cur]
		for _, v := range c.NeighborSlots(cur) {
			if dist[v] >= 0 && (dist[v] < best || (dist[v] == best && v < next)) && dist[v] < dist[cur] {
				best = dist[v]
				next = v
			}
		}
		cur = next
		path = append(path, cur)
	}
	return path
}

// Dist returns the hop distance between x and y.
func (c *Cycle) Dist(x, y Vertex) int {
	return int(c.DistancesFrom(x)[y])
}

// EccentricityOfZero returns the BFS eccentricity of vertex 0, cached.
// Because diam(Z) <= 2*ecc(0), the coordinator protocol uses 2*ecc(0) as
// its deterministic round budget for flooding (Algorithm 4.4).
func (c *Cycle) EccentricityOfZero() int {
	if c.ecc0 >= 0 {
		return c.ecc0
	}
	dist := c.DistancesFrom(0)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	c.ecc0 = int(ecc)
	return c.ecc0
}

// DiameterUpperBound returns 2*ecc(0), an upper bound on the hop diameter
// used for round accounting of shortest-path control messages.
func (c *Cycle) DiameterUpperBound() int { return 2 * c.EccentricityOfZero() }

// Diameter computes the exact diameter by all-sources BFS; O(p^2), for
// tests and small-p experiments only.
func (c *Cycle) Diameter() int {
	diam := int32(0)
	for x := int64(0); x < c.p; x++ {
		for _, d := range c.DistancesFrom(x) {
			if d > diam {
				diam = d
			}
		}
	}
	return int(diam)
}

// ---------------------------------------------------------------------------
// Inflation map (Algorithm 4.5 Phase 1 / eqs. 6-7)
// ---------------------------------------------------------------------------

// Inflation is the vertex correspondence between Z(pOld) and the larger
// Z(pNew), pNew the smallest prime in (4*pOld, 8*pOld). Every old vertex x
// is replaced by the cloud {y_0, ..., y_{c(x)}} with
// y_j = ceil(alpha*x) + j, alpha = pNew/pOld, and
// c(x) = ceil(alpha*(x+1)) - ceil(alpha*x) - 1 (exact integer arithmetic).
// The clouds partition Z_{pNew} (Lemma 4(b)).
type Inflation struct {
	POld, PNew int64
}

// NewInflation picks pNew for pOld per the paper's interval.
func NewInflation(pOld int64) (Inflation, error) {
	if !primes.IsPrime(pOld) {
		return Inflation{}, fmt.Errorf("pcycle: inflation from non-prime %d", pOld)
	}
	pNew, ok := primes.FirstPrimeIn(4*pOld, 8*pOld)
	if !ok {
		return Inflation{}, fmt.Errorf("pcycle: no prime in (4*%d, 8*%d)", pOld, pOld)
	}
	return Inflation{POld: pOld, PNew: pNew}, nil
}

// ceilAlphaTimes returns ceil(pNew * x / pOld) exactly.
func (m Inflation) ceilAlphaTimes(x int64) int64 {
	return (m.PNew*x + m.POld - 1) / m.POld
}

// CloudStart returns the first new vertex of x's cloud, ceil(alpha*x).
func (m Inflation) CloudStart(x Vertex) Vertex { return m.ceilAlphaTimes(x) % m.PNew }

// CloudSize returns c(x)+1, the number of new vertices replacing x.
func (m Inflation) CloudSize(x Vertex) int {
	return int(m.ceilAlphaTimes(x+1) - m.ceilAlphaTimes(x))
}

// Cloud returns the new vertices replacing old vertex x, in increasing
// order.
func (m Inflation) Cloud(x Vertex) []Vertex {
	start := m.ceilAlphaTimes(x)
	end := m.ceilAlphaTimes(x + 1)
	out := make([]Vertex, 0, end-start)
	for y := start; y < end; y++ {
		out = append(out, y%m.PNew)
	}
	return out
}

// OldOwner returns the old vertex whose cloud contains new vertex y:
// the unique x with ceil(alpha*x) <= y < ceil(alpha*(x+1)), which is
// floor(y*pOld/pNew).
func (m Inflation) OldOwner(y Vertex) Vertex { return y * m.POld / m.PNew }

// MaxCloudSize returns the largest cloud size. Cloud sizes take only the
// values floor(alpha) and floor(alpha)+1 and, because pNew is never a
// multiple of pOld, both occur; the maximum is therefore exactly
// floor(pNew/pOld)+1, bounded by the paper's zeta <= 8 since alpha < 8.
func (m Inflation) MaxCloudSize() int {
	return int(m.PNew/m.POld) + 1
}

// ---------------------------------------------------------------------------
// Deflation map (Algorithm 4.6 Phase 1)
// ---------------------------------------------------------------------------

// Deflation is the correspondence between Z(pOld) and the smaller Z(pNew),
// pNew a prime in (pOld/8, pOld/4). Old vertex x maps to
// y = floor(x/alpha) = floor(x*pNew/pOld), alpha = pOld/pNew > 4. The old
// vertex that "dominates" y is the smallest x in y's deflation cloud.
type Deflation struct {
	POld, PNew int64
}

// NewDeflation picks pNew for pOld per the paper's interval.
func NewDeflation(pOld int64) (Deflation, error) { return NewDeflationFloor(pOld, 0) }

// NewDeflationFloor picks pNew for pOld per the paper's interval
// (pOld/8, pOld/4), additionally requiring pNew >= floor. The paper's
// analysis never needs the floor — its zeta/theta regime keeps n well
// below pOld/8 whenever a deflation triggers — but implementations run
// outside that regime (small zeta ablations, deep-crash churn) must not
// shrink the cycle below the node count: a deflation with pNew < n has
// no surjective mapping, so its contender resolution is structurally
// infeasible. The smallest admissible prime is chosen, so when the
// floor does not bind the result equals NewDeflation's exactly.
func NewDeflationFloor(pOld, floor int64) (Deflation, error) {
	if !primes.IsPrime(pOld) {
		return Deflation{}, fmt.Errorf("pcycle: deflation from non-prime %d", pOld)
	}
	lo := pOld / 8
	if floor > 0 && floor-1 > lo {
		lo = floor - 1 // FirstPrimeIn's interval is open: first prime > lo
	}
	pNew, ok := primes.FirstPrimeIn(lo, pOld/4)
	if !ok {
		return Deflation{}, fmt.Errorf("pcycle: no prime in (%d, %d/4)", lo, pOld)
	}
	return Deflation{POld: pOld, PNew: pNew}, nil
}

// NewVertexOf returns y = floor(x * pNew / pOld).
func (m Deflation) NewVertexOf(x Vertex) Vertex { return x * m.PNew / m.POld }

// DominatorOf returns the smallest old vertex in y's deflation cloud,
// ceil(y * pOld / pNew).
func (m Deflation) DominatorOf(y Vertex) Vertex {
	return (y*m.POld + m.PNew - 1) / m.PNew
}

// Dominates reports whether old vertex x is the dominator of its new
// vertex (i.e. the smallest member of its deflation cloud).
func (m Deflation) Dominates(x Vertex) bool {
	return m.DominatorOf(m.NewVertexOf(x)) == x
}

// DeflationCloud returns the old vertices contracted into new vertex y, in
// increasing order.
func (m Deflation) DeflationCloud(y Vertex) []Vertex {
	lo := m.DominatorOf(y)
	hi := (y + 1) * m.POld
	hi = (hi + m.PNew - 1) / m.PNew // dominator of y+1
	if hi > m.POld {
		hi = m.POld
	}
	out := make([]Vertex, 0, hi-lo)
	for x := lo; x < hi; x++ {
		out = append(out, x)
	}
	return out
}

// MaxCloudSize returns the largest deflation-cloud size, exactly
// floor(pOld/pNew)+1 (<= 8 since alpha = pOld/pNew < 8).
func (m Deflation) MaxCloudSize() int {
	return int(m.POld/m.PNew) + 1
}

// ---------------------------------------------------------------------------
// Permutation routing (Scheideler Cor. 7.7.3 substrate; experiment FIG-R)
// ---------------------------------------------------------------------------

// RoutePermutation simulates store-and-forward packet routing on Z(p):
// every vertex x holds one packet destined to perm(x); each round, each
// directed edge slot carries at most one packet; contended edges serve the
// packet with the farthest remaining distance first (ties to smaller
// source). It returns the number of rounds until all packets are
// delivered and the maximum queue length observed.
//
// Packets follow precomputed shortest paths, so memory/CPU is O(p * diam).
// Intended for p up to a few thousand (the FIG-R sweep).
func (c *Cycle) RoutePermutation(perm func(Vertex) Vertex) (rounds, maxQueue int) {
	type packet struct {
		src  Vertex
		path []Vertex // remaining path, path[0] = current vertex
	}
	// Precompute per-destination BFS trees grouped to reuse distance
	// arrays: one BFS per packet destination.
	packets := make([]*packet, 0, c.p)
	for x := int64(0); x < c.p; x++ {
		d := perm(x)
		if d == x {
			continue
		}
		pk := &packet{src: x, path: c.ShortestPath(x, d)}
		packets = append(packets, pk)
	}
	queues := make(map[Vertex][]*packet, c.p)
	for _, pk := range packets {
		queues[pk.path[0]] = append(queues[pk.path[0]], pk)
	}
	remaining := len(packets)
	for rounds = 0; remaining > 0; rounds++ {
		if rounds > int(c.p)*4 {
			panic("pcycle: permutation routing failed to terminate")
		}
		type dirEdge struct{ from, to Vertex }
		claimed := make(map[dirEdge]*packet)
		// Each vertex offers each queued packet; each directed edge picks
		// its highest-priority claimant.
		for _, q := range queues {
			for _, pk := range q {
				if len(pk.path) < 2 {
					continue
				}
				e := dirEdge{pk.path[0], pk.path[1]}
				cur := claimed[e]
				if cur == nil || len(pk.path) > len(cur.path) ||
					(len(pk.path) == len(cur.path) && pk.src < cur.src) {
					claimed[e] = pk
				}
			}
		}
		moved := make(map[*packet]bool, len(claimed))
		for _, pk := range claimed {
			moved[pk] = true
		}
		newQueues := make(map[Vertex][]*packet, len(queues))
		for _, q := range queues {
			for _, pk := range q {
				if moved[pk] {
					pk.path = pk.path[1:]
					if len(pk.path) == 1 {
						remaining--
						continue
					}
				}
				newQueues[pk.path[0]] = append(newQueues[pk.path[0]], pk)
			}
		}
		queues = newQueues
		for _, q := range queues {
			if len(q) > maxQueue {
				maxQueue = len(q)
			}
		}
	}
	return rounds, maxQueue
}

// InversePermutation returns the chord permutation x -> x^{-1} (0 -> 0),
// the permutation type-2 recovery routes to discover inverse edges.
func (c *Cycle) InversePermutation() func(Vertex) Vertex {
	return func(x Vertex) Vertex { return c.inv[x] }
}

// VertexSet returns all vertices in increasing order (for tests).
func (c *Cycle) VertexSet() []Vertex {
	out := make([]Vertex, c.p)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// String implements fmt.Stringer.
func (c *Cycle) String() string { return fmt.Sprintf("Z(%d)", c.p) }

// SortVertices sorts a vertex slice ascending (helper shared by core/dht).
func SortVertices(vs []Vertex) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}
