package pcycle

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/primes"
	"repro/internal/spectral"
)

func mustCycle(t testing.TB, p int64) *Cycle {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadModulus(t *testing.T) {
	for _, p := range []int64{0, 1, 2, 3, 4, 9, 15, 100} {
		if _, err := New(p); err == nil {
			t.Errorf("New(%d) accepted", p)
		}
	}
}

func TestInverseTableMatchesModInverse(t *testing.T) {
	for _, p := range []int64{5, 7, 23, 101, 4099} {
		c := mustCycle(t, p)
		if c.Inv(0) != 0 {
			t.Fatalf("Inv(0) = %d", c.Inv(0))
		}
		for x := int64(1); x < p; x++ {
			if got, want := c.Inv(x), primes.ModInverse(x, p); got != want {
				t.Fatalf("p=%d Inv(%d) = %d, want %d", p, x, got, want)
			}
		}
	}
}

func TestThreeRegularity(t *testing.T) {
	// Every vertex has exactly 3 incident edge slots; materialized as a
	// multigraph, total degree = 3p and edges = ceil(3p/2) accounting for
	// loops (each loop contributes 1 to its endpoint's degree).
	for _, p := range []int64{5, 23, 101} {
		c := mustCycle(t, p)
		g := c.Graph()
		if g.NumNodes() != int(p) {
			t.Fatalf("p=%d nodes=%d", p, g.NumNodes())
		}
		// Every vertex has exactly 3 incident slots (pred, succ, chord); a
		// self-loop occupies one slot and counts once in Degree, so every
		// vertex has Degree exactly 3 and the sum is 3p.
		total := 0
		for _, u := range g.Nodes() {
			d := g.Degree(u)
			if d != 3 {
				t.Fatalf("p=%d vertex %d degree %d, want 3", p, u, d)
			}
			total += d
		}
		if total != int(3*p) {
			t.Fatalf("p=%d total degree=%d want %d", p, total, 3*p)
		}
		if g.Validate() != nil {
			t.Fatalf("p=%d graph invalid", p)
		}
		if !g.Connected() {
			t.Fatalf("p=%d disconnected", p)
		}
	}
}

func TestFigure1Cycle23(t *testing.T) {
	// The paper's Figure 1 uses Z(23). Spot-check its structure: vertex 2
	// neighbors 1, 3 and 12 (2*12=24=1 mod 23).
	c := mustCycle(t, 23)
	slots := c.NeighborSlots(2)
	if slots[0] != 1 || slots[1] != 3 || slots[2] != 12 {
		t.Fatalf("neighbors of 2 in Z(23): %v", slots)
	}
	if c.Inv(22) != 22 || c.Inv(1) != 1 {
		t.Fatal("1 and 22 must be self-inverse in Z(23)")
	}
	g := c.Graph()
	gap := spectral.GapDense(g)
	if gap < 0.05 {
		t.Fatalf("Z(23) gap = %v, expected a healthy constant", gap)
	}
}

func TestPCycleFamilyConstantGap(t *testing.T) {
	// Definition 4: the p-cycle family has a uniform constant spectral
	// gap. The constant is small (the Lubotzky-style bound is weak) but
	// must not trend to zero: check a floor and that consecutive sizes do
	// not halve the gap once past the small-p regime.
	var gaps []float64
	for _, p := range []int64{23, 101, 199, 383} {
		g := mustCycle(t, p).Graph()
		gaps = append(gaps, spectral.GapDense(g))
	}
	for i, gap := range gaps {
		if gap < 0.025 {
			t.Fatalf("gap[%d] = %v too small: %v", i, gap, gaps)
		}
	}
	if gaps[3] < gaps[1]/2 {
		t.Fatalf("gap collapsing with p: %v", gaps)
	}
}

func TestDiameterLogarithmic(t *testing.T) {
	// Expander diameter should scale like O(log p); check the constant is
	// modest and that the 2*ecc(0) upper bound dominates the true diameter.
	for _, p := range []int64{23, 101, 499, 1009} {
		c := mustCycle(t, p)
		d := c.Diameter()
		ub := c.DiameterUpperBound()
		if d > ub {
			t.Fatalf("p=%d diameter %d exceeds upper bound %d", p, d, ub)
		}
		if float64(d) > 6*math.Log2(float64(p)) {
			t.Fatalf("p=%d diameter %d not logarithmic", p, d)
		}
	}
}

func TestShortestPathProperties(t *testing.T) {
	c := mustCycle(t, 101)
	for _, pair := range [][2]Vertex{{0, 50}, {7, 93}, {1, 100}, {13, 13}} {
		path := c.ShortestPath(pair[0], pair[1])
		if path[0] != pair[0] || path[len(path)-1] != pair[1] {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		if len(path)-1 != c.Dist(pair[0], pair[1]) {
			t.Fatalf("path length %d != dist %d", len(path)-1, c.Dist(pair[0], pair[1]))
		}
		for i := 0; i+1 < len(path); i++ {
			s := c.NeighborSlots(path[i])
			if path[i+1] != s[0] && path[i+1] != s[1] && path[i+1] != s[2] {
				t.Fatalf("non-edge step %d->%d", path[i], path[i+1])
			}
		}
	}
}

func TestInflationCloudsPartition(t *testing.T) {
	// Lemma 4(b): the clouds form a bijection with Z_{pNew}.
	for _, pOld := range []int64{5, 23, 101, 499} {
		m, err := NewInflation(pOld)
		if err != nil {
			t.Fatal(err)
		}
		if m.PNew <= 4*pOld || m.PNew >= 8*pOld {
			t.Fatalf("pNew=%d outside (4*%d, 8*%d)", m.PNew, pOld, pOld)
		}
		seen := make(map[Vertex]Vertex)
		for x := int64(0); x < pOld; x++ {
			cloud := m.Cloud(x)
			if len(cloud) != m.CloudSize(x) {
				t.Fatalf("cloud size mismatch at %d", x)
			}
			if len(cloud) > m.MaxCloudSize() {
				t.Fatalf("cloud at %d larger than MaxCloudSize", x)
			}
			for _, y := range cloud {
				if prev, dup := seen[y]; dup {
					t.Fatalf("new vertex %d in clouds of both %d and %d", y, prev, x)
				}
				seen[y] = x
				if m.OldOwner(y) != x {
					t.Fatalf("OldOwner(%d) = %d, want %d", y, m.OldOwner(y), x)
				}
			}
		}
		if int64(len(seen)) != m.PNew {
			t.Fatalf("clouds cover %d of %d new vertices", len(seen), m.PNew)
		}
		if m.MaxCloudSize() > 8 {
			t.Fatalf("max cloud size %d > zeta=8", m.MaxCloudSize())
		}
	}
}

func TestInflationMaxCloudSizeExact(t *testing.T) {
	for _, pOld := range []int64{5, 23, 101} {
		m, err := NewInflation(pOld)
		if err != nil {
			t.Fatal(err)
		}
		max := 0
		for x := int64(0); x < pOld; x++ {
			if s := m.CloudSize(x); s > max {
				max = s
			}
		}
		if max != m.MaxCloudSize() {
			t.Fatalf("pOld=%d scan max %d != analytic %d", pOld, max, m.MaxCloudSize())
		}
	}
}

func TestDeflationCloudsPartition(t *testing.T) {
	// Lemma 6(b): y -> deflation cloud partitions Z_{pOld} and every new
	// vertex has exactly one dominator.
	for _, pOld := range []int64{101, 499, 1009} {
		m, err := NewDeflation(pOld)
		if err != nil {
			t.Fatal(err)
		}
		if m.PNew <= pOld/8 || m.PNew >= pOld/4 {
			t.Fatalf("pNew=%d outside (%d/8, %d/4)", m.PNew, pOld, pOld)
		}
		covered := int64(0)
		for y := int64(0); y < m.PNew; y++ {
			cloud := m.DeflationCloud(y)
			if len(cloud) == 0 {
				t.Fatalf("empty deflation cloud for %d", y)
			}
			if len(cloud) > m.MaxCloudSize() {
				t.Fatalf("cloud of %d exceeds MaxCloudSize", y)
			}
			dom := m.DominatorOf(y)
			if cloud[0] != dom {
				t.Fatalf("dominator mismatch: %d vs %d", cloud[0], dom)
			}
			if !m.Dominates(dom) {
				t.Fatalf("Dominates(%d) false", dom)
			}
			for i, x := range cloud {
				if m.NewVertexOf(x) != y {
					t.Fatalf("NewVertexOf(%d) = %d, want %d", x, m.NewVertexOf(x), y)
				}
				if i > 0 && m.Dominates(x) {
					t.Fatalf("non-smallest %d claims domination", x)
				}
			}
			covered += int64(len(cloud))
		}
		if covered != pOld {
			t.Fatalf("deflation clouds cover %d of %d", covered, pOld)
		}
	}
}

func TestInflationDeflationQuick(t *testing.T) {
	// Property: for random old vertices, OldOwner inverts Cloud and
	// NewVertexOf inverts DeflationCloud membership.
	inf, err := NewInflation(1009)
	if err != nil {
		t.Fatal(err)
	}
	def, err := NewDeflation(1009)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		x := int64(raw) % 1009
		for _, y := range inf.Cloud(x) {
			if inf.OldOwner(y) != x {
				return false
			}
		}
		y := def.NewVertexOf(x)
		found := false
		for _, xx := range def.DeflationCloud(y) {
			if xx == x {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutePermutationIdentityIsFree(t *testing.T) {
	c := mustCycle(t, 101)
	rounds, _ := c.RoutePermutation(func(x Vertex) Vertex { return x })
	if rounds != 0 {
		t.Fatalf("identity permutation took %d rounds", rounds)
	}
}

func TestRoutePermutationShift(t *testing.T) {
	c := mustCycle(t, 101)
	rounds, _ := c.RoutePermutation(func(x Vertex) Vertex { return (x + 1) % 101 })
	if rounds < 1 || rounds > 5 {
		t.Fatalf("shift permutation rounds = %d", rounds)
	}
}

func TestRoutePermutationInverseChord(t *testing.T) {
	// The routing instance type-2 recovery actually solves: x -> x^{-1}.
	for _, p := range []int64{101, 499} {
		c := mustCycle(t, p)
		rounds, maxQ := c.RoutePermutation(c.InversePermutation())
		bound := 4 * int(math.Pow(math.Log2(float64(p)), 2))
		if rounds > bound {
			t.Fatalf("p=%d inverse routing took %d rounds (> %d); maxQ=%d", p, rounds, bound, maxQ)
		}
	}
}

func TestSortVertices(t *testing.T) {
	vs := []Vertex{5, 1, 3}
	SortVertices(vs)
	if vs[0] != 1 || vs[1] != 3 || vs[2] != 5 {
		t.Fatalf("sorted = %v", vs)
	}
}

func TestStringer(t *testing.T) {
	if s := mustCycle(t, 23).String(); s != "Z(23)" {
		t.Fatalf("String = %q", s)
	}
}

func BenchmarkNeighborSlots(b *testing.B) {
	c := mustCycle(b, 104729)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NeighborSlots(Vertex(i) % 104729)
	}
}

func BenchmarkRandomPermRouting1009(b *testing.B) {
	c := mustCycle(b, 1009)
	perm := make([]Vertex, 1009)
	for i := range perm {
		perm[i] = Vertex((i*733 + 17) % 1009) // fixed full-cycle permutation
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RoutePermutation(func(x Vertex) Vertex { return perm[x] })
	}
}
