package primes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func trialDivisionIsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for d := int64(2); d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

func TestIsPrimeSmall(t *testing.T) {
	for n := int64(-5); n <= 2000; n++ {
		if got, want := IsPrime(n), trialDivisionIsPrime(n); got != want {
			t.Fatalf("IsPrime(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestIsPrimeKnownValues(t *testing.T) {
	cases := []struct {
		n    int64
		want bool
	}{
		{2, true},
		{3, true},
		{23, true}, // the paper's Figure 1 p-cycle modulus
		{1_000_000_007, true},
		{1_000_000_008, false},
		{2_147_483_647, true},              // Mersenne prime 2^31-1
		{4_294_967_297, false},             // Fermat F5 = 641 * 6700417
		{9_223_372_036_854_775_783, true},  // largest prime < 2^63
		{9_223_372_036_854_775_807, false}, // 2^63-1 = 7*73*127*337*92737*649657
		{3_215_031_751, false},             // strong pseudoprime to bases 2,3,5,7
	}
	for _, c := range cases {
		if got := IsPrime(c.n); got != c.want {
			t.Errorf("IsPrime(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestIsPrimeMatchesTrialDivisionQuick(t *testing.T) {
	f := func(x uint32) bool {
		n := int64(x)%5_000_000 + 2
		return IsPrime(n) == trialDivisionIsPrime(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {24, 29}, {90, 97},
		{7919, 7919}, {7920, 7927},
	}
	for _, c := range cases {
		if got := NextPrime(c.in); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestFirstPrimeInBertrandIntervals(t *testing.T) {
	// DEX uses intervals (4p, 8p) for inflation and (p/8, p/4) for
	// deflation. Both contain a prime for every realistic p; verify over a
	// dense sweep of starting primes.
	for _, p := range PrimesUpTo(5000) {
		if p < 11 {
			continue
		}
		q, ok := FirstPrimeIn(4*p, 8*p)
		if !ok {
			t.Fatalf("no prime in (4*%d, 8*%d)", p, p)
		}
		if q <= 4*p || q >= 8*p || !IsPrime(q) {
			t.Fatalf("FirstPrimeIn(4*%d,8*%d) = %d invalid", p, p, q)
		}
		s, ok := FirstPrimeIn(p/8, p/4)
		if p >= 97 {
			if !ok {
				t.Fatalf("no prime in (%d/8, %d/4)", p, p)
			}
			if s <= p/8 || s >= p/4 || !IsPrime(s) {
				t.Fatalf("FirstPrimeIn(%d/8,%d/4) = %d invalid", p, p, s)
			}
		}
	}
}

func TestFirstPrimeInEmptyInterval(t *testing.T) {
	if p, ok := FirstPrimeIn(24, 28); ok {
		t.Fatalf("expected no prime in (24,28), got %d", p)
	}
	if p, ok := FirstPrimeIn(10, 10); ok {
		t.Fatalf("expected no prime in empty interval, got %d", p)
	}
}

func TestModInverse(t *testing.T) {
	for _, p := range []int64{2, 3, 5, 7, 23, 101, 7919, 1_000_000_007} {
		rng := rand.New(rand.NewSource(p))
		for i := 0; i < 50; i++ {
			a := rng.Int63n(p-1) + 1
			inv := ModInverse(a, p)
			if inv < 1 || inv >= p {
				t.Fatalf("ModInverse(%d,%d) = %d out of range", a, p, inv)
			}
			if got := mulMod(uint64(a), uint64(inv), uint64(p)); got != 1 {
				t.Fatalf("a*inv mod p = %d for a=%d p=%d inv=%d", got, a, p, inv)
			}
		}
	}
}

func TestModInverseInvolution(t *testing.T) {
	// In Z_p*, inverse is an involution: inv(inv(a)) == a. This is what
	// makes the p-cycle chord edges well-defined as undirected edges.
	const p = 1009
	for a := int64(1); a < p; a++ {
		if got := ModInverse(ModInverse(a, p), p); got != a {
			t.Fatalf("inv(inv(%d)) = %d", a, got)
		}
	}
}

func TestModInverseSelfInverseElements(t *testing.T) {
	// Only 1 and p-1 are self-inverse mod a prime p > 2; these become the
	// only chord self-loops in Z(p) besides vertex 0.
	const p = 23
	var selfInv []int64
	for a := int64(1); a < p; a++ {
		if ModInverse(a, p) == a {
			selfInv = append(selfInv, a)
		}
	}
	if len(selfInv) != 2 || selfInv[0] != 1 || selfInv[1] != p-1 {
		t.Fatalf("self-inverse elements mod %d = %v, want [1 %d]", p, selfInv, p-1)
	}
}

func TestModInverseZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ModInverse(0, p) did not panic")
		}
	}()
	ModInverse(0, 23)
}

func TestPrimesUpTo(t *testing.T) {
	got := PrimesUpTo(30)
	want := []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("PrimesUpTo(30) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrimesUpTo(30)[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if PrimesUpTo(1) != nil {
		t.Fatal("PrimesUpTo(1) should be empty")
	}
}

func TestMulModLargeOperands(t *testing.T) {
	// Near-2^63 operands must not overflow.
	const m = uint64(9_223_372_036_854_775_783)
	a, b := m-1, m-2
	// (m-1)(m-2) mod m == 2 mod m.
	if got := mulMod(a, b, m); got != 2 {
		t.Fatalf("mulMod(m-1, m-2, m) = %d, want 2", got)
	}
}

func BenchmarkIsPrime64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		IsPrime(9_223_372_036_854_775_783)
	}
}

func BenchmarkFirstPrimeInInflationInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FirstPrimeIn(4*104729, 8*104729)
	}
}
