// Package primes provides the deterministic number-theoretic primitives the
// DEX algorithm depends on: primality testing, prime search inside
// Bertrand-style intervals, and modular inverses for the p-cycle chord
// edges (Definition 1 of the paper).
//
// All routines are deterministic and exact for every int64 input, so the
// virtual-graph construction is reproducible across runs and across the
// simulated nodes (every node must compute the *same* next prime, cf.
// Algorithm 4.5 line 3).
package primes

import "math/bits"

// IsPrime reports whether n is prime. It uses a deterministic Miller-Rabin
// test with a witness set proven sufficient for all n < 3,317,044,064,679,887,385,961,981
// (Sorenson & Webster), which covers the full positive int64 range.
func IsPrime(n int64) bool {
	if n < 2 {
		return false
	}
	for _, p := range smallPrimes {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^s with d odd.
	d := n - 1
	s := 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	for _, a := range mrWitnesses {
		if a%n == 0 {
			continue
		}
		if !millerRabinRound(n, uint64(d), s, uint64(a%n)) {
			return false
		}
	}
	return true
}

var smallPrimes = []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// mrWitnesses is the deterministic witness set for 64-bit integers.
var mrWitnesses = []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// millerRabinRound performs one strong-pseudoprime round for witness a.
// It returns false when a proves n composite.
func millerRabinRound(n int64, d uint64, s int, a uint64) bool {
	un := uint64(n)
	x := powMod(a, d, un)
	if x == 1 || x == un-1 {
		return true
	}
	for i := 0; i < s-1; i++ {
		x = mulMod(x, x, un)
		if x == un-1 {
			return true
		}
	}
	return false
}

// mulMod computes (a*b) mod m without overflow using 128-bit intermediates.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powMod computes (base^exp) mod m.
func powMod(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		exp >>= 1
	}
	return result
}

// NextPrime returns the smallest prime >= n, or 0 if the search would
// overflow int64.
func NextPrime(n int64) int64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for ; n > 0; n += 2 {
		if IsPrime(n) {
			return n
		}
	}
	return 0
}

// FirstPrimeIn returns the smallest prime p with lo < p < hi (exclusive
// bounds, matching the paper's open intervals such as (4p_i, 8p_i)), and
// true on success. Bertrand's postulate guarantees success whenever
// hi >= 2*(lo+1), which holds for every interval DEX uses.
func FirstPrimeIn(lo, hi int64) (int64, bool) {
	p := NextPrime(lo + 1)
	if p == 0 || p >= hi {
		return 0, false
	}
	return p, true
}

// ModInverse returns the multiplicative inverse of a modulo the prime p,
// i.e. the unique x in [1, p-1] with a*x ≡ 1 (mod p). It panics if a ≡ 0,
// because 0 has no inverse (the p-cycle gives vertex 0 a self-loop
// instead, cf. Definition 1).
func ModInverse(a, p int64) int64 {
	a %= p
	if a < 0 {
		a += p
	}
	if a == 0 {
		panic("primes: ModInverse of 0")
	}
	// Extended Euclid on (a, p).
	t, newT := int64(0), int64(1)
	r, newR := p, a
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		panic("primes: ModInverse modulus not prime or gcd != 1")
	}
	if t < 0 {
		t += p
	}
	return t
}

// PrimesUpTo returns all primes <= n in increasing order using a simple
// sieve. Intended for tests and small-n experiment setup.
func PrimesUpTo(n int64) []int64 {
	if n < 2 {
		return nil
	}
	sieve := make([]bool, n+1)
	var out []int64
	for i := int64(2); i <= n; i++ {
		if !sieve[i] {
			out = append(out, i)
			for j := i * i; j <= n; j += i {
				sieve[j] = true
			}
		}
	}
	return out
}
