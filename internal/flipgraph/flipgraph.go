// Package flipgraph maintains a random d-regular multigraph under churn
// via edge flips, after Cooper, Dyer and Handley's flip Markov chain
// (PODC 2009) referenced by the paper's related work: random d-regular
// graphs are expanders w.h.p., and background flips re-randomize the
// graph after each change. Like Law-Siu, the guarantee is probabilistic
// and decays under an adaptive adversary - the GAP experiment measures
// exactly that decay against DEX.
package flipgraph

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Cost mirrors the per-operation complexity measures.
type Cost struct {
	Rounds          int
	Messages        int
	TopologyChanges int
}

type edge struct{ a, b graph.NodeID }

// Network is a d-regular flip-maintained overlay.
type Network struct {
	d        int // even degree
	g        *graph.Graph
	edges    []edge // live edge multiset for O(1) uniform sampling
	rng      *rand.Rand
	nextID   graph.NodeID
	flipsPer int // background flips per operation
	last     Cost
}

// New builds a d-regular overlay on n0 nodes as d/2 random cycle unions.
// d must be even and >= 4.
func New(n0, d int, seed int64) (*Network, error) {
	if n0 < 4 || d < 4 || d%2 != 0 {
		return nil, fmt.Errorf("flipgraph: need n0 >= 4 and even d >= 4 (got %d, %d)", n0, d)
	}
	nw := &Network{
		d:        d,
		g:        graph.New(),
		rng:      rand.New(rand.NewSource(seed)),
		nextID:   graph.NodeID(n0),
		flipsPer: 2 * d,
	}
	for i := 0; i < n0; i++ {
		nw.g.AddNode(graph.NodeID(i))
	}
	for c := 0; c < d/2; c++ {
		perm := nw.rng.Perm(n0)
		for i := range perm {
			a, b := graph.NodeID(perm[i]), graph.NodeID(perm[(i+1)%n0])
			nw.addEdge(a, b)
		}
	}
	return nw, nil
}

func (nw *Network) addEdge(a, b graph.NodeID) {
	nw.g.AddEdge(a, b)
	nw.edges = append(nw.edges, edge{a, b})
}

// removeEdgeAt deletes edge index i from the sampling list and the graph.
func (nw *Network) removeEdgeAt(i int) edge {
	e := nw.edges[i]
	nw.edges[i] = nw.edges[len(nw.edges)-1]
	nw.edges = nw.edges[:len(nw.edges)-1]
	nw.g.RemoveEdge(e.a, e.b)
	return e
}

// Size, Graph, Nodes, FreshID, LastCost implement the harness interface.
func (nw *Network) Size() int             { return nw.g.NumNodes() }
func (nw *Network) Graph() *graph.Graph   { return nw.g }
func (nw *Network) Nodes() []graph.NodeID { return nw.g.Nodes() }
func (nw *Network) LastCost() Cost        { return nw.last }
func (nw *Network) FreshID() graph.NodeID {
	id := nw.nextID
	nw.nextID++
	return id
}

// Insert subdivides d/2 uniformly sampled edges to give id degree d, then
// runs background flips. Sampling an edge costs one O(log n) walk in the
// decentralized protocol; we charge that.
func (nw *Network) Insert(id, attach graph.NodeID) error {
	if nw.g.HasNode(id) {
		return fmt.Errorf("flipgraph: duplicate id %d", id)
	}
	if !nw.g.HasNode(attach) {
		return fmt.Errorf("flipgraph: unknown introducer %d", attach)
	}
	if id >= nw.nextID {
		nw.nextID = id + 1
	}
	L := nw.walkLen()
	nw.last = Cost{Rounds: L}
	nw.g.AddNode(id)
	for k := 0; k < nw.d/2; k++ {
		i := nw.rng.Intn(len(nw.edges))
		e := nw.removeEdgeAt(i)
		nw.addEdge(e.a, id)
		nw.addEdge(id, e.b)
		nw.last.Messages += L + 2
		nw.last.TopologyChanges += 3
	}
	nw.backgroundFlips()
	return nil
}

// Delete removes id and re-pairs its freed edge endpoints, then flips.
func (nw *Network) Delete(id graph.NodeID) error {
	if !nw.g.HasNode(id) {
		return fmt.Errorf("flipgraph: unknown id %d", id)
	}
	if nw.Size() <= 4 {
		return fmt.Errorf("flipgraph: refusing to shrink below 4")
	}
	nw.last = Cost{Rounds: 1}
	var freed []graph.NodeID
	for i := 0; i < len(nw.edges); {
		e := nw.edges[i]
		if e.a == id || e.b == id {
			nw.removeEdgeAt(i)
			switch {
			case e.a == id && e.b == id:
				// self-loop: frees no endpoint
			case e.a == id:
				freed = append(freed, e.b)
			default:
				freed = append(freed, e.a)
			}
			nw.last.TopologyChanges++
			continue
		}
		i++
	}
	nw.g.RemoveNode(id)
	for i := 0; i+1 < len(freed); i += 2 {
		nw.addEdge(freed[i], freed[i+1])
		nw.last.Messages += 2
		nw.last.TopologyChanges++
	}
	if len(freed)%2 == 1 {
		// Odd leftover endpoint: pair it with a random node to keep the
		// graph connected-ish; degree regularity is approximate here,
		// matching the "almost d-regular" practical variants.
		nodes := nw.g.Nodes()
		nw.addEdge(freed[len(freed)-1], nodes[nw.rng.Intn(len(nodes))])
		nw.last.Messages += 2
		nw.last.TopologyChanges++
	}
	nw.backgroundFlips()
	return nil
}

// backgroundFlips performs the chain's re-randomization after a change.
func (nw *Network) backgroundFlips() {
	for k := 0; k < nw.flipsPer; k++ {
		if len(nw.edges) < 2 {
			return
		}
		i := nw.rng.Intn(len(nw.edges))
		j := nw.rng.Intn(len(nw.edges))
		if i == j {
			continue
		}
		e1, e2 := nw.edges[i], nw.edges[j]
		// Skip flips that would create loops on shared endpoints.
		if e1.a == e2.b || e1.b == e2.a || e1.a == e2.a || e1.b == e2.b {
			continue
		}
		if i > j {
			i, j = j, i
		}
		nw.removeEdgeAt(j)
		nw.removeEdgeAt(i)
		nw.addEdge(e1.a, e2.b)
		nw.addEdge(e2.a, e1.b)
		nw.last.Messages += 4
		nw.last.TopologyChanges += 4
	}
	nw.last.Rounds += 2
}

func (nw *Network) walkLen() int {
	n := nw.Size()
	if n < 2 {
		return 1
	}
	return 4 * int(math.Ceil(math.Log2(float64(n))))
}

// Validate checks edge-list/graph agreement and near-regularity (tests).
func (nw *Network) Validate() error {
	if err := nw.g.Validate(); err != nil {
		return err
	}
	if len(nw.edges) != nw.g.NumEdges() {
		return fmt.Errorf("flipgraph: edge list %d != graph %d", len(nw.edges), nw.g.NumEdges())
	}
	return nil
}
