package flipgraph

import (
	"math/rand"
	"testing"

	"repro/internal/spectral"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(2, 4, 1); err == nil {
		t.Fatal("accepted n0=2")
	}
	if _, err := New(16, 3, 1); err == nil {
		t.Fatal("accepted odd d")
	}
}

func TestInitialRegular(t *testing.T) {
	nw, err := New(64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, u := range nw.Nodes() {
		if d := nw.Graph().Degree(u); d != 4 {
			t.Fatalf("degree(%d) = %d", u, d)
		}
	}
	if gap := spectral.Gap(nw.Graph()); gap < 0.03 {
		t.Fatalf("gap = %v", gap)
	}
}

func TestChurnNearRegular(t *testing.T) {
	nw, err := New(32, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				t.Fatal(err)
			}
		}
		if err := nw.Validate(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	// Total degree stays ~ d*n (each op preserves the edge budget up to
	// the odd-endpoint correction).
	sum := 0
	for _, u := range nw.Nodes() {
		sum += nw.Graph().Degree(u)
	}
	if avg := float64(sum) / float64(nw.Size()); avg < 4 || avg > 8 {
		t.Fatalf("average degree %v drifted from d=6", avg)
	}
}

func TestErrors(t *testing.T) {
	nw, _ := New(16, 4, 1)
	if err := nw.Insert(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := nw.Insert(nw.FreshID(), 999); err == nil {
		t.Fatal("unknown introducer accepted")
	}
	if err := nw.Delete(999); err == nil {
		t.Fatal("unknown delete accepted")
	}
}
