package harness

import (
	"math"
	"testing"

	"repro/dex"
	"repro/internal/flipgraph"
	"repro/internal/lawsiu"
	"repro/internal/naive"
	"repro/internal/skipgraph"
)

func newDex(t testing.TB, n0 int) *dex.Network {
	t.Helper()
	nw, err := dex.New(dex.WithInitialSize(n0))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func allMaintainers(t testing.TB, n0 int) map[string]Maintainer {
	t.Helper()
	ls, err := lawsiu.New(n0, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := flipgraph.New(n0, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := skipgraph.New(n0, 1)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := naive.New(n0, naive.Flooding)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := naive.New(n0, naive.GlobalKnowledge)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Maintainer{
		"dex":      newDex(t, n0),
		"law-siu":  LawSiuMaintainer{ls},
		"flip":     FlipMaintainer{fg},
		"skip":     SkipMaintainer{sg},
		"flooding": NaiveMaintainer{nf},
		"global":   NaiveMaintainer{ng},
	}
}

func TestRunRandomChurnAllMaintainers(t *testing.T) {
	for name, m := range allMaintainers(t, 24) {
		recs, err := Run(m, RandomChurn{PInsert: 0.5}, RunConfig{Steps: 120, Seed: 2, GapEvery: 30})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) != 120 {
			t.Fatalf("%s: %d records", name, len(recs))
		}
		rounds, msgs, topo, maxDeg, minGap := Summaries(recs)
		if rounds.Count != 120 || msgs.Mean <= 0 || topo.Max <= 0 {
			t.Fatalf("%s: degenerate summaries %+v %+v %+v", name, rounds, msgs, topo)
		}
		if maxDeg <= 0 {
			t.Fatalf("%s: no degree sampled", name)
		}
		if minGap <= 0 {
			t.Fatalf("%s: min gap %v (graph disconnected?)", name, minGap)
		}
		if !m.Graph().Connected() {
			t.Fatalf("%s: disconnected after churn", name)
		}
	}
}

func TestAdversariesAgainstDex(t *testing.T) {
	advs := []Adversary{
		InsertOnly{},
		DeleteOnly{},
		MaxDegreeTarget{PTarget: 0.5},
		&CutThinning{},
		CoordinatorKiller{},
	}
	for _, adv := range advs {
		m := newDex(t, 24)
		if _, err := Run(m, adv, RunConfig{Steps: 60, Seed: 3, Audit: true}); err != nil {
			t.Fatalf("%s: %v", adv.Name(), err)
		}
	}
}

func TestDexCostEnvelopeUnderCoordinatorAttack(t *testing.T) {
	// Failure injection: killing the coordinator every step must not blow
	// up per-step costs or break invariants.
	m := newDex(t, 48)
	recs, err := Run(m, CoordinatorKiller{}, RunConfig{Steps: 80, Seed: 4, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	_, msgs, topo, _, _ := Summaries(recs)
	bound := 4000.0 // generous O(log n) envelope for n<=60
	if msgs.P95 > bound {
		t.Fatalf("messages p95 = %v under coordinator attack", msgs.P95)
	}
	if topo.P95 > 200 {
		t.Fatalf("topology changes p95 = %v", topo.P95)
	}
}

func TestSummariesGapHandling(t *testing.T) {
	recs := []Record{{Gap: math.NaN(), MaxDegree: 3}, {Gap: 0.25, MaxDegree: 5}}
	_, _, _, maxDeg, minGap := Summaries(recs)
	if maxDeg != 5 || minGap != 0.25 {
		t.Fatalf("maxDeg=%d minGap=%v", maxDeg, minGap)
	}
	if _, _, _, _, g := Summaries([]Record{{Gap: math.NaN()}}); g != -1 {
		t.Fatalf("no-gap marker = %v", g)
	}
}

func TestNaiveCostShapes(t *testing.T) {
	// Section 3's point: flooding costs Theta(n) messages per step.
	small, _ := naive.New(32, naive.Flooding)
	big, _ := naive.New(256, naive.Flooding)
	ms := NaiveMaintainer{small}
	mb := NaiveMaintainer{big}
	ms.Insert(ms.FreshID(), 0)
	mb.Insert(mb.FreshID(), 0)
	if mb.LastCost().Messages < 4*ms.LastCost().Messages {
		t.Fatalf("flooding cost not ~linear: %d vs %d",
			ms.LastCost().Messages, mb.LastCost().Messages)
	}
	// Global knowledge: cheap steps until the leader dies.
	ng, _ := naive.New(64, naive.GlobalKnowledge)
	mg := NaiveMaintainer{ng}
	mg.Insert(mg.FreshID(), 0)
	cheap := mg.LastCost().Messages
	if err := mg.Delete(0); err != nil { // node 0 is the leader
		t.Fatal(err)
	}
	if handover := mg.LastCost().Messages; handover < 2*mg.Size() || handover < 10*cheap {
		t.Fatalf("leader handover not Omega(n): cheap=%d handover=%d n=%d", cheap, handover, mg.Size())
	}
}
