// Package harness drives churn experiments against DEX and every
// baseline through the public dex.Maintainer contract, collecting the
// paper's cost measures per step plus periodic spectral health samples,
// and renders the tables and series the README documents.
package harness

import (
	"fmt"
	"math"
	"math/rand"

	"repro/dex"
	"repro/internal/flipgraph"
	"repro/internal/graph"
	"repro/internal/lawsiu"
	"repro/internal/naive"
	"repro/internal/skipgraph"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// Cost is the per-operation complexity triple of Table 1, promoted to
// the public API; the harness keeps an alias for its adapters.
type Cost = dex.Cost

// Maintainer is the public churn-maintenance contract (see
// dex.Maintainer). DEX itself satisfies it as *dex.Network; the
// adapters below bring every baseline under the same interface.
type Maintainer = dex.Maintainer

// --- adapters ---------------------------------------------------------------

// LawSiuMaintainer adapts lawsiu.Network.
type LawSiuMaintainer struct{ *lawsiu.Network }

// LastCost converts the operation cost.
func (l LawSiuMaintainer) LastCost() Cost { return Cost(l.Network.LastCost()) }

// FlipMaintainer adapts flipgraph.Network.
type FlipMaintainer struct{ *flipgraph.Network }

// LastCost converts the operation cost.
func (f FlipMaintainer) LastCost() Cost { return Cost(f.Network.LastCost()) }

// SkipMaintainer adapts skipgraph.Network.
type SkipMaintainer struct{ *skipgraph.Network }

// LastCost converts the operation cost.
func (s SkipMaintainer) LastCost() Cost { return Cost(s.Network.LastCost()) }

// NaiveMaintainer adapts naive.Network.
type NaiveMaintainer struct{ *naive.Network }

// LastCost converts the operation cost.
func (n NaiveMaintainer) LastCost() Cost { return Cost(n.Network.LastCost()) }

// --- adversaries -------------------------------------------------------------

// Adversary decides the next operation given full knowledge of the
// network (the paper's adaptive model: it sees the entire state and all
// past random choices; it cannot see future coin flips).
type Adversary interface {
	// Step performs exactly one adversarial operation on m.
	Step(m Maintainer, rng *rand.Rand) error
	Name() string
}

// samplerCutover is the network size above which adversaries switch
// from the sorted Nodes() snapshot (O(n log n) per step) to the O(1)
// NodeSampler, which is what lets churn runs scale past 10^6 nodes.
// Below the cutover the legacy path is kept so seeded small-scale
// experiments replay byte-identically to earlier versions: both paths
// consume exactly one rng.Intn(size) draw.
const samplerCutover = 2048

// pickNode returns a uniformly random live node using one rng.Intn(n)
// draw, via the O(1) sampler when the maintainer offers one and the
// network is large.
func pickNode(m Maintainer, rng *rand.Rand) graph.NodeID {
	if s, ok := m.(dex.NodeSampler); ok && m.Size() >= samplerCutover {
		return s.SampleNode(rng)
	}
	nodes := m.Nodes()
	return nodes[rng.Intn(len(nodes))]
}

// RandomChurn inserts with probability PInsert, attaching to a uniform
// node, and deletes a uniform node otherwise.
type RandomChurn struct {
	PInsert float64
	MinSize int
}

// Name implements Adversary.
func (a RandomChurn) Name() string { return fmt.Sprintf("random(p=%.2f)", a.PInsert) }

// Step implements Adversary.
func (a RandomChurn) Step(m Maintainer, rng *rand.Rand) error {
	minSize := a.MinSize
	if minSize < 6 {
		minSize = 6
	}
	if rng.Float64() < a.PInsert || m.Size() <= minSize {
		return m.Insert(m.FreshID(), pickNode(m, rng))
	}
	return deleteSafely(m, pickNode(m, rng), rng)
}

// InsertOnly grows the network.
type InsertOnly struct{}

// Name implements Adversary.
func (InsertOnly) Name() string { return "insert-only" }

// Step implements Adversary.
func (InsertOnly) Step(m Maintainer, rng *rand.Rand) error {
	return m.Insert(m.FreshID(), pickNode(m, rng))
}

// DeleteOnly shrinks the network (until MinSize, then it re-inserts to
// keep the run going).
type DeleteOnly struct{ MinSize int }

// Name implements Adversary.
func (DeleteOnly) Name() string { return "delete-only" }

// Step implements Adversary.
func (a DeleteOnly) Step(m Maintainer, rng *rand.Rand) error {
	minSize := a.MinSize
	if minSize < 6 {
		minSize = 6
	}
	if m.Size() <= minSize {
		return m.Insert(m.FreshID(), pickNode(m, rng))
	}
	return deleteSafely(m, pickNode(m, rng), rng)
}

// MaxDegreeTarget is adaptive: it deletes the node with the highest
// distinct degree (the structurally most valuable node) with probability
// PTarget, inserting otherwise to keep the size roughly stable.
type MaxDegreeTarget struct{ PTarget float64 }

// Name implements Adversary.
func (MaxDegreeTarget) Name() string { return "max-degree-target" }

// Step implements Adversary.
func (a MaxDegreeTarget) Step(m Maintainer, rng *rand.Rand) error {
	if rng.Float64() >= a.PTarget || m.Size() <= 6 {
		return m.Insert(m.FreshID(), pickNode(m, rng))
	}
	nodes := m.Nodes()
	g := m.Graph()
	var victim graph.NodeID
	best := -1
	for _, u := range nodes {
		if d := g.DistinctDegree(u); d > best {
			best = d
			victim = u
		}
	}
	return deleteSafely(m, victim, rng)
}

// CutThinning is the strongest adaptive expansion attack here: it
// computes the Fiedler sweep cut of the live graph and deletes a node on
// the small side of the bottleneck, directly thinning the sparsest cut.
// Every other step it inserts (attached to the cut's small side) to keep
// n stable.
type CutThinning struct{ parity bool }

// Name implements Adversary.
func (*CutThinning) Name() string { return "cut-thinning" }

// Step implements Adversary.
func (a *CutThinning) Step(m Maintainer, rng *rand.Rand) error {
	a.parity = !a.parity
	nodes := m.Nodes()
	set, _ := spectral.SweepCut(m.Graph())
	if a.parity || m.Size() <= 6 {
		attach := nodes[rng.Intn(len(nodes))]
		for u := range set {
			attach = u
			break
		}
		return m.Insert(m.FreshID(), attach)
	}
	g := m.Graph()
	var victim graph.NodeID
	bestCut := -1
	for u := range set {
		cut := 0
		for _, v := range g.Neighbors(u) {
			if !set[v] {
				cut++
			}
		}
		if cut > bestCut {
			bestCut = cut
			victim = u
		}
	}
	if bestCut < 0 {
		victim = nodes[rng.Intn(len(nodes))]
	}
	return deleteSafely(m, victim, rng)
}

// CoordinatorKiller targets the coordinator every step (failure
// injection for the Algorithm 4.7 hand-off); on maintainers without a
// coordinator it degenerates to deleting the smallest id.
type CoordinatorKiller struct{}

// Name implements Adversary.
func (CoordinatorKiller) Name() string { return "coordinator-killer" }

// Step implements Adversary.
func (CoordinatorKiller) Step(m Maintainer, rng *rand.Rand) error {
	if m.Size() <= 6 {
		return m.Insert(m.FreshID(), pickNode(m, rng))
	}
	var victim graph.NodeID
	if c, ok := m.(dex.Coordinated); ok {
		victim = c.Coordinator()
	} else {
		victim = m.Nodes()[0]
	}
	if err := deleteSafely(m, victim, rng); err != nil {
		return err
	}
	return m.Insert(m.FreshID(), pickNode(m, rng))
}

// deleteSafely retries nearby victims when a maintainer refuses one
// (e.g. the deletion would disconnect a baseline's structure).
func deleteSafely(m Maintainer, victim graph.NodeID, rng *rand.Rand) error {
	if err := m.Delete(victim); err == nil {
		return nil
	}
	for try := 0; try < 8; try++ {
		if err := m.Delete(pickNode(m, rng)); err == nil {
			return nil
		}
	}
	return m.Insert(m.FreshID(), pickNode(m, rng))
}

// --- the runner ---------------------------------------------------------------

// Record is one step's measurements.
type Record struct {
	Step int
	N    int
	Cost Cost
	// Gap is the sampled spectral gap (NaN when not sampled this step).
	Gap       float64
	MaxDegree int
}

// RunConfig controls a churn run.
type RunConfig struct {
	Steps    int
	Seed     int64
	GapEvery int  // sample the spectral gap every k steps (0 = never)
	DegEvery int  // sample max distinct degree every k steps (0 = every step)
	Audit    bool // run invariant checks each step on maintainers that support it
}

// Run drives adv against m for cfg.Steps steps and returns the records.
func Run(m Maintainer, adv Adversary, cfg RunConfig) ([]Record, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	records := make([]Record, 0, cfg.Steps)
	for i := 0; i < cfg.Steps; i++ {
		if err := adv.Step(m, rng); err != nil {
			return records, fmt.Errorf("step %d (%s): %w", i, adv.Name(), err)
		}
		rec := Record{Step: i, N: m.Size(), Cost: m.LastCost(), Gap: math.NaN()}
		if cfg.GapEvery > 0 && i%cfg.GapEvery == 0 {
			rec.Gap = spectral.Gap(m.Graph())
		}
		if cfg.DegEvery == 0 || i%max(1, cfg.DegEvery) == 0 {
			rec.MaxDegree = m.Graph().MaxDistinctDegree()
		}
		if cfg.Audit {
			if c, ok := m.(dex.InvariantChecker); ok {
				if err := c.CheckInvariants(); err != nil {
					return records, fmt.Errorf("step %d: invariant: %w", i, err)
				}
			}
		}
		records = append(records, rec)
	}
	return records, nil
}

// Summaries condenses the records into per-measure summaries.
func Summaries(recs []Record) (rounds, msgs, topo stats.Summary, maxDeg int, minGap float64) {
	var r, m, t []float64
	minGap = 1
	sawGap := false
	for _, rec := range recs {
		r = append(r, float64(rec.Cost.Rounds))
		m = append(m, float64(rec.Cost.Messages))
		t = append(t, float64(rec.Cost.TopologyChanges))
		if rec.MaxDegree > maxDeg {
			maxDeg = rec.MaxDegree
		}
		if rec.Gap == rec.Gap { // not NaN
			sawGap = true
			if rec.Gap < minGap {
				minGap = rec.Gap
			}
		}
	}
	if !sawGap {
		minGap = -1
	}
	return stats.Summarize(r), stats.Summarize(m), stats.Summarize(t), maxDeg, minGap
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
