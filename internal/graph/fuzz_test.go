package graph

import (
	"fmt"
	"testing"
)

// idSpace bounds fuzzed node ids so op sequences collide often enough to
// exercise multiplicity growth, run recycling, and slot reuse.
const idSpace = 32

// applyGraphOp decodes one (op, a, b) byte triple into a mutation applied
// to the arena and the Ref oracle simultaneously. Return-value-bearing
// ops must agree on the spot.
func applyGraphOp(t *testing.T, g *Graph, r *Ref, op, a, b byte) {
	t.Helper()
	u, v := NodeID(a%idSpace), NodeID(b%idSpace)
	switch op % 8 {
	case 0, 1: // AddEdge, twice as likely so graphs grow
		g.AddEdge(u, v)
		r.AddEdge(u, v)
	case 2:
		if got, want := g.RemoveEdge(u, v), r.RemoveEdge(u, v); got != want {
			t.Fatalf("RemoveEdge(%d,%d): arena %v, ref %v", u, v, got, want)
		}
	case 3:
		g.AddNode(u)
		r.AddNode(u)
	case 4:
		g.RemoveNode(u)
		r.RemoveNode(u)
	case 5:
		k := int(b>>5) + 1 // 1..8
		g.AddEdgeMult(u, v, k)
		r.AddEdgeMult(u, v, k)
	case 6:
		k := int(b>>5) + 1
		if got, want := g.RemoveEdgeMult(u, v, k), r.RemoveEdgeMult(u, v, k); got != want {
			t.Fatalf("RemoveEdgeMult(%d,%d,%d): arena %d, ref %d", u, v, k, got, want)
		}
	case 7: // walk step: the two implementations must choose identically
		seed := uint64(a)<<8 | uint64(b)
		gn, gok := g.RandomNeighborStep(u, -1, seed)
		rn, rok := r.RandomNeighborStep(u, -1, seed)
		if gn != rn || gok != rok {
			t.Fatalf("RandomNeighborStep(%d, r=%d): arena (%d,%v), ref (%d,%v)", u, seed, gn, gok, rn, rok)
		}
	}
}

// diffGraphs asserts the arena and the Ref oracle describe the same
// multigraph: node set, edge list, per-node degrees and multiplicities,
// and both internal validations.
func diffGraphs(g *Graph, r *Ref) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if g.NumNodes() != r.NumNodes() || g.NumEdges() != r.NumEdges() {
		return fmt.Errorf("arena %d nodes / %d edges, ref %d / %d",
			g.NumNodes(), g.NumEdges(), r.NumNodes(), r.NumEdges())
	}
	gn, rn := g.Nodes(), r.Nodes()
	for i, u := range gn {
		if rn[i] != u {
			return fmt.Errorf("node lists diverge at %d: arena %d, ref %d", i, u, rn[i])
		}
		if g.Degree(u) != r.Degree(u) {
			return fmt.Errorf("node %d: arena degree %d, ref %d", u, g.Degree(u), r.Degree(u))
		}
		if g.DistinctDegree(u) != r.DistinctDegree(u) {
			return fmt.Errorf("node %d: arena distinct degree %d, ref %d",
				u, g.DistinctDegree(u), r.DistinctDegree(u))
		}
		// Slot-column coherence: every (id, slot) pair the slot-native
		// iteration yields must agree with the slot table, both ways. This
		// is the invariant the recovery walks lean on to skip the id->slot
		// map on every hop.
		s, ok := g.SlotOf(u)
		if !ok {
			return fmt.Errorf("node %d listed but has no slot", u)
		}
		if got, live := g.NodeAt(s); !live || got != u {
			return fmt.Errorf("slot %d of node %d resolves to (%d,%v)", s, u, got, live)
		}
		var slotErr error
		g.ForEachNeighborAt(s, func(v NodeID, vs int32, mult int) bool {
			if want, live := g.SlotOf(v); !live || vs != want {
				slotErr = fmt.Errorf("node %d: neighbor %d carries slot %d, table says (%d,%v)",
					u, v, vs, want, live)
				return false
			}
			if got, live := g.NodeAt(vs); !live || got != v {
				slotErr = fmt.Errorf("node %d: neighbor slot %d resolves to (%d,%v), want %d",
					u, vs, got, live, v)
				return false
			}
			return true
		})
		if slotErr != nil {
			return slotErr
		}
		// Fence coherence, independently of Validate's own pass: recompute
		// every live fence entry from the run and compare cell-by-cell
		// (the same pattern as the slot-field check above — findNbr's
		// segment narrowing leans on this exactly like walks lean on the
		// cells' slot field).
		rec := g.recs[s]
		for k := 0; k < numFences; k++ {
			i := int32((k + 1) * fenceStride)
			if i >= rec.n {
				break
			}
			if rec.fence[k] != fenceKeyFor(g.pool[rec.off+i].v) {
				return fmt.Errorf("node %d: fence[%d] = %d, run cell %d holds %d",
					u, k, rec.fence[k], i, g.pool[rec.off+i].v)
			}
		}
	}
	ge, re := g.Edges(), r.Edges()
	if len(ge) != len(re) {
		return fmt.Errorf("arena %d distinct edges, ref %d", len(ge), len(re))
	}
	for i, e := range ge {
		if re[i] != e {
			return fmt.Errorf("edge lists diverge at %d: arena %+v, ref %+v", i, e, re[i])
		}
		if m := r.Multiplicity(e.U, e.V); m != e.Mult {
			return fmt.Errorf("edge {%d,%d}: arena multiplicity %d, ref %d", e.U, e.V, e.Mult, m)
		}
	}
	return nil
}

// FuzzGraphOps is the swap-safety differential fuzzer for the adjacency
// arena: arbitrary byte strings decode into Add/Remove node/edge
// sequences applied to the arena and the map-of-maps Ref oracle in
// lockstep, asserting identical observable state after every operation.
// This is what lets the graph representation be replaced fearlessly (the
// FuzzChurnTrace of the substrate layer). Run it with `make fuzz` or
//
//	go test ./internal/graph -run '^$' -fuzz FuzzGraphOps
func FuzzGraphOps(f *testing.F) {
	grow := []byte{}
	for i := 0; i < 40; i++ {
		grow = append(grow, 0, byte(i*7), byte(i*13))
	}
	f.Add(grow)

	churn := []byte{}
	for i := 0; i < 60; i++ {
		churn = append(churn, byte(i%8), byte(i*5), byte(i*11))
	}
	f.Add(churn)

	loops := []byte{}
	for i := 0; i < 30; i++ {
		loops = append(loops, byte(i%8), byte(i), byte(i)) // u == v: self-loops
	}
	f.Add(loops)

	f.Add([]byte{4, 0, 0})
	f.Add([]byte{5, 1, 255, 6, 1, 255, 4, 1, 0})

	// A run long enough to cross findNbr's binary-narrowing threshold,
	// then membership probes at every position: re-adds (in-place bump)
	// and removals each depend on the boundary cell being found.
	star := []byte{}
	for i := 1; i < idSpace; i++ {
		star = append(star, 0, 1, byte(i))
	}
	for i := 1; i < idSpace; i++ {
		star = append(star, 0, 1, byte(i), 2, 1, byte(i))
	}
	f.Add(star)

	// Fence churn: grow one run across the 16-cell narrowing threshold,
	// shrink it back below (leaving stale fence tails that must never be
	// read), regrow it, then delete the hub node so compaction pressure
	// repacks runs with live fences. Every membership probe along the way
	// exercises the fence against freshly shifted cells.
	fence := []byte{}
	for i := 2; i < idSpace; i++ { // grow hub 1 past the threshold
		fence = append(fence, 0, 1, byte(i))
	}
	for i := 2; i < 24; i++ { // shrink below it, probing as it shifts
		fence = append(fence, 2, 1, byte(i))
	}
	for i := 2; i < 24; i++ { // regrow across it
		fence = append(fence, 0, 1, byte(i))
	}
	fence = append(fence, 4, 1, 0) // drop the hub: big run to the free lists
	for i := 2; i < idSpace; i++ { // rebuild on a second hub over recycled runs
		fence = append(fence, 0, 0, byte(i))
	}
	f.Add(fence)

	f.Fuzz(func(t *testing.T, data []byte) {
		g := New()
		r := NewRef()
		n := len(data)
		if n > 900 {
			n = 900 // bound trace length so each input stays fast
		}
		for i := 0; i+2 < n; i += 3 {
			applyGraphOp(t, g, r, data[i], data[i+1], data[i+2])
			if err := diffGraphs(g, r); err != nil {
				t.Fatalf("op %d (%d %d %d): %v", i/3, data[i], data[i+1], data[i+2], err)
			}
		}
		// A clone must be a detached but identical arena.
		c := g.Clone()
		if err := diffGraphs(c, r); err != nil {
			t.Fatalf("clone: %v", err)
		}
		c.AddEdge(NodeID(idSpace), NodeID(idSpace+1))
		if g.HasNode(NodeID(idSpace)) {
			t.Fatal("clone shares storage with original")
		}
	})
}
