package graph

import "testing"

// TestEpochTracksEffectiveMutations: the epoch bumps exactly on calls
// that change the logical graph — node/edge additions and removals —
// and stays put across no-ops and pure reads.
func TestEpochTracksEffectiveMutations(t *testing.T) {
	g := New()
	e := g.Epoch()
	bump := func(what string, want bool, f func()) {
		t.Helper()
		before := g.Epoch()
		f()
		after := g.Epoch()
		if want && after == before {
			t.Fatalf("%s did not bump the epoch", what)
		}
		if !want && after != before {
			t.Fatalf("%s bumped the epoch %d -> %d", what, before, after)
		}
		e = after
	}
	bump("AddNode(new)", true, func() { g.AddNode(1) })
	bump("AddNode(existing)", false, func() { g.AddNode(1) })
	bump("AddEdge", true, func() { g.AddEdge(1, 2) })
	bump("AddEdgeMult(0)", false, func() { g.AddEdgeMult(1, 2, 0) })
	bump("AddEdgeMult", true, func() { g.AddEdgeMult(1, 2, 3) })
	bump("RemoveEdge", true, func() { g.RemoveEdge(1, 2) })
	bump("RemoveEdge(absent)", false, func() {
		if g.RemoveEdge(1, 99) {
			t.Fatal("removed an absent edge")
		}
	})
	bump("RemoveEdgeMult(absent node)", false, func() { g.RemoveEdgeMult(42, 43, 1) })
	bump("reads", false, func() {
		g.Degree(1)
		g.Multiplicity(1, 2)
		g.ForEachNeighbor(1, func(NodeID, int) bool { return true })
		g.RandomNeighborStep(1, -1, 7)
		g.Nodes()
	})
	bump("RemoveNode", true, func() { g.RemoveNode(2) })
	bump("RemoveNode(absent)", false, func() { g.RemoveNode(2) })
	if e == 0 {
		t.Fatal("epoch never advanced")
	}
}

// TestSnapshotIsolation: a snapshot is a deep copy pinned at its epoch;
// later mutations of the source neither change the snapshot's content
// nor its epoch.
func TestSnapshotIsolation(t *testing.T) {
	g := cycle(8)
	snap, at := g.Snapshot()
	if at != g.Epoch() {
		t.Fatalf("snapshot epoch %d, source epoch %d", at, g.Epoch())
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(0, 4)
	g.RemoveNode(2)
	if snap.Epoch() != at {
		t.Fatalf("snapshot epoch moved %d -> %d after source mutation", at, snap.Epoch())
	}
	if !snap.HasNode(2) || snap.HasEdge(0, 4) {
		t.Fatal("snapshot content tracked source mutations")
	}
	if snap.NumNodes() != 8 || snap.NumEdges() != 8 {
		t.Fatalf("snapshot shape %d nodes / %d edges, want 8/8", snap.NumNodes(), snap.NumEdges())
	}
	if g.Epoch() == at {
		t.Fatal("source epoch did not advance past the snapshot's")
	}
}
