// Package graph provides the undirected-multigraph substrate shared by the
// virtual p-cycle, the real overlay network, and every baseline topology in
// this repository.
//
// Graphs are multigraphs: parallel edges and self-loops are first-class,
// because the DEX real network is a vertex contraction of a 3-regular
// virtual expander and contraction creates exactly those (Section 3.1 of
// the paper). Degrees count edge multiplicity, with a self-loop
// contributing 1, so the random-walk transition matrix D^{-1}A is
// stochastic with the same convention used throughout the spectral
// toolkit.
//
// All iteration orders are deterministic (sorted by node ID) so that
// seeded experiments are exactly reproducible.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. The zero value is a valid ID.
type NodeID int64

// Graph is a mutable undirected multigraph.
type Graph struct {
	adj   map[NodeID]map[NodeID]int // adjacency with edge multiplicities
	edges int                       // number of edges (loops count once)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[NodeID]map[NodeID]int)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	c.edges = g.edges
	for u, nbrs := range g.adj {
		m := make(map[NodeID]int, len(nbrs))
		for v, k := range nbrs {
			m[v] = k
		}
		c.adj[u] = m
	}
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges counting multiplicity; a self-loop
// counts as one edge.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether u exists.
func (g *Graph) HasNode(u NodeID) bool {
	_, ok := g.adj[u]
	return ok
}

// AddNode inserts u as an isolated node if not present.
func (g *Graph) AddNode(u NodeID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[NodeID]int)
	}
}

// RemoveNode deletes u and all incident edges. It is a no-op if u is absent.
func (g *Graph) RemoveNode(u NodeID) {
	nbrs, ok := g.adj[u]
	if !ok {
		return
	}
	for v, k := range nbrs {
		if v == u {
			g.edges -= k
			continue
		}
		g.edges -= k
		delete(g.adj[v], u)
	}
	delete(g.adj, u)
}

// AddEdge adds one undirected edge {u,v}, creating the endpoints if needed.
// Adding an existing edge increases its multiplicity.
func (g *Graph) AddEdge(u, v NodeID) {
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v]++
	if u != v {
		g.adj[v][u]++
	}
	g.edges++
}

// RemoveEdge removes one multiplicity of edge {u,v}. It reports whether an
// edge was removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	nbrs, ok := g.adj[u]
	if !ok {
		return false
	}
	k, ok := nbrs[v]
	if !ok || k == 0 {
		return false
	}
	if k == 1 {
		delete(nbrs, v)
	} else {
		nbrs[v] = k - 1
	}
	if u != v {
		if k2 := g.adj[v][u]; k2 == 1 {
			delete(g.adj[v], u)
		} else {
			g.adj[v][u] = k2 - 1
		}
	}
	g.edges--
	return true
}

// Multiplicity returns the number of parallel {u,v} edges.
func (g *Graph) Multiplicity(u, v NodeID) int {
	if nbrs, ok := g.adj[u]; ok {
		return nbrs[v]
	}
	return 0
}

// HasEdge reports whether at least one {u,v} edge exists.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.Multiplicity(u, v) > 0 }

// Degree returns the multigraph degree of u: the sum of incident edge
// multiplicities, a self-loop counting 1. Returns 0 for absent nodes.
func (g *Graph) Degree(u NodeID) int {
	d := 0
	for _, k := range g.adj[u] {
		d += k
	}
	return d
}

// DistinctDegree returns the number of distinct neighbors of u (excluding
// u itself). This is the number of actual network connections a node
// maintains, the quantity bounded by Theorem 1.
func (g *Graph) DistinctDegree(u NodeID) int {
	d := 0
	for v := range g.adj[u] {
		if v != u {
			d++
		}
	}
	return d
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the distinct neighbors of u in ascending order,
// including u itself when u has a self-loop.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	nbrs := g.adj[u]
	out := make([]NodeID, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WeightedNeighbors returns the distinct neighbors of u in ascending order
// together with the multiplicity of each connecting edge. Random walks use
// this to step proportionally to multiplicity, matching the stationary
// distribution pi(x) = d_x / 2|E| in the proof of Lemma 2.
func (g *Graph) WeightedNeighbors(u NodeID) (nbrs []NodeID, mult []int) {
	ns := g.Neighbors(u)
	ms := make([]int, len(ns))
	for i, v := range ns {
		ms[i] = g.adj[u][v]
	}
	return ns, ms
}

// Edge is an undirected edge with multiplicity.
type Edge struct {
	U, V NodeID // U <= V
	Mult int
}

// EdgeDelta is one entry of a batched topology diff: the multiplicity of
// the undirected edge {U,V} changed by Delta (U <= V, Delta != 0).
// Incremental maintainers emit slices of these so subscribers can mirror
// a graph without rescanning it.
type EdgeDelta struct {
	U, V  NodeID
	Delta int
}

// Edges returns all distinct edges in deterministic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, u := range g.Nodes() {
		for v, k := range g.adj[u] {
			if v < u {
				continue
			}
			out = append(out, Edge{U: u, V: v, Mult: k})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// MaxDegree returns the maximum multigraph degree, or 0 for empty graphs.
func (g *Graph) MaxDegree() int {
	m := 0
	for u := range g.adj {
		if d := g.Degree(u); d > m {
			m = d
		}
	}
	return m
}

// MaxDistinctDegree returns the maximum distinct-neighbor degree.
func (g *Graph) MaxDistinctDegree() int {
	m := 0
	for u := range g.adj {
		if d := g.DistinctDegree(u); d > m {
			m = d
		}
	}
	return m
}

// BFSDistances returns a map of shortest-path hop distances from src.
// Nodes unreachable from src are absent from the map.
func (g *Graph) BFSDistances(src NodeID) map[NodeID]int {
	if !g.HasNode(src) {
		return nil
	}
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for v := range g.adj[u] {
				if _, seen := dist[v]; !seen {
					dist[v] = dist[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// ShortestPath returns a shortest path from src to dst (inclusive), or nil
// if unreachable. Ties break deterministically toward smaller IDs.
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	parent := map[NodeID]NodeID{src: src}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if _, seen := parent[v]; seen {
					continue
				}
				parent[v] = u
				if v == dst {
					var path []NodeID
					for w := dst; ; w = parent[w] {
						path = append(path, w)
						if w == src {
							break
						}
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// Connected reports whether the graph is connected (empty and single-node
// graphs count as connected).
func (g *Graph) Connected() bool {
	if len(g.adj) <= 1 {
		return true
	}
	var src NodeID
	for u := range g.adj {
		src = u
		break
	}
	return len(g.BFSDistances(src)) == len(g.adj)
}

// Diameter returns the exact hop diameter via all-sources BFS, or -1 if
// the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if len(g.adj) == 0 {
		return -1
	}
	diam := 0
	for u := range g.adj {
		dist := g.BFSDistances(u)
		if len(dist) != len(g.adj) {
			return -1
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the maximum BFS distance from src, or -1 if some
// node is unreachable.
func (g *Graph) Eccentricity(src NodeID) int {
	dist := g.BFSDistances(src)
	if len(dist) != len(g.adj) {
		return -1
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Quotient builds the contraction of g under the supplied mapping: each
// node u maps to group phi(u); every edge {u,v} becomes {phi(u),phi(v)}
// with multiplicities accumulated, including resulting self-loops. This is
// exactly the vertex-contraction operation of Lemma 10 (spectral gap can
// only grow), used to derive the real network from the virtual graph.
func (g *Graph) Quotient(phi func(NodeID) NodeID) *Graph {
	q := New()
	for u := range g.adj {
		q.AddNode(phi(u))
	}
	for _, e := range g.Edges() {
		pu, pv := phi(e.U), phi(e.V)
		for i := 0; i < e.Mult; i++ {
			q.AddEdge(pu, pv)
		}
	}
	return q
}

// CSR is a compressed sparse row snapshot of a graph for numeric kernels.
// Index i corresponds to IDs[i]; Adj[RowPtr[i]:RowPtr[i+1]] lists neighbor
// indices with per-entry weights Wt (edge multiplicities; self-loops once).
type CSR struct {
	IDs    []NodeID
	Index  map[NodeID]int
	RowPtr []int32
	Adj    []int32
	Wt     []float64
	Deg    []float64 // multigraph degrees
}

// ToCSR snapshots the graph. Ordering is deterministic.
func (g *Graph) ToCSR() *CSR {
	ids := g.Nodes()
	idx := make(map[NodeID]int, len(ids))
	for i, u := range ids {
		idx[u] = i
	}
	c := &CSR{
		IDs:    ids,
		Index:  idx,
		RowPtr: make([]int32, len(ids)+1),
		Deg:    make([]float64, len(ids)),
	}
	nnz := 0
	for _, u := range ids {
		nnz += len(g.adj[u])
	}
	c.Adj = make([]int32, 0, nnz)
	c.Wt = make([]float64, 0, nnz)
	for i, u := range ids {
		for _, v := range g.Neighbors(u) {
			c.Adj = append(c.Adj, int32(idx[v]))
			m := float64(g.adj[u][v])
			c.Wt = append(c.Wt, m)
			c.Deg[i] += m
		}
		c.RowPtr[i+1] = int32(len(c.Adj))
	}
	return c
}

// Validate checks internal adjacency symmetry and edge accounting, for use
// in tests and the DEX invariant checker. It returns an error describing
// the first inconsistency found.
func (g *Graph) Validate() error {
	total := 0
	for u, nbrs := range g.adj {
		for v, k := range nbrs {
			if k <= 0 {
				return fmt.Errorf("graph: nonpositive multiplicity %d on {%d,%d}", k, u, v)
			}
			if v == u {
				total += 2 * k // count loops once overall
				continue
			}
			back, ok := g.adj[v]
			if !ok {
				return fmt.Errorf("graph: dangling neighbor %d of %d", v, u)
			}
			if back[u] != k {
				return fmt.Errorf("graph: asymmetric multiplicity {%d,%d}: %d vs %d", u, v, k, back[u])
			}
			total += k
		}
	}
	if total != 2*g.edges {
		return fmt.Errorf("graph: edge count mismatch: handshake sum %d, 2*edges %d", total, 2*g.edges)
	}
	return nil
}
