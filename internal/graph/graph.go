// Package graph provides the undirected-multigraph substrate shared by the
// virtual p-cycle, the real overlay network, and every baseline topology in
// this repository.
//
// Graphs are multigraphs: parallel edges and self-loops are first-class,
// because the DEX real network is a vertex contraction of a 3-regular
// virtual expander and contraction creates exactly those (Section 3.1 of
// the paper). Degrees count edge multiplicity, with a self-loop
// contributing 1, so the random-walk transition matrix D^{-1}A is
// stochastic with the same convention used throughout the spectral
// toolkit.
//
// All iteration orders are deterministic (sorted by node ID) so that
// seeded experiments are exactly reproducible.
//
// # Concurrency
//
// A Graph is not self-synchronizing, but its read paths are pure: no
// accessor (RandomNeighborStep, ForEachNeighbor, Degree, Multiplicity,
// BFS, ...) writes any field, so any number of goroutines may read one
// graph concurrently as long as no mutator runs. The engine's parallel
// type-1 walkers rely on this: each walker reads only the contiguous
// arena runs of the nodes it visits (disjoint pool regions), with no
// locks and no contention. Mutators (AddEdge*, RemoveEdge*, AddNode,
// RemoveNode) require exclusive access — they may grow, shrink, or
// compact the shared pool. Readers that cannot exclude writers must
// work from a Snapshot taken while a lock excluded mutators (e.g. the
// dex.Concurrent façade's Snapshot method); Epoch then tells such a
// reader how stale its copy has become.
//
// # Representation
//
// Graph stores adjacency in a flat arena: one shared []cell pool holds a
// contiguous, NodeID-sorted neighbor run per node, and a dense slot table
// (NodeID <-> int32 slot) carries each run's offset plus cached multigraph
// and distinct degrees. A cell interleaves the neighbor's id, the edge
// multiplicity, and the neighbor's own slot in 16 bytes, so a probe or a
// walk hop that reads all three touches the lines of one contiguous run —
// not three parallel columns resident on three different lines. Runs grow
// through multiple-of-4 size classes and freed runs recycle through
// per-size free lists, so steady-state churn (AddEdge/RemoveEdge at
// bounded degree) allocates nothing and a node's whole neighborhood sits
// on one or two cache lines. Because every cell carries the neighbor's
// slot, walk hops and neighbor iteration hand the caller (id, slot) pairs
// and slot-indexed side tables are reachable without an id->slot map
// probe. Walk stepping uses RandomNeighborStepAt / ForEachNeighborAt (or
// their id-keyed wrappers), which read the run in place and never
// materialize slices. The previous map-of-maps implementation lives
// on as Ref (ref.go), the oracle the differential tests check this arena
// against.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node. The zero value is a valid ID.
type NodeID int64

// fenceStride and numFences shape the per-record fence: fence[k] caches
// the run key at index fenceStride*(k+1), so a membership probe narrows
// to a fenceStride-cell segment by comparing keys that sit inline in the
// record — one cache line — instead of striding the pool. Three fences
// cover runs up to (numFences+1)*fenceStride cells (64, the engine's
// 8ζ distinct-degree cap at the default ζ); longer runs binary-narrow
// the tail.
const (
	fenceStride = 16
	numFences   = 3

	// Fence cells are int32: with three of them the record is exactly 32
	// padding-free bytes, so a []nodeRec never straddles more than one
	// 64-byte line per record and two records share each line. Keys
	// outside the int32 domain saturate to these bounds, which double
	// as sentinels: a saturated cell no longer orders exactly, so findNbr
	// falls back to reading the underlying run cell when it meets one.
	fenceMax = 1<<31 - 1
	fenceMin = -1 << 31
)

// fenceKeyFor compresses a run key into a fence cell (see fenceMax).
func fenceKeyFor(v NodeID) int32 {
	if v >= fenceMax {
		return fenceMax
	}
	if v <= fenceMin {
		return fenceMin
	}
	return int32(v)
}

// nodeRec is the per-node slot record: the node's neighbor run in the pool,
// its cached degrees, and the run's fence keys.
type nodeRec struct {
	off  int32 // run start in the pool
	n    int32 // entries in use
	cap  int32 // run capacity (multiple of 4; 0 = no run allocated)
	deg  int32 // multigraph degree: sum of mult (a self-loop counts once)
	dist int32 // distinct neighbors excluding the node itself

	// fence[k] mirrors fenceKeyFor(pool[off+fenceStride*(k+1)].v) whenever
	// that index is < n; entries at or beyond n are stale and must never
	// be read. The mirror depends only on run *content*, not placement, so
	// shrinkRun, compaction, Clone, and the codec need no refresh — only
	// insertEntry and removeEntry (the two content mutators) maintain it,
	// and only once n exceeds fenceStride. Validate asserts the live
	// prefix cell-by-cell.
	fence [numFences]int32
}

// cell is one adjacency-run entry: the neighbor's id, the multiplicity of
// the connecting edge, and the neighbor's own slot, interleaved in 16
// padding-free bytes. Interleaving is the cache contract of the arena: a
// membership probe, a walk hop, or a run shift reads and moves whole
// cells, so a degree-d neighborhood costs ceil(d/4) line touches — the
// historical parallel-column layout (poolV/poolM/poolS) spread the same
// 16 bytes per neighbor across three lines, and steady-state churn paid
// all three per half-edge.
type cell struct {
	v NodeID // neighbor id; runs sort strictly ascending on this
	m int32  // edge multiplicity (> 0 for live cells)
	s int32  // neighbor's slot: pool[i].s == index[pool[i].v]
}

// Graph is a mutable undirected multigraph backed by a flat adjacency
// arena. Neighbor ids, multiplicities, and neighbor slots interleave in
// one []cell pool (16 bytes per distinct neighbor, no struct padding);
// capacities are multiples of 4 so run rounding wastes at most 3 cells
// per node.
//
// The slot field is coherent by construction: pool[i].s == index[pool[i].v]
// for every live run cell. A node's edges are all removed before its slot
// is recycled (RemoveNode strips incident edges first), so no run entry
// can ever reference a freed slot and recycling needs no rewrite pass —
// Validate asserts the identity and FuzzGraphOps checks it after every op.
type Graph struct {
	index map[NodeID]int32 // sparse NodeID -> dense slot (authoritative)

	// dense is the id->slot fast path: for every live node u with
	// 0 <= u < len(dense), dense[u] holds u's slot; every other cell in
	// range holds -1. Lookups for in-range ids skip the map entirely —
	// the ids this engine mints are small and contiguous, so steady-state
	// churn resolves both endpoints with two array reads instead of two
	// map probes. Growth is geometric and budgeted at 4*slots+256 cells,
	// so adversarially sparse ids (fuzzed or decoded) simply stay on the
	// map path and can never balloon memory. Validate asserts coherence
	// cell-by-cell.
	dense []int32

	ids       []NodeID  // slot -> NodeID (stale for free slots)
	recs      []nodeRec // slot -> record
	freeSlots []int32   // recycled slots
	pool      []cell    // neighbor cells, all runs concatenated
	freeRuns  [][]int32 // freed run offsets, indexed by capacity/4
	freeCells int       // total cells parked on the free lists
	edges     int       // number of edges (loops count once)
	epoch     uint64    // logical version: bumped by every effective mutation

	// Slot lifecycle hooks (SetSlotHooks): onSlotAssign fires right after
	// a slot is bound to a node, onSlotRelease right after a node's slot
	// is freed. They let a caller layer slot-indexed columnar state on
	// the graph's own slot table (the DEX engine's per-node store does).
	// Clone/Snapshot never copy them — a copy belongs to someone else.
	onSlotAssign  func(u NodeID, slot int32)
	onSlotRelease func(u NodeID, slot int32)
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[NodeID]int32)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		index:     make(map[NodeID]int32, len(g.index)),
		dense:     append([]int32(nil), g.dense...),
		ids:       append([]NodeID(nil), g.ids...),
		recs:      append([]nodeRec(nil), g.recs...),
		freeSlots: append([]int32(nil), g.freeSlots...),
		pool:      append([]cell(nil), g.pool...),
		freeCells: g.freeCells,
		edges:     g.edges,
		epoch:     g.epoch,
	}
	for u, s := range g.index {
		c.index[u] = s
	}
	c.freeRuns = make([][]int32, len(g.freeRuns))
	for i, fl := range g.freeRuns {
		c.freeRuns[i] = append([]int32(nil), fl...)
	}
	return c
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.index) }

// NumEdges returns the number of edges counting multiplicity; a self-loop
// counts as one edge.
func (g *Graph) NumEdges() int { return g.edges }

// HasNode reports whether u exists.
func (g *Graph) HasNode(u NodeID) bool {
	_, ok := g.lookup(u)
	return ok
}

// AddNode inserts u as an isolated node if not present.
func (g *Graph) AddNode(u NodeID) {
	if _, ok := g.lookup(u); ok {
		return
	}
	g.epoch++
	g.slotOf(u)
}

// Epoch returns the graph's logical version: a counter incremented by
// every effective mutation (node added or removed, edge multiplicity
// changed) and untouched by no-op calls or internal arena housekeeping.
// It is read and written under the same exclusion regime as the rest
// of the graph (it is not atomic, and the increment happens before the
// mutation's writes — it cannot be used as a lock-free seqlock).
// Compare a Snapshot's pinned epoch against the live graph's, read
// under the owner's lock, to tell whether a mirror has gone stale.
func (g *Graph) Epoch() uint64 { return g.epoch }

// Snapshot returns a deep copy of the graph together with the epoch it
// was taken at. It is the safe way to hand a consistent view of a
// concurrently churned overlay to long-running readers (spectral
// analysis, mirrors, debugging): callers take the snapshot while they
// hold whatever lock excludes mutators, then read it lock-free forever.
func (g *Graph) Snapshot() (*Graph, uint64) { return g.Clone(), g.epoch }

// SlotOf returns u's dense slot index and whether u is present. A slot
// is stable for as long as its node exists: no mutation of other nodes,
// arena growth, or compaction ever moves it. After RemoveNode the slot
// is recycled and may be handed to a different node later, so callers
// holding slots across deletions must revalidate with NodeAt.
func (g *Graph) SlotOf(u NodeID) (int32, bool) {
	return g.lookup(u)
}

// NodeAt returns the node currently occupying slot s, if any. Freed
// slots (and out-of-range indexes) report ok=false.
func (g *Graph) NodeAt(s int32) (NodeID, bool) {
	if s < 0 || int(s) >= len(g.ids) {
		return 0, false
	}
	u := g.ids[s]
	if live, ok := g.lookup(u); ok && live == s {
		return u, true
	}
	return 0, false
}

// Slots returns the size of the slot table: every valid slot index is
// < Slots(). The table counts freed slots awaiting reuse, so Slots()
// can exceed NumNodes but never shrinks while nodes churn.
func (g *Graph) Slots() int { return len(g.ids) }

// SetSlotHooks registers slot lifecycle callbacks (nil to clear):
// assign fires immediately after a slot is bound to a node (AddNode, or
// an edge mutation creating an endpoint), release fires immediately
// after a node's slot is freed by RemoveNode (its edges are already
// gone). Callers use them to keep slot-indexed side tables — per-node
// engine state living in dense columns — in lockstep with the graph's
// own slot table. Hooks must not mutate the graph; they survive for the
// graph's lifetime and are deliberately not copied by Clone/Snapshot.
func (g *Graph) SetSlotHooks(assign, release func(u NodeID, slot int32)) {
	g.onSlotAssign = assign
	g.onSlotRelease = release
}

// lookup resolves u's live slot through the dense fast path when u is in
// range (one array read; the unsigned compare folds the negative-id check
// into the bounds check) and through the map otherwise. The in-range
// verdict is exact either way: coherence guarantees every live id below
// len(dense) has its slot there, so a -1 cell means u is absent.
//
//dexvet:noalloc
func (g *Graph) lookup(u NodeID) (int32, bool) {
	if uint64(u) < uint64(len(g.dense)) {
		s := g.dense[u]
		return s, s >= 0
	}
	s, ok := g.index[u]
	return s, ok
}

// denseSet records a fresh id->slot binding in the dense fast path,
// growing it when u is within the memory budget (4*slots+256 cells keeps
// the array proportional to the slot table no matter how adversarial the
// id distribution is). Out-of-budget ids stay map-only, which lookup
// handles by construction.
func (g *Graph) denseSet(u NodeID, s int32) {
	if uint64(u) >= uint64(len(g.dense)) {
		if u < 0 || int64(u) >= int64(4*len(g.ids)+256) {
			return
		}
		g.growDense(int(u) + 1)
	}
	g.dense[u] = s
}

// growDense extends the dense fast path to at least need cells (doubling
// so growth amortizes), backfilling every live binding the new region
// covers — ids that were over budget when first bound become fast-path
// once the graph has grown enough to afford them.
func (g *Graph) growDense(need int) {
	newLen := 2 * len(g.dense)
	if newLen < need {
		newLen = need
	}
	old := len(g.dense)
	g.dense = append(g.dense, make([]int32, newLen-old)...)
	for i := old; i < newLen; i++ {
		g.dense[i] = -1
	}
	for u, s := range g.index {
		if int64(u) >= int64(old) && int64(u) < int64(newLen) {
			g.dense[u] = s
		}
	}
}

// slotOf returns u's dense slot, creating it if needed.
func (g *Graph) slotOf(u NodeID) int32 {
	if s, ok := g.lookup(u); ok {
		return s
	}
	var s int32
	if n := len(g.freeSlots); n > 0 {
		s = g.freeSlots[n-1]
		g.freeSlots = g.freeSlots[:n-1]
		g.ids[s] = u
		g.recs[s] = nodeRec{}
	} else {
		s = int32(len(g.ids))
		g.ids = append(g.ids, u)
		g.recs = append(g.recs, nodeRec{})
	}
	g.index[u] = s
	g.denseSet(u, s)
	if g.onSlotAssign != nil {
		g.onSlotAssign(u, s)
	}
	return s
}

// findNbr searches slot s's run for neighbor v, returning the position
// and whether it was found (the position is the insertion point
// otherwise). Runs are tiny in the regimes this graph serves (a
// contraction's distinct degree is O(zeta)), where a branch-predictable
// linear scan over the sorted cells beats binary search's mispredicted
// halving. Longer runs narrow first against the record's inline fence —
// the every-fenceStride-th key cached next to off/n, so the narrowing
// compares keys already on the record's cache line instead of striding
// the pool — and runs past the fenced prefix binary-narrow the tail.
// The drain then skips 4 cells at a time off the segment's sorted tail
// before the final short scan.
//
// Narrowing invariant (PR 7's boundary-cell bug class): every narrowing
// step — fence, binary, and 4-wide skip — keeps run[hi] >= v whenever
// hi < len(run), so the drained scan's fallthrough must still examine
// the boundary cell run[lo].
//
//dexvet:noalloc
func (g *Graph) findNbr(s int32, v NodeID) (int32, bool) {
	r := &g.recs[s]
	run := g.pool[r.off : r.off+r.n]
	lo, hi := 0, len(run)
	if hi > fenceStride {
		// Fence narrowing: skip whole segments while the fence key — the
		// first cell of the next segment — is still below v. No pool cells
		// are touched until the segment is chosen (the sentinel fallback
		// reads one, and only for keys outside the int32 domain).
		k := 0
		for k < numFences && (k+1)*fenceStride < hi {
			fk := NodeID(r.fence[k])
			if fk >= fenceMax || fk <= fenceMin {
				fk = run[(k+1)*fenceStride].v // saturated cell: order on the run itself
			}
			if fk >= v {
				// run[(k+1)*fenceStride] >= v bounds the segment: the
				// insertion point is at most (k+1)*fenceStride, which the
				// drained scan's boundary probe covers.
				hi = (k + 1) * fenceStride
				break
			}
			k++
		}
		lo = k * fenceStride
	}
	// Tail beyond the fenced prefix (runs > (numFences+1)*fenceStride
	// cells): classic binary narrowing down to one segment.
	for hi-lo > fenceStride {
		mid := (lo + hi) / 2
		if run[mid].v < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// 4-wide drain: the segment is sorted, so if its 4th cell is still
	// below v the first 4 all are — one comparison retires 4 cells.
	for hi-lo >= 4 && run[lo+3].v < v {
		lo += 4
	}
	for ; lo < hi; lo++ {
		if w := run[lo].v; w >= v {
			return int32(lo), w == v
		}
	}
	// Narrowing keeps run[hi] >= v whenever hi < len(run), so a scan that
	// drains [lo, hi) must still examine the boundary cell.
	return int32(lo), lo < len(run) && run[lo].v == v
}

// refreshFence recomputes the live prefix of r's fence from its run
// content. Called by the two content mutators after the run changes;
// callers skip it while n <= fenceStride (no fence entry is live, and
// findNbr never reads one).
//
//dexvet:noalloc
func (g *Graph) refreshFence(r *nodeRec) {
	run := g.pool[r.off : r.off+r.n]
	for k := 0; k < numFences; k++ {
		i := (k + 1) * fenceStride
		if i >= len(run) {
			break
		}
		r.fence[k] = fenceKeyFor(run[i].v)
	}
}

// growCap returns the next run capacity after capn: multiples of 4, ~1.5x
// geometric so the fixed waste per node stays a few cells while degree
// remains bounded.
func growCap(capn int32) int32 {
	next := (capn + capn/2) &^ 3
	if next < capn+4 {
		next = capn + 4
	}
	return next
}

// allocRun pops a run of capacity capn (a multiple of 4) off the free
// list or carves a fresh one from the pool tail.
func (g *Graph) allocRun(capn int32) int32 {
	class := int(capn / 4)
	if class < len(g.freeRuns) {
		if fl := g.freeRuns[class]; len(fl) > 0 {
			off := fl[len(fl)-1]
			g.freeRuns[class] = fl[:len(fl)-1]
			g.freeCells -= int(capn)
			return off
		}
	}
	off := len(g.pool)
	want := off + int(capn)
	if want > 1<<31-1 {
		// int32 offsets address 2^31 cells (~32GB of adjacency); failing
		// loudly beats two runs silently aliasing after a wrap.
		panic("graph: adjacency pool exceeds the int32 offset domain")
	}
	if cap(g.pool) >= want {
		g.pool = g.pool[:want]
	} else {
		g.pool = append(g.pool, make([]cell, capn)...)
	}
	return int32(off)
}

// freeRun returns a run to its capacity-class free list.
func (g *Graph) freeRun(off, capn int32) {
	if capn == 0 {
		return
	}
	class := int(capn / 4)
	for len(g.freeRuns) <= class {
		g.freeRuns = append(g.freeRuns, nil)
	}
	g.freeRuns[class] = append(g.freeRuns[class], off)
	g.freeCells += int(capn)
}

// maybeCompact repacks the arena when more than half its cells sit on
// free lists. Growth and shrink churn strand runs in size classes nothing
// asks for anymore; without compaction the pool's high-water mark — not
// the live degree sum — would set the memory footprint. Called only from
// the top of the public mutators, where no run offset is held across it.
// The guard lives here and the repack in compact so the almost-always-
// false check inlines into every mutator instead of costing a call.
func (g *Graph) maybeCompact() {
	if len(g.pool) <= 4096 || 2*g.freeCells <= len(g.pool) {
		return
	}
	g.compact()
}

// compact is maybeCompact's repack body: runs are rewritten dense, in slot
// order, at snug capacities, and the free lists reset.
func (g *Graph) compact() {
	total := int32(0)
	for s := range g.recs {
		if n := g.recs[s].n; n > 0 {
			total += (n + 3) &^ 3
		}
	}
	// An eighth of slack keeps the first few post-compact growths carving
	// from spare capacity instead of reallocating the array.
	spare := int(total)/8 + 64
	newPool := make([]cell, total, int(total)+spare)
	off := int32(0)
	for s := range g.recs {
		r := &g.recs[s]
		if r.n == 0 {
			// Isolated or dead slot: drop any parked run entirely.
			r.off, r.cap = 0, 0
			continue
		}
		newCap := (r.n + 3) &^ 3
		copy(newPool[off:off+r.n], g.pool[r.off:r.off+r.n])
		r.off, r.cap = off, newCap
		off += newCap
	}
	g.pool = newPool
	for i := range g.freeRuns {
		g.freeRuns[i] = g.freeRuns[i][:0]
	}
	g.freeCells = 0
}

// insertEntry inserts neighbor v (slot vs, multiplicity k) at position
// pos of slot s's run, growing the run if full.
func (g *Graph) insertEntry(s int32, pos int32, v NodeID, vs int32, k int32) {
	r := &g.recs[s]
	if r.n == r.cap {
		newCap := int32(4)
		if r.cap > 0 {
			newCap = growCap(r.cap)
		}
		newOff := g.allocRun(newCap)
		copy(g.pool[newOff:newOff+r.n], g.pool[r.off:r.off+r.n])
		g.freeRun(r.off, r.cap)
		r.off, r.cap = newOff, newCap
	}
	lo, hi := r.off, r.off+r.n
	if hi-(lo+pos) <= 16 {
		// Short tails dominate (runs are degree-sized); a hand-rolled
		// shift over the resliced tail beats the memmove call here, and
		// the reslice hoists the pool bounds checks out of the loop.
		pc := g.pool[lo+pos : hi+1]
		for i := len(pc) - 1; i > 0; i-- {
			pc[i] = pc[i-1]
		}
	} else {
		copy(g.pool[lo+pos+1:hi+1], g.pool[lo+pos:hi])
	}
	g.pool[lo+pos] = cell{v: v, m: k, s: vs}
	r.n++
	r.deg += k
	if v != g.ids[s] {
		r.dist++
	}
	if r.n > fenceStride {
		g.refreshFence(r)
	}
}

// removeEntry deletes the entry at position pos of slot s's run, shrinking
// the run when it is mostly empty.
func (g *Graph) removeEntry(s int32, pos int32) {
	r := &g.recs[s]
	lo, hi := r.off, r.off+r.n
	if g.pool[lo+pos].v != g.ids[s] {
		r.dist--
	}
	if hi-(lo+pos) <= 16 {
		pc := g.pool[lo+pos : hi]
		for i := 0; i < len(pc)-1; i++ {
			pc[i] = pc[i+1]
		}
	} else {
		copy(g.pool[lo+pos:hi-1], g.pool[lo+pos+1:hi])
	}
	r.n--
	if r.n > fenceStride {
		g.refreshFence(r)
	}
	if r.cap > 4 && r.n*2 <= r.cap {
		g.shrinkRun(s)
	}
}

// shrinkRun moves slot s's run to a snug capacity (live entries plus two
// spare cells, rounded to the class size), releasing the old run to the
// free lists. This is what keeps memory tracking the live degree rather
// than its high-water mark: a staggered type-2 rebuild transiently
// multiplies node degrees, and after it commits the big runs return to
// the shared pool for the next rebuild's cohort to reuse (a per-node map
// can never hand its spare buckets to a neighbor). An add/remove cycle at
// the boundary costs a small copy through the free lists, never an
// allocation.
func (g *Graph) shrinkRun(s int32) {
	r := &g.recs[s]
	newCap := (r.n + 2 + 3) &^ 3
	if newCap < 4 {
		newCap = 4
	}
	if newCap >= r.cap {
		return
	}
	newOff := g.allocRun(newCap)
	copy(g.pool[newOff:newOff+r.n], g.pool[r.off:r.off+r.n])
	g.freeRun(r.off, r.cap)
	r.off, r.cap = newOff, newCap
}

// removeHalf removes k multiplicities of neighbor v from slot s's run; the
// caller guarantees at least k are present.
func (g *Graph) removeHalf(s int32, v NodeID, k int32) {
	pos, ok := g.findNbr(s, v)
	if !ok {
		panic(fmt.Sprintf("graph: removeHalf of absent neighbor %d", v))
	}
	r := &g.recs[s]
	g.pool[r.off+pos].m -= k
	r.deg -= k
	if g.pool[r.off+pos].m == 0 {
		g.removeEntry(s, pos)
	}
}

// AddEdge adds one undirected edge {u,v}, creating the endpoints if needed.
// Adding an existing edge increases its multiplicity.
func (g *Graph) AddEdge(u, v NodeID) { g.AddEdgeMult(u, v, 1) }

// AddEdgeMult adds k parallel {u,v} edges in one step, creating the
// endpoints if needed. Quotient and the rebuild diff replay use this to
// apply a multiplicity change in O(log deg) instead of O(k) single-edge
// inserts. k <= 0 is a no-op. Multiplicities are stored as int32 (a
// contraction never exceeds 3 per pair); a k beyond that domain panics
// rather than silently truncating.
func (g *Graph) AddEdgeMult(u, v NodeID, k int) {
	if k <= 0 {
		return
	}
	g.AddEdgeMultAt(g.slotOf(u), u, v, k)
}

// AddEdgeAt is the slot-native form of AddEdge: su must be u's live slot
// (as handed out by SlotOf, ForEachNeighborAt, or a slot-assign hook).
// Callers that already hold the slot skip the id->slot map probe — the
// churn hot path resolves each endpoint's slot exactly once per operation
// instead of once per edge.
func (g *Graph) AddEdgeAt(su int32, u, v NodeID) { g.AddEdgeMultAt(su, u, v, 1) }

// AddEdgeMultAt is the slot-native form of AddEdgeMult: su must be u's
// live slot. v is created if absent. Unlike the historical one-entry
// mutation cache this replaces, the slot is caller-owned state, so
// concurrent mutation batches that are otherwise disjoint share no
// hidden write.
func (g *Graph) AddEdgeMultAt(su int32, u, v NodeID, k int) {
	if k <= 0 {
		return
	}
	if k > 1<<30 {
		panic(fmt.Sprintf("graph: multiplicity %d exceeds the int32 arena domain", k))
	}
	k32 := int32(k)
	g.maybeCompact()
	g.epoch++
	pos, ok := g.findNbr(su, v)
	if ok {
		// Existing pair: the run cell already stores v's slot, so both
		// halves bump in place with no second map probe (churn hot path).
		r := &g.recs[su]
		if g.pool[r.off+pos].m > 1<<30-k32 {
			panic(fmt.Sprintf("graph: multiplicity of {%d,%d} exceeds the int32 arena domain", u, v))
		}
		g.pool[r.off+pos].m += k32
		r.deg += k32
		if u != v {
			sv := g.pool[r.off+pos].s
			back, ok := g.findNbr(sv, u)
			if !ok {
				panic(fmt.Sprintf("graph: asymmetric edge {%d,%d}", u, v))
			}
			rv := &g.recs[sv]
			g.pool[rv.off+back].m += k32
			rv.deg += k32
		}
		g.edges += k
		return
	}
	// New pair: v's slot may not exist yet. slotOf only touches the slot
	// table, so pos (u's insertion point) stays valid across it.
	sv := g.slotOf(v)
	g.insertEntry(su, pos, v, sv, k32)
	if u != v {
		back, _ := g.findNbr(sv, u)
		g.insertEntry(sv, back, u, su, k32)
	}
	g.edges += k
}

// RemoveEdge removes one multiplicity of edge {u,v}. It reports whether an
// edge was removed.
func (g *Graph) RemoveEdge(u, v NodeID) bool { return g.RemoveEdgeMult(u, v, 1) == 1 }

// RemoveEdgeMult removes up to k multiplicities of edge {u,v} and returns
// the number actually removed (0 when the edge or either endpoint is
// absent).
func (g *Graph) RemoveEdgeMult(u, v NodeID, k int) int {
	su, ok := g.lookup(u)
	if !ok {
		return 0
	}
	return g.RemoveEdgeMultAt(su, u, v, k)
}

// RemoveEdgeAt is the slot-native form of RemoveEdge: su must be u's live
// slot. It reports whether an edge was removed.
func (g *Graph) RemoveEdgeAt(su int32, u, v NodeID) bool {
	return g.RemoveEdgeMultAt(su, u, v, 1) == 1
}

// RemoveEdgeMultAt is the slot-native form of RemoveEdgeMult: su must be
// u's live slot. Returns the number of multiplicities actually removed.
func (g *Graph) RemoveEdgeMultAt(su int32, u, v NodeID, k int) int {
	if k <= 0 {
		return 0
	}
	g.maybeCompact()
	pos, ok := g.findNbr(su, v)
	if !ok {
		return 0
	}
	r := &g.recs[su]
	if have := int(g.pool[r.off+pos].m); have < k {
		k = have
	}
	g.epoch++
	// u's entry position is already known, and its cell carries v's slot:
	// decrement in place and resolve the back half without touching the
	// id->slot map again (this is the churn hot path).
	sv := g.pool[r.off+pos].s
	g.pool[r.off+pos].m -= int32(k)
	r.deg -= int32(k)
	if g.pool[r.off+pos].m == 0 {
		g.removeEntry(su, pos)
	}
	if u != v {
		g.removeHalf(sv, u, int32(k))
	}
	g.edges -= k
	return k
}

// RemoveNode deletes u and all incident edges. It is a no-op if u is absent.
func (g *Graph) RemoveNode(u NodeID) {
	g.maybeCompact()
	su, ok := g.lookup(u)
	if !ok {
		return
	}
	g.epoch++
	rr := g.recs[su]
	for i := rr.off; i < rr.off+rr.n; i++ {
		c := g.pool[i]
		g.edges -= int(c.m)
		if c.v != u {
			g.removeHalf(c.s, u, c.m)
		}
	}
	r := &g.recs[su]
	g.freeRun(r.off, r.cap)
	*r = nodeRec{}
	g.freeSlots = append(g.freeSlots, su)
	delete(g.index, u)
	if uint64(u) < uint64(len(g.dense)) {
		g.dense[u] = -1
	}
	if g.onSlotRelease != nil {
		g.onSlotRelease(u, su)
	}
}

// Multiplicity returns the number of parallel {u,v} edges.
func (g *Graph) Multiplicity(u, v NodeID) int {
	s, ok := g.lookup(u)
	if !ok {
		return 0
	}
	pos, ok := g.findNbr(s, v)
	if !ok {
		return 0
	}
	return int(g.pool[g.recs[s].off+pos].m)
}

// HasEdge reports whether at least one {u,v} edge exists.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.Multiplicity(u, v) > 0 }

// Degree returns the multigraph degree of u: the sum of incident edge
// multiplicities, a self-loop counting 1. Returns 0 for absent nodes.
// The arena caches it, so this is O(1).
func (g *Graph) Degree(u NodeID) int {
	if s, ok := g.lookup(u); ok {
		return int(g.recs[s].deg)
	}
	return 0
}

// DistinctDegree returns the number of distinct neighbors of u (excluding
// u itself). This is the number of actual network connections a node
// maintains, the quantity bounded by Theorem 1. O(1) via the slot cache.
func (g *Graph) DistinctDegree(u NodeID) int {
	if s, ok := g.lookup(u); ok {
		return int(g.recs[s].dist)
	}
	return 0
}

// DistinctDegreeAt is DistinctDegree for the node occupying slot s (which
// must be live): the cached count with no id→slot probe.
//
//dexvet:noalloc
func (g *Graph) DistinctDegreeAt(s int32) int { return int(g.recs[s].dist) }

// ForEachNeighbor calls fn for each distinct neighbor of u in ascending
// NodeID order (including u itself when u has a self-loop) with the
// multiplicity of the connecting edge, stopping early if fn returns false.
// It reads the arena in place and never allocates; fn must not mutate g.
//
//dexvet:noalloc
func (g *Graph) ForEachNeighbor(u NodeID, fn func(v NodeID, mult int) bool) {
	s, ok := g.lookup(u)
	if !ok {
		return
	}
	r := g.recs[s]
	for i := r.off; i < r.off+r.n; i++ {
		if !fn(g.pool[i].v, int(g.pool[i].m)) {
			return
		}
	}
}

// ForEachNeighborAt is the slot-native form of ForEachNeighbor: it
// iterates the run of the node occupying slot s (which must be live) and
// hands fn each neighbor's slot alongside its id, so slot-indexed side
// tables are reachable with no map probe. Same order, same zero-alloc
// contract.
//
//dexvet:noalloc
func (g *Graph) ForEachNeighborAt(s int32, fn func(v NodeID, vs int32, mult int) bool) {
	r := g.recs[s]
	for i := r.off; i < r.off+r.n; i++ {
		if !fn(g.pool[i].v, g.pool[i].s, int(g.pool[i].m)) {
			return
		}
	}
}

// RandomNeighborStep picks a neighbor of u proportionally to edge
// multiplicity using the random word r, excluding the node exclude (pass
// -1 to disable; self-loops are legitimate steps that stay put). It is the
// allocation-free walk-hop primitive: one pass computes the total weight,
// a second selects, both over u's contiguous run. Neighbors are considered
// in ascending NodeID order, so for a given r the choice is identical to
// the historical sorted-slice implementation — seeded walks reproduce
// exactly. Walk loops that already hold the current node's slot should
// use RandomNeighborStepAt, which skips this id->slot resolution.
//
//dexvet:noalloc
func (g *Graph) RandomNeighborStep(u, exclude NodeID, r uint64) (NodeID, bool) {
	s, ok := g.lookup(u)
	if !ok {
		return 0, false
	}
	v, _, ok := g.RandomNeighborStepAt(s, exclude, r)
	return v, ok
}

// RandomNeighborStepAt is the slot-native walk hop: it makes exactly the
// choice RandomNeighborStep makes for the node occupying slot s (which
// must be live), and returns the chosen neighbor's slot alongside its id
// so the walk can keep stepping — and its stop predicate can index
// slot-keyed state — without ever touching the id->slot map.
//
//dexvet:noalloc
func (g *Graph) RandomNeighborStepAt(s int32, exclude NodeID, r uint64) (NodeID, int32, bool) {
	rec := g.recs[s]
	run := g.pool[rec.off : rec.off+rec.n]
	total := int32(0)
	for i := range run {
		if run[i].v == exclude {
			continue
		}
		total += run[i].m
	}
	if total == 0 {
		return 0, -1, false
	}
	pick := int32(r % uint64(total))
	for i := range run {
		if run[i].v == exclude {
			continue
		}
		pick -= run[i].m
		if pick < 0 {
			return run[i].v, run[i].s, true
		}
	}
	return 0, -1, false
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.index))
	for u := range g.index {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the distinct neighbors of u in ascending order,
// including u itself when u has a self-loop. Hot paths should prefer
// ForEachNeighbor / RandomNeighborStep, which do not allocate.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	s, ok := g.lookup(u)
	if !ok {
		return nil
	}
	r := g.recs[s]
	out := make([]NodeID, r.n)
	for i := int32(0); i < r.n; i++ {
		out[i] = g.pool[r.off+i].v
	}
	return out
}

// WeightedNeighbors returns the distinct neighbors of u in ascending order
// together with the multiplicity of each connecting edge. Random walks
// step proportionally to multiplicity, matching the stationary
// distribution pi(x) = d_x / 2|E| in the proof of Lemma 2; walk hot paths
// use RandomNeighborStep, which makes the same choice without building
// these slices.
func (g *Graph) WeightedNeighbors(u NodeID) (nbrs []NodeID, mult []int) {
	s, ok := g.lookup(u)
	if !ok {
		return nil, nil
	}
	r := g.recs[s]
	nbrs = make([]NodeID, r.n)
	mult = make([]int, r.n)
	for i := int32(0); i < r.n; i++ {
		nbrs[i] = g.pool[r.off+i].v
		mult[i] = int(g.pool[r.off+i].m)
	}
	return nbrs, mult
}

// Edge is an undirected edge with multiplicity.
type Edge struct {
	U, V NodeID // U <= V
	Mult int
}

// EdgeDelta is one entry of a batched topology diff: the multiplicity of
// the undirected edge {U,V} changed by Delta (U <= V, Delta != 0).
// Incremental maintainers emit slices of these so subscribers can mirror
// a graph without rescanning it.
type EdgeDelta struct {
	U, V  NodeID
	Delta int
}

// Edges returns all distinct edges in deterministic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, u := range g.Nodes() {
		r := g.recs[g.index[u]]
		for i := r.off; i < r.off+r.n; i++ {
			if g.pool[i].v < u {
				continue
			}
			out = append(out, Edge{U: u, V: g.pool[i].v, Mult: int(g.pool[i].m)})
		}
	}
	return out
}

// MaxDegree returns the maximum multigraph degree, or 0 for empty graphs.
func (g *Graph) MaxDegree() int {
	m := int32(0)
	for _, s := range g.index {
		if d := g.recs[s].deg; d > m {
			m = d
		}
	}
	return int(m)
}

// MaxDistinctDegree returns the maximum distinct-neighbor degree.
func (g *Graph) MaxDistinctDegree() int {
	m := int32(0)
	for _, s := range g.index {
		if d := g.recs[s].dist; d > m {
			m = d
		}
	}
	return int(m)
}

// BFSDistances returns a map of shortest-path hop distances from src.
// Nodes unreachable from src are absent from the map.
func (g *Graph) BFSDistances(src NodeID) map[NodeID]int {
	if !g.HasNode(src) {
		return nil
	}
	dist := map[NodeID]int{src: 0}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			du := dist[u]
			r := g.recs[g.index[u]]
			for i := r.off; i < r.off+r.n; i++ {
				v := g.pool[i].v
				if _, seen := dist[v]; !seen {
					dist[v] = du + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// ShortestPath returns a shortest path from src to dst (inclusive), or nil
// if unreachable. Ties break deterministically toward smaller IDs.
func (g *Graph) ShortestPath(src, dst NodeID) []NodeID {
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	if src == dst {
		return []NodeID{src}
	}
	parent := map[NodeID]NodeID{src: src}
	frontier := []NodeID{src}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			r := g.recs[g.index[u]]
			for i := r.off; i < r.off+r.n; i++ {
				v := g.pool[i].v
				if _, seen := parent[v]; seen {
					continue
				}
				parent[v] = u
				if v == dst {
					var path []NodeID
					for w := dst; ; w = parent[w] {
						path = append(path, w)
						if w == src {
							break
						}
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// Connected reports whether the graph is connected (empty and single-node
// graphs count as connected).
func (g *Graph) Connected() bool {
	if len(g.index) <= 1 {
		return true
	}
	var src NodeID
	for u := range g.index {
		//dexvet:allow determinism any start node yields the same connectivity verdict; src never leaves this function
		src = u
		break
	}
	return len(g.BFSDistances(src)) == len(g.index)
}

// Diameter returns the exact hop diameter via all-sources BFS, or -1 if
// the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if len(g.index) == 0 {
		return -1
	}
	diam := 0
	for u := range g.index {
		dist := g.BFSDistances(u)
		if len(dist) != len(g.index) {
			return -1
		}
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the maximum BFS distance from src, or -1 if some
// node is unreachable.
func (g *Graph) Eccentricity(src NodeID) int {
	dist := g.BFSDistances(src)
	if len(dist) != len(g.index) {
		return -1
	}
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Quotient builds the contraction of g under the supplied mapping: each
// node u maps to group phi(u); every edge {u,v} becomes {phi(u),phi(v)}
// with multiplicities accumulated, including resulting self-loops. This is
// exactly the vertex-contraction operation of Lemma 10 (spectral gap can
// only grow), used to derive the real network from the virtual graph.
func (g *Graph) Quotient(phi func(NodeID) NodeID) *Graph {
	q := New()
	for u := range g.index {
		//dexvet:allow determinism phi is a pure mapping and AddNode is an idempotent set insert, so the built node set is order-independent
		q.AddNode(phi(u))
	}
	for _, e := range g.Edges() {
		q.AddEdgeMult(phi(e.U), phi(e.V), e.Mult)
	}
	return q
}

// CSR is a compressed sparse row snapshot of a graph for numeric kernels.
// Index i corresponds to IDs[i]; Adj[RowPtr[i]:RowPtr[i+1]] lists neighbor
// indices with per-entry weights Wt (edge multiplicities; self-loops once).
type CSR struct {
	IDs    []NodeID
	Index  map[NodeID]int
	RowPtr []int32
	Adj    []int32
	Wt     []float64
	Deg    []float64 // multigraph degrees
}

// ToCSR snapshots the graph. Ordering is deterministic.
func (g *Graph) ToCSR() *CSR {
	ids := g.Nodes()
	idx := make(map[NodeID]int, len(ids))
	for i, u := range ids {
		idx[u] = i
	}
	c := &CSR{
		IDs:    ids,
		Index:  idx,
		RowPtr: make([]int32, len(ids)+1),
		Deg:    make([]float64, len(ids)),
	}
	nnz := 0
	for _, u := range ids {
		nnz += int(g.recs[g.index[u]].n)
	}
	c.Adj = make([]int32, 0, nnz)
	c.Wt = make([]float64, 0, nnz)
	for i, u := range ids {
		r := g.recs[g.index[u]]
		for j := r.off; j < r.off+r.n; j++ {
			c.Adj = append(c.Adj, int32(idx[g.pool[j].v]))
			m := float64(g.pool[j].m)
			c.Wt = append(c.Wt, m)
			c.Deg[i] += m
		}
		c.RowPtr[i+1] = int32(len(c.Adj))
	}
	return c
}

// ArenaStats describes the arena's occupancy, for memory gates and the
// dexsim -memstats report.
type ArenaStats struct {
	Nodes     int // live nodes
	LiveCells int // neighbor entries in use (sum of run lengths)
	LiveCaps  int // cells reserved by live runs (sum of run capacities)
	PoolLen   int // pool cells carved so far
	PoolCap   int // pool cells allocated (backing array capacity)
	FreeCells int // cells parked on the free lists
}

// Stats reports the arena's current occupancy.
func (g *Graph) Stats() ArenaStats {
	st := ArenaStats{
		Nodes:     len(g.index),
		PoolLen:   len(g.pool),
		PoolCap:   cap(g.pool),
		FreeCells: g.freeCells,
	}
	for _, s := range g.index {
		st.LiveCells += int(g.recs[s].n)
		st.LiveCaps += int(g.recs[s].cap)
	}
	return st
}

// Validate checks internal consistency — arena run ordering, adjacency
// symmetry, cached degree accounting, and the handshake identity — for
// use in tests and the DEX invariant checker. It returns an error
// describing the first inconsistency found.
//
//dexvet:allow determinism audit-only: any inconsistency fails validation; which of several is reported first is immaterial and never feeds back into engine state
func (g *Graph) Validate() error {
	total := 0
	for u, s := range g.index {
		if g.ids[s] != u {
			return fmt.Errorf("graph: slot %d holds id %d, index says %d", s, g.ids[s], u)
		}
		r := g.recs[s]
		if r.n > r.cap || r.n < 0 {
			return fmt.Errorf("graph: node %d run length %d exceeds capacity %d", u, r.n, r.cap)
		}
		deg, dist := int32(0), int32(0)
		var prev NodeID
		for i := int32(0); i < r.n; i++ {
			v, m := g.pool[r.off+i].v, g.pool[r.off+i].m
			if i > 0 && v <= prev {
				return fmt.Errorf("graph: node %d run not strictly sorted at %d", u, v)
			}
			prev = v
			if m <= 0 {
				return fmt.Errorf("graph: nonpositive multiplicity %d on {%d,%d}", m, u, v)
			}
			deg += m
			if v == u {
				if vs := g.pool[r.off+i].s; vs != s {
					return fmt.Errorf("graph: self-loop slot cell of %d holds %d, want %d", u, vs, s)
				}
				total += 2 * int(m) // count loops once overall
				continue
			}
			dist++
			sv, ok := g.index[v]
			if !ok {
				return fmt.Errorf("graph: dangling neighbor %d of %d", v, u)
			}
			if vs := g.pool[r.off+i].s; vs != sv {
				return fmt.Errorf("graph: slot cell for neighbor %d of %d holds %d, want %d", v, u, vs, sv)
			}
			pos, ok := g.findNbr(sv, u)
			if !ok {
				return fmt.Errorf("graph: asymmetric edge {%d,%d}: no back entry", u, v)
			}
			if back := g.pool[g.recs[sv].off+pos].m; back != m {
				return fmt.Errorf("graph: asymmetric multiplicity {%d,%d}: %d vs %d", u, v, m, back)
			}
			total += int(m)
		}
		if deg != r.deg {
			return fmt.Errorf("graph: node %d cached degree %d, actual %d", u, r.deg, deg)
		}
		if dist != r.dist {
			return fmt.Errorf("graph: node %d cached distinct degree %d, actual %d", u, r.dist, dist)
		}
		// Fence coherence, cell by cell: every live fence entry must mirror
		// its run cell, or findNbr's segment narrowing would skip past (or
		// stall before) the neighbor and desynchronize the two half-edges.
		for k := 0; k < numFences; k++ {
			i := int32((k + 1) * fenceStride)
			if i >= r.n {
				break
			}
			if r.fence[k] != fenceKeyFor(g.pool[r.off+i].v) {
				return fmt.Errorf("graph: node %d fence[%d] = %d, run cell %d holds %d",
					u, k, r.fence[k], i, g.pool[r.off+i].v)
			}
		}
	}
	if total != 2*g.edges {
		return fmt.Errorf("graph: edge count mismatch: handshake sum %d, 2*edges %d", total, 2*g.edges)
	}
	// Dense fast-path coherence: every in-range cell must agree with the
	// authoritative map in both directions, or lookup would resolve an id
	// to a stale slot (and mutate someone else's run) or report a live
	// node absent.
	for i, s := range g.dense {
		live, ok := g.index[NodeID(i)]
		if ok && s != live {
			return fmt.Errorf("graph: dense[%d] = %d, index says %d", i, s, live)
		}
		if !ok && s != -1 {
			return fmt.Errorf("graph: dense[%d] = %d for absent id", i, s)
		}
	}
	// Arena disjointness: live runs and free-list runs must not overlap —
	// an aliased run would let one node's insert silently rewrite another
	// node's adjacency.
	owner := make([]int32, len(g.pool))
	for i := range owner {
		owner[i] = -1
	}
	for _, s := range g.index {
		r := g.recs[s]
		for i := r.off; i < r.off+r.cap; i++ {
			if owner[i] != -1 {
				return fmt.Errorf("graph: cell %d owned by slots %d and %d", i, owner[i], s)
			}
			owner[i] = s
		}
	}
	for class, fl := range g.freeRuns {
		capn := int32(class * 4)
		for _, off := range fl {
			for i := off; i < off+capn; i++ {
				if owner[i] != -1 {
					return fmt.Errorf("graph: free cell %d (class %d run @%d) owned by slot %d", i, class, off, owner[i])
				}
				owner[i] = -2
			}
		}
	}
	return nil
}
