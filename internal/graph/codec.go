package graph

import (
	"fmt"

	"repro/internal/wire"
)

// codecVersion is the slot-table snapshot format. Bump when the field
// sequence below changes; DecodeBinary rejects versions it does not know.
const codecVersion = 1

// AppendBinary serializes the graph — slot table, free-slot stack,
// epoch, and every distinct edge — onto enc. The encoding is exact, not
// merely isomorphic: slot numbering, the stale ids parked in dead slots,
// and the LIFO order of the free-slot stack all round-trip, so a decoded
// graph assigns future slots identically to the original. That is what
// lets slot-indexed side tables (the engine's columnar store) resume
// byte-for-byte after a restore. Arena layout (run offsets, free lists)
// is deliberately not serialized: adjacency content is rebuilt via
// AddEdgeMult and the arena repacks itself, since no observable behavior
// depends on pool offsets.
func (g *Graph) AppendBinary(enc *wire.Encoder) {
	enc.Uvarint(codecVersion)
	enc.Uvarint(uint64(len(g.ids)))
	for s, id := range g.ids {
		enc.Varint(int64(id))
		live, ok := g.index[id]
		enc.Bool(ok && live == int32(s))
	}
	enc.Uvarint(uint64(len(g.freeSlots)))
	for _, s := range g.freeSlots {
		enc.Uvarint(uint64(s))
	}
	// Distinct edges, each once with multiplicity, in slot order. Slot
	// order (not sorted-ID order) keeps encoding O(cells) with no sort.
	enc.Uvarint(uint64(g.distinctEdges()))
	for s := range g.recs {
		id := g.ids[s]
		if live, ok := g.index[id]; !ok || live != int32(s) {
			continue
		}
		r := g.recs[s]
		for i := r.off; i < r.off+r.n; i++ {
			if g.pool[i].v < id {
				continue // emitted from the smaller endpoint's run
			}
			enc.Varint(int64(id))
			enc.Varint(int64(g.pool[i].v))
			enc.Uvarint(uint64(g.pool[i].m))
		}
	}
	enc.U64(g.epoch)
}

// distinctEdges counts distinct {u,v} pairs (self-loops once).
func (g *Graph) distinctEdges() int {
	n := 0
	for _, s := range g.index {
		id := g.ids[s]
		r := g.recs[s]
		for i := r.off; i < r.off+r.n; i++ {
			if g.pool[i].v >= id {
				n++
			}
		}
	}
	return n
}

// DecodeBinary rebuilds a graph serialized by AppendBinary into g, which
// must be empty. Slot hooks already registered on g fire for each live
// slot in ascending slot order — exactly the order a caller's columnar
// mirror needs to re-grow its columns — and never for dead slots. The
// decoded graph's slot table, free-slot stack, and epoch equal the
// original's; Validate holds on success.
func (g *Graph) DecodeBinary(dec *wire.Decoder) error {
	if len(g.ids) != 0 || len(g.index) != 0 {
		return fmt.Errorf("graph: DecodeBinary target is not empty")
	}
	if v := dec.Uvarint(); dec.Err() == nil && v != codecVersion {
		return fmt.Errorf("graph: unknown snapshot version %d", v)
	}
	numSlots := dec.Uvarint()
	// Each slot costs at least 2 encoded bytes; reject corrupt counts
	// before allocating.
	if numSlots > uint64(dec.Remaining()) {
		return fmt.Errorf("graph: slot count %d exceeds input", numSlots)
	}
	g.ids = make([]NodeID, 0, numSlots)
	g.recs = make([]nodeRec, numSlots)
	for s := uint64(0); s < numSlots; s++ {
		id := NodeID(dec.Varint())
		live := dec.Bool()
		if dec.Err() != nil {
			return dec.Err()
		}
		g.ids = append(g.ids, id)
		if live {
			if _, dup := g.index[id]; dup {
				return fmt.Errorf("graph: node %d live in two slots", id)
			}
			g.index[id] = int32(s)
			g.denseSet(id, int32(s))
		}
	}
	if g.onSlotAssign != nil {
		for s := range g.ids {
			id := g.ids[s]
			if live, ok := g.index[id]; ok && live == int32(s) {
				g.onSlotAssign(id, int32(s))
			}
		}
	}
	nFree := dec.Uvarint()
	if nFree > numSlots {
		return fmt.Errorf("graph: free-slot count %d exceeds %d slots", nFree, numSlots)
	}
	for i := uint64(0); i < nFree; i++ {
		s := dec.Uvarint()
		if dec.Err() != nil {
			return dec.Err()
		}
		if s >= numSlots {
			return fmt.Errorf("graph: free slot %d out of range", s)
		}
		if live, ok := g.index[g.ids[s]]; ok && live == int32(s) {
			return fmt.Errorf("graph: slot %d both live and free", s)
		}
		g.freeSlots = append(g.freeSlots, int32(s))
	}
	if uint64(len(g.index))+nFree != numSlots {
		return fmt.Errorf("graph: %d live + %d free slots != %d total",
			len(g.index), nFree, numSlots)
	}
	nEdges := dec.Uvarint()
	if nEdges > uint64(dec.Remaining()) {
		return fmt.Errorf("graph: edge count %d exceeds input", nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		u := NodeID(dec.Varint())
		v := NodeID(dec.Varint())
		mult := dec.Uvarint()
		if dec.Err() != nil {
			return dec.Err()
		}
		// AddEdgeMult would silently create absent endpoints (allocating
		// slots and corrupting the free stack); reject them instead.
		if _, ok := g.index[u]; !ok {
			return fmt.Errorf("graph: edge endpoint %d not a live node", u)
		}
		if _, ok := g.index[v]; !ok {
			return fmt.Errorf("graph: edge endpoint %d not a live node", v)
		}
		if mult == 0 || mult > 1<<30 {
			return fmt.Errorf("graph: edge {%d,%d} multiplicity %d out of range", u, v, mult)
		}
		g.AddEdgeMult(u, v, int(mult))
	}
	g.epoch = dec.U64()
	if dec.Err() != nil {
		return dec.Err()
	}
	return g.Validate()
}
