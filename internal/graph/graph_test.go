package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	g := New()
	for i := 0; i < n-1; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1))
	}
	return g
}

func cycle(n int) *Graph {
	g := path(n)
	g.AddEdge(NodeID(n-1), 0)
	return g
}

func TestBasicOps(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 2) // parallel
	g.AddEdge(3, 3) // loop

	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if g.Multiplicity(1, 2) != 2 || g.Multiplicity(2, 1) != 2 {
		t.Fatal("parallel edge multiplicity wrong")
	}
	if g.Degree(1) != 2 || g.Degree(2) != 3 || g.Degree(3) != 2 {
		t.Fatalf("degrees: %d %d %d", g.Degree(1), g.Degree(2), g.Degree(3))
	}
	if g.DistinctDegree(3) != 1 {
		t.Fatalf("DistinctDegree(3) = %d", g.DistinctDegree(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeMultiplicity(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge failed")
	}
	if g.Multiplicity(1, 2) != 1 || g.NumEdges() != 1 {
		t.Fatal("multiplicity not decremented")
	}
	if !g.RemoveEdge(2, 1) {
		t.Fatal("RemoveEdge from other side failed")
	}
	if g.HasEdge(1, 2) || g.NumEdges() != 0 {
		t.Fatal("edge not fully removed")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("RemoveEdge of absent edge returned true")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNode(t *testing.T) {
	g := cycle(5)
	g.AddEdge(2, 2)
	g.RemoveNode(2)
	if g.HasNode(2) {
		t.Fatal("node still present")
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(99) // no-op
}

func TestBFSAndShortestPath(t *testing.T) {
	g := path(10)
	d := g.BFSDistances(0)
	for i := 0; i < 10; i++ {
		if d[NodeID(i)] != i {
			t.Fatalf("dist to %d = %d", i, d[NodeID(i)])
		}
	}
	p := g.ShortestPath(0, 9)
	if len(p) != 10 || p[0] != 0 || p[9] != 9 {
		t.Fatalf("path = %v", p)
	}
	if g.ShortestPath(0, 0)[0] != 0 {
		t.Fatal("trivial path wrong")
	}

	h := New()
	h.AddNode(1)
	h.AddNode(2)
	if h.ShortestPath(1, 2) != nil {
		t.Fatal("path across components should be nil")
	}
}

func TestConnectedAndDiameter(t *testing.T) {
	if !New().Connected() {
		t.Fatal("empty graph should be connected")
	}
	g := cycle(8)
	if !g.Connected() {
		t.Fatal("cycle disconnected?")
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter of C8 = %d, want 4", d)
	}
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("eccentricity = %d", e)
	}
	g.AddNode(100)
	if g.Connected() || g.Diameter() != -1 || g.Eccentricity(0) != -1 {
		t.Fatal("disconnected graph misreported")
	}
}

func TestQuotientContraction(t *testing.T) {
	// Contract C6 pairwise: {0,1}->0, {2,3}->2, {4,5}->4 gives a triangle
	// with self-loops from intra-group edges.
	g := cycle(6)
	q := g.Quotient(func(u NodeID) NodeID { return u - u%2 })
	if q.NumNodes() != 3 {
		t.Fatalf("quotient nodes = %d", q.NumNodes())
	}
	if q.NumEdges() != 6 {
		t.Fatalf("quotient edges = %d, want 6", q.NumEdges())
	}
	if q.Multiplicity(0, 0) != 1 || q.Multiplicity(2, 2) != 1 || q.Multiplicity(4, 4) != 1 {
		t.Fatal("expected self-loops from contracted edges")
	}
	if !q.HasEdge(0, 2) || !q.HasEdge(2, 4) || !q.HasEdge(4, 0) {
		t.Fatal("expected triangle edges")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuotientPreservesTotalDegree(t *testing.T) {
	// Contraction preserves the edge count, hence the total multigraph
	// degree: this is why a C-balanced mapping of a 3-regular virtual graph
	// has node degrees exactly 3*Load (Section 3.1).
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < 60; i++ {
		g.AddEdge(NodeID(rng.Intn(30)), NodeID(rng.Intn(30)))
	}
	q := g.Quotient(func(u NodeID) NodeID { return u % 7 })
	if q.NumEdges() != g.NumEdges() {
		t.Fatalf("quotient edges %d != original %d", q.NumEdges(), g.NumEdges())
	}
}

func TestToCSR(t *testing.T) {
	g := New()
	g.AddEdge(10, 20)
	g.AddEdge(10, 20)
	g.AddEdge(20, 30)
	g.AddEdge(30, 30)
	c := g.ToCSR()
	if len(c.IDs) != 3 {
		t.Fatalf("CSR ids = %v", c.IDs)
	}
	i10, i20, i30 := c.Index[10], c.Index[20], c.Index[30]
	if c.Deg[i10] != 2 || c.Deg[i20] != 3 || c.Deg[i30] != 2 {
		t.Fatalf("CSR degrees = %v", c.Deg)
	}
	// Row of 10 has a single entry (20) with weight 2.
	row := c.Adj[c.RowPtr[i10]:c.RowPtr[i10+1]]
	if len(row) != 1 || int(row[0]) != i20 || c.Wt[c.RowPtr[i10]] != 2 {
		t.Fatal("CSR row for node 10 wrong")
	}
	_ = i30
}

func TestWeightedNeighbors(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 1)
	nbrs, mult := g.WeightedNeighbors(1)
	if len(nbrs) != 3 {
		t.Fatalf("nbrs = %v", nbrs)
	}
	total := 0
	for _, m := range mult {
		total += m
	}
	if total != g.Degree(1) {
		t.Fatalf("weighted neighbor sum %d != degree %d", total, g.Degree(1))
	}
}

func TestCloneIndependence(t *testing.T) {
	g := cycle(4)
	c := g.Clone()
	c.AddEdge(0, 2)
	if g.HasEdge(0, 2) {
		t.Fatal("clone shares storage")
	}
	if c.NumEdges() != g.NumEdges()+1 {
		t.Fatal("edge counts diverged incorrectly")
	}
}

// TestCloneCarriesFreeAccounting pins a regression: a clone must copy the
// free-cell counter along with the free lists, or its compaction trigger
// and Stats never see the parked runs it inherited.
func TestCloneCarriesFreeAccounting(t *testing.T) {
	g := New()
	for i := 0; i < 32; i++ {
		for j := 0; j < 12; j++ {
			g.AddEdge(NodeID(i), NodeID(100+j))
		}
	}
	for i := 0; i < 32; i++ {
		g.RemoveNode(NodeID(i)) // parks the grown runs on the free lists
	}
	if g.Stats().FreeCells == 0 {
		t.Fatal("churn left nothing on the free lists; test needs a heavier trace")
	}
	c := g.Clone()
	if got, want := c.Stats().FreeCells, g.Stats().FreeCells; got != want {
		t.Fatalf("clone FreeCells = %d, original %d", got, want)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: random edit sequences keep the graph internally consistent and
// the handshake identity holds.
func TestRandomEditsStayValidQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		type edge struct{ u, v NodeID }
		var present []edge
		for op := 0; op < 400; op++ {
			u := NodeID(rng.Intn(25))
			v := NodeID(rng.Intn(25))
			switch rng.Intn(4) {
			case 0, 1:
				g.AddEdge(u, v)
				present = append(present, edge{u, v})
			case 2:
				if len(present) > 0 {
					i := rng.Intn(len(present))
					e := present[i]
					if !g.RemoveEdge(e.u, e.v) {
						return false
					}
					present[i] = present[len(present)-1]
					present = present[:len(present)-1]
				}
			case 3:
				g.RemoveNode(u)
				var kept []edge
				for _, e := range present {
					if e.u != u && e.v != u {
						kept = append(kept, e)
					}
				}
				present = kept
			}
			if g.Validate() != nil {
				return false
			}
		}
		return g.NumEdges() == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: BFS distances satisfy the triangle inequality along edges.
func TestBFSTriangleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cycle(12)
		for i := 0; i < 6; i++ {
			g.AddEdge(NodeID(rng.Intn(12)), NodeID(rng.Intn(12)))
		}
		d := g.BFSDistances(0)
		for _, e := range g.Edges() {
			du, dv := d[e.U], d[e.V]
			if du-dv > 1 || dv-du > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaMatchesRef is the deterministic arena-vs-Ref differential
// suite: long seeded churn traces (adds, removes, node deletions, bulk
// multiplicity ops, walk steps) applied to both representations with the
// full observable state compared after every operation. FuzzGraphOps
// explores the same oracle coverage-guided; this test pins a broad sample
// of it into every ordinary `go test` run.
func TestArenaMatchesRef(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		r := NewRef()
		for op := 0; op < 1200; op++ {
			u := NodeID(rng.Intn(40))
			v := NodeID(rng.Intn(40))
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				g.AddEdge(u, v)
				r.AddEdge(u, v)
			case 4, 5:
				if got, want := g.RemoveEdge(u, v), r.RemoveEdge(u, v); got != want {
					t.Fatalf("seed %d op %d: RemoveEdge(%d,%d) arena %v ref %v", seed, op, u, v, got, want)
				}
			case 6:
				k := 1 + rng.Intn(5)
				g.AddEdgeMult(u, v, k)
				r.AddEdgeMult(u, v, k)
			case 7:
				k := 1 + rng.Intn(5)
				if got, want := g.RemoveEdgeMult(u, v, k), r.RemoveEdgeMult(u, v, k); got != want {
					t.Fatalf("seed %d op %d: RemoveEdgeMult arena %d ref %d", seed, op, got, want)
				}
			case 8:
				g.RemoveNode(u)
				r.RemoveNode(u)
			case 9:
				z := rng.Uint64()
				gn, gok := g.RandomNeighborStep(u, -1, z)
				rn, rok := r.RandomNeighborStep(u, -1, z)
				if gn != rn || gok != rok {
					t.Fatalf("seed %d op %d: step from %d diverged: arena (%d,%v) ref (%d,%v)",
						seed, op, u, gn, gok, rn, rok)
				}
			}
			if err := diffGraphs(g, r); err != nil {
				t.Fatalf("seed %d op %d: %v", seed, op, err)
			}
		}
	}
}

// TestForEachNeighborOrderAndStop pins the deterministic contract walk
// reproducibility rests on: ascending NodeID order, multiplicities
// included, early stop honored.
func TestForEachNeighborOrderAndStop(t *testing.T) {
	g := New()
	g.AddEdge(5, 9)
	g.AddEdge(5, 2)
	g.AddEdge(5, 2)
	g.AddEdge(5, 5)
	var got []NodeID
	var mults []int
	g.ForEachNeighbor(5, func(v NodeID, m int) bool {
		got = append(got, v)
		mults = append(mults, m)
		return true
	})
	want := []NodeID{2, 5, 9}
	wantM := []int{2, 1, 1}
	for i := range want {
		if got[i] != want[i] || mults[i] != wantM[i] {
			t.Fatalf("ForEachNeighbor order = %v/%v, want %v/%v", got, mults, want, wantM)
		}
	}
	calls := 0
	g.ForEachNeighbor(5, func(NodeID, int) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
	g.ForEachNeighbor(404, func(NodeID, int) bool { t.Fatal("absent node visited"); return false })
}

// TestRandomNeighborStepMatchesWeighted confirms RandomNeighborStep makes
// the same choice the slice-based WeightedNeighbors selection would, for
// every residue and with exclusion — the property that keeps seeded
// experiment traces identical across the representation swap.
func TestRandomNeighborStepMatchesWeighted(t *testing.T) {
	g := cycle(9)
	g.AddEdge(0, 3)
	g.AddEdge(0, 3)
	g.AddEdge(0, 0)
	for _, exclude := range []NodeID{-1, 3} {
		nbrs, mult := g.WeightedNeighbors(0)
		total := 0
		for i, v := range nbrs {
			if v == exclude {
				continue
			}
			total += mult[i]
		}
		for r := uint64(0); r < uint64(3*total); r++ {
			pick := int(r % uint64(total))
			var want NodeID
			for i, v := range nbrs {
				if v == exclude {
					continue
				}
				pick -= mult[i]
				if pick < 0 {
					want = v
					break
				}
			}
			got, ok := g.RandomNeighborStep(0, exclude, r)
			if !ok || got != want {
				t.Fatalf("r=%d exclude=%d: got (%d,%v), want %d", r, exclude, got, ok, want)
			}
		}
	}
	if _, ok := New().RandomNeighborStep(1, -1, 0); ok {
		t.Fatal("step from absent node succeeded")
	}
	iso := New()
	iso.AddNode(7)
	if _, ok := iso.RandomNeighborStep(7, -1, 5); ok {
		t.Fatal("step from isolated node succeeded")
	}
}

// TestRunRecycling drives a slot/run churn pattern and checks the arena
// recycles rather than leaks: after many node lifecycles the pool stays
// bounded.
func TestRunRecycling(t *testing.T) {
	g := New()
	for round := 0; round < 200; round++ {
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if i != j {
					g.AddEdge(NodeID(i), NodeID(j))
				}
			}
		}
		for i := 0; i < 16; i++ {
			g.RemoveNode(NodeID(i))
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("graph not empty: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// 16 nodes of distinct degree 15 need runs of capacity 16: even with
	// growth waste the pool should stay a small constant multiple.
	if len(g.pool) > 16*64 {
		t.Fatalf("pool grew to %d entries: runs are not recycled", len(g.pool))
	}
}

func BenchmarkBFS4096(b *testing.B) {
	g := cycle(4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		g.AddEdge(NodeID(rng.Intn(4096)), NodeID(rng.Intn(4096)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFSDistances(0)
	}
}

// TestFindNbrEveryPosition probes membership at every position of runs
// long enough to cross findNbr's binary-narrowing threshold. The
// regression this pins: a target sitting exactly on the narrowed upper
// boundary was reported absent, which let AddEdge duplicate an existing
// entry and desynchronize the two half-edges.
func TestFindNbrEveryPosition(t *testing.T) {
	for _, deg := range []int{1, 15, 16, 17, 18, 33, 40, 100} {
		g := New()
		for i := 1; i <= deg; i++ {
			g.AddEdge(0, NodeID(2*i))
		}
		for i := 1; i <= deg; i++ {
			if !g.HasEdge(0, NodeID(2*i)) {
				t.Fatalf("deg %d: neighbor %d reported absent", deg, 2*i)
			}
			if g.HasEdge(0, NodeID(2*i+1)) {
				t.Fatalf("deg %d: phantom neighbor %d", deg, 2*i+1)
			}
			// Re-adding must bump multiplicity in place, not duplicate the cell.
			g.AddEdge(0, NodeID(2*i))
			if got := g.Multiplicity(0, NodeID(2*i)); got != 2 {
				t.Fatalf("deg %d: multiplicity of %d = %d after re-add", deg, 2*i, got)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("deg %d: %v", deg, err)
		}
	}
}

// TestFindNbrSaturatedFence drives runs whose keys straddle the int32
// fence domain: fence cells saturate to sentinels and findNbr must fall
// back to ordering on the run itself. Same every-position probing as
// TestFindNbrEveryPosition, at ids around ±2^31 and ±2^62.
func TestFindNbrSaturatedFence(t *testing.T) {
	bases := []NodeID{-1 << 62, -1 << 31, 1<<31 - 40, 1 << 62}
	for _, base := range bases {
		for _, deg := range []int{17, 40, 100} {
			g := New()
			for i := 1; i <= deg; i++ {
				g.AddEdge(0, base+NodeID(2*i))
			}
			for i := 1; i <= deg; i++ {
				if !g.HasEdge(0, base+NodeID(2*i)) {
					t.Fatalf("base %d deg %d: neighbor %d reported absent", base, deg, 2*i)
				}
				if g.HasEdge(0, base+NodeID(2*i+1)) {
					t.Fatalf("base %d deg %d: phantom neighbor %d", base, deg, 2*i+1)
				}
				g.AddEdge(0, base+NodeID(2*i))
				if got := g.Multiplicity(0, base+NodeID(2*i)); got != 2 {
					t.Fatalf("base %d deg %d: multiplicity of %d after re-add = %d", base, deg, 2*i, got)
				}
			}
			for i := deg; i >= 1; i-- { // shrink back through the threshold
				if got := g.RemoveEdgeMult(0, base+NodeID(2*i), 2); got != 2 {
					t.Fatalf("base %d deg %d: removed %d of neighbor %d", base, deg, got, 2*i)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("base %d deg %d after removing %d: %v", base, deg, 2*i, err)
				}
			}
		}
	}
}
