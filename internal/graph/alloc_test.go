package graph

import "testing"

// The allocation-regression gates below are part of the tentpole's
// acceptance: walk hops and steady-state edge churn must not allocate.
// testing.AllocsPerRun fails these tests (and CI) the moment a slice or
// map sneaks back into the hot paths.

// steadyGraph builds a contraction-shaped multigraph and warms the arena
// so its runs and free lists are at steady-state capacity.
func steadyGraph(n int) *Graph {
	g := New()
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n))
		g.AddEdge(NodeID(i), NodeID((i*7+3)%n))
		g.AddEdge(NodeID(i), NodeID(i)) // self-loop, as contraction produces
	}
	return g
}

func TestWalkHopZeroAllocs(t *testing.T) {
	g := steadyGraph(256)
	state := uint64(12345)
	cur := NodeID(0)
	allocs := testing.AllocsPerRun(1000, func() {
		state += 0x9e3779b97f4a7c15
		next, ok := g.RandomNeighborStep(cur, -1, state)
		if !ok {
			t.Fatal("walk stuck")
		}
		cur = next
	})
	if allocs != 0 {
		t.Fatalf("RandomNeighborStep allocates %.1f per hop, want 0", allocs)
	}
}

func TestForEachNeighborZeroAllocs(t *testing.T) {
	g := steadyGraph(256)
	sum := 0
	visit := func(v NodeID, m int) bool { sum += int(v) * m; return true }
	allocs := testing.AllocsPerRun(1000, func() {
		g.ForEachNeighbor(7, visit)
	})
	if allocs != 0 {
		t.Fatalf("ForEachNeighbor allocates %.1f per call, want 0", allocs)
	}
	_ = sum
}

// TestEdgeChurnZeroAllocsSteadyState asserts AddEdge/RemoveEdge pairs are
// allocation-free once the node's run has reached capacity: churn at
// bounded degree reuses arena space instead of growing it.
func TestEdgeChurnZeroAllocsSteadyState(t *testing.T) {
	g := steadyGraph(256)
	// Warm the exact edges the loop toggles so no run needs to grow.
	g.AddEdge(3, 200)
	g.RemoveEdge(3, 200)
	allocs := testing.AllocsPerRun(1000, func() {
		g.AddEdge(3, 200)
		if !g.RemoveEdge(3, 200) {
			t.Fatal("edge vanished")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AddEdge+RemoveEdge allocates %.1f, want 0", allocs)
	}
}

// TestNodeChurnZeroAllocsSteadyState covers the full node lifecycle: after
// warmup, a remove/re-add cycle of a node and its edges runs entirely off
// the slot and run free lists. (The sparse index map itself is the one
// structure Go may rehash, so the cycle keeps the id set fixed.)
func TestNodeChurnZeroAllocsSteadyState(t *testing.T) {
	g := steadyGraph(64)
	cycleOnce := func() {
		g.RemoveNode(10)
		g.AddEdge(10, 11)
		g.AddEdge(10, 12)
		g.AddEdge(10, 10)
	}
	cycleOnce() // warm free lists
	allocs := testing.AllocsPerRun(1000, cycleOnce)
	if allocs != 0 {
		t.Fatalf("steady-state node churn allocates %.1f, want 0", allocs)
	}
}

// TestDegreeAccessorsZeroAllocs pins the O(1) cached accessors.
func TestDegreeAccessorsZeroAllocs(t *testing.T) {
	g := steadyGraph(64)
	d := 0
	allocs := testing.AllocsPerRun(1000, func() {
		d += g.Degree(5) + g.DistinctDegree(5) + g.Multiplicity(5, 6)
	})
	if allocs != 0 {
		t.Fatalf("degree accessors allocate %.1f, want 0", allocs)
	}
	_ = d
}
