package graph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// churnedGraph builds a graph whose slot table has holes and a
// non-trivial free-slot stack: grow, delete interior nodes, regrow.
func churnedGraph(t testing.TB, seed int64, n int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New()
	ids := make([]NodeID, 0, n)
	for i := 0; i < n; i++ {
		u := NodeID(i)
		g.AddNode(u)
		ids = append(ids, u)
	}
	for step := 0; step < 6*n; step++ {
		switch rng.Intn(5) {
		case 0:
			u := NodeID(1000 + step)
			g.AddNode(u)
			ids = append(ids, u)
		case 1:
			if len(ids) > 4 {
				i := rng.Intn(len(ids))
				g.RemoveNode(ids[i])
				ids[i] = ids[len(ids)-1]
				ids = ids[:len(ids)-1]
			}
		default:
			u := ids[rng.Intn(len(ids))]
			v := ids[rng.Intn(len(ids))]
			if rng.Intn(4) == 0 {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdgeMult(u, v, 1+rng.Intn(3))
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("churned graph invalid: %v", err)
	}
	return g
}

func decodeInto(t *testing.T, g *Graph, data []byte) *Graph {
	t.Helper()
	out := New()
	if err := out.DecodeBinary(wire.NewDecoder(data)); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		g := churnedGraph(t, seed, 64)
		enc := wire.NewEncoder(nil)
		g.AppendBinary(enc)
		got := decodeInto(t, g, enc.Bytes())

		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: decoded graph invalid: %v", seed, err)
		}
		if got.Epoch() != g.Epoch() {
			t.Fatalf("seed %d: epoch %d != %d", seed, got.Epoch(), g.Epoch())
		}
		if !reflect.DeepEqual(got.Edges(), g.Edges()) {
			t.Fatalf("seed %d: edge sets differ", seed)
		}
		// The slot table must round-trip exactly, not just isomorphically.
		if got.Slots() != g.Slots() {
			t.Fatalf("seed %d: slots %d != %d", seed, got.Slots(), g.Slots())
		}
		for _, u := range g.Nodes() {
			ws, _ := g.SlotOf(u)
			gs, ok := got.SlotOf(u)
			if !ok || gs != ws {
				t.Fatalf("seed %d: node %d slot %d, want %d", seed, u, gs, ws)
			}
		}
		if !reflect.DeepEqual(got.freeSlots, g.freeSlots) {
			t.Fatalf("seed %d: free-slot stacks differ: %v vs %v", seed, got.freeSlots, g.freeSlots)
		}
		// Future slot assignment must match: add fresh nodes to both and
		// compare the slots they land in. Capture the bound up front —
		// each added node past the free-slot stack grows Slots() by one.
		fresh := g.Slots() + 4
		for i := 0; i < fresh; i++ {
			u := NodeID(1<<40) + NodeID(i)
			g.AddNode(u)
			got.AddNode(u)
			ws, _ := g.SlotOf(u)
			gs, _ := got.SlotOf(u)
			if ws != gs {
				t.Fatalf("seed %d: fresh node %d landed in slot %d, want %d", seed, u, gs, ws)
			}
		}
	}
}

func TestCodecHooksFireAscending(t *testing.T) {
	g := churnedGraph(t, 3, 32)
	enc := wire.NewEncoder(nil)
	g.AppendBinary(enc)

	out := New()
	var slots []int32
	out.SetSlotHooks(func(u NodeID, s int32) {
		slots = append(slots, s)
	}, nil)
	if err := out.DecodeBinary(wire.NewDecoder(enc.Bytes())); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(slots) != g.NumNodes() {
		t.Fatalf("assign hook fired %d times, want %d", len(slots), g.NumNodes())
	}
	for i := 1; i < len(slots); i++ {
		if slots[i] <= slots[i-1] {
			t.Fatalf("assign hooks not ascending: %v", slots)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	g := churnedGraph(t, 5, 32)
	enc := wire.NewEncoder(nil)
	g.AppendBinary(enc)
	data := enc.Bytes()

	// Truncation at every prefix must error, never panic or accept.
	for cut := 0; cut < len(data); cut++ {
		out := New()
		if err := out.DecodeBinary(wire.NewDecoder(data[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	// Decoding into a non-empty graph must be refused.
	out := New()
	out.AddNode(1)
	if err := out.DecodeBinary(wire.NewDecoder(data)); err == nil {
		t.Fatal("decode into non-empty graph accepted")
	}
}
