package graph

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestSlotMutatorsMatchIDForms: the slot-native mutators (AddEdgeAt /
// AddEdgeMultAt / RemoveEdgeAt / RemoveEdgeMultAt) are exact drop-ins
// for the id-keyed forms — same structure, same return values, same
// epoch discipline — across a randomized churn script that exercises
// in-place multiplicity bumps, run growth, entry removal, node
// removal, and arena compaction.
func TestSlotMutatorsMatchIDForms(t *testing.T) {
	a, b := New(), New()
	const n = 48
	for u := NodeID(0); u < n; u++ {
		a.AddNode(u)
		b.AddNode(u)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 5000; step++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		k := 1 + rng.Intn(3)
		su, ok := b.SlotOf(u)
		if !ok {
			t.Fatalf("step %d: node %d has no slot", step, u)
		}
		if rng.Float64() < 0.55 {
			if k == 1 {
				a.AddEdge(u, v)
				b.AddEdgeAt(su, u, v)
			} else {
				a.AddEdgeMult(u, v, k)
				b.AddEdgeMultAt(su, u, v, k)
			}
		} else {
			if k == 1 {
				ra := a.RemoveEdge(u, v)
				rb := b.RemoveEdgeAt(su, u, v)
				if ra != rb {
					t.Fatalf("step %d: RemoveEdge(%d,%d)=%v, RemoveEdgeAt=%v", step, u, v, ra, rb)
				}
			} else {
				ra := a.RemoveEdgeMult(u, v, k)
				rb := b.RemoveEdgeMultAt(su, u, v, k)
				if ra != rb {
					t.Fatalf("step %d: RemoveEdgeMult(%d,%d,%d)=%d, RemoveEdgeMultAt=%d", step, u, v, k, ra, rb)
				}
			}
		}
	}
	if !reflect.DeepEqual(a.Edges(), b.Edges()) {
		t.Fatal("edge multisets diverged between id-keyed and slot-native mutators")
	}
	if a.NumEdges() != b.NumEdges() || a.Epoch() != b.Epoch() {
		t.Fatalf("edges/epoch diverged: (%d,%d) vs (%d,%d)", a.NumEdges(), a.Epoch(), b.NumEdges(), b.Epoch())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReadersAreReadOnly is the -race regression for the
// removed one-entry id→slot mutation cache (lastID/lastSlot): that
// cache turned every id-keyed lookup into a hidden write, so concurrent
// readers — exactly what the engine's speculation windows and parallel
// audits do — raced each other. Readers must now share a quiescent
// graph freely: this hammers every id-keyed and slot-keyed read path
// from many goroutines at once and fails under -race if any of them
// mutates shared state.
func TestConcurrentReadersAreReadOnly(t *testing.T) {
	g := New()
	const n = 64
	for u := NodeID(0); u < n; u++ {
		g.AddNode(u)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 600; i++ {
		g.AddEdgeMult(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), 1+rng.Intn(2))
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				u := NodeID(r.Intn(n))
				v := NodeID(r.Intn(n))
				_ = g.Degree(u)
				_ = g.Multiplicity(u, v)
				_ = g.HasEdge(u, v)
				_ = g.Neighbors(u)
				if s, ok := g.SlotOf(u); ok {
					g.ForEachNeighborAt(s, func(NodeID, int32, int) bool { return true })
					_, _, _ = g.RandomNeighborStepAt(s, -1, r.Uint64())
				}
				g.ForEachNeighbor(u, func(NodeID, int) bool { return true })
				_, _ = g.RandomNeighborStep(u, -1, r.Uint64())
			}
		}(int64(100 + w))
	}
	wg.Wait()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
