package graph

import (
	"math/rand"
	"testing"
)

// TestSlotMappingRoundTrip: SlotOf/NodeAt are inverse on live nodes and
// NodeAt rejects freed slots, including across slot reuse.
func TestSlotMappingRoundTrip(t *testing.T) {
	g := New()
	for i := 0; i < 32; i++ {
		g.AddNode(NodeID(i))
	}
	for i := 0; i < 32; i++ {
		s, ok := g.SlotOf(NodeID(i))
		if !ok {
			t.Fatalf("node %d has no slot", i)
		}
		if u, ok := g.NodeAt(s); !ok || u != NodeID(i) {
			t.Fatalf("NodeAt(%d) = %d,%v, want %d", s, u, ok, i)
		}
	}
	s7, _ := g.SlotOf(7)
	g.RemoveNode(7)
	if _, ok := g.SlotOf(7); ok {
		t.Fatal("removed node still has a slot")
	}
	if _, ok := g.NodeAt(s7); ok {
		t.Fatal("freed slot still reports a node")
	}
	// Reuse: the next added node takes the freed slot; NodeAt must track.
	g.AddNode(100)
	s100, _ := g.SlotOf(100)
	if s100 != s7 {
		t.Fatalf("freed slot %d not recycled (new node got %d)", s7, s100)
	}
	if u, ok := g.NodeAt(s100); !ok || u != 100 {
		t.Fatalf("NodeAt(%d) = %d,%v after reuse, want 100", s100, u, ok)
	}
	if _, ok := g.NodeAt(-1); ok {
		t.Fatal("negative slot accepted")
	}
	if _, ok := g.NodeAt(int32(g.Slots())); ok {
		t.Fatal("out-of-range slot accepted")
	}
}

// TestSlotHooksFireInLockstep drives random churn and checks the hooks
// maintain an exact mirror of the slot table, covering assignment via
// AddNode, implicit assignment via AddEdge, release via RemoveNode, and
// slot reuse.
func TestSlotHooksFireInLockstep(t *testing.T) {
	g := New()
	mirror := map[int32]NodeID{}
	g.SetSlotHooks(
		func(u NodeID, s int32) {
			if old, ok := mirror[s]; ok {
				t.Fatalf("slot %d assigned to %d while %d still holds it", s, u, old)
			}
			mirror[s] = u
		},
		func(u NodeID, s int32) {
			if mirror[s] != u {
				t.Fatalf("slot %d released by %d, mirror says %d", s, u, mirror[s])
			}
			delete(mirror, s)
		},
	)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4000; i++ {
		u, v := NodeID(rng.Intn(64)), NodeID(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			g.AddNode(u)
		case 1, 2:
			g.AddEdge(u, v)
		case 3:
			g.RemoveNode(u)
		}
		if len(mirror) != g.NumNodes() {
			t.Fatalf("op %d: mirror has %d slots, graph %d nodes", i, len(mirror), g.NumNodes())
		}
	}
	for s, u := range mirror {
		got, ok := g.NodeAt(s)
		if !ok || got != u {
			t.Fatalf("mirror slot %d = %d, graph says %d,%v", s, u, got, ok)
		}
		if sl, ok := g.SlotOf(u); !ok || sl != s {
			t.Fatalf("SlotOf(%d) = %d,%v, mirror says %d", u, sl, ok, s)
		}
	}
}

// TestCloneDropsSlotHooks: mutating a clone (or a Snapshot copy) must
// not fire the original's hooks — the copy belongs to someone else.
func TestCloneDropsSlotHooks(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	fired := 0
	g.SetSlotHooks(
		func(NodeID, int32) { fired++ },
		func(NodeID, int32) { fired++ },
	)
	c := g.Clone()
	c.AddNode(9)
	c.RemoveNode(1)
	snap, _ := g.Snapshot()
	snap.AddNode(10)
	if fired != 0 {
		t.Fatalf("clone mutations fired %d hook calls on the original", fired)
	}
	g.AddNode(3)
	if fired != 1 {
		t.Fatalf("original AddNode fired %d hook calls, want 1", fired)
	}
}
