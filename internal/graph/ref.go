package graph

import (
	"fmt"
	"sort"
)

// Ref is the reference multigraph: the map-of-maps implementation that
// backed Graph before the flat adjacency arena. It is kept verbatim as the
// differential oracle — trivially correct, allocation-heavy — that the
// swap-safety tests (FuzzGraphOps, TestArenaMatchesRef) and the
// memory-footprint gate compare the arena against. Semantics are
// identical to Graph's: undirected multigraph, self-loops count once in
// the degree, all iteration sorted by NodeID.
type Ref struct {
	adj   map[NodeID]map[NodeID]int
	edges int
}

// NewRef returns an empty reference graph.
func NewRef() *Ref {
	return &Ref{adj: make(map[NodeID]map[NodeID]int)}
}

// NumNodes returns the number of nodes.
func (g *Ref) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of edges counting multiplicity; a self-loop
// counts as one edge.
func (g *Ref) NumEdges() int { return g.edges }

// HasNode reports whether u exists.
func (g *Ref) HasNode(u NodeID) bool {
	_, ok := g.adj[u]
	return ok
}

// AddNode inserts u as an isolated node if not present.
func (g *Ref) AddNode(u NodeID) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = make(map[NodeID]int)
	}
}

// RemoveNode deletes u and all incident edges. It is a no-op if u is absent.
func (g *Ref) RemoveNode(u NodeID) {
	nbrs, ok := g.adj[u]
	if !ok {
		return
	}
	for v, k := range nbrs {
		g.edges -= k
		if v != u {
			delete(g.adj[v], u)
		}
	}
	delete(g.adj, u)
}

// AddEdge adds one undirected edge {u,v}, creating the endpoints if needed.
func (g *Ref) AddEdge(u, v NodeID) { g.AddEdgeMult(u, v, 1) }

// AddEdgeMult adds k parallel {u,v} edges; k <= 0 is a no-op.
func (g *Ref) AddEdgeMult(u, v NodeID, k int) {
	if k <= 0 {
		return
	}
	g.AddNode(u)
	g.AddNode(v)
	g.adj[u][v] += k
	if u != v {
		g.adj[v][u] += k
	}
	g.edges += k
}

// RemoveEdge removes one multiplicity of edge {u,v}, reporting whether an
// edge was removed.
func (g *Ref) RemoveEdge(u, v NodeID) bool { return g.RemoveEdgeMult(u, v, 1) == 1 }

// RemoveEdgeMult removes up to k multiplicities of {u,v}, returning the
// number removed.
func (g *Ref) RemoveEdgeMult(u, v NodeID, k int) int {
	if k <= 0 {
		return 0
	}
	nbrs, ok := g.adj[u]
	if !ok {
		return 0
	}
	have, ok := nbrs[v]
	if !ok || have == 0 {
		return 0
	}
	if have < k {
		k = have
	}
	if have == k {
		delete(nbrs, v)
	} else {
		nbrs[v] = have - k
	}
	if u != v {
		if k2 := g.adj[v][u]; k2 == k {
			delete(g.adj[v], u)
		} else {
			g.adj[v][u] = k2 - k
		}
	}
	g.edges -= k
	return k
}

// Multiplicity returns the number of parallel {u,v} edges.
func (g *Ref) Multiplicity(u, v NodeID) int {
	if nbrs, ok := g.adj[u]; ok {
		return nbrs[v]
	}
	return 0
}

// HasEdge reports whether at least one {u,v} edge exists.
func (g *Ref) HasEdge(u, v NodeID) bool { return g.Multiplicity(u, v) > 0 }

// Degree returns the multigraph degree of u (self-loops count once).
func (g *Ref) Degree(u NodeID) int {
	d := 0
	for _, k := range g.adj[u] {
		d += k
	}
	return d
}

// DistinctDegree returns the number of distinct non-self neighbors of u.
func (g *Ref) DistinctDegree(u NodeID) int {
	d := 0
	for v := range g.adj[u] {
		if v != u {
			d++
		}
	}
	return d
}

// Nodes returns all node IDs in ascending order.
func (g *Ref) Nodes() []NodeID {
	out := make([]NodeID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the distinct neighbors of u in ascending order,
// including u itself when u has a self-loop.
func (g *Ref) Neighbors(u NodeID) []NodeID {
	nbrs := g.adj[u]
	out := make([]NodeID, 0, len(nbrs))
	for v := range nbrs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WeightedNeighbors returns the distinct neighbors of u in ascending order
// with the multiplicity of each connecting edge.
func (g *Ref) WeightedNeighbors(u NodeID) (nbrs []NodeID, mult []int) {
	ns := g.Neighbors(u)
	ms := make([]int, len(ns))
	for i, v := range ns {
		ms[i] = g.adj[u][v]
	}
	return ns, ms
}

// RandomNeighborStep mirrors Graph.RandomNeighborStep over the sorted
// neighbor view, so walk-step differential tests can compare choices
// word-for-word.
func (g *Ref) RandomNeighborStep(u, exclude NodeID, r uint64) (NodeID, bool) {
	nbrs, mult := g.WeightedNeighbors(u)
	total := 0
	for i, v := range nbrs {
		if v == exclude {
			continue
		}
		total += mult[i]
	}
	if total == 0 {
		return 0, false
	}
	pick := int(r % uint64(total))
	for i, v := range nbrs {
		if v == exclude {
			continue
		}
		pick -= mult[i]
		if pick < 0 {
			return v, true
		}
	}
	return 0, false
}

// Edges returns all distinct edges in deterministic order.
func (g *Ref) Edges() []Edge {
	var out []Edge
	for _, u := range g.Nodes() {
		for v, k := range g.adj[u] {
			if v < u {
				continue
			}
			out = append(out, Edge{U: u, V: v, Mult: k})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Validate checks adjacency symmetry and edge accounting.
//
//dexvet:allow determinism audit-only: any inconsistency fails validation; which of several is reported first is immaterial
func (g *Ref) Validate() error {
	total := 0
	for u, nbrs := range g.adj {
		for v, k := range nbrs {
			if k <= 0 {
				return fmt.Errorf("ref: nonpositive multiplicity %d on {%d,%d}", k, u, v)
			}
			if v == u {
				total += 2 * k
				continue
			}
			back, ok := g.adj[v]
			if !ok {
				return fmt.Errorf("ref: dangling neighbor %d of %d", v, u)
			}
			if back[u] != k {
				return fmt.Errorf("ref: asymmetric multiplicity {%d,%d}: %d vs %d", u, v, k, back[u])
			}
			total += k
		}
	}
	if total != 2*g.edges {
		return fmt.Errorf("ref: edge count mismatch: handshake sum %d, 2*edges %d", total, 2*g.edges)
	}
	return nil
}
