package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// contractionShaped builds an n-node multigraph with the degree profile
// the DEX contraction produces (a few distinct neighbors, occasional
// parallel edges and self-loops).
func contractionShaped(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < n; i++ {
		g.AddEdge(NodeID(i), NodeID((i+1)%n))
		g.AddEdge(NodeID(i), NodeID(rng.Intn(n)))
		if i%8 == 0 {
			g.AddEdge(NodeID(i), NodeID(i))
		}
	}
	return g
}

// BenchmarkWalkHop measures one multiplicity-weighted walk step through
// the arena. The acceptance bar for the flat-adjacency tentpole is 0
// allocs/op here (the map-of-maps WeightedNeighbors path allocated two
// slices per hop); CI runs this at -benchtime 1x as a smoke check and
// the alloc_test.go gates fail the suite outright on regression.
func BenchmarkWalkHop(b *testing.B) {
	g := contractionShaped(4096, 1)
	state := uint64(99)
	cs, ok := g.SlotOf(0)
	if !ok {
		b.Fatal("start node missing")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state += 0x9e3779b97f4a7c15
		// Slot-native hop, as the recovery walks run it: the start slot is
		// resolved once and every step yields the next slot, so steady-state
		// walking never touches the id->slot map.
		_, next, ok := g.RandomNeighborStepAt(cs, -1, state)
		if !ok {
			b.Fatal("walk stuck")
		}
		cs = next
	}
}

// BenchmarkWalkHopRef is the map-of-maps baseline for BenchmarkWalkHop:
// the same walk over Ref, paying the two-slice WeightedNeighbors
// materialization the arena retired. Tracked in CI so the speedup stays
// visible across PRs.
func BenchmarkWalkHopRef(b *testing.B) {
	arena := contractionShaped(4096, 1)
	g := NewRef()
	for _, e := range arena.Edges() {
		g.AddEdgeMult(e.U, e.V, e.Mult)
	}
	state := uint64(99)
	cur := NodeID(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state += 0x9e3779b97f4a7c15
		next, ok := g.RandomNeighborStep(cur, -1, state)
		if !ok {
			b.Fatal("walk stuck")
		}
		cur = next
	}
}

// BenchmarkGraphChurn measures steady-state edge churn on the arena: one
// add + one remove per op against a warm free list.
func BenchmarkGraphChurn(b *testing.B) {
	g := contractionShaped(4096, 2)
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := NodeID(rng.Intn(4096)), NodeID(rng.Intn(4096))
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
	}
}

// BenchmarkFindNbr measures one membership probe through findNbr at the
// degrees that exercise each of its regimes: 4 (short-scan only), 32
// (fence narrowing to one segment), 256 (fence prefix + binary-narrowed
// tail). Probe targets cycle through every run position plus misses, so
// the number reflects the average cell, not a lucky hot one.
func BenchmarkFindNbr(b *testing.B) {
	for _, deg := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			g := New()
			for i := 1; i <= deg; i++ {
				g.AddEdge(0, NodeID(2*i))
			}
			s, _ := g.SlotOf(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Odd ids miss between cells, even ids hit: both paths stay hot.
				if _, ok := g.findNbr(s, NodeID(i%(2*deg+2)+1)); ok == (i%2 == 0) {
					_ = ok
				}
			}
		})
	}
}

// BenchmarkGraphChurnRef is the same churn against the map-of-maps
// oracle.
func BenchmarkGraphChurnRef(b *testing.B) {
	arena := contractionShaped(4096, 2)
	g := NewRef()
	for _, e := range arena.Edges() {
		g.AddEdgeMult(e.U, e.V, e.Mult)
	}
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := NodeID(rng.Intn(4096)), NodeID(rng.Intn(4096))
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
	}
}
