// Package wire provides the minimal binary encoding layer shared by the
// durable-state subsystem: a sticky-error append Encoder and a
// bounds-checked Decoder over varint/fixed-width primitives. It exists
// as its own package so internal/graph and internal/core can expose
// encode/decode hooks without importing internal/persist (which imports
// both), and it deliberately has no dependencies beyond the standard
// library's binary package.
//
// The encoding is position-dependent and schema-less: writer and reader
// must agree on the field sequence, and every persisted stream carries a
// version number at a higher layer (checkpoint and WAL headers) so the
// sequence can evolve.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated reports a decoder running past the end of its input.
var ErrTruncated = errors.New("wire: truncated input")

// ErrOverflow reports a varint that does not fit its target width.
var ErrOverflow = errors.New("wire: varint overflow")

// Encoder appends primitives to a reusable byte buffer. The zero value
// is ready to use; Reset keeps the capacity across uses so steady-state
// encoding (the WAL append path) allocates nothing once warm.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder appending to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Reset empties the encoder, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded stream. The slice aliases the encoder's
// buffer and is invalidated by the next append or Reset.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed (zig-zag) varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// F64 appends a float64 as its IEEE-754 bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bytes8 appends a length-prefixed byte slice (uvarint length).
func (e *Encoder) Bytes8(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends b with no length prefix.
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// Decoder reads primitives back from a byte stream. Errors are sticky:
// after the first failure every getter returns the zero value and Err
// reports the failure, so decode sequences can run unchecked and test
// once at the end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed (zig-zag) varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(ErrOverflow)
		}
		return 0
	}
	d.off += n
	return v
}

// U32 reads a fixed-width little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 4 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail(ErrTruncated)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a one-byte boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < 1 {
		d.fail(ErrTruncated)
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 1 {
		d.fail(ErrTruncated)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Fixed reads exactly n raw bytes. The result aliases the decoder's
// input.
func (d *Decoder) Fixed(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.Remaining() < n {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Bytes8 reads a length-prefixed byte slice. The result aliases the
// decoder's input.
func (d *Decoder) Bytes8() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}
