package wire

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// TestRoundTrip drives every primitive through an encode/decode cycle
// and requires the decoder to land exactly on the end of the stream.
func TestRoundTrip(t *testing.T) {
	enc := NewEncoder(nil)
	enc.Uvarint(0)
	enc.Uvarint(300)
	enc.Uvarint(math.MaxUint64)
	enc.Varint(0)
	enc.Varint(-1)
	enc.Varint(math.MinInt64)
	enc.Varint(math.MaxInt64)
	enc.U32(0xdeadbeef)
	enc.U64(0x0123456789abcdef)
	enc.F64(-math.Pi)
	enc.Bool(true)
	enc.Bool(false)
	enc.Byte(0x7f)
	enc.Bytes8([]byte("slots"))
	enc.Bytes8(nil)
	enc.Raw([]byte{9, 9})

	dec := NewDecoder(enc.Bytes())
	if got := dec.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := dec.Uvarint(); got != 300 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := dec.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := dec.Varint(); got != 0 {
		t.Fatalf("Varint = %d", got)
	}
	if got := dec.Varint(); got != -1 {
		t.Fatalf("Varint = %d", got)
	}
	if got := dec.Varint(); got != math.MinInt64 {
		t.Fatalf("Varint = %d", got)
	}
	if got := dec.Varint(); got != math.MaxInt64 {
		t.Fatalf("Varint = %d", got)
	}
	if got := dec.U32(); got != 0xdeadbeef {
		t.Fatalf("U32 = %#x", got)
	}
	if got := dec.U64(); got != 0x0123456789abcdef {
		t.Fatalf("U64 = %#x", got)
	}
	if got := dec.F64(); got != -math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if !dec.Bool() || dec.Bool() {
		t.Fatal("Bool round-trip broken")
	}
	if got := dec.Byte(); got != 0x7f {
		t.Fatalf("Byte = %#x", got)
	}
	if got := dec.Bytes8(); !bytes.Equal(got, []byte("slots")) {
		t.Fatalf("Bytes8 = %q", got)
	}
	if got := dec.Bytes8(); len(got) != 0 {
		t.Fatalf("empty Bytes8 = %q", got)
	}
	if got := dec.Fixed(2); !bytes.Equal(got, []byte{9, 9}) {
		t.Fatalf("Fixed = %v", got)
	}
	if dec.Err() != nil {
		t.Fatalf("clean stream errored: %v", dec.Err())
	}
	if dec.Remaining() != 0 {
		t.Fatalf("%d bytes left over", dec.Remaining())
	}
}

// TestRoundTripQuick is the property form: arbitrary values survive the
// varint and fixed-width paths.
func TestRoundTripQuick(t *testing.T) {
	f := func(u uint64, v int64, w uint32, b []byte) bool {
		enc := NewEncoder(nil)
		enc.Uvarint(u)
		enc.Varint(v)
		enc.U32(w)
		enc.Bytes8(b)
		dec := NewDecoder(enc.Bytes())
		return dec.Uvarint() == u && dec.Varint() == v && dec.U32() == w &&
			bytes.Equal(dec.Bytes8(), b) && dec.Err() == nil && dec.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTruncated feeds every getter each strict prefix of a valid stream
// and requires ErrTruncated (never a panic, never a bogus value passed
// off as clean).
func TestTruncated(t *testing.T) {
	full := NewEncoder(nil)
	full.Uvarint(1 << 40)
	full.Varint(-(1 << 40))
	full.U32(7)
	full.U64(7)
	full.Bool(true)
	full.Byte(1)
	full.Bytes8([]byte("abcdef"))
	stream := full.Bytes()

	read := func(dec *Decoder) {
		dec.Uvarint()
		dec.Varint()
		dec.U32()
		dec.U64()
		dec.Bool()
		dec.Byte()
		dec.Bytes8()
	}
	for n := 0; n < len(stream); n++ {
		dec := NewDecoder(stream[:n])
		read(dec)
		if !errors.Is(dec.Err(), ErrTruncated) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTruncated", n, len(stream), dec.Err())
		}
	}
	dec := NewDecoder(stream)
	read(dec)
	if dec.Err() != nil {
		t.Fatalf("full stream: %v", dec.Err())
	}
	if dec.Fixed(1); !errors.Is(dec.Err(), ErrTruncated) {
		t.Fatalf("Fixed past the end: err = %v", dec.Err())
	}
}

// TestBadVarint covers the corrupt-input corpus: 10+ continuation bytes
// overflow, a length prefix past the input truncates, and a negative
// Fixed count is rejected.
func TestBadVarint(t *testing.T) {
	over := bytes.Repeat([]byte{0xff}, 11) // never terminates within 10 bytes
	if dec := NewDecoder(over); dec.Uvarint() != 0 || !errors.Is(dec.Err(), ErrOverflow) {
		t.Fatalf("Uvarint overflow: err = %v", dec.Err())
	}
	if dec := NewDecoder(over); dec.Varint() != 0 || !errors.Is(dec.Err(), ErrOverflow) {
		t.Fatalf("Varint overflow: err = %v", dec.Err())
	}
	// Continuation bytes that run off the end of the input truncate.
	if dec := NewDecoder([]byte{0x80, 0x80}); dec.Uvarint() != 0 || !errors.Is(dec.Err(), ErrTruncated) {
		t.Fatalf("unterminated Uvarint: err = %v", dec.Err())
	}
	// A Bytes8 length prefix larger than the remaining input.
	enc := NewEncoder(nil)
	enc.Uvarint(1 << 20)
	if dec := NewDecoder(enc.Bytes()); dec.Bytes8() != nil || !errors.Is(dec.Err(), ErrTruncated) {
		t.Fatalf("oversized Bytes8: err = %v", dec.Err())
	}
	if dec := NewDecoder([]byte{1, 2, 3}); dec.Fixed(-1) != nil || !errors.Is(dec.Err(), ErrTruncated) {
		t.Fatalf("negative Fixed: err = %v", dec.Err())
	}
}

// TestStickyError: after the first failure every getter returns zero
// values and the original error survives later, larger failures.
func TestStickyError(t *testing.T) {
	dec := NewDecoder(bytes.Repeat([]byte{0xff}, 11))
	dec.Uvarint()
	if !errors.Is(dec.Err(), ErrOverflow) {
		t.Fatalf("err = %v", dec.Err())
	}
	if dec.U64() != 0 || dec.Byte() != 0 || dec.Bytes8() != nil || dec.Bool() {
		t.Fatal("getters returned data after a sticky error")
	}
	if !errors.Is(dec.Err(), ErrOverflow) {
		t.Fatalf("sticky error replaced: %v", dec.Err())
	}
}

// TestEncoderReuse: Reset keeps capacity, so the steady-state append
// path (the WAL hot loop) stops allocating once warm.
func TestEncoderReuse(t *testing.T) {
	enc := NewEncoder(nil)
	warm := func() {
		enc.Reset()
		enc.Uvarint(1 << 30)
		enc.U64(42)
		enc.Bytes8([]byte("payload"))
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("warm encode allocates %.2f per run, want 0", allocs)
	}
	if enc.Len() != len(enc.Bytes()) {
		t.Fatalf("Len %d != len(Bytes) %d", enc.Len(), len(enc.Bytes()))
	}
}
