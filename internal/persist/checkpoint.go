package persist

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/wire"
)

// Checkpoint format:
//
//	magic "DEXCKPT1" | u32 version | u64 step | u64 payloadLen |
//	sha256(payload) | payload
//
// payload = engine snapshot (core.AppendState) followed by the MMR
// accumulator, so a checkpoint alone is enough to resume both the
// engine and the history digest. Files are written tmp + fsync +
// rename + directory fsync, so a crash leaves either the old set or
// the old set plus one complete new file — never a half-written
// checkpoint under the final name. The digest catches anything the
// filesystem got wrong anyway.
const (
	ckptMagic     = "DEXCKPT1"
	ckptVersion   = 1
	ckptHeaderLen = 8 + 4 + 8 + 8 + sha256.Size
	ckptKeep      = 2 // checkpoints retained after a successful write
)

func ckptName(step uint64) string { return fmt.Sprintf("checkpoint-%020d.ckpt", step) }

// ckptStep parses the step out of a checkpoint file name, reporting
// whether the name is a checkpoint at all.
func ckptStep(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt")
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeCheckpoint durably writes the engine + MMR snapshot for step.
func writeCheckpoint(dir string, step uint64, eng *core.Network, m *mmr, enc *wire.Encoder, noSync bool) error {
	enc.Reset()
	enc.Raw([]byte(ckptMagic))
	enc.U32(ckptVersion)
	enc.U64(step)
	enc.U64(0)                         // payload length, patched below
	enc.Raw(make([]byte, sha256.Size)) // digest, patched below

	payloadStart := enc.Len()
	if err := eng.AppendState(enc); err != nil {
		return fmt.Errorf("persist: snapshot engine: %w", err)
	}
	m.appendBinary(enc)
	buf := enc.Bytes()
	payload := buf[payloadStart:]
	le64(buf[8+4+8:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[8+4+8+8:payloadStart], sum[:])

	final := filepath.Join(dir, ckptName(step))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if !noSync {
		if err := syncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

func le64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readCheckpoint loads and verifies one checkpoint file, returning
// the restored engine and MMR.
func readCheckpoint(path string, workers int) (uint64, *core.Network, *mmr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(data) < ckptHeaderLen {
		return 0, nil, nil, errCorrupt("checkpoint: short header")
	}
	if string(data[:8]) != ckptMagic {
		return 0, nil, nil, errCorrupt("checkpoint: bad magic")
	}
	hdec := wire.NewDecoder(data[8:ckptHeaderLen])
	if v := hdec.U32(); v != ckptVersion {
		return 0, nil, nil, errCorrupt(fmt.Sprintf("checkpoint: unsupported version %d", v))
	}
	step := hdec.U64()
	plen := hdec.U64()
	if plen != uint64(len(data)-ckptHeaderLen) {
		return 0, nil, nil, errCorrupt("checkpoint: payload length mismatch")
	}
	payload := data[ckptHeaderLen:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[8+4+8+8:ckptHeaderLen]) {
		return 0, nil, nil, errCorrupt("checkpoint: digest mismatch")
	}
	dec := wire.NewDecoder(payload)
	eng, err := core.RestoreNetwork(dec, workers)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("persist: restore engine: %w", err)
	}
	m := &mmr{}
	if err := m.decodeBinary(dec); err != nil {
		eng.Close()
		return 0, nil, nil, err
	}
	if dec.Remaining() != 0 {
		eng.Close()
		return 0, nil, nil, errCorrupt("checkpoint: trailing bytes")
	}
	if got := uint64(eng.Totals().Steps); got != step {
		eng.Close()
		return 0, nil, nil, errCorrupt(fmt.Sprintf("checkpoint: header step %d vs engine step %d", step, got))
	}
	return step, eng, m, nil
}

// listCheckpoints returns the checkpoint steps present in dir,
// ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var steps []uint64
	for _, e := range ents {
		if s, ok := ckptStep(e.Name()); ok {
			steps = append(steps, s)
		}
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps, nil
}

// pruneCheckpoints deletes all but the newest ckptKeep checkpoints.
// Best-effort: a leftover file is wasted space, not a hazard.
func pruneCheckpoints(dir string, steps []uint64) {
	if len(steps) <= ckptKeep {
		return
	}
	for _, s := range steps[:len(steps)-ckptKeep] {
		os.Remove(filepath.Join(dir, ckptName(s)))
	}
}
