package persist_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/dex"
)

// FuzzCrashRecovery is the crash-point fuzzer for the durable-state
// subsystem. Each input picks an engine configuration, a churn
// schedule, a crash point, and a post-crash disk mangling, then
// demands the recovery property: opening the directory either fails
// loudly, or yields a network byte-identical to a fresh oracle run of
// the recovered step prefix — and that network, continued, stays
// byte-identical to the oracle. Silent divergence is the only losing
// outcome.
//
// Input layout: byte 0 seed, byte 1 mode+workers, byte 2 group
// commit, byte 3 checkpoint cadence, byte 4 crash point, byte 5
// mangling; the rest drives the op mix.
func FuzzCrashRecovery(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 10, 0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88})
	f.Add([]byte{7, 1, 8, 3, 40, 0, 0xa0, 0x13, 0x77, 0xfe, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a})
	f.Add([]byte{3, 2, 4, 0, 25, 1, 0x0f, 0xf0, 0x55, 0xaa, 0x99, 0x66, 0xcc, 0x33})
	f.Add([]byte{11, 3, 2, 2, 60, 2, 0xde, 0xad, 0xbe, 0xef, 0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc})
	f.Add([]byte{5, 1, 16, 1, 0, 0, 0x42})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 7 {
			t.Skip("header too short")
		}
		seed := int64(data[0])
		mode := dex.Simplified
		if data[1]&1 == 1 {
			mode = dex.Staggered
		}
		workers := []int{1, 2, 4, 8}[(data[1]>>1)%4]
		groupCommit := 1 + int(data[2]%16)
		checkpointEvery := []int{-1, 1, 8, 32}[data[3]%4]
		mangling := data[4] % 3
		body := data[5:]
		nOps := len(body)
		crashAt := int(data[5]) % (nOps + 1)

		dir := t.TempDir()
		common := []dex.Option{dex.WithInitialSize(16), dex.WithMode(mode), dex.WithSeed(seed), dex.WithWorkers(workers)}
		popts := []dex.PersistOption{
			dex.WithCheckpointEvery(checkpointEvery),
			dex.WithGroupCommit(groupCommit),
			dex.WithNoSync(true),
		}
		pnw, err := dex.New(append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := dex.New(common...)
		if err != nil {
			t.Fatal(err)
		}
		defer oracle.Close()

		// Resolve and apply the schedule up to the crash point; the
		// resolved ops replay against recovered networks and oracles.
		var nextID dex.NodeID = 1 << 20
		ops := make([]opSpec, 0, nOps)
		for i := 0; i < nOps; i++ {
			op := fuzzOp(oracle, body[i], &nextID)
			if err := applyOp(oracle, &op); err != nil {
				// The engine legitimately rejected it (e.g. the deletion
				// would disconnect the network). Rejected ops never reach
				// the WAL, so they drop out of the schedule on both sides.
				continue
			}
			ops = append(ops, op)
			if len(ops) <= crashAt {
				if err := applyOp(pnw, &op); err != nil {
					t.Fatalf("op %d on persistent: %v", i, err)
				}
			}
		}
		if crashAt > len(ops) {
			crashAt = len(ops)
		}
		pnw.Crash()

		if mangling != 0 {
			mangleTail(t, dir, mangling)
		}

		re, err := dex.New(append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
		if err != nil {
			if mangling == 0 {
				// A pure crash (no disk corruption) must always recover.
				t.Fatalf("recovery failed without corruption: %v", err)
			}
			return // detected corruption: acceptable outcome
		}
		defer re.Close()

		s := re.Totals().Steps
		if s > crashAt {
			t.Fatalf("recovered %d steps but only %d were applied", s, crashAt)
		}
		if mangling == 0 && s < crashAt-(groupCommit-1) {
			t.Fatalf("recovered %d steps; group commit %d may lose at most %d of %d",
				s, groupCommit, groupCommit-1, crashAt)
		}
		// Recovered state must equal a fresh run of exactly s ops.
		prefix, err := dex.New(common...)
		if err != nil {
			t.Fatal(err)
		}
		defer prefix.Close()
		for i := 0; i < s; i++ {
			if err := applyOp(prefix, &ops[i]); err != nil {
				t.Fatalf("prefix op %d: %v", i, err)
			}
		}
		requireSameNet(t, "recovered vs prefix oracle", prefix, re)
		if err := re.CheckInvariants(); err != nil {
			t.Fatalf("recovered invariants: %v", err)
		}
		// Continue with the remaining schedule: must reconverge with
		// the never-crashed oracle.
		for i := s; i < len(ops); i++ {
			if err := applyOp(re, &ops[i]); err != nil {
				t.Fatalf("continue op %d: %v", i, err)
			}
		}
		requireSameNet(t, "continued vs oracle", oracle, re)
	})
}

// fuzzOp maps one schedule byte to a resolved operation, sampling
// targets from the driving network's current state.
func fuzzOp(nw *dex.Network, b byte, nextID *dex.NodeID) opSpec {
	fresh := func() dex.NodeID { *nextID++; return *nextID }
	arg := rand.New(rand.NewSource(int64(b) * 0x9e37))
	switch k := b % 4; {
	case k == 0 || nw.Size() <= 8:
		return opSpec{kind: 0, id: fresh(), attach: nw.SampleNode(arg)}
	case k == 1:
		return opSpec{kind: 1, id: nw.SampleNode(arg)}
	case k == 2:
		n := 1 + int(b>>2)%5
		specs := make([]dex.InsertSpec, n)
		for i := range specs {
			specs[i] = dex.InsertSpec{ID: fresh(), Attach: nw.SampleNode(arg)}
		}
		return opSpec{kind: 2, specs: specs}
	default:
		return opSpec{kind: 3, ids: []dex.NodeID{nw.SampleNode(arg)}}
	}
}

// mangleTail simulates torn or corrupted trailing writes on the
// newest WAL: mode 1 truncates, mode 2 flips a byte near the end.
func mangleTail(t *testing.T, dir string, mode byte) {
	t.Helper()
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		return // nothing to mangle (crash before any WAL write)
	}
	wal := wals[len(wals)-1]
	data, err := os.ReadFile(wal)
	if err != nil || len(data) == 0 {
		return
	}
	switch mode {
	case 1:
		if err := os.Truncate(wal, int64(len(data)-min(len(data), 7))); err != nil {
			t.Fatal(err)
		}
	case 2:
		data[len(data)-min(len(data), 13)] ^= 0x20
		if err := os.WriteFile(wal, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
