// Package persist_test drives the durable-state subsystem through its
// public surface — the dex façade — so the tests cover exactly what a
// client sees: build-or-resume via WithPersistence, group-commit
// durability windows, crash recovery, and the Merkle history root.
package persist_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/dex"
)

// opSpec is one resolved adversarial operation: arguments are fixed at
// generation time so the same schedule can be replayed against a
// recovered network or a fresh oracle.
type opSpec struct {
	kind   int // 0 insert, 1 delete, 2 batch-insert, 3 batch-delete
	id     dex.NodeID
	attach dex.NodeID
	specs  []dex.InsertSpec
	ids    []dex.NodeID
}

func applyOp(nw *dex.Network, op *opSpec) error {
	switch op.kind {
	case 0:
		return nw.Insert(op.id, op.attach)
	case 1:
		return nw.Delete(op.id)
	case 2:
		return nw.InsertBatch(op.specs)
	default:
		return nw.DeleteBatch(op.ids)
	}
}

// genOp resolves the next operation against the driving network's
// current state. Every generated op succeeds on a network in the same
// state (the caller applies it to all replicas).
func genOp(nw *dex.Network, rng *rand.Rand, nextID *dex.NodeID) opSpec {
	fresh := func() dex.NodeID { *nextID++; return *nextID }
	switch k := rng.Intn(8); {
	case k < 3 || nw.Size() <= 8:
		return opSpec{kind: 0, id: fresh(), attach: nw.SampleNode(rng)}
	case k < 6:
		return opSpec{kind: 1, id: nw.SampleNode(rng)}
	case k < 7:
		n := 2 + rng.Intn(3)
		specs := make([]dex.InsertSpec, n)
		for i := range specs {
			specs[i] = dex.InsertSpec{ID: fresh(), Attach: nw.SampleNode(rng)}
		}
		return opSpec{kind: 2, specs: specs}
	default:
		return opSpec{kind: 3, ids: []dex.NodeID{nw.SampleNode(rng)}}
	}
}

// requireSameNet compares everything the public API exposes.
func requireSameNet(t *testing.T, tag string, a, b *dex.Network) {
	t.Helper()
	if a.P() != b.P() || a.Size() != b.Size() {
		t.Fatalf("%s: shape differs: P %d/%d size %d/%d", tag, a.P(), b.P(), a.Size(), b.Size())
	}
	if a.Totals() != b.Totals() {
		t.Fatalf("%s: totals differ:\n%+v\n%+v", tag, a.Totals(), b.Totals())
	}
	ha, hb := a.History(), b.History()
	if len(ha) != len(hb) || (len(ha) > 0 && !reflect.DeepEqual(ha, hb)) {
		t.Fatalf("%s: histories differ (len %d vs %d)", tag, len(ha), len(hb))
	}
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("%s: node sets differ", tag)
	}
	if !reflect.DeepEqual(a.Graph().Edges(), b.Graph().Edges()) {
		t.Fatalf("%s: overlay edges differ", tag)
	}
	for _, u := range a.Nodes() {
		if a.Load(u) != b.Load(u) {
			t.Fatalf("%s: load of %d differs: %d vs %d", tag, u, a.Load(u), b.Load(u))
		}
	}
	if a.Coordinator() != b.Coordinator() {
		t.Fatalf("%s: coordinators differ", tag)
	}
	aAct, aPh := a.Rebuilding()
	bAct, bPh := b.Rebuilding()
	if aAct != bAct || aPh != bPh {
		t.Fatalf("%s: rebuild state differs", tag)
	}
}

// driveBoth generates steps ops on a (recording them), applying each
// to every network in more as well, and requires them to stay
// identical step for step.
func driveBoth(t *testing.T, steps int, rng *rand.Rand, nextID *dex.NodeID, a *dex.Network, more ...*dex.Network) []opSpec {
	t.Helper()
	ops := make([]opSpec, 0, steps)
	for i := 0; i < steps; i++ {
		op := genOp(a, rng, nextID)
		if err := applyOp(a, &op); err != nil {
			t.Fatalf("op %d on primary: %v", i, err)
		}
		for j, nw := range more {
			if err := applyOp(nw, &op); err != nil {
				t.Fatalf("op %d on replica %d: %v", i, j, err)
			}
			if a.LastStep() != nw.LastStep() {
				t.Fatalf("op %d: replica %d metrics diverged", i, j)
			}
		}
		ops = append(ops, op)
	}
	return ops
}

func mustNew(t *testing.T, opts ...dex.Option) *dex.Network {
	t.Helper()
	nw, err := dex.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestReopenMatchesUncrashedTwin: a cleanly closed durable network,
// reopened, is indistinguishable from a plain network that ran the
// same schedule without interruption — and keeps matching it under
// continued identical churn.
func TestReopenMatchesUncrashedTwin(t *testing.T) {
	for _, mode := range []dex.Mode{dex.Simplified, dex.Staggered} {
		t.Run(fmt.Sprint(mode), func(t *testing.T) {
			dir := t.TempDir()
			common := []dex.Option{dex.WithInitialSize(48), dex.WithMode(mode), dex.WithSeed(17)}
			pnw := mustNew(t, append(common[:len(common):len(common)],
				dex.WithPersistence(dir, dex.WithCheckpointEvery(16), dex.WithGroupCommit(4), dex.WithNoSync(true)))...)
			twin := mustNew(t, common...)

			rng := rand.New(rand.NewSource(5))
			var nextID dex.NodeID = 1 << 32
			driveBoth(t, 200, rng, &nextID, twin, pnw)
			rootBefore, stepsBefore := pnw.LastRoot()
			if stepsBefore != uint64(twin.Totals().Steps) {
				t.Fatalf("root covers %d steps, engine at %d", stepsBefore, twin.Totals().Steps)
			}
			if err := pnw.Close(); err != nil {
				t.Fatal(err)
			}

			re := mustNew(t, append(common[:len(common):len(common)],
				dex.WithPersistence(dir, dex.WithCheckpointEvery(16), dex.WithGroupCommit(4), dex.WithNoSync(true)))...)
			defer re.Close()
			requireSameNet(t, "after reopen", twin, re)
			if root, steps := re.LastRoot(); root != rootBefore || steps != stepsBefore {
				t.Fatalf("history root changed across reopen: %x/%d vs %x/%d", root, steps, rootBefore, stepsBefore)
			}
			driveBoth(t, 150, rng, &nextID, twin, re)
			if err := re.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCrashRecoveryGroupCommit: with group commit, a crash loses at
// most the staged tail; recovery reconstructs the exact durable
// prefix, and re-applying the lost suffix reconverges with a network
// that never crashed. Exercised across both recovery modes and
// worker widths 1, 4, and 8.
func TestCrashRecoveryGroupCommit(t *testing.T) {
	const nOps = 180
	for _, mode := range []dex.Mode{dex.Simplified, dex.Staggered} {
		for _, workers := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%v/w%d", mode, workers), func(t *testing.T) {
				dir := t.TempDir()
				common := []dex.Option{dex.WithInitialSize(48), dex.WithMode(mode), dex.WithSeed(23), dex.WithWorkers(workers)}
				popts := []dex.PersistOption{dex.WithCheckpointEvery(64), dex.WithGroupCommit(8), dex.WithNoSync(true)}
				pnw := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
				oracle := mustNew(t, common...)
				defer oracle.Close()

				rng := rand.New(rand.NewSource(31))
				var nextID dex.NodeID = 1 << 32
				ops := driveBoth(t, nOps, rng, &nextID, oracle, pnw)
				pnw.Crash()

				re := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
				defer re.Close()
				s := re.Totals().Steps
				if s > nOps || s < nOps-7 {
					t.Fatalf("recovered %d steps; want within group-commit window [%d, %d]", s, nOps-7, nOps)
				}
				// The recovered state must equal a fresh oracle run of
				// exactly the durable prefix.
				prefix := mustNew(t, common...)
				defer prefix.Close()
				for i := 0; i < s; i++ {
					if err := applyOp(prefix, &ops[i]); err != nil {
						t.Fatalf("prefix op %d: %v", i, err)
					}
				}
				requireSameNet(t, "recovered vs durable prefix", prefix, re)

				// Re-apply the lost tail: the recovered network must
				// reconverge with the never-crashed oracle, root and all.
				for i := s; i < len(ops); i++ {
					if err := applyOp(re, &ops[i]); err != nil {
						t.Fatalf("reapply op %d: %v", i, err)
					}
				}
				requireSameNet(t, "after tail reapply", oracle, re)
				if err := re.CheckInvariants(); err != nil {
					t.Fatal(err)
				}

				// The Merkle root over the full history must match a run
				// that never crashed.
				clean := mustNew(t, append(common[:len(common):len(common)],
					dex.WithPersistence(t.TempDir(), popts...))...)
				defer clean.Close()
				for i := range ops {
					if err := applyOp(clean, &ops[i]); err != nil {
						t.Fatalf("clean op %d: %v", i, err)
					}
				}
				cr, cs := clean.LastRoot()
				rr, rs := re.LastRoot()
				if cr != rr || cs != rs {
					t.Fatalf("history roots diverged across crash: %x/%d vs %x/%d", rr, rs, cr, cs)
				}
			})
		}
	}
}

// TestTornTailTruncated: physically mangling the WAL tail — the
// on-disk artifact of a torn write — must never poison recovery: the
// intact prefix is recovered, the mangled tail discarded.
func TestTornTailTruncated(t *testing.T) {
	for _, mangle := range []string{"truncate", "flip"} {
		t.Run(mangle, func(t *testing.T) {
			dir := t.TempDir()
			popts := []dex.PersistOption{dex.WithCheckpointEvery(-1), dex.WithGroupCommit(1), dex.WithNoSync(true)}
			common := []dex.Option{dex.WithInitialSize(32), dex.WithSeed(41)}
			pnw := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
			oracle := mustNew(t, common...)
			defer oracle.Close()
			rng := rand.New(rand.NewSource(43))
			var nextID dex.NodeID = 1 << 32
			ops := driveBoth(t, 60, rng, &nextID, oracle, pnw)
			pnw.Crash()

			wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			if err != nil || len(wals) == 0 {
				t.Fatalf("no wal found: %v", err)
			}
			wal := wals[len(wals)-1]
			fi, err := os.Stat(wal)
			if err != nil {
				t.Fatal(err)
			}
			switch mangle {
			case "truncate":
				if err := os.Truncate(wal, fi.Size()-11); err != nil {
					t.Fatal(err)
				}
			case "flip":
				data, err := os.ReadFile(wal)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-20] ^= 0x40
				if err := os.WriteFile(wal, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			re := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
			defer re.Close()
			s := re.Totals().Steps
			if s >= len(ops) || s == 0 {
				t.Fatalf("recovered %d steps of %d; mangled tail should cost some, not all", s, len(ops))
			}
			prefix := mustNew(t, common...)
			defer prefix.Close()
			for i := 0; i < s; i++ {
				if err := applyOp(prefix, &ops[i]); err != nil {
					t.Fatal(err)
				}
			}
			requireSameNet(t, "recovered vs prefix", prefix, re)
		})
	}
}

// TestResumeRejectsMismatchedOptions: resuming with a different
// engine configuration is refused instead of silently diverging, and
// WithRNG cannot combine with persistence at all.
func TestResumeRejectsMismatchedOptions(t *testing.T) {
	dir := t.TempDir()
	pnw := mustNew(t, dex.WithInitialSize(32), dex.WithZeta(8),
		dex.WithPersistence(dir, dex.WithNoSync(true)))
	if err := pnw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := dex.New(dex.WithInitialSize(32), dex.WithZeta(4),
		dex.WithPersistence(dir, dex.WithNoSync(true))); err == nil {
		t.Fatal("mismatched zeta accepted on resume")
	}
	// Worker width is explicitly allowed to differ.
	re, err := dex.New(dex.WithInitialSize(32), dex.WithZeta(8), dex.WithWorkers(4),
		dex.WithPersistence(dir, dex.WithNoSync(true)))
	if err != nil {
		t.Fatalf("workers override rejected: %v", err)
	}
	re.Close()
	if _, err := dex.New(dex.WithRNG(rand.New(rand.NewSource(1))),
		dex.WithPersistence(t.TempDir(), dex.WithNoSync(true))); err == nil {
		t.Fatal("WithRNG + WithPersistence accepted")
	}
}

// TestConcurrentFacadePersists: commits serialize through the façade
// lock; a Concurrent network's directory resumes to the same state.
func TestConcurrentFacadePersists(t *testing.T) {
	dir := t.TempDir()
	common := []dex.Option{dex.WithInitialSize(32), dex.WithSeed(3)}
	c, err := dex.NewConcurrent(append(common[:len(common):len(common)],
		dex.WithPersistence(dir, dex.WithGroupCommit(4), dex.WithNoSync(true)))...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 80; i++ {
		if i%3 == 2 && c.Size() > 8 {
			if err := c.Delete(c.SampleNode(rng)); err != nil {
				t.Fatal(err)
			}
		} else if err := c.Insert(c.FreshID(), c.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	root, steps := c.LastRoot()
	tot := c.Totals()
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustNew(t, append(common[:len(common):len(common)],
		dex.WithPersistence(dir, dex.WithNoSync(true)))...)
	defer re.Close()
	if re.Totals() != tot {
		t.Fatalf("resumed totals differ:\n%+v\n%+v", re.Totals(), tot)
	}
	if r2, s2 := re.LastRoot(); r2 != root || s2 != steps {
		t.Fatal("resumed history root differs")
	}
}

// TestScaleCheckpointResume restores a 10^5-node network from its
// checkpoint and continues it under the differential oracle.
func TestScaleCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-node growth takes a while")
	}
	dir := t.TempDir()
	common := []dex.Option{dex.WithInitialSize(64), dex.WithSeed(7), dex.WithHistoryCap(256)}
	popts := []dex.PersistOption{dex.WithCheckpointEvery(-1), dex.WithGroupCommit(64), dex.WithNoSync(true)}
	pnw := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
	twin := mustNew(t, common...)
	defer twin.Close()

	// Grow both to 10^5 nodes with identical batched inserts.
	var nextID dex.NodeID = 1 << 32
	rng := rand.New(rand.NewSource(13))
	for twin.Size() < 100_000 {
		k := 100_000 - twin.Size()
		if k > 512 {
			k = 512
		}
		nodes := twin.Nodes()
		specs := make([]dex.InsertSpec, k)
		for i := range specs {
			nextID++
			specs[i] = dex.InsertSpec{ID: nextID, Attach: nodes[i%len(nodes)]}
		}
		if err := twin.InsertBatch(specs); err != nil {
			t.Fatal(err)
		}
		if err := pnw.InsertBatch(specs); err != nil {
			t.Fatal(err)
		}
	}
	if err := pnw.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pnw.Crash() // drop without flushing anything past the checkpoint

	re := mustNew(t, append(common[:len(common):len(common)], dex.WithPersistence(dir, popts...))...)
	defer re.Close()
	if re.Size() != twin.Size() || re.Totals() != twin.Totals() {
		t.Fatalf("restored scale run differs: size %d vs %d", re.Size(), twin.Size())
	}
	// Continue both under churn and spot-check equality.
	driveBoth(t, 300, rng, &nextID, twin, re)
	requireSameNet(t, "after continued churn at scale", twin, re)
}

// TestWALAppendZeroAllocsSteadyState is the durability analogue of the
// engine's recovery-path alloc gate: once warm, logging an operation —
// framing, checksumming, Merkle leaf, group-commit write — must not
// allocate. NoSync isolates allocation behavior from fsync latency;
// the byte path is identical.
func TestWALAppendZeroAllocsSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("steady-state warmup is a few thousand ops")
	}
	dir := t.TempDir()
	nw := mustNew(t, dex.WithInitialSize(64), dex.WithSeed(11), dex.WithHistoryCap(128),
		dex.WithPersistence(dir, dex.WithCheckpointEvery(-1), dex.WithGroupCommit(1), dex.WithNoSync(true)))
	defer nw.Close()
	rng := rand.New(rand.NewSource(19))
	var nextID dex.NodeID = 1 << 32
	for nw.Size() < 4096 {
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 512; i++ {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(400, func() {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state logged delete+insert allocates %.2f per pair, want 0", allocs)
	}
}

// BenchmarkWALAppend prices one logged steady-state operation pair
// against the engine's unlogged BenchmarkRecoveryOp baseline.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	nw, err := dex.New(dex.WithInitialSize(64), dex.WithSeed(11), dex.WithHistoryCap(128),
		dex.WithPersistence(dir, dex.WithCheckpointEvery(-1), dex.WithGroupCommit(1), dex.WithNoSync(true)))
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	rng := rand.New(rand.NewSource(19))
	var nextID dex.NodeID = 1 << 32
	for nw.Size() < 4096 {
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Delete(nw.SampleNode(rng)); err != nil {
			b.Fatal(err)
		}
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint prices one full durable checkpoint (snapshot
// encode + digest + write + rotate) at steady size.
func BenchmarkCheckpoint(b *testing.B) {
	dir := b.TempDir()
	nw, err := dex.New(dex.WithInitialSize(64), dex.WithSeed(11), dex.WithHistoryCap(128),
		dex.WithPersistence(dir, dex.WithCheckpointEvery(-1), dex.WithGroupCommit(1), dex.WithNoSync(true)))
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	rng := rand.New(rand.NewSource(19))
	var nextID dex.NodeID = 1 << 32
	for nw.Size() < 4096 {
		nextID++
		if err := nw.Insert(nextID, nw.SampleNode(rng)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
}
