// Package persist gives a DEX engine durable state: versioned,
// checksummed checkpoints of the full engine snapshot plus an
// append-only, CRC-chained write-ahead log of operations between
// checkpoints. Opening a directory after a crash loads the newest
// checkpoint and replays the WAL suffix, re-executing each logged
// operation with its recorded walk seeds and verifying the produced
// step metrics — recovery either reconstructs the exact pre-crash
// state (up to the durability window of group commit) or fails
// loudly; it never silently diverges.
//
// The package also maintains a Merkle Mountain Range over the per-step
// metrics stream, updated incrementally per operation and persisted in
// checkpoints, so any two replicas that processed the same step
// sequence can compare a single 32-byte root.
//
// The intended client is the dex façade (dex.WithPersistence); the
// types here operate on *core.Network directly so the engine's
// snapshot hooks stay internal.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/wire"
)

// Options tunes a Log. The zero value means: checkpoint every 4096
// operations, fsync every operation, keep the stored worker count on
// resume.
type Options struct {
	// CheckpointEvery is the number of logged operations between
	// automatic checkpoints (0 = 4096, negative = never automatic).
	CheckpointEvery int
	// GroupCommit batches this many operations per WAL write+fsync
	// (0 or 1 = every operation). Operations staged but not yet
	// flushed are lost on crash — the standard group-commit
	// durability window.
	GroupCommit int
	// NoSync skips fsync entirely. Crash safety against process
	// death is retained (the page cache survives); machine death is
	// not. For tests and benchmarks.
	NoSync bool
	// Workers overrides the engine worker-pool width on resume
	// (0 = keep the checkpointed value). Worker width never changes
	// seeded outcomes, so it is resumable-safe by construction.
	Workers int
}

func (o Options) checkpointEvery() int {
	if o.CheckpointEvery == 0 {
		return 4096
	}
	return o.CheckpointEvery
}

func (o Options) groupCommit() int {
	if o.GroupCommit < 1 {
		return 1
	}
	return o.GroupCommit
}

func (o Options) workersOverride() int {
	if o.Workers == 0 {
		return -1 // keep stored
	}
	return o.Workers
}

// Log is the durable-state manager for one engine: one directory
// holding checkpoints and the active WAL. Not safe for concurrent
// use; the dex façade serializes access.
type Log struct {
	dir string
	opt Options

	w       *wal
	m       mmr
	ckptEnc wire.Encoder // checkpoint scratch buffer
	leafEnc wire.Encoder // MMR leaf scratch buffer

	lastCkptStep uint64
	opsSinceCkpt int
	closed       bool
}

const walPrefix = "wal-"

func walName(afterStep uint64) string { return fmt.Sprintf("wal-%020d.log", afterStep) }

func walStep(name string) (uint64, bool) {
	if !strings.HasPrefix(name, walPrefix) || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, walPrefix), ".log")
	v, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Open prepares directory dir for durable operation. If dir holds no
// prior state it returns (log, nil, nil): the caller builds a fresh
// engine and hands it to Begin. Otherwise it loads the newest
// checkpoint, replays the WAL suffix, writes a fresh post-recovery
// checkpoint, and returns the recovered engine.
func Open(dir string, opt Options) (*Log, *core.Network, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	ckpts, err := listCheckpoints(dir)
	if err != nil {
		return nil, nil, err
	}
	wals, err := listWALs(dir)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{dir: dir, opt: opt}
	if len(ckpts) == 0 {
		if len(wals) > 0 {
			return nil, nil, errCorrupt("wal present without any checkpoint")
		}
		return l, nil, nil
	}
	eng, err := l.recover(ckpts, wals)
	if err != nil {
		return nil, nil, err
	}
	// Recovery ends by re-anchoring: a fresh checkpoint of the
	// recovered state and a new empty WAL, so the append path never
	// has to splice onto a possibly-torn tail.
	if err := l.Begin(eng); err != nil {
		eng.Close()
		return nil, nil, err
	}
	return l, eng, nil
}

func listWALs(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var steps []uint64
	for _, e := range ents {
		if s, ok := walStep(e.Name()); ok {
			steps = append(steps, s)
		}
	}
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j-1] > steps[j]; j-- {
			steps[j-1], steps[j] = steps[j], steps[j-1]
		}
	}
	return steps, nil
}

// recover loads the newest checkpoint and replays the newest WAL on
// top of it.
func (l *Log) recover(ckpts, wals []uint64) (*core.Network, error) {
	ckptStep := ckpts[len(ckpts)-1]
	step, eng, m, err := readCheckpoint(filepath.Join(l.dir, ckptName(ckptStep)), l.opt.workersOverride())
	if err != nil {
		return nil, fmt.Errorf("persist: load %s: %w", ckptName(ckptStep), err)
	}
	l.m = *m
	if l.m.count != step {
		eng.Close()
		return nil, errCorrupt("checkpoint: history digest count disagrees with step")
	}
	// Pick the newest WAL. A crash between checkpoint write and WAL
	// rotation legitimately leaves a WAL anchored at an older
	// checkpoint; records at or before the checkpoint step are
	// skipped during replay.
	if len(wals) == 0 {
		return eng, nil
	}
	walFile := walName(wals[len(wals)-1])
	if wals[len(wals)-1] > step {
		eng.Close()
		return nil, errCorrupt("wal is newer than every checkpoint")
	}
	if err := l.replay(filepath.Join(l.dir, walFile), eng); err != nil {
		eng.Close()
		return nil, fmt.Errorf("persist: replay %s: %w", walFile, err)
	}
	return eng, nil
}

// replay re-executes the WAL's intact records against eng. Each
// record's recorded walk seeds and step metrics are compared against
// what the engine actually does — the restored RNG position must
// reproduce the logged randomness exactly.
func (l *Log) replay(path string, eng *core.Network) error {
	var drawn []uint64
	eng.SetSeedObserver(func(s uint64) { drawn = append(drawn, s) })
	defer eng.SetSeedObserver(nil)

	var rec OpRecord
	_, err := readWAL(path, &rec, func(r *OpRecord) error {
		have := eng.Totals().Steps
		if r.Metrics.Step <= have {
			return nil // already covered by the checkpoint
		}
		if r.Metrics.Step != have+1 {
			return errCorrupt(fmt.Sprintf("wal: step gap: engine at %d, record for %d", have, r.Metrics.Step))
		}
		drawn = drawn[:0]
		var opErr error
		switch r.Op {
		case core.OpInsert:
			opErr = eng.Insert(r.ID, r.Attach)
		case core.OpDelete:
			opErr = eng.Delete(r.ID)
		case core.OpBatchInsert:
			opErr = eng.InsertBatch(r.Inserts)
		case core.OpBatchDelete:
			opErr = eng.DeleteBatch(r.Deletes)
		}
		if opErr != nil {
			return fmt.Errorf("persist: replay step %d (%s): %w", r.Metrics.Step, r.Op, opErr)
		}
		if len(drawn) != len(r.Seeds) {
			return errCorrupt(fmt.Sprintf("wal: step %d drew %d walk seeds, log recorded %d",
				r.Metrics.Step, len(drawn), len(r.Seeds)))
		}
		for i := range drawn {
			if drawn[i] != r.Seeds[i] {
				return errCorrupt(fmt.Sprintf("wal: step %d walk seed %d diverged", r.Metrics.Step, i))
			}
		}
		if got := eng.LastStep(); got != r.Metrics {
			return errCorrupt(fmt.Sprintf("wal: step %d metrics diverged:\nreplayed %+v\nlogged   %+v",
				r.Metrics.Step, got, r.Metrics))
		}
		l.m.add(stepLeaf(&l.leafEnc, &r.Metrics))
		return nil
	})
	return err
}

// Begin anchors the log to eng: a durable checkpoint of its current
// state and a fresh WAL. For a fresh directory the caller invokes it
// once with the newly built engine; Open invokes it internally after
// recovery.
func (l *Log) Begin(eng *core.Network) error {
	return l.checkpointAndRotate(eng)
}

// Append stages one operation record, folds its step metrics into the
// history digest, and flushes according to the group-commit setting.
// Steady-state appends allocate nothing.
//
//dexvet:noalloc
func (l *Log) Append(rec *OpRecord) error {
	if l.closed {
		return errClosed
	}
	if l.w == nil {
		return fmt.Errorf("persist: Append before Begin")
	}
	l.m.add(stepLeaf(&l.leafEnc, &rec.Metrics))
	l.w.stage(rec)
	l.opsSinceCkpt++
	if l.w.stagedN >= l.opt.groupCommit() {
		return l.w.flush()
	}
	return nil
}

// CheckpointDue reports whether enough operations have accumulated
// since the last checkpoint for an automatic one.
func (l *Log) CheckpointDue() bool {
	every := l.opt.checkpointEvery()
	return every > 0 && l.opsSinceCkpt >= every
}

// Checkpoint durably snapshots eng now: WAL flushed, checkpoint
// written, WAL rotated, old files pruned.
func (l *Log) Checkpoint(eng *core.Network) error {
	if l.closed {
		return errClosed
	}
	if l.w != nil {
		if err := l.w.flush(); err != nil {
			return err
		}
	}
	return l.checkpointAndRotate(eng)
}

func (l *Log) checkpointAndRotate(eng *core.Network) error {
	step := uint64(eng.Totals().Steps)
	if l.m.count != step {
		return fmt.Errorf("persist: history digest covers %d steps, engine at %d", l.m.count, step)
	}
	if err := writeCheckpoint(l.dir, step, eng, &l.m, &l.ckptEnc, l.opt.NoSync); err != nil {
		return err
	}
	nw, err := createWAL(filepath.Join(l.dir, walName(step)), step, l.opt.NoSync)
	if err != nil {
		return err
	}
	if l.w != nil {
		l.w.close()
	}
	l.w = nw
	l.lastCkptStep = step
	l.opsSinceCkpt = 0
	// Best-effort cleanup of superseded files.
	if ckpts, err := listCheckpoints(l.dir); err == nil {
		pruneCheckpoints(l.dir, ckpts)
	}
	if wals, err := listWALs(l.dir); err == nil {
		for _, s := range wals {
			if s != step {
				os.Remove(filepath.Join(l.dir, walName(s)))
			}
		}
	}
	return nil
}

// Flush forces the staged WAL batch to disk.
func (l *Log) Flush() error {
	if l.closed || l.w == nil {
		return nil
	}
	return l.w.flush()
}

// Root returns the current Merkle Mountain Range root over the
// engine's entire step-metrics history, and the number of steps it
// covers.
func (l *Log) Root() ([32]byte, uint64) { return l.m.root(), l.m.count }

// LastCheckpointStep returns the step covered by the most recent
// durable checkpoint.
func (l *Log) LastCheckpointStep() uint64 { return l.lastCkptStep }

// Close flushes and closes the WAL. The directory remains resumable.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if l.w == nil {
		return nil
	}
	err := l.w.close()
	l.w = nil
	return err
}

// Crash abandons the log as a crash would: the staged group-commit
// batch is dropped and the file handle closed without flushing.
// Test hook for crash-recovery coverage.
func (l *Log) Crash() {
	if l.closed {
		return
	}
	l.closed = true
	if l.w != nil {
		l.w.dropStaged()
		l.w.f.Close()
		l.w = nil
	}
}

var errClosed = fmt.Errorf("persist: log closed")
