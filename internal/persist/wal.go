package persist

import (
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/core"
	"repro/internal/wire"
)

// WAL format. The file opens with a fixed header binding it to the
// checkpoint it extends, then carries a sequence of framed records:
//
//	header:  magic "DEXWAL01" | u64 afterStep | u32 headerCRC
//	record:  u32 payloadLen | u32 chainCRC | payload
//
// chainCRC is crc32c over the payload seeded with the previous
// record's chainCRC (the header CRC for the first record), so records
// cannot be reordered, dropped from the middle, or spliced between
// files without detection. A torn tail — the expected failure mode of
// a crash mid-write — fails either the length bound or the chain CRC
// and is truncated away; everything before it replays.
const (
	walMagic      = "DEXWAL01"
	walHeaderSize = 8 + 8 + 4
	// maxWALRecord bounds a single record's payload; a length field
	// above it means the length word itself is torn garbage.
	maxWALRecord = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpRecord is one logical engine operation as logged to the WAL:
// which mutation ran, the walk seeds it consumed, and the step
// metrics it produced. Every façade operation is exactly one engine
// step, so Metrics is a single StepMetrics. Replay re-executes the
// mutation and verifies both seeds and metrics match, so a WAL from a
// diverged binary is rejected rather than silently applied.
type OpRecord struct {
	Op      core.OpKind
	ID      core.NodeID // Insert / Delete target
	Attach  core.NodeID // Insert attach point
	Inserts []core.InsertSpec
	Deletes []core.NodeID
	Seeds   []uint64
	Metrics core.StepMetrics
}

func (r *OpRecord) reset() {
	r.Inserts = r.Inserts[:0]
	r.Deletes = r.Deletes[:0]
	r.Seeds = r.Seeds[:0]
	r.Metrics = core.StepMetrics{}
}

//dexvet:noalloc
func (r *OpRecord) appendBinary(enc *wire.Encoder) {
	enc.Byte(byte(r.Op))
	enc.Varint(int64(r.ID))
	enc.Varint(int64(r.Attach))
	enc.Uvarint(uint64(len(r.Inserts)))
	for _, s := range r.Inserts {
		enc.Varint(int64(s.ID))
		enc.Varint(int64(s.Attach))
	}
	enc.Uvarint(uint64(len(r.Deletes)))
	for _, id := range r.Deletes {
		enc.Varint(int64(id))
	}
	enc.Uvarint(uint64(len(r.Seeds)))
	for _, s := range r.Seeds {
		enc.U64(s)
	}
	r.Metrics.AppendBinary(enc)
}

func (r *OpRecord) decodeBinary(dec *wire.Decoder) error {
	r.reset()
	r.Op = core.OpKind(dec.Byte())
	if r.Op > core.OpBatchDelete {
		return errCorrupt("wal: unknown op kind")
	}
	r.ID = core.NodeID(dec.Varint())
	r.Attach = core.NodeID(dec.Varint())
	n := dec.Uvarint()
	if n > uint64(dec.Remaining()) {
		return errCorrupt("wal: insert count exceeds record")
	}
	for i := uint64(0); i < n; i++ {
		r.Inserts = append(r.Inserts, core.InsertSpec{
			ID:     core.NodeID(dec.Varint()),
			Attach: core.NodeID(dec.Varint()),
		})
	}
	n = dec.Uvarint()
	if n > uint64(dec.Remaining()) {
		return errCorrupt("wal: delete count exceeds record")
	}
	for i := uint64(0); i < n; i++ {
		r.Deletes = append(r.Deletes, core.NodeID(dec.Varint()))
	}
	n = dec.Uvarint()
	if n > uint64(dec.Remaining())/8+1 {
		return errCorrupt("wal: seed count exceeds record")
	}
	for i := uint64(0); i < n; i++ {
		r.Seeds = append(r.Seeds, dec.U64())
	}
	r.Metrics.DecodeBinary(dec)
	return dec.Err()
}

// wal is the append side of the log: an open file plus the staged,
// not-yet-synced batch. Records are framed into `staged` as they
// arrive and flushed with a single write+fsync when the batch fills,
// so the group-commit knob trades durability window for fsync rate.
type wal struct {
	f        *os.File
	chain    uint32 // chainCRC of the last framed record
	staged   []byte // framed records awaiting write+fsync
	stagedN  int    // records currently staged
	enc      wire.Encoder
	noSync   bool
	writeErr error // sticky: a failed flush poisons the log
}

func walHeader(afterStep uint64) []byte {
	buf := make([]byte, 0, walHeaderSize)
	enc := wire.NewEncoder(buf)
	enc.Raw([]byte(walMagic))
	enc.U64(afterStep)
	h := enc.Bytes()
	crc := crc32.Checksum(h, castagnoli)
	enc.U32(crc)
	return enc.Bytes()
}

// createWAL starts a fresh log at path extending the checkpoint taken
// after afterStep.
func createWAL(path string, afterStep uint64, noSync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	h := walHeader(afterStep)
	if _, err := f.Write(h); err != nil {
		f.Close()
		return nil, err
	}
	w := &wal{f: f, chain: crc32.Checksum(h[:walHeaderSize-4], castagnoli), noSync: noSync}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// stage frames rec into the pending batch. Nothing reaches the disk
// until flush, so a crash before flush loses the whole batch — which
// is exactly the contract group commit advertises.
func (w *wal) stage(rec *OpRecord) {
	w.enc.Reset()
	rec.appendBinary(&w.enc)
	payload := w.enc.Bytes()
	w.chain = crc32.Update(w.chain, castagnoli, payload)
	var frame [8]byte
	le32(frame[0:4], uint32(len(payload)))
	le32(frame[4:8], w.chain)
	w.staged = append(w.staged, frame[:]...)
	w.staged = append(w.staged, payload...)
	w.stagedN++
}

func le32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// flush writes and fsyncs the staged batch.
func (w *wal) flush() error {
	if w.writeErr != nil {
		return w.writeErr
	}
	if len(w.staged) == 0 {
		return nil
	}
	if _, err := w.f.Write(w.staged); err != nil {
		w.writeErr = err
		return err
	}
	w.staged = w.staged[:0]
	w.stagedN = 0
	return w.sync()
}

func (w *wal) sync() error {
	if w.noSync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		w.writeErr = err
		return err
	}
	return nil
}

func (w *wal) close() error {
	err := w.flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// dropStaged discards the pending batch without writing it — the
// crash-simulation hook used by the recovery fuzzer.
func (w *wal) dropStaged() {
	w.staged = w.staged[:0]
	w.stagedN = 0
}

// readWAL scans a log file, calling visit for each intact record in
// order. It returns the step the log's base checkpoint covers. A torn
// or corrupt tail stops the scan silently — those records were never
// acknowledged as durable — but a corrupt header or a visit error is
// a real failure.
func readWAL(path string, rec *OpRecord, visit func(*OpRecord) error) (afterStep uint64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < walHeaderSize {
		return 0, errCorrupt("wal: short header")
	}
	if string(data[:8]) != walMagic {
		return 0, errCorrupt("wal: bad magic")
	}
	hdec := wire.NewDecoder(data[8:walHeaderSize])
	afterStep = hdec.U64()
	wantCRC := hdec.U32()
	chain := crc32.Checksum(data[:walHeaderSize-4], castagnoli)
	if wantCRC != chain {
		return 0, errCorrupt("wal: header checksum mismatch")
	}
	off := walHeaderSize
	for off < len(data) {
		if len(data)-off < 8 {
			break // torn frame header
		}
		plen := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		want := uint32(data[off+4]) | uint32(data[off+5])<<8 | uint32(data[off+6])<<16 | uint32(data[off+7])<<24
		if plen <= 0 || plen > maxWALRecord || len(data)-off-8 < plen {
			break // torn length or payload
		}
		payload := data[off+8 : off+8+plen]
		next := crc32.Update(chain, castagnoli, payload)
		if next != want {
			break // torn or corrupted payload
		}
		if err := rec.decodeBinary(wire.NewDecoder(payload)); err != nil {
			// The CRC passed but the payload doesn't parse: that is
			// not a torn write, it is a format bug or tampering.
			return afterStep, fmt.Errorf("wal: record at offset %d: %w", off, err)
		}
		if err := visit(rec); err != nil {
			return afterStep, err
		}
		chain = next
		off += 8 + plen
	}
	return afterStep, nil
}

func errCorrupt(msg string) error { return fmt.Errorf("persist: %s: %w", msg, ErrCorrupt) }

// ErrCorrupt tags errors caused by invalid on-disk state, as opposed
// to I/O failures.
var ErrCorrupt = errDetectedCorruption{}

type errDetectedCorruption struct{}

func (errDetectedCorruption) Error() string { return "detected corruption" }
