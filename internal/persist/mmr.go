package persist

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/core"
	"repro/internal/wire"
)

// mmr is a Merkle Mountain Range accumulator over per-step history
// digests. Appending is O(1) amortised — the peaks form a binary
// counter, and each append merges trailing peaks of equal height —
// so the engine can maintain a verifiable digest of its entire
// History() stream incrementally, one hash per step, without holding
// the tree. The root "bags" the peaks right-to-left, so two engines
// that processed the same step sequence report the same root even if
// one of them was restarted from a checkpoint along the way.
type mmr struct {
	peaks   []peak
	count   uint64
	scratch [72]byte // 8-byte domain tag + two 32-byte children
}

type peak struct {
	height uint8
	hash   [32]byte
}

// add appends one leaf digest.
func (m *mmr) add(leaf [32]byte) {
	p := peak{height: 0, hash: leaf}
	for n := len(m.peaks); n > 0 && m.peaks[n-1].height == p.height; n = len(m.peaks) {
		p.hash = m.merge(m.peaks[n-1].hash, p.hash)
		p.height++
		m.peaks = m.peaks[:n-1]
	}
	m.peaks = append(m.peaks, p)
	m.count++
}

func (m *mmr) merge(l, r [32]byte) [32]byte {
	copy(m.scratch[0:8], "mmr-node")
	copy(m.scratch[8:40], l[:])
	copy(m.scratch[40:72], r[:])
	return sha256.Sum256(m.scratch[:])
}

// root bags the peaks right-to-left into a single digest. Empty
// ranges hash to the zero digest.
func (m *mmr) root() [32]byte {
	if len(m.peaks) == 0 {
		return [32]byte{}
	}
	h := m.peaks[len(m.peaks)-1].hash
	for i := len(m.peaks) - 2; i >= 0; i-- {
		h = m.merge(m.peaks[i].hash, h)
	}
	return h
}

func (m *mmr) appendBinary(enc *wire.Encoder) {
	enc.U64(m.count)
	enc.Uvarint(uint64(len(m.peaks)))
	for _, p := range m.peaks {
		enc.Byte(p.height)
		enc.Raw(p.hash[:])
	}
}

func (m *mmr) decodeBinary(dec *wire.Decoder) error {
	m.count = dec.U64()
	n := dec.Uvarint()
	if n > 64 {
		return errCorrupt("mmr: too many peaks")
	}
	m.peaks = m.peaks[:0]
	for i := uint64(0); i < n; i++ {
		var p peak
		p.height = dec.Byte()
		copy(p.hash[:], dec.Fixed(32))
		m.peaks = append(m.peaks, p)
	}
	return dec.Err()
}

// stepLeaf hashes one StepMetrics record into a leaf digest using the
// same wire encoding the snapshot layer uses, under a distinct domain
// tag so a leaf can never be confused with an interior node.
func stepLeaf(enc *wire.Encoder, m *core.StepMetrics) [32]byte {
	enc.Reset()
	enc.Raw([]byte("mmr-leaf"))
	var step [8]byte
	binary.LittleEndian.PutUint64(step[:], uint64(m.Step))
	enc.Raw(step[:])
	m.AppendBinary(enc)
	return sha256.Sum256(enc.Bytes())
}
