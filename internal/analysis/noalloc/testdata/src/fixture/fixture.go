// Package fixture exercises the noalloc analyzer against the real
// compiler's escape analysis.
package fixture

import "fmt"

type big struct{ a [128]int64 }

// leaky returns a heap pointer from an annotated function: the
// canonical violation.
//
//dexvet:noalloc
func leaky() *big {
	return &big{} // want "heap escape in //dexvet:noalloc function leaky"
}

// hot is the shape the annotation exists for: pure stack arithmetic.
//
//dexvet:noalloc
func hot(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// guarded allocates only inside a panic argument — the process is
// dying, so the panic-path exemption applies.
//
//dexvet:noalloc
func guarded(i int) int {
	if i < 0 {
		panic(fmt.Sprintf("negative index %d", i))
	}
	return i * 2
}

// sink keeps coldBranch's allocation escaping.
var sink *big

// coldBranch documents a legitimate cold-path allocation with the
// line-level escape hatch.
//
//dexvet:noalloc
func coldBranch(grow bool) {
	if grow {
		//dexvet:allow noalloc fixture: arena growth is the documented cold branch
		sink = &big{}
	}
}

// plain is unannotated: it may allocate freely.
func plain() *big {
	return &big{}
}
