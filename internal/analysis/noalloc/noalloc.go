// Package noalloc checks the //dexvet:noalloc annotation: a function so
// marked must contain no allocation site that escape analysis sends to
// the heap. The walk-hop, steady-state recovery, speculation write-set
// and WAL-append paths carry the annotation — their 0 allocs/op is
// load-bearing (Lemma 2's O(1)-expected walks are only O(1) if a hop
// never allocates), and this turns the runtime alloc gates' contract
// into a vet-time failure instead of a benchmark regression.
//
// Evidence comes from the real compiler: the analyzer builds the
// package with -gcflags=-m=1 and maps every "escapes to heap" /
// "moved to heap" diagnostic back into annotated function bodies. Two
// carve-outs:
//
//   - allocations inside a panic(...) argument are exempt — a
//     panicking path is the process dying, not the hot path;
//   - a cold branch that legitimately allocates (arena growth) carries
//     //dexvet:allow noalloc <reason> on the offending line.
//
// The check is per-function: it proves the annotated body itself has
// no escaping sites, while the testing.AllocsPerRun gates keep owning
// the whole-path steady-state guarantee. The two are complementary —
// the runtime gate catches what the callee graph does, the vet gate
// names the exact site the moment someone adds one.
package noalloc

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the noalloc rule.
var Analyzer = &analysis.Analyzer{
	Name:    "noalloc",
	Doc:     "//dexvet:noalloc functions must have no allocation site that escapes to the heap (checked against go build -gcflags=-m)",
	Applies: func(pkg *analysis.Package) bool { return true },
	Run:     run,
}

// escapeLine matches one compiler diagnostic.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

type annotated struct {
	fd       *ast.FuncDecl
	file     *ast.File
	base     string // file base name
	from, to int    // line span
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg

	var fns []annotated
	for i, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd, analysis.NoallocDirective) {
				continue
			}
			fns = append(fns, annotated{
				fd:   fd,
				file: file,
				base: filepath.Base(pkg.Files[i]),
				from: pkg.Fset.Position(fd.Pos()).Line,
				to:   pkg.Fset.Position(fd.End()).Line,
			})
		}
	}
	if len(fns) == 0 {
		return nil
	}

	// The compiler is the oracle. Build output (including -m
	// diagnostics) is replayed from the build cache, so repeated lint
	// runs do not recompile.
	cmd := exec.Command("go", "build", "-gcflags=-m=1", pkg.Path)
	cmd.Dir = pkg.ModDir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go build -gcflags=-m %s: %v\n%s", pkg.Path, err, out.String())
	}

	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		if strings.Contains(msg, "does not escape") {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		colNo, _ := strconv.Atoi(m[3])
		base := filepath.Base(m[1])
		for _, fn := range fns {
			if fn.base != base || lineNo < fn.from || lineNo > fn.to {
				continue
			}
			pos := positionFor(pkg, fn, lineNo, colNo)
			if pos == token.NoPos || !inPanicArg(fn.fd, pos) {
				pass.ReportAtf(token.Position{Filename: absFile(pkg, base), Line: lineNo, Column: colNo},
					"heap escape in //dexvet:noalloc function %s: %s", fn.fd.Name.Name, msg)
			}
			break
		}
	}
	return nil
}

// positionFor converts a compiler (line, col) back into a token.Pos
// inside the annotated function's file.
func positionFor(pkg *analysis.Package, fn annotated, line, col int) token.Pos {
	tf := pkg.Fset.File(fn.file.Pos())
	if tf == nil || line > tf.LineCount() {
		return token.NoPos
	}
	return tf.LineStart(line) + token.Pos(col-1)
}

// inPanicArg reports whether pos sits inside an argument of a panic
// call: allocations on panicking paths are exempt.
func inPanicArg(fd *ast.FuncDecl, pos token.Pos) bool {
	exempt := false
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			if call.Pos() <= pos && pos < call.End() {
				exempt = true
			}
		}
		return true
	})
	return exempt
}

func absFile(pkg *analysis.Package, base string) string {
	for _, f := range pkg.Files {
		if filepath.Base(f) == base {
			return f
		}
	}
	return base
}
