package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces every dexvet machine-readable comment.
const directivePrefix = "//dexvet:"

// NoallocDirective and MutatorDirective are the annotation markers
// analyzers look for in function doc comments (exported so the
// analyzers and their tests share one definition).
const (
	NoallocDirective = "noalloc"
	MutatorDirective = "mutator"
	allowDirective   = "allow"
)

// HasDirective reports whether a function's doc comment carries the
// given marker directive (e.g. //dexvet:noalloc).
func HasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
			if fields := strings.Fields(rest); len(fields) > 0 && fields[0] == name {
				return true
			}
		}
	}
	return false
}

// allowRange is one allow suppression: rule suppressed in
// [fromLine, toLine] of file.
type allowRange struct {
	file     string
	from, to int
	rule     string
}

type directiveIndex struct {
	allowsIdx []allowRange
}

func (d *directiveIndex) allows(diag Diagnostic) bool {
	for _, a := range d.allowsIdx {
		if a.rule == diag.Rule && a.file == diag.Pos.Filename &&
			diag.Pos.Line >= a.from && diag.Pos.Line <= a.to {
			return true
		}
	}
	return false
}

// parseDirectives scans one package for //dexvet: comments, validates
// them (allow needs a known rule and a non-empty reason; noalloc and
// mutator must sit in a function's doc comment), and builds the
// suppression index. Malformed directives come back as findings under
// the pseudo-rule "dexvet" — they are not themselves suppressible.
func parseDirectives(pkg *Package, analyzers []*Analyzer) (*directiveIndex, []Diagnostic) {
	rules := map[string]bool{}
	for _, a := range analyzers {
		rules[a.Name] = true
	}

	idx := &directiveIndex{}
	var errs []Diagnostic
	fail := func(pos token.Pos, format string, args ...any) {
		p := &Pass{Analyzer: &Analyzer{Name: "dexvet"}, Pkg: pkg}
		p.Reportf(pos, format, args...)
		errs = append(errs, p.diags...)
	}

	for _, file := range pkg.Syntax {
		// Map doc comment groups to their functions so doc-level allows
		// cover the whole body and marker directives can insist on being
		// function-attached.
		docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					fail(c.Pos(), "empty //dexvet: directive")
					continue
				}
				switch fields[0] {
				case allowDirective:
					if len(fields) < 2 || !rules[fields[1]] {
						fail(c.Pos(), "//dexvet:allow needs a rule name (one of the dexvet analyzers)")
						continue
					}
					if len(fields) < 3 {
						fail(c.Pos(), "//dexvet:allow %s needs a reason — say why the finding does not apply", fields[1])
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ar := allowRange{file: pos.Filename, rule: fields[1]}
					if fd, ok := docOf[group]; ok {
						ar.from = pkg.Fset.Position(fd.Pos()).Line
						ar.to = pkg.Fset.Position(fd.End()).Line
					} else {
						// Same line (trailing comment) or the line below
						// (comment above the offending statement).
						ar.from = pos.Line
						ar.to = pos.Line + 1
					}
					idx.allowsIdx = append(idx.allowsIdx, ar)
				case NoallocDirective, MutatorDirective:
					if _, ok := docOf[group]; !ok {
						fail(c.Pos(), "//dexvet:%s must be in a function's doc comment", fields[0])
					}
				default:
					fail(c.Pos(), "unknown directive //dexvet:%s", fields[0])
				}
			}
		}
	}
	return idx, errs
}
