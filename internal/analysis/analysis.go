// Package analysis is the engine under dexvet (cmd/dexvet): a small
// static-analysis framework plus the repo's analyzers, which mechanize
// the invariants that previously lived only in comments and reviewer
// memory — the enterOp/exitOp guard discipline on the dex façade
// (guarddiscipline), determinism of the engine packages (determinism),
// the 0-alloc contracts on the hot paths (noalloc), and slot-native
// graph mutation inside internal/core (slotmut).
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// vocabulary — Analyzer, Pass, Reportf, `// want` fixtures — but is
// built on the standard library alone: this module has no external
// dependencies and must build offline, so x/tools is not available.
// Porting an analyzer to the real go/analysis API is a mechanical
// translation of its Run function.
//
// Packages are loaded with `go list -deps -export -json`: target
// packages are parsed and type-checked from source, imports are
// satisfied from compiler export data, so every analyzer sees full
// type information without re-implementing a build system.
//
// # Directives
//
// Analyzers and their suppressions are driven by machine-readable
// comments:
//
//	//dexvet:allow <rule> <reason>   suppress one finding; the reason is mandatory
//	//dexvet:noalloc                 function must have no escaping allocation sites
//	//dexvet:mutator                 marks an engine method that mutates engine state
//
// An allow directive suppresses matching diagnostics on its own line,
// on the line directly below it, or — when it appears in a function's
// doc comment — in that whole function. Reasons are enforced: an
// allow without one is itself a finding, as is an unknown rule name.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one dexvet rule.
type Analyzer struct {
	// Name identifies the rule in diagnostics and in
	// //dexvet:allow comments.
	Name string

	// Doc is the one-paragraph description printed by dexvet -help.
	Doc string

	// Applies reports whether the analyzer has anything to say about
	// the package; Run is only called when it returns true.
	Applies func(pkg *Package) bool

	// Run reports the rule's findings on one package through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding, after allow-suppression.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// A Pass connects one analyzer run to one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAtf(p.Pkg.Fset.Position(pos), format, args...)
}

// ReportAtf records a finding at an already-resolved position (used by
// noalloc, whose evidence comes from compiler output rather than the
// AST).
func (p *Pass) ReportAtf(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:  pos,
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run applies every applicable analyzer to every package and returns
// the surviving findings (directive errors included) sorted by
// position. It is the single entry point shared by cmd/dexvet and the
// analysistest harness, so fixtures exercise exactly the production
// suppression semantics.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, errs := parseDirectives(pkg, analyzers)
		out = append(out, errs...)
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !dirs.allows(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
	// Nested constructs can make two walks visit one site (a statement
	// inside a map range nested in another map range is order-sensitive
	// with respect to both); one report per site is enough.
	dedup := out[:0]
	for i, d := range out {
		if i == 0 || d != out[i-1] {
			dedup = append(dedup, d)
		}
	}
	return dedup, nil
}

// --- shared AST/type helpers used by several analyzers ---------------------

// RecvTypeName returns the bare name of a method's receiver type ("" for
// plain functions), unwrapping any pointer and generic instantiation.
func RecvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// NamedOf unwraps pointers and aliases down to a *types.Named, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

// IsType reports whether t (possibly behind pointers) is the named type
// pkgPath.typeName.
func IsType(t types.Type, pkgPath, typeName string) bool {
	n := NamedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() != typeName {
		return false
	}
	p := n.Obj().Pkg()
	return p != nil && p.Path() == pkgPath
}

// FixturePackage reports whether pkg is an analysistest fixture (lives
// under a testdata directory). Analyzers that normally key on concrete
// repo import paths accept fixture packages by name instead.
func FixturePackage(pkg *Package) bool {
	return strings.Contains(pkg.Path, "/testdata/")
}
