package slotmut_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/slotmut"
)

func TestSlotMut(t *testing.T) {
	analysistest.Run(t, "repro/internal/analysis/slotmut/testdata/src/core", slotmut.Analyzer)
}
