// Package slotmut flags id-keyed graph mutations in internal/core made
// by callers that already hold the node's slot — exactly the call
// shape whose cost the retired (and racy) one-entry lastID/lastSlot
// mutation cache in internal/graph tried to hide before PR 8 replaced
// it with the slot-native AddEdgeAt/RemoveEdgeAt(Mult) forms.
//
// The rule: inside internal/core, a call to an id-keyed mutator —
// graph.Graph's AddEdge/AddEdgeMult/RemoveEdge/RemoveEdgeMult or
// core's rawAddEdge/rawRemoveEdge(Mult) funnels — is a finding when
// the enclosing function has already resolved a slot for one of the
// endpoint identifiers (via SlotOf/slotOf) earlier in its body: the
// *At form would erase a redundant id->slot map probe from the churn
// path. Call sites with no slot in hand (scratch/oracle graphs, the
// generic id-keyed funnels themselves) are not findings.
package slotmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// idMutators maps each id-keyed mutator to its slot-native form. The
// raw* entries are internal/core's mutation funnels, the rest are the
// graph arena's.
var idMutators = map[string]string{
	"AddEdge":           "AddEdgeAt",
	"AddEdgeMult":       "AddEdgeMultAt",
	"RemoveEdge":        "RemoveEdgeAt",
	"RemoveEdgeMult":    "RemoveEdgeMultAt",
	"rawAddEdge":        "rawAddEdgeAt",
	"rawRemoveEdge":     "rawRemoveEdgeAt",
	"rawAddEdgeMult":    "rawAddEdgeMultAt",
	"rawRemoveEdgeMult": "rawRemoveEdgeMultAt",
}

// slotResolvers are the id->slot probes; holding their result is what
// makes an id-keyed mutation redundant.
var slotResolvers = map[string]bool{"SlotOf": true, "slotOf": true}

// Analyzer is the slotmut rule.
var Analyzer = &analysis.Analyzer{
	Name: "slotmut",
	Doc:  "internal/core must use the slot-native *At graph mutators when the caller already holds the endpoint's slot",
	Applies: func(pkg *analysis.Package) bool {
		return pkg.Path == "repro/internal/core" ||
			(analysis.FixturePackage(pkg) && pkg.Name == "core")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc records, in body order, which node-id variables have had a
// slot resolved, and flags later id-keyed mutations of those ids.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	// resolved maps a node-id variable to the position of its id->slot
	// probe.
	resolved := map[types.Object]token.Pos{}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name

		if slotResolvers[name] && len(call.Args) >= 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil {
					if _, seen := resolved[obj]; !seen {
						resolved[obj] = call.Pos()
					}
				}
			}
			return true
		}

		atForm, isMutator := idMutators[name]
		if !isMutator || !isEngineMutation(pkg, sel) {
			return true
		}
		// The id endpoints are the leading NodeID arguments (two for the
		// graph forms and the raw funnels alike).
		for i, arg := range call.Args {
			if i >= 2 {
				break
			}
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Uses[id]
			if obj == nil {
				continue
			}
			if pos, seen := resolved[obj]; seen && pos < call.Pos() {
				pass.Reportf(call.Pos(),
					"id-keyed %s(%s, ...) after %s's slot was already resolved at line %d — use the slot-native %s form and skip the id->slot probe",
					name, id.Name, id.Name, pkg.Fset.Position(pos).Line, atForm)
				break
			}
		}
		return true
	})
}

// isEngineMutation keeps the rule on the live engine structures: the
// receiver must be the graph arena type (any package's type named
// Graph works, so fixtures can define their own) or internal/core's
// Network (the raw* funnels).
func isEngineMutation(pkg *analysis.Package, sel *ast.SelectorExpr) bool {
	s := pkg.Info.Selections[sel]
	if s == nil {
		return false
	}
	n := analysis.NamedOf(s.Recv())
	if n == nil {
		return false
	}
	return n.Obj().Name() == "Graph" || n.Obj().Name() == "Network"
}
