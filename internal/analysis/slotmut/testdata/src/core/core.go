// Package core is the slotmut fixture. churn reconstructs the call
// shape whose cost the retired PR 4 one-entry mutation cache tried to
// hide: the id->slot probe already ran, yet the id-keyed mutator runs
// it again instead of using the slot-native *At form.
package core

// NodeID mirrors the graph arena's id type.
type NodeID int64

// Graph mirrors the arena's mutator surface; the type name is what the
// analyzer keys on.
type Graph struct{ index map[NodeID]int32 }

func (g *Graph) SlotOf(u NodeID) (int32, bool) { s, ok := g.index[u]; return s, ok }

func (g *Graph) AddEdge(u, v NodeID)               {}
func (g *Graph) AddEdgeAt(s int32, v NodeID)       {}
func (g *Graph) RemoveEdge(u, v NodeID)            {}
func (g *Graph) RemoveEdgeAt(s int32, v NodeID)    {}
func (g *Graph) AddEdgeMult(u, v NodeID, k int)    {}
func (g *Graph) RemoveEdgeMult(u, v NodeID, k int) {}

// churn holds a's slot and still mutates by id — both endpoints count.
func churn(g *Graph, a, b NodeID) {
	s, ok := g.SlotOf(a)
	if !ok {
		return
	}
	_ = s
	g.AddEdge(a, b)    // want "use the slot-native AddEdgeAt form"
	g.RemoveEdge(b, a) // want "use the slot-native RemoveEdgeAt form"
}

// churnMult covers the multiplicity forms.
func churnMult(g *Graph, a, b NodeID) {
	if _, ok := g.SlotOf(a); !ok {
		return
	}
	g.AddEdgeMult(a, b, 2) // want "use the slot-native AddEdgeMultAt form"
}

// scratch has no slot in hand: the id-keyed form is correct.
func scratch(g *Graph, a, b NodeID) {
	g.AddEdge(a, b)
}

// probeAfter resolves the slot only after the mutation: no finding —
// nothing was in hand at the call.
func probeAfter(g *Graph, a, b NodeID) {
	g.AddEdge(a, b)
	_, _ = g.SlotOf(a)
}

// otherID mutates ids whose slots were never resolved.
func otherID(g *Graph, a, b, c NodeID) {
	if _, ok := g.SlotOf(a); !ok {
		return
	}
	g.AddEdge(b, c)
}

// allowed keeps an id-keyed call with a documented reason.
func allowed(g *Graph, a, b NodeID) {
	if _, ok := g.SlotOf(a); !ok {
		return
	}
	//dexvet:allow slotmut fixture: exercises the escape hatch
	g.AddEdge(a, b)
}
