// Package analysistest runs dexvet analyzers over fixture packages and
// checks their findings against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on this repo's stdlib-only
// framework.
//
// Fixtures live under testdata/src/<name>/ inside the analyzer's
// package and are ordinary buildable members of this module (wildcard
// patterns skip testdata directories, so they never leak into normal
// builds or tests). A fixture line expecting a finding carries a
// trailing comment:
//
//	badCall() // want "part of the expected message"
//
// Every finding must be wanted and every want must be found —
// including findings from the "dexvet" pseudo-rule (malformed
// directives). Because fixtures run through exactly the production
// Run pipeline, //dexvet:allow comments in a fixture exercise the real
// suppression semantics: a suppressed line simply carries no want.
package analysistest

import (
	"go/ast"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package pattern (relative to the module root)
// and reports every mismatch between analyzer findings and // want
// comments as test errors.
func Run(t *testing.T, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(moduleRoot(t), pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("pattern %s matched no packages", pattern)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					wants = append(wants, parseWants(t, pkg, c)...)
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// parseWants extracts the quoted regexps of one `// want "a" "b"`
// comment.
func parseWants(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*want {
	t.Helper()
	m := wantRE.FindStringSubmatch(c.Text)
	if m == nil {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*want
	rest := strings.TrimSpace(m[1])
	for rest != "" {
		if rest[0] != '"' {
			t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
		}
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			t.Fatalf("%s:%d: unterminated want pattern %q", pos.Filename, pos.Line, c.Text)
		}
		re, err := regexp.Compile(rest[1 : 1+end])
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
		rest = strings.TrimSpace(rest[end+2:])
	}
	return out
}

// moduleRoot locates the enclosing module from the test's working
// directory (go test runs each test in its package directory).
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		t.Fatalf("not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod)
}
