// Package determinism mechanizes the engine packages' determinism
// contract: for a fixed seed, History(), the mapping, and the overlay
// must be byte-identical run to run — that is what every differential
// oracle and the crash-recovery replay are built on.
//
// In internal/core, internal/graph, internal/congest and
// internal/pcycle it forbids:
//
//   - time.Now / time.Since / time.Until — wall-clock reads;
//   - the process-global math/rand top-level functions (rand.Intn and
//     friends; rand.New(rand.NewSource(seed)) is the sanctioned form);
//   - `range` over a map whose body lets the iteration order escape:
//     drawing from a *rand.Rand, calling a stored callback (observer
//     fields — event order would become iteration-order dependent),
//     appending to or plainly assigning a loop-derived value into
//     state that outlives the loop, non-commutative accumulation
//     (floats, strings, shifts), storing at a slice position that does
//     not itself derive from the loop variables, sending on a channel,
//     or returning a loop-derived value.
//
// Four shapes are order-independent and pass without annotation:
//
//   - commutative integer accumulation (+=, -=, |=, &=, ^=, &^=, *=,
//     ++, --) — wrapping integer arithmetic commutes;
//   - stores into other maps and key-addressed slice writes — per-key
//     state;
//   - guarded extremum updates (`if v > max { max = v }`, optionally
//     with an `acc < 0`-style unset-sentinel disjunct) — a max/min
//     fold commutes; the assigned value must itself be a compared
//     operand, so argmax-style companions stay flagged;
//   - collect-then-sort — appending to a function-local slice that a
//     later call in the same function sorts (sort.Slice, slices.Sort,
//     a local sort* helper); the sort erases the iteration order,
//     provided the comparator is total over the collected elements.
//
// Sites where the nondeterminism is genuinely harmless but not of
// those shapes carry //dexvet:allow determinism <reason>.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// enginePaths are the packages whose determinism the differential
// oracles depend on.
var enginePaths = map[string]bool{
	"repro/internal/core":    true,
	"repro/internal/graph":   true,
	"repro/internal/congest": true,
	"repro/internal/pcycle":  true,
}

// engineNames admits analysistest fixtures by package name.
var engineNames = map[string]bool{"core": true, "graph": true, "congest": true, "pcycle": true}

// Analyzer is the determinism rule.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "engine packages must stay deterministic: no wall clock, no global math/rand, no map-iteration order leaking into engine state, events, or RNG consumption",
	Applies: func(pkg *analysis.Package) bool {
		return enginePaths[pkg.Path] || (analysis.FixturePackage(pkg) && engineNames[pkg.Name])
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, x)
			case *ast.RangeStmt:
				if isMapRange(pass.Pkg, x) {
					checkMapRange(pass, file, x)
				}
			}
			return true
		})
	}
	return nil
}

// callee resolves a call expression to the function or method object it
// invokes, or nil.
func callee(pkg *analysis.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	f := callee(pass.Pkg, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock — engine packages must be deterministic for a fixed seed", f.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && f.Name() != "New" && f.Name() != "NewSource" {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the process-global source — use the engine's seeded *rand.Rand (rand.New(rand.NewSource(seed)))", f.Name())
		}
	}
}

func isMapRange(pkg *analysis.Package, rng *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRange flags statements in a map-range body through which the
// iteration order can escape into engine state, events, or the RNG
// stream.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	pkg := pass.Pkg
	body := rng.Body

	// Everything declared inside the body, plus the key/value variables,
	// is "loop-derived"; values mentioning none of these are the same on
	// every iteration order.
	inside := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pkg.Info.Defs[id]; obj != nil {
				inside[obj] = true
			}
			if obj := pkg.Info.Uses[id]; obj != nil {
				inside[obj] = true // `for k = range m` with an outer k
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			inside[obj] = true
		}
		return true
	})

	loopDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && inside[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	// onlyLoopVars reports whether every variable mentioned in e is
	// loop-derived — such an expression addresses state per key, which
	// is order-independent.
	onlyLoopVars := func(e ast.Expr) bool {
		ok := true
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok2 := n.(*ast.Ident); ok2 {
				if v, isVar := pkg.Info.Uses[id].(*types.Var); isVar && !inside[v] {
					ok = false
				}
			}
			return ok
		})
		return ok
	}
	outsideRoot := func(e ast.Expr) bool {
		base := baseIdent(e)
		if base == nil {
			return false
		}
		obj := pkg.Info.Uses[base]
		return obj != nil && !inside[obj]
	}

	// stack tracks enclosing nodes so the extremum carve-out can see the
	// guarding if statement. The walker must always return true: Inspect
	// only emits the balancing nil for visited children.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch st := n.(type) {
		case *ast.CallExpr:
			checkRangeCall(pass, pkg, st)
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				if !outsideRoot(lhs) {
					continue
				}
				rhs := st.Rhs[0]
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				if st.Tok == token.ASSIGN &&
					(extremumGuarded(stack, lhs, rhs) || sortedAfter(pass, file, rng, lhs, rhs)) {
					continue
				}
				checkStore(pass, pkg, st.Tok, lhs, rhs, loopDerived, onlyLoopVars)
			}
		case *ast.IncDecStmt:
			if outsideRoot(st.X) && !isCommutativeType(pkg, st.X) {
				pass.Reportf(st.Pos(),
					"non-integer %s on state outside the map range — iteration order changes the result", st.Tok)
			}
		case *ast.SendStmt:
			pass.Reportf(st.Pos(),
				"sends on a channel inside map iteration — delivery order becomes iteration-order dependent")
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				if loopDerived(r) {
					pass.Reportf(st.Pos(),
						"returns a value chosen by map iteration order")
					break
				}
			}
		}
		return true
	})
}

// checkRangeCall flags RNG draws and stored-callback invocations inside
// a map-range body.
func checkRangeCall(pass *analysis.Pass, pkg *analysis.Package, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			if isRandRand(sel.Recv()) {
				pass.Reportf(call.Pos(),
					"draws from a *rand.Rand inside map iteration — the seed stream becomes iteration-order dependent")
				return
			}
			// A func-typed field is a stored callback (observer): calling
			// it per iteration publishes in map order.
			if v, ok := sel.Obj().(*types.Var); ok {
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
					pass.Reportf(call.Pos(),
						"calls the stored callback %s inside map iteration — observers see map order", v.Name())
				}
			}
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
				pass.Reportf(call.Pos(),
					"calls the stored callback %s inside map iteration — observers see map order", v.Name())
			}
		}
	}
}

// checkStore classifies one assignment to outside state.
func checkStore(pass *analysis.Pass, pkg *analysis.Package, tok token.Token, lhs, rhs ast.Expr,
	loopDerived, onlyLoopVars func(ast.Expr) bool) {

	// Stores into another map are per-key and order-independent; so are
	// slice/array stores whose position derives only from the loop
	// variables.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if tv, ok := pkg.Info.Types[ix.X]; ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				return
			}
		}
		if !onlyLoopVars(ix.Index) {
			pass.Reportf(lhs.Pos(),
				"stores at a position that does not derive from the loop variables — element order follows map iteration")
			return
		}
		return
	}

	switch tok {
	case token.ASSIGN:
		if loopDerived(rhs) {
			pass.Reportf(lhs.Pos(),
				"assigns a loop-derived value to state that outlives the map range — last iteration wins, and map order picks it")
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN,
		token.XOR_ASSIGN, token.AND_NOT_ASSIGN, token.MUL_ASSIGN:
		if !isCommutativeType(pkg, lhs) {
			pass.Reportf(lhs.Pos(),
				"%s on a non-integer accumulator inside map iteration — the result depends on iteration order", tok)
		}
	case token.SHL_ASSIGN, token.SHR_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
		pass.Reportf(lhs.Pos(),
			"%s is not commutative — the accumulator depends on map iteration order", tok)
	}
}

// extremumGuarded recognizes the commutative max/min fold: the
// assignment `acc = v` is directly guarded by an if (no else) whose
// condition compares exactly acc against v (`v > acc`, `acc < v`, ...),
// optionally ||-combined with unset-sentinel checks of either operand
// against a literal (`acc < 0 || v < acc`). The assigned value must be
// a compared operand — `argmax = k` under `v > max` is still flagged,
// because ties make it iteration-order dependent. && is rejected: a
// capped update like `acc < 10 && v > acc` does not commute.
func extremumGuarded(stack []ast.Node, lhs, rhs ast.Expr) bool {
	// stack ends [..., IfStmt, BlockStmt, AssignStmt].
	if len(stack) < 3 {
		return false
	}
	ifst, ok := stack[len(stack)-3].(*ast.IfStmt)
	if !ok || ifst.Else != nil || stack[len(stack)-2] != ifst.Body {
		return false
	}
	acc, v := types.ExprString(lhs), types.ExprString(rhs)

	var leaves []ast.Expr
	var flatten func(e ast.Expr) bool
	flatten = func(e ast.Expr) bool {
		if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LOR {
			return flatten(b.X) && flatten(b.Y)
		}
		if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok && b.Op == token.LAND {
			return false
		}
		leaves = append(leaves, ast.Unparen(e))
		return true
	}
	if !flatten(ifst.Cond) {
		return false
	}

	isLit := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok { // -1 parses as unary minus
			e = u.X
		}
		_, ok := e.(*ast.BasicLit)
		return ok
	}
	main := false
	for _, leaf := range leaves {
		b, ok := leaf.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		x, y := types.ExprString(b.X), types.ExprString(b.Y)
		switch b.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
			if (x == acc && y == v) || (x == v && y == acc) {
				main = true
				continue
			}
		case token.EQL, token.NEQ:
		default:
			return false
		}
		if ((x == acc || x == v) && isLit(b.Y)) || ((y == acc || y == v) && isLit(b.X)) {
			continue // unset sentinel
		}
		return false
	}
	return main
}

// sortedAfter recognizes collect-then-sort: `x = append(x, ...)` into a
// function-local slice that some call after the range sorts — a
// sort.* / slices.* call or a local sort-prefixed helper taking x (or a
// reslice of x) as an argument. The sort erases iteration order, so
// the append is not a leak.
func sortedAfter(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt, lhs, rhs ast.Expr) bool {
	pkg := pass.Pkg
	base := baseIdent(lhs)
	if base == nil {
		return false
	}
	obj, ok := pkg.Info.Uses[base].(*types.Var)
	if !ok || obj.Parent() == pkg.Types.Scope() {
		return false // package-level: a later sort may be a different path
	}

	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	if first := baseIdent(call.Args[0]); first == nil || pkg.Info.Uses[first] != obj {
		return false
	}

	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || found {
			return !found
		}
		if !isSortCall(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			if b := baseIdent(sliceRoot(arg)); b != nil && pkg.Info.Uses[b] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSortCall reports whether call invokes a sorting routine: anything
// from package sort or slices, or a same-package helper whose name
// starts with "sort" (sortVertices and friends).
func isSortCall(pkg *analysis.Package, call *ast.CallExpr) bool {
	f := callee(pkg, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "sort", "slices":
		return true
	}
	return strings.HasPrefix(f.Name(), "sort") || strings.HasPrefix(f.Name(), "Sort")
}

// sliceRoot unwraps buf[n:] to buf.
func sliceRoot(e ast.Expr) ast.Expr {
	if s, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
		return s.X
	}
	return e
}

// isCommutativeType reports whether e's type makes repeated +=/-=/etc.
// order-independent: integers (wrapping arithmetic commutes) and
// booleans. Floats are non-associative; strings concatenate in order.
func isCommutativeType(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

func isRandRand(t types.Type) bool {
	return analysis.IsType(t, "math/rand", "Rand") || analysis.IsType(t, "math/rand/v2", "Rand")
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
