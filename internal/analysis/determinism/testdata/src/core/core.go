// Package core is the determinism fixture: each function isolates one
// way map-iteration order, the wall clock, or the global RNG can leak
// into engine state — and the commutative shapes that must pass
// without annotation.
package core

import (
	"math/rand"
	"sort"
	"time"
)

type metrics struct {
	onEvent func(k int)
}

func clockAbuse() time.Duration {
	t := time.Now()      // want "reads the wall clock"
	return time.Since(t) // want "reads the wall clock"
}

func globalRand() int {
	return rand.Intn(6) // want "process-global source"
}

// seeded is the sanctioned RNG construction.
func seeded() *rand.Rand {
	return rand.New(rand.NewSource(1))
}

func rangeLeaks(m map[int]int, rng *rand.Rand, mx *metrics, emit func(int)) {
	last := 0
	total := 0
	ch := make(chan int, len(m))
	buf := make([]int, len(m))
	i := 0
	for k, v := range m {
		_ = rng.Intn(k + 1) // want "seed stream"
		mx.onEvent(k)       // want "stored callback onEvent"
		emit(v)             // want "stored callback emit"
		last = v            // want "last iteration wins"
		total += v          // commutative integer accumulation: ok
		ch <- k             // want "delivery order"
		buf[i] = k          // want "does not derive from the loop variables"
		i++
	}
	_, _, _ = last, total, buf
}

func firstKey(m map[int]int) int {
	for k := range m {
		return k // want "chosen by map iteration order"
	}
	return -1
}

func badAccumulators(m map[int]float64) (f float64, s string, x int) {
	for _, v := range m {
		f += v   // want "non-integer accumulator"
		s += "x" // want "non-integer accumulator"
		x <<= 1  // want "not commutative"
	}
	return
}

// maxLoad is the guarded-extremum shape: a max fold commutes.
func maxLoad(m map[int]int) int {
	mx := 0
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// minLoad adds the conventional unset sentinel.
func minLoad(m map[int]int) int {
	best := -1
	for _, v := range m {
		if best < 0 || v < best {
			best = v
		}
	}
	return best
}

// argmax must stay flagged: on ties, the winning key is picked by
// iteration order even though the max itself is not.
func argmax(m map[int]int) int {
	best, arg := -1, -1
	for k, v := range m {
		if v > best {
			best = v
			arg = k // want "last iteration wins"
		}
	}
	return arg
}

// cappedMax must stay flagged: &&-combined guards do not commute.
func cappedMax(m map[int]int) int {
	mx := 0
	for _, v := range m {
		if mx < 10 && v > mx {
			mx = v // want "last iteration wins"
		}
	}
	return mx
}

// sortedKeys is the collect-then-sort shape: the sort erases the
// iteration order.
func sortedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// unsortedKeys leaks: the slice keeps map order.
func unsortedKeys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "last iteration wins"
	}
	return out
}

// invert stores per key into another map: order-independent.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// keyed stores at loop-derived slice positions: order-independent.
func keyed(m map[int]int, dense []int) {
	for k, v := range m {
		dense[k] = v
	}
}

// allowed shows the escape hatch; the annotated line carries no want.
func allowed(m map[int]int) int {
	pick := -1
	for k := range m {
		//dexvet:allow determinism fixture: any representative key works here
		pick = k
		break
	}
	return pick
}
