package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked target package.
type Package struct {
	Path  string   // import path
	Name  string   // package name
	Dir   string   // absolute source directory
	Files []string // absolute paths of the non-test Go files

	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	// ModDir is the module root the package was loaded from; noalloc
	// runs the compiler there.
	ModDir string

	loader *loader
}

// A SyntaxPackage is a parse-only view of a package (comments, no type
// information). Fact-gathering analyzers use it to read annotation
// markers out of a dependency's source without the cost of
// type-checking it as a target.
type SyntaxPackage struct {
	Path   string
	Name   string
	Fset   *token.FileSet
	Syntax []*ast.File
}

// LoadSyntax parses (without type-checking) the in-module package with
// the given import path. Used by guarddiscipline to read
// //dexvet:mutator markers from the engine package while analyzing the
// façade.
func (p *Package) LoadSyntax(importPath string) (*SyntaxPackage, error) {
	return p.loader.loadSyntax(importPath)
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

type loader struct {
	modDir   string
	fset     *token.FileSet
	byPath   map[string]*listPkg
	imp      types.Importer
	synCache map[string]*SyntaxPackage
}

// Load lists patterns with the go command (building export data for
// every dependency) and returns the matched packages parsed and
// type-checked from source. Test files are not analyzed: dexvet lints
// the product code the invariants protect.
func Load(modDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Export,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	ld := &loader{
		modDir:   modDir,
		fset:     token.NewFileSet(),
		byPath:   map[string]*listPkg{},
		synCache: map[string]*SyntaxPackage{},
	}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		ld.byPath[p.ImportPath] = p
		if !p.Standard && !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	ld.imp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		lp, ok := ld.byPath[path]
		if !ok || lp.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(lp.Export)
	})

	// `go list -deps` emits dependencies before dependents, so loading
	// in stream order keeps every import's export data available.
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := ld.typeCheck(t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (ld *loader) parse(t *listPkg) ([]*ast.File, []string, error) {
	var (
		files []*ast.File
		paths []string
	)
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	return files, paths, nil
}

func (ld *loader) typeCheck(t *listPkg) (*Package, error) {
	files, paths, err := ld.parse(t)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld.imp}
	tpkg, err := conf.Check(t.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		Path:   t.ImportPath,
		Name:   t.Name,
		Dir:    t.Dir,
		Files:  paths,
		Fset:   ld.fset,
		Syntax: files,
		Types:  tpkg,
		Info:   info,
		ModDir: ld.modDir,
		loader: ld,
	}, nil
}

func (ld *loader) loadSyntax(importPath string) (*SyntaxPackage, error) {
	if sp, ok := ld.synCache[importPath]; ok {
		return sp, nil
	}
	t, ok := ld.byPath[importPath]
	if !ok {
		return nil, fmt.Errorf("package %q is not in the load set", importPath)
	}
	files, _, err := ld.parse(t)
	if err != nil {
		return nil, err
	}
	sp := &SyntaxPackage{Path: t.ImportPath, Name: t.Name, Fset: ld.fset, Syntax: files}
	ld.synCache[importPath] = sp
	return sp, nil
}
