package analysis_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// stub is a no-op analyzer that only contributes its name to the set of
// known //dexvet:allow rules.
var stub = &analysis.Analyzer{
	Name:    "stub",
	Doc:     "test stub",
	Applies: func(pkg *analysis.Package) bool { return false },
	Run:     func(pass *analysis.Pass) error { return nil },
}

// TestDirectiveValidation checks that malformed //dexvet: comments are
// reported under the "dexvet" pseudo-rule with the expected messages —
// the analysistest harness cannot cover these, because a `// want`
// cannot share a line with a line-comment directive.
func TestDirectiveValidation(t *testing.T) {
	pkgs, err := analysis.Load(moduleRoot(t), "repro/internal/analysis/testdata/src/directives")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{stub})
	if err != nil {
		t.Fatalf("running: %v", err)
	}

	wants := []string{
		"needs a reason",
		"needs a rule name",
		"unknown directive //dexvet:frobnicate",
		"//dexvet:noalloc must be in a function's doc comment",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, d := range diags {
		if d.Rule != "dexvet" {
			t.Errorf("finding %d: rule = %q, want the dexvet pseudo-rule", i, d.Rule)
		}
		if !strings.Contains(d.Msg, wants[i]) {
			t.Errorf("finding %d: %q does not mention %q", i, d.Msg, wants[i])
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
