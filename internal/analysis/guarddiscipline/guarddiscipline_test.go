package guarddiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guarddiscipline"
)

func TestGuardDiscipline(t *testing.T) {
	analysistest.Run(t, "repro/internal/analysis/guarddiscipline/testdata/src/dex", guarddiscipline.Analyzer)
}
