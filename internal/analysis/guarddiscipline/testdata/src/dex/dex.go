// Package dex is the guarddiscipline fixture: a minimal reconstruction
// of the façade shapes the analyzer polices. Checkpoint below
// reconstructs the PR 8 bug — a WAL-touching exported method with no
// re-entrancy guard — and must stay a finding forever.
package dex

import (
	"errors"
	"math/rand"
	"sync"
)

// ErrReentrantOp mirrors the façade's sentinel.
var ErrReentrantOp = errors.New("dex: re-entrant operation")

// Engine stands in for the core engine.
type Engine struct{ n int }

// Insert mutates engine state.
//
//dexvet:mutator
func (e *Engine) Insert() { e.n++ }

// Size is a read accessor; calling it needs no guard.
func (e *Engine) Size() int { return e.n }

// WAL stands in for the persist log.
type WAL struct{ roots int }

func (w *WAL) Checkpoint() {}
func (w *WAL) Root() int   { return w.roots }

// Network mirrors the façade; the eng and log field names are
// load-bearing for the analyzer.
type Network struct {
	eng   *Engine
	log   *WAL
	inOp  bool
	steps int
}

func (nw *Network) enterOp() error {
	if nw.inOp {
		return ErrReentrantOp
	}
	nw.inOp = true
	return nil
}

func (nw *Network) exitOp() { nw.inOp = false }

// Checkpoint is the PR 8 regression shape: the WAL is touched with no
// guard, so a checkpoint taken from an event callback would snapshot
// half-applied state.
func (nw *Network) Checkpoint() error { // want "calls WAL.Checkpoint on the WAL, which an in-flight operation may be moving but never takes the enterOp/exitOp re-entrancy guard"
	nw.log.Checkpoint()
	return nil
}

// GoodCheckpoint is the fixed shape.
func (nw *Network) GoodCheckpoint() error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.log.Checkpoint()
	return nil
}

// Grow mutates the engine through an unexported helper; the evidence
// must survive the transitive closure.
func (nw *Network) Grow() { // want "calls the engine mutator Engine.Insert .via applyInsert. but never takes the enterOp/exitOp re-entrancy guard"
	nw.applyInsert()
}

func (nw *Network) applyInsert() { nw.eng.Insert() }

// GoodGrow guards in the wrapper while the helper mutates.
func (nw *Network) GoodGrow() error {
	if err := nw.enterOp(); err != nil {
		return err
	}
	defer nw.exitOp()
	nw.applyInsert()
	return nil
}

// Bump writes a façade field directly.
func (nw *Network) Bump() { // want "writes nw.steps but never takes the enterOp/exitOp re-entrancy guard"
	nw.steps++
}

// Size only reads; no guard required.
func (nw *Network) Size() int { return nw.eng.Size() }

// BadRelease takes the guard but forgets to defer the release: any
// early return wedges the network.
func (nw *Network) BadRelease() error { // want "calls enterOp but never defers exitOp"
	if err := nw.enterOp(); err != nil {
		return err
	}
	nw.steps++
	nw.exitOp()
	return nil
}

// Allowed documents its exemption; the annotation suppresses the
// finding for the whole method.
//
//dexvet:allow guarddiscipline fixture: exercises the documented-exemption path
func (nw *Network) Allowed() { nw.steps++ }

// Concurrent mirrors the concurrent façade.
type Concurrent struct {
	mu  sync.Mutex
	nw  *Network
	rng *rand.Rand
}

// op routes a call under the façade mutex; routing through it counts
// as holding the lock.
func (c *Concurrent) op(f func(nw *Network) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return f(c.nw)
}

// Steps reads the wrapped network with no lock.
func (c *Concurrent) Steps() int { // want "touches c.nw without holding the façade mutex"
	return c.nw.Size()
}

// LockedSteps holds the mutex directly.
func (c *Concurrent) LockedSteps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nw.Size()
}

// RoutedGrow goes through op, which locks.
func (c *Concurrent) RoutedGrow() error {
	return c.op(func(nw *Network) error { return nw.GoodGrow() })
}

// Sample draws from the façade-owned source with no lock.
func (c *Concurrent) Sample() int { // want "touches c.rng without holding the façade mutex"
	return c.rng.Intn(2)
}
