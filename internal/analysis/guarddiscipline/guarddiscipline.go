// Package guarddiscipline enforces the dex façade's re-entrancy and
// locking discipline at vet time — the rule class whose silent
// violation produced PR 8's Checkpoint()-racing-Do() bug.
//
// Two checks, both over the package named "dex":
//
//  1. Every exported method on *Network that mutates engine state must
//     take the enterOp/exitOp guard. "Mutates engine state" means the
//     method (directly, or through unexported same-type helpers) writes
//     a Network field, calls any method on the WAL (the `log` field's
//     type), or calls an engine method marked //dexvet:mutator in
//     internal/core. A method that calls enterOp must also defer
//     exitOp in the same body.
//
//  2. Every exported method on *Concurrent that touches the wrapped
//     network (the `nw` field) or the façade-owned sampling source
//     (`rng`) must hold the façade mutex — directly, or by routing
//     through a helper that locks it (op, locked, Snapshot, ...).
//
// False positives carry //dexvet:allow guarddiscipline <reason>; the
// reason is mandatory and becomes the method's documented exemption.
package guarddiscipline

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the guarddiscipline rule.
var Analyzer = &analysis.Analyzer{
	Name:    "guarddiscipline",
	Doc:     "exported dex.Network mutators must take enterOp/exitOp; dex.Concurrent methods touching the wrapped network must hold the façade mutex",
	Applies: func(pkg *analysis.Package) bool { return pkg.Name == "dex" },
	Run:     run,
}

// fnInfo is what one function body contributes before the transitive
// closure: its same-package callees plus the direct evidence found in
// it. Function-literal bodies are excluded everywhere — a closure runs
// when it is invoked, not when its enclosing method does.
type fnInfo struct {
	decl    *ast.FuncDecl
	callees []*types.Func

	guardNetwork bool   // calls <recv>.enterOp
	deferExit    bool   // defers <recv>.exitOp
	mutates      string // evidence: first engine-state mutation found

	guardConc  bool   // locks a Concurrent's mu field
	concAccess string // evidence: first c.nw / c.rng use
}

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg

	netObj, _ := pkg.Types.Scope().Lookup("Network").(*types.TypeName)
	if netObj == nil {
		return nil // not a dex-shaped package
	}
	engNamed, walNamed := fieldTypes(netObj)
	mutators, err := engineMutators(pkg, engNamed)
	if err != nil {
		return err
	}

	infos := map[*types.Func]*fnInfo{}
	var order []*types.Func
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			infos[obj] = collect(pkg, fd, engNamed, walNamed, mutators)
			order = append(order, obj)
		}
	}

	// Transitive closure over same-package calls: guarding and mutating
	// both propagate through helpers (Insert -> commitPersist -> WAL).
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			in := infos[obj]
			for _, callee := range in.callees {
				c, ok := infos[callee]
				if !ok {
					continue
				}
				if c.guardNetwork && !in.guardNetwork {
					in.guardNetwork = true
					changed = true
				}
				if c.guardConc && !in.guardConc {
					in.guardConc = true
					changed = true
				}
				if c.mutates != "" && in.mutates == "" {
					in.mutates = c.mutates + " (via " + callee.Name() + ")"
					changed = true
				}
				if c.concAccess != "" && in.concAccess == "" {
					in.concAccess = c.concAccess + " (via " + callee.Name() + ")"
					changed = true
				}
			}
		}
	}

	for _, obj := range order {
		in := infos[obj]
		fd := in.decl
		recv := analysis.RecvTypeName(fd)
		switch {
		case recv == "Network" && fd.Name.IsExported() && in.mutates != "" && !in.guardNetwork:
			pass.Reportf(fd.Name.Pos(),
				"exported method (*Network).%s %s but never takes the enterOp/exitOp re-entrancy guard",
				fd.Name.Name, in.mutates)
		case recv == "Concurrent" && fd.Name.IsExported() && in.concAccess != "" && !in.guardConc:
			pass.Reportf(fd.Name.Pos(),
				"exported method (*Concurrent).%s %s without holding the façade mutex (lock mu, or route through op/locked)",
				fd.Name.Name, in.concAccess)
		}
		// An enterOp without its paired deferred exitOp leaves the
		// network permanently rejecting operations on any early return.
		if directGuard(pkg, fd) && !in.deferExit {
			pass.Reportf(fd.Name.Pos(),
				"%s calls enterOp but never defers exitOp — an early return leaves the network wedged in the in-operation state",
				fd.Name.Name)
		}
	}
	return nil
}

// fieldTypes resolves the named types of Network's eng and log fields
// (either may be nil when absent).
func fieldTypes(netObj *types.TypeName) (eng, wal *types.Named) {
	st, _ := netObj.Type().Underlying().(*types.Struct)
	if st == nil {
		return nil, nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "eng":
			eng = analysis.NamedOf(f.Type())
		case "log":
			wal = analysis.NamedOf(f.Type())
		}
	}
	return eng, wal
}

// engineMutators returns the names of the engine type's methods marked
// //dexvet:mutator, reading the engine package's source (or this
// package's, for self-contained fixtures).
func engineMutators(pkg *analysis.Package, eng *types.Named) (map[string]bool, error) {
	set := map[string]bool{}
	if eng == nil || eng.Obj().Pkg() == nil {
		return set, nil
	}
	var syntax []*ast.File
	if p := eng.Obj().Pkg().Path(); p == pkg.Path {
		syntax = pkg.Syntax
	} else {
		sp, err := pkg.LoadSyntax(p)
		if err != nil {
			return nil, fmt.Errorf("loading engine package for //dexvet:mutator markers: %w", err)
		}
		syntax = sp.Syntax
	}
	for _, file := range syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || analysis.RecvTypeName(fd) != eng.Obj().Name() {
				continue
			}
			if analysis.HasDirective(fd, analysis.MutatorDirective) {
				set[fd.Name.Name] = true
			}
		}
	}
	return set, nil
}

// recvObj returns the declared receiver variable, or nil.
func recvObj(pkg *analysis.Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// directGuard reports whether fd's own body calls <recv>.enterOp.
func directGuard(pkg *analysis.Package, fd *ast.FuncDecl) bool {
	found := false
	walkBody(fd.Body, func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "enterOp" {
				found = true
			}
		}
	})
	return found
}

// collect extracts one function body's direct evidence.
func collect(pkg *analysis.Package, fd *ast.FuncDecl, eng, wal *types.Named, mutators map[string]bool) *fnInfo {
	in := &fnInfo{decl: fd}
	recv := recvObj(pkg, fd)

	isRecvSel := func(e ast.Expr, field string) bool {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != field {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && recv != nil && pkg.Info.Uses[id] == recv
	}

	walkBody(fd.Body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if sel, ok := st.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "exitOp" {
				in.deferExit = true
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base := baseIdent(lhs); base != nil && recv != nil && pkg.Info.Uses[base] == recv {
					if _, isIdent := lhs.(*ast.Ident); !isIdent {
						if in.mutates == "" {
							in.mutates = "writes " + exprString(lhs)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if base := baseIdent(st.X); base != nil && recv != nil && pkg.Info.Uses[base] == recv {
				if in.mutates == "" {
					in.mutates = "writes " + exprString(st.X)
				}
			}
		case *ast.SelectorExpr:
			// Any touch of the wrapped network or the façade-owned
			// sampling source from a Concurrent method.
			if analysis.RecvTypeName(fd) == "Concurrent" && in.concAccess == "" &&
				(isRecvSel(st, "nw") || isRecvSel(st, "rng")) {
				in.concAccess = "touches c." + st.Sel.Name
			}
		case *ast.CallExpr:
			fun := unparen(st.Fun)
			switch f := fun.(type) {
			case *ast.Ident:
				if obj, ok := pkg.Info.Uses[f].(*types.Func); ok {
					in.callees = append(in.callees, obj)
				}
			case *ast.SelectorExpr:
				if sel := pkg.Info.Selections[f]; sel != nil {
					if callee, ok := sel.Obj().(*types.Func); ok && callee.Pkg() == pkg.Types {
						in.callees = append(in.callees, callee)
					}
					rt := analysis.NamedOf(sel.Recv())
					switch {
					case eng != nil && rt != nil && rt.Obj() == eng.Obj() && mutators[f.Sel.Name]:
						if in.mutates == "" {
							in.mutates = fmt.Sprintf("calls the engine mutator %s.%s", eng.Obj().Name(), f.Sel.Name)
						}
					case wal != nil && rt != nil && rt.Obj() == wal.Obj():
						if in.mutates == "" {
							in.mutates = fmt.Sprintf("calls %s.%s on the WAL, which an in-flight operation may be moving", wal.Obj().Name(), f.Sel.Name)
						}
					}
				}
				if f.Sel.Name == "enterOp" {
					in.guardNetwork = true
				}
				// <conc>.mu.Lock() / RLock(): the façade mutex.
				if f.Sel.Name == "Lock" || f.Sel.Name == "RLock" {
					if inner, ok := unparen(f.X).(*ast.SelectorExpr); ok && inner.Sel.Name == "mu" {
						if tv, ok := pkg.Info.Types[inner.X]; ok {
							if n := analysis.NamedOf(tv.Type); n != nil && n.Obj().Name() == "Concurrent" && n.Obj().Pkg() == pkg.Types {
								in.guardConc = true
							}
						}
					}
				}
			}
		}
	})
	return in
}

// walkBody visits every node of body except function-literal bodies.
func walkBody(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "state"
	}
}
