// Package directives is the fixture for directive validation: every
// malformed //dexvet: comment below must come back as a finding under
// the unsuppressible "dexvet" pseudo-rule.
package directives

//dexvet:allow stub
func missingReason() {}

//dexvet:allow nosuchrule because reasons
func unknownRule() {}

//dexvet:frobnicate
func unknownDirective() {}

func floating() {
	//dexvet:noalloc
	_ = 1
}

// valid carries a well-formed allow; it must produce no finding.
//
//dexvet:allow stub fixture: well-formed directive
func valid() {}
