package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/dex"
	"repro/internal/harness"
	"repro/internal/stats"
)

// Ablations for the design choices README.md calls out: the rebuild
// parameter theta (staggering batch size vs load slack), the walk-length
// factor c (type-1 success probability vs per-step cost), and the
// headline staggered-vs-simplified type-2 choice (worst-step envelope vs
// amortized cost). Each configuration is assembled from public dex
// options, so the ablations exercise exactly the surface users see.

// AblationRow is one configuration's measurements.
type AblationRow struct {
	Config      string
	RoundsMean  float64
	RoundsMax   float64
	MsgsMean    float64
	TopoMax     float64
	MaxLoad     int
	WalkRetries int
}

func runAblation(label string, n0, steps int, pInsert float64, seed int64, opts ...dex.Option) AblationRow {
	nw, err := dex.New(append([]dex.Option{dex.WithInitialSize(n0), dex.WithSeed(seed)}, opts...)...)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	maxLoad := 0
	retries := 0
	var rounds, msgs []float64
	topoMax := 0.0
	for i := 0; i < steps; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < pInsert || nw.Size() <= 6 {
			err = nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = nw.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			panic(err)
		}
		st := nw.LastStep()
		rounds = append(rounds, float64(st.Rounds))
		msgs = append(msgs, float64(st.Messages))
		if float64(st.TopologyChanges) > topoMax {
			topoMax = float64(st.TopologyChanges)
		}
		retries += st.WalkRetries
		if l := nw.MaxLoad(); l > maxLoad {
			maxLoad = l
		}
	}
	if err := nw.CheckInvariants(); err != nil {
		panic(fmt.Sprintf("ablation %s: %v", label, err))
	}
	r := stats.Summarize(rounds)
	m := stats.Summarize(msgs)
	return AblationRow{
		Config:     label,
		RoundsMean: r.Mean, RoundsMax: r.Max, MsgsMean: m.Mean,
		TopoMax: topoMax, MaxLoad: maxLoad, WalkRetries: retries,
	}
}

// AblateTheta sweeps the rebuild parameter.
func AblateTheta(w io.Writer, n0, steps int, seed int64) []AblationRow {
	var rows []AblationRow
	tb := &stats.Table{Header: []string{"theta", "rounds-mean", "rounds-max", "msgs-mean", "topo-max", "max-load", "retries"}}
	for _, theta := range []float64{1.0 / 16, 1.0 / 64, 1.0 / 256} {
		row := runAblation(fmt.Sprintf("1/%d", int(1/theta)), n0, steps, 0.7, seed, dex.WithTheta(theta))
		rows = append(rows, row)
		tb.AddF(row.Config, row.RoundsMean, row.RoundsMax, row.MsgsMean, row.TopoMax, row.MaxLoad, row.WalkRetries)
	}
	fmt.Fprintf(w, "AB-THETA: rebuild parameter sweep (n0=%d, %d steps, insert-heavy)\n%s\n", n0, steps, tb)
	return rows
}

// AblateWalkFactor sweeps the walk-length constant c.
func AblateWalkFactor(w io.Writer, n0, steps int, seed int64) []AblationRow {
	var rows []AblationRow
	tb := &stats.Table{Header: []string{"walk-factor", "rounds-mean", "msgs-mean", "retries", "max-load"}}
	for _, c := range []int{1, 2, 4, 8} {
		row := runAblation(fmt.Sprintf("c=%d", c), n0, steps, 0.5, seed, dex.WithWalkFactor(c))
		rows = append(rows, row)
		tb.AddF(row.Config, row.RoundsMean, row.MsgsMean, row.WalkRetries, row.MaxLoad)
	}
	fmt.Fprintf(w, "AB-WALK: walk-length factor sweep (n0=%d, %d steps)\n%s\n", n0, steps, tb)
	return rows
}

// AblateMode contrasts the worst-step envelope of staggered vs
// simplified type-2 recovery - the paper's central Section 4.4 design
// choice.
func AblateMode(w io.Writer, n0, steps int, seed int64) (staggered, simplified AblationRow) {
	staggered = runAblation("staggered", n0, steps, 0.8, seed, dex.WithMode(dex.Staggered))
	simplified = runAblation("simplified", n0, steps, 0.8, seed, dex.WithMode(dex.Simplified))
	tb := &stats.Table{Header: []string{"mode", "rounds-mean", "rounds-max", "msgs-mean", "topo-max", "max-load"}}
	for _, r := range []AblationRow{staggered, simplified} {
		tb.AddF(r.Config, r.RoundsMean, r.RoundsMax, r.MsgsMean, r.TopoMax, r.MaxLoad)
	}
	fmt.Fprintf(w, "AB-MODE: staggered vs simplified type-2 (n0=%d, %d steps, insert-heavy)\n%s", n0, steps, tb)
	fmt.Fprintf(w, "expected shape: simplified shows Theta(n) worst-step spikes; staggered keeps the worst step small\n\n")
	return staggered, simplified
}

// --- failure-injection experiment: coordinator assassination -----------------

// CoordinatorAttack measures DEX under repeated coordinator deletion.
func CoordinatorAttack(w io.Writer, n0, steps int, seed int64) AblationRow {
	nw, err := dex.New(dex.WithInitialSize(n0))
	if err != nil {
		panic(err)
	}
	recs, err := harness.Run(nw, harness.CoordinatorKiller{}, harness.RunConfig{
		Steps: steps, Seed: seed, Audit: true,
	})
	if err != nil {
		panic(err)
	}
	rounds, msgs, topo, _, _ := harness.Summaries(recs)
	row := AblationRow{Config: "coordinator-killer", RoundsMean: rounds.Mean,
		RoundsMax: rounds.Max, MsgsMean: msgs.Mean, TopoMax: topo.Max, MaxLoad: nw.MaxLoad()}
	fmt.Fprintf(w, "FAIL-COORD: coordinator assassinated every step (%d steps): rounds mean %.1f max %.0f, msgs mean %.1f, invariants audited each step\n\n",
		steps, row.RoundsMean, row.RoundsMax, row.MsgsMean)
	return row
}
