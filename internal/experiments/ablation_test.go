package experiments

import (
	"io"
	"testing"
)

func TestAblateThetaLoadsBounded(t *testing.T) {
	rows := AblateTheta(io.Discard, 48, 400, 1)
	if len(rows) != 3 {
		t.Fatal("missing rows")
	}
	for _, r := range rows {
		// 8*zeta = 64 is the hard bound in any configuration.
		if r.MaxLoad > 64 {
			t.Fatalf("theta=%s: max load %d exceeds 8*zeta", r.Config, r.MaxLoad)
		}
	}
}

func TestAblateWalkFactorRetriesDrop(t *testing.T) {
	rows := AblateWalkFactor(io.Discard, 48, 300, 2)
	// Longer walks should not need more retries than the shortest ones.
	if rows[3].WalkRetries > rows[0].WalkRetries+5 {
		t.Fatalf("retries did not improve with walk length: %+v", rows)
	}
}

func TestAblateModeWorstStep(t *testing.T) {
	stag, simp := AblateMode(io.Discard, 48, 500, 3)
	// The design claim: simplified mode has far larger worst-step rounds
	// (its type-2 spikes), while staggered keeps the envelope tight.
	if simp.RoundsMax < 2*stag.RoundsMax {
		t.Logf("note: spike contrast weak this run: staggered max %v vs simplified max %v",
			stag.RoundsMax, simp.RoundsMax)
	}
	if stag.MaxLoad > 64 || simp.MaxLoad > 32 {
		t.Fatalf("load bounds broken: %+v %+v", stag, simp)
	}
}

func TestCoordinatorAttackSurvives(t *testing.T) {
	row := CoordinatorAttack(io.Discard, 32, 80, 4)
	if row.RoundsMean <= 0 {
		t.Fatal("no costs recorded")
	}
}
