package experiments

import (
	"io"
	"strings"
	"testing"
)

// These tests run every experiment at smoke scale and assert the shapes
// README.md records (who wins, by roughly what factor).

func TestTable1Shapes(t *testing.T) {
	var sb strings.Builder
	rows := Table1(&sb, 48, 150, 1)
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	dex := byName["dex"]
	// DEX's degree bound is the hard constant 3 * 8*zeta = 192 slots
	// (Lemma 9a during rebuilds); in practice far lower. The contrast
	// with the skip graph's Theta(log n) degree is a growth statement -
	// TestDegreeConstantVsLogGrowth below checks it across sizes.
	if dex.MaxDegree > 192 {
		t.Fatalf("DEX max degree %d exceeds the deterministic bound", dex.MaxDegree)
	}
	if dex.MinGapRandom <= 0 || dex.MinGapAdaptive <= 0 {
		t.Fatalf("DEX gap collapsed: %+v", dex)
	}
	if dex.TopoChangesMean > 80 {
		t.Fatalf("DEX topology changes not constant-ish: %v", dex.TopoChangesMean)
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Fatal("missing output")
	}
}

func TestDegreeConstantVsLogGrowth(t *testing.T) {
	// Table 1's degree column: DEX constant, skip graph Theta(log n).
	measure := func(n int) (dexDeg, skipDeg int) {
		rowsSmall := Table1(io.Discard, n, 60, 5)
		for _, r := range rowsSmall {
			switch r.Name {
			case "dex":
				dexDeg = r.MaxDegree
			case "skip-graph":
				skipDeg = r.MaxDegree
			}
		}
		return
	}
	dex64, skip64 := measure(64)
	dex512, skip512 := measure(512)
	if skip512 <= skip64 {
		t.Fatalf("skip-graph degree did not grow with n: %d -> %d", skip64, skip512)
	}
	if dex512 > 192 || dex64 > 192 {
		t.Fatalf("DEX degree exceeded its constant bound: %d, %d", dex64, dex512)
	}
}

func TestFigure1(t *testing.T) {
	var sb strings.Builder
	vg, rg := Figure1(&sb)
	if vg <= 0.05 {
		t.Fatalf("Z(23) gap = %v", vg)
	}
	if rg < vg-1e-9 {
		t.Fatalf("contraction shrank the gap: virtual %v, real %v (Lemma 1)", vg, rg)
	}
	if !strings.Contains(sb.String(), "node A simulates") {
		t.Fatal("mapping rendering missing")
	}
}

func TestThm1ScalingLogShaped(t *testing.T) {
	var sb strings.Builder
	pts, roundsExp, msgsExp := Thm1Scaling(&sb, []int{64, 128, 256, 512}, 200, 1)
	if len(pts) != 4 {
		t.Fatal("missing points")
	}
	if roundsExp > 0.6 {
		t.Fatalf("rounds exponent %v: not logarithmic", roundsExp)
	}
	if msgsExp > 0.6 {
		t.Fatalf("messages exponent %v: not logarithmic", msgsExp)
	}
	for _, p := range pts {
		if p.TopoMax > 400 {
			t.Fatalf("topology changes max %v at n=%d not O(1)-ish", p.TopoMax, p.N)
		}
	}
}

func TestGapSeriesDexSurvives(t *testing.T) {
	var sb strings.Builder
	mins := GapSeries(&sb, 64, 200, 25, 2)
	if mins["dex"] < 0.01 {
		t.Fatalf("DEX gap degraded to %v under the adaptive adversary", mins["dex"])
	}
	// The headline contrast: DEX's floor should beat at least one
	// probabilistic baseline under the cut-thinner.
	if mins["dex"] <= mins["law-siu"] && mins["dex"] <= mins["flip-chain"] {
		t.Logf("note: baselines held up this run: %v", mins)
	}
}

func TestAmortizedSeparation(t *testing.T) {
	var sb strings.Builder
	res := Amortized(&sb, 32, 1200, 3)
	if res.Type2Steps == 0 {
		t.Fatal("no type-2 rebuilds during insert-heavy churn")
	}
	if res.Type2Steps > 1 && res.MinSeparation < 32 {
		t.Fatalf("type-2 events only %d steps apart (Lemma 8 wants Omega(n))", res.MinSeparation)
	}
	if res.AmortTopo > 100 {
		t.Fatalf("amortized topology changes %v not constant-ish", res.AmortTopo)
	}
}

func TestDHTCostsLogShaped(t *testing.T) {
	var sb strings.Builder
	pts, exp := DHTCosts(&sb, []int{64, 128, 256, 512}, 300, 1)
	if exp > 0.6 {
		t.Fatalf("DHT put cost exponent %v: not logarithmic", exp)
	}
	for _, p := range pts {
		if p.PutMean <= 0 {
			t.Fatalf("degenerate DHT point %+v", p)
		}
	}
}

func TestMultiBatchWithinBudget(t *testing.T) {
	var sb strings.Builder
	res := MultiBatch(&sb, 128, 1.0/16, 12, 1)
	if res.Batches == 0 {
		t.Fatal("no batches ran")
	}
	n := float64(res.NRef)
	budget := 40 * n * logsq(n) // O(n log^2 n) with generous constant
	if res.MsgsPerBatch > budget {
		t.Fatalf("batch messages %v exceed budget %v", res.MsgsPerBatch, budget)
	}
}

func logsq(n float64) float64 {
	l := 0.0
	for v := n; v > 1; v /= 2 {
		l++
	}
	return l * l
}

func TestWalkHitRateImprovesWithLength(t *testing.T) {
	var sb strings.Builder
	rates := WalkHitRate(&sb, 48, 0.3, 200, 1)
	if rates[8] < rates[1] {
		t.Fatalf("longer walks should not hit less: %v", rates)
	}
	if rates[8] < 0.9 {
		t.Fatalf("8*log n walks should almost surely hit: %v", rates[8])
	}
}

func TestPermRoutingPolylog(t *testing.T) {
	var sb strings.Builder
	rounds := PermRouting(&sb, []int64{101, 499, 1009})
	for p, r := range rounds {
		l := 1.0
		for v := float64(p); v > 1; v /= 2 {
			l++
		}
		if float64(r) > 6*l*l {
			t.Fatalf("routing on Z(%d) took %d rounds (> 6*log^2)", p, r)
		}
	}
}

func TestNaiveCostsLinearVsLog(t *testing.T) {
	var sb strings.Builder
	out := NaiveCosts(&sb, []int{64, 256}, 80, 1)
	if out["flooding/256"] < 3*out["flooding/64"] {
		t.Fatalf("flooding not ~linear: %v", out)
	}
	if out["dex/256"] > 3*out["dex/64"] {
		t.Fatalf("dex grew too fast: %v", out)
	}
	if out["flooding/256"] < 4*out["dex/256"] {
		t.Fatalf("flooding should dwarf dex at n=256: %v", out)
	}
}

func TestOutputsGoSomewhere(t *testing.T) {
	// All experiment functions accept any io.Writer.
	var w io.Writer = io.Discard
	Figure1(w)
	PermRouting(w, []int64{101})
}
