// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in README.md).
// Each function runs a workload, prints the rows/series the paper
// reports, and returns the headline numbers so bench_test.go and the
// test suite can assert the expected shapes.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"

	"repro/dex"
	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/flipgraph"
	"repro/internal/harness"
	"repro/internal/lawsiu"
	"repro/internal/naive"
	"repro/internal/pcycle"
	"repro/internal/skipgraph"
	"repro/internal/spectral"
	"repro/internal/stats"
)

func newDex(n0 int, mode dex.Mode, seed int64) *dex.Network {
	nw, err := dex.New(dex.WithInitialSize(n0), dex.WithMode(mode), dex.WithSeed(seed))
	if err != nil {
		panic(err)
	}
	return nw
}

// ---------------------------------------------------------------------------
// T1: Table 1 - comparison of distributed expander constructions
// ---------------------------------------------------------------------------

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	Name            string
	MinGapRandom    float64 // min spectral gap under random churn
	MinGapAdaptive  float64 // min spectral gap under the adaptive cut-thinner
	MaxDegree       int
	RecoveryP99     float64 // rounds
	MessagesP99     float64
	TopoChangesP99  float64
	TopoChangesMean float64
}

// Table1 measures every Table 1 comparison column empirically.
func Table1(w io.Writer, n0, steps int, seed int64) []Table1Row {
	build := func(name string) harness.Maintainer {
		switch name {
		case "dex":
			return newDex(n0, dex.Staggered, seed)
		case "law-siu":
			nw, err := lawsiu.New(n0, 3, seed)
			if err != nil {
				panic(err)
			}
			return harness.LawSiuMaintainer{Network: nw}
		case "skip-graph":
			nw, err := skipgraph.New(n0, seed)
			if err != nil {
				panic(err)
			}
			return harness.SkipMaintainer{Network: nw}
		case "flip-chain":
			nw, err := flipgraph.New(n0, 6, seed)
			if err != nil {
				panic(err)
			}
			return harness.FlipMaintainer{Network: nw}
		}
		panic("unknown maintainer " + name)
	}
	var rows []Table1Row
	for _, name := range []string{"dex", "law-siu", "skip-graph", "flip-chain"} {
		row := Table1Row{Name: name}
		// Random churn leg.
		m := build(name)
		recs, err := harness.Run(m, harness.RandomChurn{PInsert: 0.5}, harness.RunConfig{
			Steps: steps, Seed: seed, GapEvery: 10,
		})
		if err != nil {
			panic(err)
		}
		rounds, msgs, topo, maxDeg, minGap := harness.Summaries(recs)
		row.MinGapRandom = minGap
		row.MaxDegree = maxDeg
		row.RecoveryP99 = rounds.P99
		row.MessagesP99 = msgs.P99
		row.TopoChangesP99 = topo.P99
		row.TopoChangesMean = topo.Mean
		// Adaptive adversary leg (fresh network).
		m2 := build(name)
		recs2, err := harness.Run(m2, &harness.CutThinning{}, harness.RunConfig{
			Steps: steps / 2, Seed: seed + 1, GapEvery: 10,
		})
		if err != nil {
			panic(err)
		}
		_, _, _, _, row.MinGapAdaptive = harness.Summaries(recs2)
		rows = append(rows, row)
	}
	tb := &stats.Table{Header: []string{
		"algorithm", "min-gap(random)", "min-gap(adaptive)", "max-degree",
		"recovery-p99(rounds)", "messages-p99", "topo-changes-p99", "topo-mean",
	}}
	for _, r := range rows {
		tb.AddF(r.Name, fmt.Sprintf("%.4f", r.MinGapRandom), fmt.Sprintf("%.4f", r.MinGapAdaptive),
			r.MaxDegree, r.RecoveryP99, r.MessagesP99, r.TopoChangesP99, r.TopoChangesMean)
	}
	fmt.Fprintf(w, "T1: Table 1 reproduction (n0=%d, %d steps)\n%s\n", n0, steps, tb)
	return rows
}

// ---------------------------------------------------------------------------
// F1: Figure 1 - the 23-cycle and a 4-balanced mapping
// ---------------------------------------------------------------------------

// Figure1 renders Z(23), a 4-balanced mapping onto 7 nodes, and the
// measured properties of both; returns the virtual and real spectral gaps.
func Figure1(w io.Writer) (virtualGap, realGap float64) {
	z, err := pcycle.New(23)
	if err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "F1: Figure 1 reproduction - virtual graph Z(23):")
	for x := int64(0); x < 23; x++ {
		s := z.NeighborSlots(x)
		fmt.Fprintf(w, "  vertex %2d: cycle (%2d, %2d), chord %2d\n", x, s[0], s[1], s[2])
	}
	owner := make([]core.NodeID, 23)
	names := "ABCDEFG"
	for x := range owner {
		owner[x] = core.NodeID(x * 7 / 23)
	}
	nw, err := core.NewWithMapping(23, owner, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Fprintln(w, "  4-balanced virtual mapping onto 7 real nodes:")
	for u := 0; u < 7; u++ {
		var vs []string
		for x := range owner {
			if owner[x] == core.NodeID(u) {
				vs = append(vs, fmt.Sprintf("%d", x))
			}
		}
		fmt.Fprintf(w, "  node %c simulates {%s}\n", names[u], strings.Join(vs, ","))
	}
	virtualGap = spectral.GapDense(z.Graph())
	realGap = spectral.GapDense(nw.Graph())
	fmt.Fprintf(w, "  spectral gap: virtual %.4f <= real %.4f (Lemma 1)\n\n", virtualGap, realGap)
	return virtualGap, realGap
}

// ---------------------------------------------------------------------------
// THM1: worst-case per-step costs scale as O(log n), O(1) topology changes
// ---------------------------------------------------------------------------

// ScalingPoint is one network-size sample of the Theorem 1 sweep.
type ScalingPoint struct {
	N            int
	RoundsMean   float64
	RoundsMax    float64
	MessagesMean float64
	MessagesMax  float64
	TopoMean     float64
	TopoMax      float64
	WalkLen      int
}

// Thm1Scaling sweeps network sizes and measures per-step worst-case
// costs under mixed churn with staggered type-2 recovery. It returns the
// points and the fitted power-law exponents for rounds and messages
// (near 0 for logarithmic growth, near 1 for linear).
func Thm1Scaling(w io.Writer, sizes []int, steps int, seed int64) ([]ScalingPoint, float64, float64) {
	var pts []ScalingPoint
	for _, n := range sizes {
		m := newDex(n, dex.Staggered, seed)
		recs, err := harness.Run(m, harness.RandomChurn{PInsert: 0.5}, harness.RunConfig{
			Steps: steps, Seed: seed,
		})
		if err != nil {
			panic(err)
		}
		rounds, msgs, topo, _, _ := harness.Summaries(recs)
		pts = append(pts, ScalingPoint{
			N: n, RoundsMean: rounds.Mean, RoundsMax: rounds.Max,
			MessagesMean: msgs.Mean, MessagesMax: msgs.Max,
			TopoMean: topo.Mean, TopoMax: topo.Max,
		})
	}
	ns := make([]float64, len(pts))
	rm := make([]float64, len(pts))
	mm := make([]float64, len(pts))
	for i, p := range pts {
		ns[i] = float64(p.N)
		rm[i] = p.RoundsMean
		mm[i] = p.MessagesMean
	}
	_, roundsExp := stats.LogScalingExponent(ns, rm)
	_, msgsExp := stats.LogScalingExponent(ns, mm)
	tb := &stats.Table{Header: []string{"n", "rounds-mean", "rounds-max", "msgs-mean", "msgs-max", "topo-mean", "topo-max"}}
	for _, p := range pts {
		tb.AddF(p.N, p.RoundsMean, p.RoundsMax, p.MessagesMean, p.MessagesMax, p.TopoMean, p.TopoMax)
	}
	fmt.Fprintf(w, "THM1: per-step cost scaling, staggered mode (%d steps per size)\n%s", steps, tb)
	fmt.Fprintf(w, "power-law exponents: rounds %.3f, messages %.3f (log-shaped << 1)\n\n", roundsExp, msgsExp)
	return pts, roundsExp, msgsExp
}

// ---------------------------------------------------------------------------
// GAP: spectral gap series - DEX constant, baselines degrade
// ---------------------------------------------------------------------------

// GapSeries runs the adaptive cut-thinning adversary against DEX,
// Law-Siu and the flip chain, printing a gap time series and returning
// the minimum gap per algorithm.
func GapSeries(w io.Writer, n0, steps, sampleEvery int, seed int64) map[string]float64 {
	mk := map[string]func() harness.Maintainer{
		"dex": func() harness.Maintainer { return newDex(n0, dex.Staggered, seed) },
		"law-siu": func() harness.Maintainer {
			nw, err := lawsiu.New(n0, 3, seed)
			if err != nil {
				panic(err)
			}
			return harness.LawSiuMaintainer{Network: nw}
		},
		"flip-chain": func() harness.Maintainer {
			nw, err := flipgraph.New(n0, 6, seed)
			if err != nil {
				panic(err)
			}
			return harness.FlipMaintainer{Network: nw}
		},
	}
	series := make(map[string][]float64)
	mins := make(map[string]float64)
	order := []string{"dex", "law-siu", "flip-chain"}
	for _, name := range order {
		m := mk[name]()
		recs, err := harness.Run(m, &harness.CutThinning{}, harness.RunConfig{
			Steps: steps, Seed: seed, GapEvery: sampleEvery,
		})
		if err != nil {
			panic(err)
		}
		min := math.Inf(1)
		for _, r := range recs {
			if r.Gap == r.Gap {
				series[name] = append(series[name], r.Gap)
				if r.Gap < min {
					min = r.Gap
				}
			}
		}
		mins[name] = min
	}
	fmt.Fprintf(w, "GAP: spectral gap under adaptive cut-thinning churn (n0=%d, %d steps, sample every %d)\n",
		n0, steps, sampleEvery)
	tb := &stats.Table{Header: append([]string{"sample"}, order...)}
	for i := range series["dex"] {
		row := []string{fmt.Sprintf("%d", i*sampleEvery)}
		for _, name := range order {
			v := math.NaN()
			if i < len(series[name]) {
				v = series[name][i]
			}
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		tb.Add(row...)
	}
	fmt.Fprintln(w, tb)
	fmt.Fprintf(w, "min gaps: dex %.4f, law-siu %.4f, flip-chain %.4f\n\n",
		mins["dex"], mins["law-siu"], mins["flip-chain"])
	return mins
}

// ---------------------------------------------------------------------------
// AMORT: Corollary 1 - amortized costs with simplified type-2
// ---------------------------------------------------------------------------

// AmortizedResult captures Corollary 1's quantities.
type AmortizedResult struct {
	Steps          int
	Type2Steps     int
	MinSeparation  int // min #type-1 steps between consecutive type-2 events
	AmortRounds    float64
	AmortMessages  float64
	AmortTopo      float64
	SpikeMaxRounds float64
}

// Amortized measures simplified-mode churn, the frequency of type-2
// rebuilds, and Lemma 8's separation between them.
func Amortized(w io.Writer, n0, steps int, seed int64) AmortizedResult {
	m := newDex(n0, dex.Simplified, seed)
	rng := rand.New(rand.NewSource(seed))
	res := AmortizedResult{Steps: steps, MinSeparation: steps}
	var rounds, msgs, topo float64
	lastType2 := -1
	maxR := 0.0
	for i := 0; i < steps; i++ {
		nodes := m.Nodes()
		var err error
		if rng.Float64() < 0.8 || m.Size() <= 6 {
			err = m.Insert(m.FreshID(), nodes[rng.Intn(len(nodes))])
		} else {
			err = m.Delete(nodes[rng.Intn(len(nodes))])
		}
		if err != nil {
			panic(err)
		}
		st := m.LastStep()
		rounds += float64(st.Rounds)
		msgs += float64(st.Messages)
		topo += float64(st.TopologyChanges)
		if float64(st.Rounds) > maxR {
			maxR = float64(st.Rounds)
		}
		if st.Recovery != dex.RecoveryType1 {
			res.Type2Steps++
			if lastType2 >= 0 && i-lastType2 < res.MinSeparation {
				res.MinSeparation = i - lastType2
			}
			lastType2 = i
		}
	}
	res.AmortRounds = rounds / float64(steps)
	res.AmortMessages = msgs / float64(steps)
	res.AmortTopo = topo / float64(steps)
	res.SpikeMaxRounds = maxR
	fmt.Fprintf(w, "AMORT: simplified type-2, insert-heavy churn (n0=%d, %d steps)\n", n0, steps)
	fmt.Fprintf(w, "type-2 rebuilds: %d, min separation: %d steps\n", res.Type2Steps, res.MinSeparation)
	fmt.Fprintf(w, "amortized per step: rounds %.1f, messages %.1f, topology changes %.1f (spike max rounds %.0f)\n\n",
		res.AmortRounds, res.AmortMessages, res.AmortTopo, res.SpikeMaxRounds)
	return res
}

// ---------------------------------------------------------------------------
// DHT: Section 4.4.4 costs
// ---------------------------------------------------------------------------

// DHTPoint is one size sample of the DHT sweep.
type DHTPoint struct {
	N          int
	PutMean    float64
	GetMean    float64
	PutMax     float64
	LogN       float64
	MaxPerNode int
}

// DHTCosts sweeps sizes and measures per-op routing costs and storage
// balance; returns the points and the fitted power exponent of the mean
// put cost (log-shaped when << 1).
func DHTCosts(w io.Writer, sizes []int, ops int, seed int64) ([]DHTPoint, float64) {
	var pts []DHTPoint
	for _, n := range sizes {
		m := newDex(n, dex.Staggered, seed)
		d := dht.New(m)
		rng := rand.New(rand.NewSource(seed))
		var putc, getc []float64
		for i := 0; i < ops; i++ {
			origin := m.Nodes()[rng.Intn(m.Size())]
			key := fmt.Sprintf("key-%d", i)
			s := d.Put(origin, key, "v")
			putc = append(putc, float64(s.Messages))
			_, _, g := d.Get(origin, key)
			getc = append(getc, float64(g.Messages))
		}
		put := stats.Summarize(putc)
		get := stats.Summarize(getc)
		maxPer := 0
		for _, c := range d.ItemsPerNode() {
			if c > maxPer {
				maxPer = c
			}
		}
		pts = append(pts, DHTPoint{
			N: n, PutMean: put.Mean, GetMean: get.Mean, PutMax: put.Max,
			LogN: math.Log2(float64(n)), MaxPerNode: maxPer,
		})
	}
	ns := make([]float64, len(pts))
	pm := make([]float64, len(pts))
	for i, p := range pts {
		ns[i] = float64(p.N)
		pm[i] = p.PutMean
	}
	_, exp := stats.LogScalingExponent(ns, pm)
	tb := &stats.Table{Header: []string{"n", "put-mean(msgs)", "get-mean(msgs)", "put-max", "log2(n)", "max-items/node"}}
	for _, p := range pts {
		tb.AddF(p.N, p.PutMean, p.GetMean, p.PutMax, p.LogN, p.MaxPerNode)
	}
	fmt.Fprintf(w, "DHT: insert/lookup costs (%d ops per size)\n%spower-law exponent of put cost: %.3f\n\n", ops, tb, exp)
	return pts, exp
}

// ---------------------------------------------------------------------------
// MULTI: Corollary 2 - batch churn
// ---------------------------------------------------------------------------

// MultiResult captures the batch-churn measurements.
type MultiResult struct {
	Batches        int
	MsgsPerBatch   float64
	RoundsPerBatch float64
	NRef           int
}

// MultiBatch alternates insert and delete batches of n*eps nodes.
func MultiBatch(w io.Writer, n0 int, eps float64, batches int, seed int64) MultiResult {
	m := newDex(n0, dex.Simplified, seed)
	rng := rand.New(rand.NewSource(seed))
	var msgs, rounds float64
	done := 0
	for b := 0; b < batches; b++ {
		n := m.Size()
		k := int(eps * float64(n))
		if k < 1 {
			k = 1
		}
		if b%2 == 0 {
			var specs []dex.InsertSpec
			nodes := m.Nodes()
			for i := 0; i < k; i++ {
				specs = append(specs, dex.InsertSpec{ID: m.FreshID(), Attach: nodes[rng.Intn(len(nodes))]})
			}
			if err := m.InsertBatch(specs); err != nil {
				panic(err)
			}
		} else {
			nodes := m.Nodes()
			rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
			if err := m.DeleteBatch(nodes[:k]); err != nil {
				continue // adversary must pick a legal victim set
			}
		}
		st := m.LastStep()
		msgs += float64(st.Messages)
		rounds += float64(st.Rounds)
		done++
	}
	res := MultiResult{Batches: done, MsgsPerBatch: msgs / float64(done),
		RoundsPerBatch: rounds / float64(done), NRef: m.Size()}
	fmt.Fprintf(w, "MULTI: batch churn eps=%.3f (%d batches, final n=%d)\n", eps, done, res.NRef)
	fmt.Fprintf(w, "per batch: messages %.0f (budget O(n log^2 n) = %.0f), rounds %.0f (budget O(log^3 n) = %.0f)\n\n",
		res.MsgsPerBatch, float64(res.NRef)*math.Pow(math.Log2(float64(res.NRef)), 2),
		res.RoundsPerBatch, math.Pow(math.Log2(float64(res.NRef)), 3))
	return res
}

// ---------------------------------------------------------------------------
// FIG-W: walk hit-rate (Lemma 2 mechanism)
// ---------------------------------------------------------------------------

// WalkHitRate plants |Spare| ~ frac*n and measures the probability that a
// c*log2(n)-step walk finds it, per walk-length factor.
func WalkHitRate(w io.Writer, n0 int, frac float64, trials int, seed int64) map[int]float64 {
	m := newDex(n0, dex.Staggered, seed)
	// Churn to a steady state where ~frac of nodes are Spare: grow until
	// p/n ~ 1/(1-frac)... simpler: measure against the live Spare set at
	// whatever density the churn produced, reporting the density too.
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n0*2; i++ {
		nodes := m.Nodes()
		m.Insert(m.FreshID(), nodes[rng.Intn(len(nodes))])
	}
	g := m.Graph()
	density := float64(m.SpareCount()) / float64(m.Size())
	out := make(map[int]float64)
	logN := int(math.Ceil(math.Log2(float64(m.Size()))))
	for _, c := range []int{1, 2, 4, 8} {
		hits := 0
		for tr := 0; tr < trials; tr++ {
			nodes := m.Nodes()
			start := nodes[rng.Intn(len(nodes))]
			res := walkOnce(g, start, c*logN, rng.Uint64(), func(u core.NodeID) bool {
				return m.Load(u) >= 2
			})
			if res {
				hits++
			}
		}
		out[c] = float64(hits) / float64(trials)
	}
	fmt.Fprintf(w, "FIG-W: walk hit rate into Spare (|Spare|/n = %.2f, n = %d, %d trials)\n", density, m.Size(), trials)
	for _, c := range []int{1, 2, 4, 8} {
		fmt.Fprintf(w, "  walk length %d*log2(n): hit rate %.3f\n", c, out[c])
	}
	fmt.Fprintln(w)
	return out
}

// ---------------------------------------------------------------------------
// FIG-R: permutation routing rounds on Z(p)
// ---------------------------------------------------------------------------

// PermRouting measures store-and-forward routing on Z(p) for the two
// instances that matter: (a) the inflation instance - each old vertex x
// routes to the old vertex that will generate the inverse of x's first
// cloud vertex in Z(p_new), which is what Phase 1 of type-2 recovery
// actually solves over the old cycle's edges - and (b) a seeded random
// permutation as the general worst-case-shape reference. (Routing x to
// its own chord partner x^{-1} is trivially one hop - the chord is a
// direct edge - which is why that is not the measured instance.)
func PermRouting(w io.Writer, ps []int64) map[int64]int {
	out := make(map[int64]int)
	tb := &stats.Table{Header: []string{"p", "inflation-rounds", "inflation-maxq", "random-rounds", "random-maxq", "log2(p)^2"}}
	for _, p := range ps {
		z, err := pcycle.New(p)
		if err != nil {
			panic(err)
		}
		inf, err := pcycle.NewInflation(p)
		if err != nil {
			panic(err)
		}
		zNew, err := pcycle.New(inf.PNew)
		if err != nil {
			panic(err)
		}
		inflDest := func(x pcycle.Vertex) pcycle.Vertex {
			y := inf.CloudStart(x)
			return inf.OldOwner(zNew.Inv(y))
		}
		r1, q1 := z.RoutePermutation(inflDest)
		rng := rand.New(rand.NewSource(p))
		perm := rng.Perm(int(p))
		r2, q2 := z.RoutePermutation(func(x pcycle.Vertex) pcycle.Vertex {
			return pcycle.Vertex(perm[x])
		})
		out[p] = r1
		if r2 > out[p] {
			out[p] = r2
		}
		l := math.Log2(float64(p))
		tb.AddF(p, r1, q1, r2, q2, l*l)
	}
	fmt.Fprintf(w, "FIG-R: permutation routing on Z(p) (inflation instance + random reference)\n%s\n", tb)
	return out
}

// ---------------------------------------------------------------------------
// NAIVE: Section 3 strawmen
// ---------------------------------------------------------------------------

// NaiveCosts compares DEX with the strawmen across sizes; returns
// messages-per-op means keyed by "algorithm/n".
func NaiveCosts(w io.Writer, sizes []int, steps int, seed int64) map[string]float64 {
	out := make(map[string]float64)
	tb := &stats.Table{Header: []string{"algorithm", "n", "msgs-mean", "rounds-mean", "topo-mean"}}
	for _, n := range sizes {
		for _, name := range []string{"dex", "flooding", "global-knowledge"} {
			var m harness.Maintainer
			switch name {
			case "dex":
				m = newDex(n, dex.Staggered, seed)
			case "flooding":
				nf, err := naive.New(n, naive.Flooding)
				if err != nil {
					panic(err)
				}
				m = harness.NaiveMaintainer{Network: nf}
			default:
				ng, err := naive.New(n, naive.GlobalKnowledge)
				if err != nil {
					panic(err)
				}
				m = harness.NaiveMaintainer{Network: ng}
			}
			recs, err := harness.Run(m, harness.RandomChurn{PInsert: 0.5}, harness.RunConfig{Steps: steps, Seed: seed})
			if err != nil {
				panic(err)
			}
			rounds, msgs, topo, _, _ := harness.Summaries(recs)
			out[fmt.Sprintf("%s/%d", name, n)] = msgs.Mean
			tb.AddF(name, n, msgs.Mean, rounds.Mean, topo.Mean)
		}
	}
	fmt.Fprintf(w, "NAIVE: Section 3 strawmen vs DEX (%d steps)\n%s\n", steps, tb)
	return out
}

// walkOnce is a tiny wrapper over the congest walk for FIG-W. It steps
// through the graph arena's zero-allocation RandomNeighborStep accessor,
// which draws the identical multiplicity-weighted choice the historical
// slice-building loop made for the same splitmix64 stream.
func walkOnce(g interface {
	RandomNeighborStep(u, exclude core.NodeID, r uint64) (core.NodeID, bool)
}, start core.NodeID, maxLen int, seed uint64, stop func(core.NodeID) bool) bool {
	cur := start
	state := seed
	for s := 0; s < maxLen; s++ {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		next, ok := g.RandomNeighborStep(cur, -1, z)
		if !ok {
			return false
		}
		cur = next
		if stop(cur) {
			return true
		}
	}
	return false
}
