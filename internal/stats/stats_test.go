package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty summary not zero")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := Percentile(sorted, 0); p != 10 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(sorted, 1); p != 40 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(sorted, 0.5); math.Abs(p-25) > 1e-12 {
		t.Fatalf("p50 = %v", p)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	a, b, r2 := LinearFit(x, y)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 || math.Abs(r2-1) > 1e-9 {
		t.Fatalf("fit = %v %v %v", a, b, r2)
	}
	if a, _, _ := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(a) {
		t.Fatal("underdetermined fit should be NaN")
	}
}

func TestLogScalingExponentSeparatesShapes(t *testing.T) {
	ns := []float64{256, 512, 1024, 2048, 4096}
	logCost := make([]float64, len(ns))
	linCost := make([]float64, len(ns))
	for i, n := range ns {
		logCost[i] = 12 * math.Log2(n)
		linCost[i] = 3 * n
	}
	_, eLog := LogScalingExponent(ns, logCost)
	_, eLin := LogScalingExponent(ns, linCost)
	if eLog > 0.5 {
		t.Fatalf("log-shaped cost measured exponent %v", eLog)
	}
	if eLin < 0.9 {
		t.Fatalf("linear-shaped cost measured exponent %v", eLin)
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{1, 1, 2, 3, 3, 3}, 3)
	if !strings.Contains(h, "#") {
		t.Fatalf("histogram missing bars:\n%s", h)
	}
	if Histogram(nil, 3) != "(empty)" {
		t.Fatal("empty histogram")
	}
	if !strings.Contains(Histogram([]float64{2, 2}, 3), "all values") {
		t.Fatal("constant histogram")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("alpha", "1")
	tb.AddF("beta", 2.5)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "2.50") {
		t.Fatalf("table:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestSummarizeQuickMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.P50 >= s.Min && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInts(t *testing.T) {
	out := Ints([]int{1, 2})
	if len(out) != 2 || out[1] != 2 {
		t.Fatalf("Ints = %v", out)
	}
}
