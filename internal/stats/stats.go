// Package stats provides the summary statistics and model fits the
// experiment harness uses to turn per-step measurements into the paper's
// tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary condenses a sample.
type Summary struct {
	Count          int
	Mean, Max, Min float64
	P50, P95, P99  float64
}

// Summarize computes a Summary of xs; zero value for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	total := 0.0
	for _, x := range xs {
		total += x
		if x > s.Max {
			s.Max = x
		}
		if x < s.Min {
			s.Min = x
		}
	}
	s.Mean = total / float64(len(xs))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the q-th percentile (q in [0,1]) of an ascending
// sorted sample using nearest-rank interpolation.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ints converts an int sample for Summarize.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LinearFit fits y = a + b*x by least squares and returns a, b and the
// coefficient of determination R^2.
func LinearFit(x, y []float64) (a, b, r2 float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1
	}
	ssRes := 0.0
	for i := range x {
		d := y[i] - (a + b*x[i])
		ssRes += d * d
	}
	return a, b, 1 - ssRes/ssTot
}

// LogScalingExponent fits y = a + b*log2(n) and additionally
// y = a' + e*log2(n) in log-log space (log2 y = a' + e*log2 n), returning
// the linear-in-log slope b and the power-law exponent e. For a quantity
// that is Theta(log n), e tends to 0..0.6 across practical ranges while a
// Theta(n) quantity has e near 1.
func LogScalingExponent(ns []float64, ys []float64) (slopePerLogN, powerExponent float64) {
	lx := make([]float64, len(ns))
	ly := make([]float64, len(ns))
	for i := range ns {
		lx[i] = math.Log2(ns[i])
		ly[i] = math.Log2(math.Max(ys[i], 1e-9))
	}
	_, b, _ := LinearFit(lx, ys)
	_, e, _ := LinearFit(lx, ly)
	return b, e
}

// Histogram bins xs into k equal-width buckets over [min,max] and
// renders an ASCII sketch.
func Histogram(xs []float64, k int) string {
	if len(xs) == 0 || k < 1 {
		return "(empty)"
	}
	s := Summarize(xs)
	width := (s.Max - s.Min) / float64(k)
	if width == 0 {
		return fmt.Sprintf("all values = %g (n=%d)", s.Min, s.Count)
	}
	counts := make([]int, k)
	for _, x := range xs {
		i := int((x - s.Min) / width)
		if i >= k {
			i = k - 1
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for i, c := range counts {
		bar := strings.Repeat("#", int(40*float64(c)/float64(maxC)))
		fmt.Fprintf(&sb, "%10.2f..%-10.2f %6d %s\n", s.Min+float64(i)*width, s.Min+float64(i+1)*width, c, bar)
	}
	return sb.String()
}

// Table renders rows as an aligned ASCII table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddF appends a row formatting each value with %v.
func (t *Table) AddF(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(t.Header) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}
