// Command benchdiff compares a fresh cmd/benchjson document against a
// committed baseline and enforces a thresholded ratchet: rows named by
// -gate fail the run on a >10% ns/op regression or any allocs/op
// increase; every other row is report-only (noise-prone CI runners make
// a blanket hard gate hostile, but the hot-path rows the repo optimizes
// for must not silently decay).
//
//	go test ... -benchmem | benchjson > fresh.json
//	benchdiff -baseline BENCH_graph.json -fresh fresh.json -gate BenchmarkWalkHop
//
// Gated rows missing from the fresh run also fail: a renamed or deleted
// benchmark must move its baseline in the same change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

const maxNsRegression = 0.10 // gated rows may drift at most +10% ns/op

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchjson document")
	freshPath := flag.String("fresh", "", "freshly generated benchjson document")
	gateList := flag.String("gate", "", "comma-separated benchmark names held to the ratchet")
	flag.Parse()
	if *baselinePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -fresh are required")
		os.Exit(2)
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	gated := map[string]bool{}
	for _, name := range strings.Split(*gateList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			gated[name] = true
		}
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline[name]
		now, ok := fresh[name]
		if !ok {
			if gated[name] {
				fmt.Printf("FAIL %s: gated row missing from fresh run\n", name)
				failed = true
			} else {
				fmt.Printf("     %s: missing from fresh run\n", name)
			}
			continue
		}
		delta := 0.0
		if base.NsOp > 0 {
			delta = (now.NsOp - base.NsOp) / base.NsOp
		}
		line := fmt.Sprintf("%s: %.5g -> %.5g ns/op (%+.1f%%), allocs %d -> %d",
			name, base.NsOp, now.NsOp, 100*delta, base.AllocsOp, now.AllocsOp)
		switch {
		case gated[name] && now.AllocsOp > base.AllocsOp:
			fmt.Printf("FAIL %s: allocs/op increased\n", line)
			failed = true
		case gated[name] && delta > maxNsRegression:
			fmt.Printf("FAIL %s: ns/op over the +%.0f%% ratchet\n", line, 100*maxNsRegression)
			failed = true
		case gated[name]:
			fmt.Printf("ok   %s\n", line)
		default:
			fmt.Printf("     %s\n", line)
		}
	}
	for name := range fresh {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("     %s: new row, no baseline\n", name)
		}
	}
	if failed {
		os.Exit(1)
	}
}
