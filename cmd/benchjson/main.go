// Command benchjson converts `go test -bench -benchmem` output on
// stdin into a stable JSON document on stdout, keyed by benchmark
// name with the -N GOMAXPROCS suffix stripped:
//
//	go test -run '^$' -bench . -benchmem ./internal/core/ | benchjson > BENCH_core.json
//
// The output maps each benchmark to {ns_op, b_op, allocs_op} so CI
// can diff runs against committed baselines without parsing test
// output itself.
//
// Duplicate benchmark names (from -count N reruns) keep the fastest
// sample. With -append FILE, rows parsed from stdin are merged into
// FILE's existing document under the same fastest-sample rule and the
// result is written back to FILE instead of stdout — used to measure
// packages in separate `go test` invocations (concurrent test binaries
// contend) while keeping one baseline file per tier.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// benchLine matches e.g.
// BenchmarkWALAppend-8   123456   9876 ns/op   0 B/op   0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	appendTo := flag.String("append", "", "merge rows into this JSON file (in place) instead of writing stdout")
	flag.Parse()

	out := map[string]result{}
	if *appendTo != "" {
		prev, err := os.ReadFile(*appendTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(prev, &out); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *appendTo, err)
			os.Exit(1)
		}
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := result{}
		r.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[4] != "" {
			r.BOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		// Duplicate rows (-count N reruns) keep the fastest sample: the
		// minimum is the standard noise-robust wall-clock statistic —
		// scheduler steal and GC alignment only ever add time — while
		// the alloc columns are deterministic across reruns.
		if prev, ok := out[m[1]]; ok && prev.NsOp <= r.NsOp {
			continue
		}
		out[m[1]] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	// Sorted keys keep committed baselines diffable.
	names := make([]string, 0, len(out))
	for n := range out {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		v, _ := json.Marshal(out[n])
		fmt.Fprintf(&b, "  %q: %s", n, v)
		if i < len(names)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	if *appendTo != "" {
		if err := os.WriteFile(*appendTo, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	os.Stdout.WriteString(b.String())
}
