// Command dexdht demonstrates the Section 4.4.4 distributed hash table
// on a DEX overlay surviving churn, including full virtual-graph
// rebuilds. A second event subscriber (a metrics collector) watches the
// same network to show the multi-subscriber API.
//
// Usage:
//
//	dexdht -n0 64 -keys 1000 -churn 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/dex"
	"repro/internal/dht"
	"repro/internal/stats"
)

func main() {
	var (
		n0    = flag.Int("n0", 64, "initial network size")
		keys  = flag.Int("keys", 1000, "keys to store")
		churn = flag.Int("churn", 500, "churn steps between write and read")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	nw, err := dex.New(dex.WithInitialSize(*n0), dex.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	table := dht.New(nw)
	// Independent observer of the same network: counts structural events
	// alongside the DHT without interfering with it.
	transfers, rebuilds := 0, 0
	defer nw.Subscribe(func(ev dex.Event) {
		switch ev.(type) {
		case dex.VertexTransferred:
			transfers++
		case dex.GraphRebuilt:
			rebuilds++
		}
	})()
	rng := rand.New(rand.NewSource(*seed))

	var putCosts []float64
	for i := 0; i < *keys; i++ {
		origin := nw.Nodes()[rng.Intn(nw.Size())]
		s := table.Put(origin, fmt.Sprintf("key-%d", i), fmt.Sprintf("value-%d", i))
		putCosts = append(putCosts, float64(s.Messages))
	}
	fmt.Printf("stored %d keys on n=%d nodes (p=%d): put cost %s\n",
		*keys, nw.Size(), nw.P(), fmtSummary(putCosts))

	for i := 0; i < *churn; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.55 || nw.Size() <= 6 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("churned %d steps: n=%d p=%d, %d virtual-graph rebuilds, %d migration messages\n",
		*churn, nw.Size(), nw.P(), table.Rehashes, table.MigrationMessages)
	fmt.Printf("second subscriber saw %d vertex transfers and %d rebuilds\n", transfers, rebuilds)
	if rebuilds != table.Rehashes {
		log.Fatalf("subscribers disagree: metrics saw %d rebuilds, DHT saw %d", rebuilds, table.Rehashes)
	}

	var getCosts []float64
	lost := 0
	for i := 0; i < *keys; i++ {
		origin := nw.Nodes()[rng.Intn(nw.Size())]
		v, ok, s := table.Get(origin, fmt.Sprintf("key-%d", i))
		if !ok || v != fmt.Sprintf("value-%d", i) {
			lost++
		}
		getCosts = append(getCosts, float64(s.Messages))
	}
	fmt.Printf("read back %d keys: %d lost, get cost %s\n", *keys, lost, fmtSummary(getCosts))

	dist := table.ItemsPerNode()
	var loads []float64
	for _, c := range dist {
		loads = append(loads, float64(c))
	}
	fmt.Printf("storage balance across %d nodes: %s\n", len(dist), fmtSummary(loads))
	if lost > 0 {
		log.Fatalf("%d keys lost", lost)
	}
}

func fmtSummary(xs []float64) string {
	s := stats.Summarize(xs)
	return fmt.Sprintf("mean %.1f / p99 %.1f / max %.0f", s.Mean, s.P99, s.Max)
}
