// Command dexbench regenerates every table and figure of the paper's
// evaluation (the experiment index lives in README.md).
//
// Usage:
//
//	dexbench -exp all                 # everything, paper-scale
//	dexbench -exp table1 -steps 2048  # one experiment, custom scale
//	dexbench -exp gap -n0 256
//
// Experiments: table1, fig1, thm1, gap, amort, dht, multi, walk, route,
// naive, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (table1|fig1|thm1|gap|amort|dht|multi|walk|route|naive|all)")
		n0    = flag.Int("n0", 128, "initial network size")
		steps = flag.Int("steps", 1024, "churn steps (table1/gap/amort)")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	w := os.Stdout

	run := func(name string) {
		switch name {
		case "table1":
			experiments.Table1(w, *n0, *steps, *seed)
		case "fig1":
			experiments.Figure1(w)
		case "thm1":
			experiments.Thm1Scaling(w, []int{256, 512, 1024, 2048, 4096}, 384, *seed)
		case "gap":
			experiments.GapSeries(w, *n0, *steps, *steps/24+1, *seed)
		case "amort":
			experiments.Amortized(w, *n0, *steps*4, *seed)
		case "dht":
			experiments.DHTCosts(w, []int{128, 256, 512, 1024, 2048}, 2000, *seed)
		case "multi":
			experiments.MultiBatch(w, *n0*2, 1.0/16, 24, *seed)
			experiments.MultiBatch(w, *n0*2, 1.0/64, 24, *seed)
		case "walk":
			experiments.WalkHitRate(w, *n0, 0.3, 2000, *seed)
		case "route":
			experiments.PermRouting(w, []int64{101, 499, 1009, 2003, 4001})
		case "naive":
			experiments.NaiveCosts(w, []int{64, 128, 256, 512}, 128, *seed)
		case "ablate":
			experiments.AblateTheta(w, *n0, *steps, *seed)
			experiments.AblateWalkFactor(w, *n0, *steps, *seed)
			experiments.AblateMode(w, *n0, *steps, *seed)
			experiments.CoordinatorAttack(w, *n0, *steps/4, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, name := range []string{"fig1", "table1", "thm1", "gap", "amort", "dht", "multi", "walk", "route", "naive", "ablate"} {
			run(name)
		}
		return
	}
	run(*exp)
}
