// Command dexsim runs a DEX churn simulation and prints per-step and
// aggregate health: the live demonstration of Theorem 1's maintenance
// guarantees. Real-graph maintenance is incremental (o(p) per
// operation), so million-node runs are practical:
//
//	dexsim -n0 8192 -steps 1000000 -pinsert 1.0 -gap-every 0 -audit sampled
//
// Usage:
//
//	dexsim -n0 64 -steps 500 -pinsert 0.6 -mode staggered -adversary random
//	dexsim -adversary cut -gap-every 25
//	dexsim -audit sampled        # o(n) incremental audit every step
//	dexsim -audit full           # exhaustive invariant check every step
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/dex"
	"repro/internal/harness"
	"repro/internal/spectral"
	"repro/internal/stats"
)

func main() {
	var (
		n0       = flag.Int("n0", 64, "initial network size")
		steps    = flag.Int("steps", 500, "churn steps")
		pinsert  = flag.Float64("pinsert", 0.55, "insertion probability (random adversary)")
		mode     = flag.String("mode", "staggered", "type-2 recovery: staggered|simplified")
		advName  = flag.String("adversary", "random", "adversary: random|insert|delete|maxdeg|cut|coord")
		seed     = flag.Int64("seed", 1, "random seed")
		gapEvery = flag.Int("gap-every", 50, "sample spectral gap every k steps (0=off; costly at large n)")
		degEvery = flag.Int("deg-every", -1, "sample max degree every k steps (-1=auto, 0=every step)")
		audit    = flag.String("audit", "off", "per-step invariant checks: off|sampled|full")
		histCap  = flag.Int("history-cap", -1, "cap per-step metrics history (-1=auto, 0=unbounded)")
		trace    = flag.Int("trace", 0, "print every k-th step's metrics (0=off)")
		memstats = flag.Bool("memstats", false, "print heap and adjacency-arena memory summary after the run")
		workers  = flag.Int("workers", 1, "parallel type-1 walk workers (seeded runs are identical at any width)")
	)
	flag.Parse()

	recovery := dex.Staggered
	if *mode == "simplified" {
		recovery = dex.Simplified
	} else if *mode != "staggered" {
		log.Fatalf("unknown mode %q", *mode)
	}
	var auditMode dex.AuditMode
	switch *audit {
	case "off", "false", "":
		auditMode = dex.AuditOff
	case "sampled":
		auditMode = dex.AuditSampled
	case "full", "true":
		auditMode = dex.AuditFull
	default:
		log.Fatalf("unknown audit mode %q (want off|sampled|full)", *audit)
	}
	if *histCap < 0 {
		// Auto: unbounded for interactive runs, bounded for long ones so a
		// 10^6-step run does not hold 10^6 StepMetrics (Totals keeps the
		// lifetime aggregates either way).
		*histCap = 0
		if *steps > 100_000 {
			*histCap = 65536
		}
	}
	nw, err := dex.New(
		dex.WithInitialSize(*n0),
		dex.WithMode(recovery),
		dex.WithSeed(*seed),
		dex.WithAuditMode(auditMode),
		dex.WithHistoryCap(*histCap),
		dex.WithWorkers(*workers),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()

	var adv harness.Adversary
	switch *advName {
	case "random":
		adv = harness.RandomChurn{PInsert: *pinsert}
	case "insert":
		adv = harness.InsertOnly{}
	case "delete":
		adv = harness.DeleteOnly{}
	case "maxdeg":
		adv = harness.MaxDegreeTarget{PTarget: 0.5}
	case "cut":
		adv = &harness.CutThinning{}
	case "coord":
		adv = harness.CoordinatorKiller{}
	default:
		log.Fatalf("unknown adversary %q", *advName)
	}
	if *degEvery < 0 {
		// Auto: every step for interactive runs; at large step counts the
		// O(n) max-degree scan is sampled so it cannot dominate the run.
		*degEvery = 0
		if *steps > 10_000 {
			*degEvery = *steps / 256
		}
	}

	fmt.Printf("DEX self-healing expander: n0=%d p0=%d mode=%s adversary=%s audit=%s workers=%d\n",
		*n0, nw.P(), recovery, adv.Name(), auditMode, *workers)
	recs, err := harness.Run(nw, adv, harness.RunConfig{
		Steps: *steps, Seed: *seed, GapEvery: *gapEvery, DegEvery: *degEvery,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *trace > 0 {
		for i, r := range recs {
			if i%*trace == 0 {
				fmt.Printf("step %5d  n=%5d  rounds=%4d msgs=%5d topo=%3d maxdeg=%3d\n",
					r.Step, r.N, r.Cost.Rounds, r.Cost.Messages, r.Cost.TopologyChanges, r.MaxDegree)
			}
		}
	}
	rounds, msgs, topo, maxDeg, minGap := harness.Summaries(recs)
	tb := &stats.Table{Header: []string{"measure", "mean", "p50", "p95", "p99", "max"}}
	tb.AddF("rounds", rounds.Mean, rounds.P50, rounds.P95, rounds.P99, rounds.Max)
	tb.AddF("messages", msgs.Mean, msgs.P50, msgs.P95, msgs.P99, msgs.Max)
	tb.AddF("topology-changes", topo.Mean, topo.P50, topo.P95, topo.P99, topo.Max)
	fmt.Println()
	fmt.Println(tb)
	fmt.Printf("final: n=%d p=%d max-degree=%d max-load=%d spare=%d low=%d\n",
		nw.Size(), nw.P(), maxDeg, nw.MaxLoad(), nw.SpareCount(), nw.LowCount())
	if minGap >= 0 {
		fmt.Printf("min sampled spectral gap: %.4f (final %.4f)\n", minGap, spectral.Gap(nw.Graph()))
	}
	if *memstats {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st := nw.Graph().Stats()
		n := nw.Size()
		fmt.Printf("memstats: heap %.1f MB (%.0f B/node); arena: %d live cells in %d pool cells (%.1f MB, %.0f B/node), %d free\n",
			float64(ms.HeapAlloc)/(1<<20), float64(ms.HeapAlloc)/float64(n),
			st.LiveCells, st.PoolCap, float64(st.PoolCap*12)/(1<<20), float64(st.PoolCap*12)/float64(n),
			st.FreeCells)
	}
	if *workers > 1 {
		hits, misses, tail := nw.SpecStats()
		fmt.Printf("parallel recovery: %d window walks committed, %d re-run serially, %d retry-tail walks\n",
			hits, misses, tail)
	}
	tot := nw.Totals()
	fmt.Printf("type-2 activity: %d inflation and %d deflation events (%d staggered rebuilds committed); invariants: ",
		tot.InflateEvents, tot.DeflateEvents, tot.StaggerFinishes)
	if err := nw.CheckInvariants(); err != nil {
		fmt.Printf("VIOLATED (%v)\n", err)
		os.Exit(1)
	}
	fmt.Println("all hold")
}
