// Command dexsim runs a DEX churn simulation and prints per-step and
// aggregate health: the live demonstration of Theorem 1's maintenance
// guarantees. Real-graph maintenance is incremental (o(p) per
// operation), so million-node runs are practical:
//
//	dexsim -n0 8192 -steps 1000000 -pinsert 1.0 -gap-every 0 -audit sampled
//
// Usage:
//
//	dexsim -n0 64 -steps 500 -pinsert 0.6 -mode staggered -adversary random
//	dexsim -adversary cut -gap-every 25
//	dexsim -audit sampled        # o(n) incremental audit every step
//	dexsim -audit full           # exhaustive invariant check every step
//
// With -persist the run is durable: operations go through a
// write-ahead log, checkpoints are taken every -checkpoint-every
// steps, and SIGINT/SIGTERM trigger a final checkpoint before the
// summary. A killed run resumes exactly where it stopped:
//
//	dexsim -persist run.d -steps 100000          # Ctrl-C at will
//	dexsim -persist run.d -steps 100000 -resume  # continues to 100000
//
// With -pipeline N the run drives the pipelined concurrent façade from
// N submitter goroutines (dex.WithPipeline) and reports the speculation
// counters; invariants are checked at the end:
//
//	dexsim -n0 128 -steps 1500 -pipeline 4 -audit sampled -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"

	"repro/dex"
	"repro/internal/harness"
	"repro/internal/spectral"
	"repro/internal/stats"
)

func main() {
	var (
		n0       = flag.Int("n0", 64, "initial network size")
		steps    = flag.Int("steps", 500, "churn steps (with -resume: the lifetime total)")
		pinsert  = flag.Float64("pinsert", 0.55, "insertion probability (random adversary)")
		mode     = flag.String("mode", "staggered", "type-2 recovery: staggered|simplified")
		advName  = flag.String("adversary", "random", "adversary: random|insert|delete|maxdeg|cut|coord")
		seed     = flag.Int64("seed", 1, "random seed")
		gapEvery = flag.Int("gap-every", 50, "sample spectral gap every k steps (0=off; costly at large n)")
		degEvery = flag.Int("deg-every", -1, "sample max degree every k steps (-1=auto, 0=every step)")
		audit    = flag.String("audit", "off", "per-step invariant checks: off|sampled|full")
		histCap  = flag.Int("history-cap", -1, "cap per-step metrics history (-1=auto, 0=unbounded)")
		trace    = flag.Int("trace", 0, "print every k-th step's metrics (0=off)")
		memstats = flag.Bool("memstats", false, "print heap and adjacency-arena memory summary after the run")
		workers  = flag.Int("workers", 1, "parallel type-1 walk workers (seeded runs are identical at any width)")
		pipeline = flag.Int("pipeline", 0, "pipelined concurrent drive: N submitter goroutines through the WithPipeline façade (random adversary only)")

		persistDir = flag.String("persist", "", "durable-state directory: WAL every op, periodic checkpoints, crash recovery")
		ckptEvery  = flag.Int("checkpoint-every", 4096, "steps between automatic checkpoints (-persist only)")
		groupOps   = flag.Int("group-commit", 1, "ops per WAL fsync batch (-persist only)")
		resume     = flag.Bool("resume", false, "resume from existing state in -persist dir (refused otherwise)")
	)
	flag.Parse()

	recovery := dex.Staggered
	if *mode == "simplified" {
		recovery = dex.Simplified
	} else if *mode != "staggered" {
		log.Fatalf("unknown mode %q", *mode)
	}
	var auditMode dex.AuditMode
	switch *audit {
	case "off", "false", "":
		auditMode = dex.AuditOff
	case "sampled":
		auditMode = dex.AuditSampled
	case "full", "true":
		auditMode = dex.AuditFull
	default:
		log.Fatalf("unknown audit mode %q (want off|sampled|full)", *audit)
	}
	if *histCap < 0 {
		// Auto: unbounded for interactive runs, bounded for long ones so a
		// 10^6-step run does not hold 10^6 StepMetrics (Totals keeps the
		// lifetime aggregates either way).
		*histCap = 0
		if *steps > 100_000 {
			*histCap = 65536
		}
	}
	opts := []dex.Option{
		dex.WithInitialSize(*n0),
		dex.WithMode(recovery),
		dex.WithSeed(*seed),
		dex.WithAuditMode(auditMode),
		dex.WithHistoryCap(*histCap),
		dex.WithWorkers(*workers),
	}
	if *persistDir != "" {
		if !*resume {
			if ckpts, _ := filepath.Glob(filepath.Join(*persistDir, "checkpoint-*.ckpt")); len(ckpts) > 0 {
				log.Fatalf("%s already holds state; pass -resume to continue it", *persistDir)
			}
		}
		opts = append(opts, dex.WithPersistence(*persistDir,
			dex.WithCheckpointEvery(*ckptEvery), dex.WithGroupCommit(*groupOps)))
	}
	if *pipeline > 0 {
		if *advName != "random" {
			log.Fatalf("-pipeline supports only the random adversary (got %q)", *advName)
		}
		if *persistDir != "" {
			log.Fatal("-pipeline does not compose with -persist")
		}
		runPipelined(opts, *pipeline, *steps, *pinsert, *seed)
		return
	}

	nw, err := dex.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer nw.Close()

	var adv harness.Adversary
	switch *advName {
	case "random":
		adv = harness.RandomChurn{PInsert: *pinsert}
	case "insert":
		adv = harness.InsertOnly{}
	case "delete":
		adv = harness.DeleteOnly{}
	case "maxdeg":
		adv = harness.MaxDegreeTarget{PTarget: 0.5}
	case "cut":
		adv = &harness.CutThinning{}
	case "coord":
		adv = harness.CoordinatorKiller{}
	default:
		log.Fatalf("unknown adversary %q", *advName)
	}
	if *degEvery < 0 {
		// Auto: every step for interactive runs; at large step counts the
		// O(n) max-degree scan is sampled so it cannot dominate the run.
		*degEvery = 0
		if *steps > 10_000 {
			*degEvery = *steps / 256
		}
	}

	startStep := nw.Totals().Steps
	fmt.Printf("DEX self-healing expander: n0=%d p0=%d mode=%s adversary=%s audit=%s workers=%d\n",
		*n0, nw.P(), recovery, adv.Name(), auditMode, *workers)
	if startStep > 0 {
		root, covered := nw.LastRoot()
		fmt.Printf("resumed from %s at step %d (n=%d, history root %x over %d steps)\n",
			*persistDir, startStep, nw.Size(), root[:8], covered)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	recs, interrupted, err := run(nw, adv, sigc, runParams{
		steps: *steps, seed: *seed, gapEvery: *gapEvery, degEvery: *degEvery,
		durable: *persistDir != "",
	})
	signal.Stop(sigc)
	if err != nil {
		log.Fatal(err)
	}
	if interrupted {
		fmt.Printf("\ninterrupted at step %d", nw.Totals().Steps)
		if *persistDir != "" {
			fmt.Printf("; resume with: dexsim -persist %s -resume -steps %d ...", *persistDir, *steps)
		}
		fmt.Println()
	}
	if *persistDir != "" {
		// Final durable checkpoint so a resume replays no WAL suffix.
		if err := nw.Checkpoint(); err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		root, covered := nw.LastRoot()
		fmt.Printf("durable state: %s at step %d, history root %x over %d steps\n",
			*persistDir, nw.Totals().Steps, root[:8], covered)
	}

	if *trace > 0 {
		for i, r := range recs {
			if i%*trace == 0 {
				fmt.Printf("step %5d  n=%5d  rounds=%4d msgs=%5d topo=%3d maxdeg=%3d\n",
					r.Step, r.N, r.Cost.Rounds, r.Cost.Messages, r.Cost.TopologyChanges, r.MaxDegree)
			}
		}
	}
	rounds, msgs, topo, maxDeg, minGap := harness.Summaries(recs)
	tb := &stats.Table{Header: []string{"measure", "mean", "p50", "p95", "p99", "max"}}
	tb.AddF("rounds", rounds.Mean, rounds.P50, rounds.P95, rounds.P99, rounds.Max)
	tb.AddF("messages", msgs.Mean, msgs.P50, msgs.P95, msgs.P99, msgs.Max)
	tb.AddF("topology-changes", topo.Mean, topo.P50, topo.P95, topo.P99, topo.Max)
	fmt.Println()
	fmt.Println(tb)
	fmt.Printf("final: n=%d p=%d max-degree=%d max-load=%d spare=%d low=%d\n",
		nw.Size(), nw.P(), maxDeg, nw.MaxLoad(), nw.SpareCount(), nw.LowCount())
	if minGap >= 0 {
		fmt.Printf("min sampled spectral gap: %.4f (final %.4f)\n", minGap, spectral.Gap(nw.Graph()))
	}
	if *memstats {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		st := nw.Graph().Stats()
		n := nw.Size()
		fmt.Printf("memstats: heap %.1f MB (%.0f B/node); arena: %d live cells in %d pool cells (%.1f MB, %.0f B/node), %d free\n",
			float64(ms.HeapAlloc)/(1<<20), float64(ms.HeapAlloc)/float64(n),
			st.LiveCells, st.PoolCap, float64(st.PoolCap*12)/(1<<20), float64(st.PoolCap*12)/float64(n),
			st.FreeCells)
	}
	if *workers > 1 {
		hits, misses, tail := nw.SpecStats()
		fmt.Printf("parallel recovery: %d window walks committed, %d re-run serially, %d retry-tail walks\n",
			hits, misses, tail)
	}
	tot := nw.Totals()
	fmt.Printf("type-2 activity: %d inflation and %d deflation events (%d staggered rebuilds committed); invariants: ",
		tot.InflateEvents, tot.DeflateEvents, tot.StaggerFinishes)
	if err := nw.CheckInvariants(); err != nil {
		fmt.Printf("VIOLATED (%v)\n", err)
		os.Exit(1)
	}
	fmt.Println("all hold")
}

// runPipelined drives the WithPipeline façade from subs concurrent
// submitter goroutines: each owns a private id range (inserting fresh
// ids at sampled attach points, deleting its own earlier inserts), so
// the scheduler sees the realistic mix of disjoint and overlapping
// window footprints. The run ends with the speculation counters and
// the full invariant check as the pass/fail gate — under `go run
// -race` this is the scheduler's end-to-end race harness.
func runPipelined(opts []dex.Option, subs, steps int, pinsert float64, seed int64) {
	depth := 2 * subs
	if depth < 16 {
		depth = 16
	}
	c, err := dex.NewConcurrent(append(opts, dex.WithPipeline(depth))...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined drive: %d submitters, window depth %d\n", subs, depth)
	var wg sync.WaitGroup
	var failed atomic.Bool
	per := (steps + subs - 1) / subs
	for g := 0; g < subs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)))
			var mine []dex.NodeID
			for i := 0; i < per; i++ {
				if len(mine) == 0 || rng.Float64() < pinsert {
					id := dex.NodeID(1_000_000*(g+1) + i)
					// The sampled attach point can be deleted by a peer
					// before the op is admitted; that surfaces as
					// ErrUnknownNode and is part of the contract.
					if err := c.Insert(id, c.Sample()); err == nil {
						mine = append(mine, id)
					} else if !errors.Is(err, dex.ErrUnknownNode) {
						log.Printf("submitter %d insert: %v", g, err)
						failed.Store(true)
						return
					}
				} else {
					k := rng.Intn(len(mine))
					id := mine[k]
					mine = append(mine[:k], mine[k+1:]...)
					if err := c.Delete(id); err != nil && !errors.Is(err, dex.ErrTooSmall) {
						log.Printf("submitter %d delete: %v", g, err)
						failed.Store(true)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, tail := c.PipelineStats()
	tot := c.Totals()
	fmt.Printf("final: n=%d p=%d steps=%d max-load=%d\n", c.Size(), c.P(), tot.Steps, c.MaxLoad())
	fmt.Printf("pipeline: %d speculations committed, %d drained through the serial path, %d retry-tail walks; invariants: ",
		hits, misses, tail)
	if err := c.CheckInvariants(); err != nil {
		fmt.Printf("VIOLATED (%v)\n", err)
		os.Exit(1)
	}
	fmt.Println("all hold")
	if err := c.Close(); err != nil {
		log.Fatalf("close: %v", err)
	}
	if failed.Load() {
		os.Exit(1)
	}
}

type runParams struct {
	steps    int
	seed     int64
	gapEvery int
	degEvery int
	durable  bool
}

// run is the simulation loop: harness.Run with two additions — it
// stops cleanly on a signal, and in durable mode it keys the
// adversary's randomness off the engine's lifetime step count so a
// resumed run continues the exact op schedule the killed run was
// executing. In non-durable mode it reproduces harness.Run's records
// byte for byte (one shared rng, same sampling cadence).
func run(nw *dex.Network, adv harness.Adversary, sigc <-chan os.Signal, p runParams) ([]harness.Record, bool, error) {
	rng := rand.New(rand.NewSource(p.seed))
	capHint := p.steps
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	records := make([]harness.Record, 0, capHint)
	for i := nw.Totals().Steps; i < p.steps; i = nw.Totals().Steps {
		select {
		case <-sigc:
			return records, true, nil
		default:
		}
		if p.durable {
			// Deterministic across kill/resume: the adversary stream for
			// step i depends only on the seed and i, never on how many
			// sessions it took to get here. (Adversaries may perform more
			// than one engine step per Step call; keying on the engine's
			// lifetime count keeps the schedule aligned regardless.)
			rng = rand.New(rand.NewSource(p.seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15)))
		}
		if err := adv.Step(nw, rng); err != nil {
			return records, false, fmt.Errorf("step %d (%s): %w", i, adv.Name(), err)
		}
		rec := harness.Record{Step: i, N: nw.Size(), Cost: nw.LastCost(), Gap: math.NaN()}
		if p.gapEvery > 0 && i%p.gapEvery == 0 {
			rec.Gap = spectral.Gap(nw.Graph())
		}
		if p.degEvery == 0 || i%max(1, p.degEvery) == 0 {
			rec.MaxDegree = nw.Graph().MaxDistinctDegree()
		}
		records = append(records, rec)
	}
	return records, false, nil
}
