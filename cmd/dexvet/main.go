// Command dexvet is the repo's invariant checker: a multichecker over
// the four analyzers in internal/analysis that mechanize the engine's
// correctness contracts — guarddiscipline (enterOp/exitOp and façade
// locking on dex), determinism (no wall clock, no global math/rand, no
// map-iteration-order leaks in the engine packages), noalloc (the
// //dexvet:noalloc hot paths have no escaping allocation sites) and
// slotmut (slot-native graph mutation inside internal/core).
//
// Usage:
//
//	go run ./cmd/dexvet [-rules list] [packages]
//
// Packages default to ./... relative to the current directory, which
// must be inside the module. Exit status 1 means unsuppressed
// findings; every finding is either fixed or annotated with
// //dexvet:allow <rule> <reason> before a change merges (`make lint`
// enforces this in CI).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/guarddiscipline"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/slotmut"
)

var all = []*analysis.Analyzer{
	determinism.Analyzer,
	guarddiscipline.Analyzer,
	noalloc.Analyzer,
	slotmut.Analyzer,
}

func main() {
	rules := flag.String("rules", "", "comma-separated analyzer subset to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dexvet [-rules list] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	selected := all
	if *rules != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dexvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dexvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(modRoot, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dexvet:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dexvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(modRoot, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dexvet: %d finding(s) — fix them or annotate with //dexvet:allow <rule> <reason>\n", len(diags))
		os.Exit(1)
	}
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}
