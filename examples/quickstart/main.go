// Quickstart: build a DEX self-healing expander, churn it, and inspect
// its health. This is the minimal tour of the public dex API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dex"
	"repro/internal/spectral"
)

func main() {
	// 1. Build an initial network of 32 nodes. DEX picks the first prime
	//    p0 in (4n, 8n) and maps the virtual expander Z(p0) onto them.
	nw, err := dex.New(dex.WithInitialSize(32))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial network: n=%d, virtual graph %s, spectral gap %.4f\n",
		nw.Size(), nw.Cycle(), spectral.Gap(nw.Graph()))

	// 2. The adversary inserts and deletes nodes; DEX heals after every
	//    step with O(log n) rounds/messages and O(1) topology changes.
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 200; step++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.6 {
			attach := nodes[rng.Intn(len(nodes))] // adversary picks the attach point
			if err := nw.Insert(nw.FreshID(), attach); err != nil {
				log.Fatal(err)
			}
		} else {
			victim := nodes[rng.Intn(len(nodes))] // adversary picks the victim
			if err := nw.Delete(victim); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 3. Inspect per-step costs and structural health.
	var maxRounds, maxMsgs, maxTopo int
	for _, m := range nw.History() {
		if m.Rounds > maxRounds {
			maxRounds = m.Rounds
		}
		if m.Messages > maxMsgs {
			maxMsgs = m.Messages
		}
		if m.TopologyChanges > maxTopo {
			maxTopo = m.TopologyChanges
		}
	}
	fmt.Printf("after 200 adversarial steps: n=%d, virtual graph %s\n", nw.Size(), nw.Cycle())
	fmt.Printf("worst step: %d rounds, %d messages, %d topology changes\n", maxRounds, maxMsgs, maxTopo)
	fmt.Printf("max load %d (bound %d), max degree %d, spectral gap %.4f\n",
		nw.MaxLoad(), 4*nw.Zeta(), nw.Graph().MaxDistinctDegree(), spectral.Gap(nw.Graph()))

	// 4. Every paper invariant is mechanically checkable.
	if err := nw.CheckInvariants(); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("all invariants hold: the network self-healed through every change")
}
