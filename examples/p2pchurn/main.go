// P2P churn: a peer-to-peer swarm under an adaptive attacker that knows
// the entire network state and aims directly at the sparsest cut - the
// paper's motivating scenario. DEX (deterministic expansion) is run
// side by side with the Law-Siu randomized construction; watch the
// spectral gap columns.
package main

import (
	"fmt"
	"log"

	"repro/dex"
	"repro/internal/harness"
	"repro/internal/lawsiu"
	"repro/internal/spectral"
)

func main() {
	const n0 = 96
	const steps = 360

	dexNet, err := dex.New(dex.WithInitialSize(n0))
	if err != nil {
		log.Fatal(err)
	}

	lsNet, err := lawsiu.New(n0, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	ls := harness.LawSiuMaintainer{Network: lsNet}

	fmt.Println("adaptive cut-thinning attack on a P2P swarm (gap sampled every 40 steps)")
	fmt.Printf("%8s  %10s  %10s\n", "step", "dex-gap", "lawsiu-gap")
	attackBoth := func(from, to int) {
		advD := &harness.CutThinning{}
		advL := &harness.CutThinning{}
		if _, err := harness.Run(dexNet, advD, harness.RunConfig{Steps: to - from, Seed: int64(from + 1)}); err != nil {
			log.Fatal(err)
		}
		if _, err := harness.Run(ls, advL, harness.RunConfig{Steps: to - from, Seed: int64(from + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	for s := 0; s < steps; s += 40 {
		attackBoth(s, s+40)
		fmt.Printf("%8d  %10.4f  %10.4f\n", s+40,
			spectral.Gap(dexNet.Graph()), spectral.Gap(ls.Graph()))
	}

	fmt.Println()
	rounds, msgs, topo, maxDeg, _ := harness.Summaries(recsOf(dexNet))
	fmt.Printf("DEX per-step envelope while under attack: rounds p99 %.0f, messages p99 %.0f, topo p99 %.0f, max degree %d\n",
		rounds.P99, msgs.P99, topo.P99, maxDeg)
	if err := dexNet.CheckInvariants(); err != nil {
		log.Fatalf("DEX invariant violated: %v", err)
	}
	fmt.Println("DEX self-healed through the entire attack; expansion never left the constant floor")
}

// recsOf converts the step history into harness records for Summaries.
func recsOf(nw *dex.Network) []harness.Record {
	var recs []harness.Record
	for _, m := range nw.History() {
		recs = append(recs, harness.Record{
			Step: m.Step, N: m.N,
			Cost:      harness.Cost{Rounds: m.Rounds, Messages: m.Messages, TopologyChanges: m.TopologyChanges},
			MaxDegree: 0,
		})
	}
	if len(recs) > 0 {
		recs[len(recs)-1].MaxDegree = nw.Graph().MaxDistinctDegree()
	}
	return recs
}
