// DHT example: a key/value store on the self-healing overlay
// (Section 4.4.4). Keys survive node churn, owner deletions, and a full
// virtual-graph inflation, with O(log n) lookup costs throughout.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/dex"
	"repro/internal/dht"
)

func main() {
	nw, err := dex.New(dex.WithInitialSize(48))
	if err != nil {
		log.Fatal(err)
	}
	store := dht.New(nw)
	rng := rand.New(rand.NewSource(42))

	// Store a library of keys from random origins.
	const keys = 400
	for i := 0; i < keys; i++ {
		origin := nw.Nodes()[rng.Intn(nw.Size())]
		store.Put(origin, fmt.Sprintf("book-%03d", i), fmt.Sprintf("shelf-%d", i%17))
	}
	fmt.Printf("stored %d keys across %d nodes (p=%d)\n", keys, nw.Size(), nw.P())

	// Kill the owner of a specific key, twice: the key must re-home.
	key := "book-123"
	for round := 1; round <= 2; round++ {
		owner := store.Owner(key)
		if err := nw.Delete(owner); err != nil {
			log.Fatal(err)
		}
		v, ok, s := store.Get(nw.Nodes()[0], key)
		fmt.Printf("deleted owner %d of %q -> re-homed to %d, Get = %q (ok=%v, %d msgs)\n",
			owner, key, store.Owner(key), v, ok, s.Messages)
		if !ok {
			log.Fatal("key lost after owner deletion")
		}
	}

	// Insert-heavy churn until the virtual graph inflates underneath the
	// data; the DHT migrates every item to the new hash space.
	p0 := nw.P()
	for i := 0; nw.P() == p0; i++ {
		attach := nw.Nodes()[rng.Intn(nw.Size())]
		if err := nw.Insert(nw.FreshID(), attach); err != nil {
			log.Fatal(err)
		}
		if i > 100000 {
			log.Fatal("network never inflated")
		}
	}
	fmt.Printf("virtual graph inflated %d -> %d (%d rebuild(s), %d migration messages)\n",
		p0, nw.P(), store.Rehashes, store.MigrationMessages)

	// Verify the whole library and report costs.
	lost, totalMsgs := 0, 0
	for i := 0; i < keys; i++ {
		v, ok, s := store.Get(nw.Nodes()[0], fmt.Sprintf("book-%03d", i))
		if !ok || v != fmt.Sprintf("shelf-%d", i%17) {
			lost++
		}
		totalMsgs += s.Messages
	}
	fmt.Printf("read back %d keys after inflation: %d lost, avg lookup %0.1f messages\n",
		keys, lost, float64(totalMsgs)/keys)
	if lost > 0 {
		log.Fatal("data loss across inflation")
	}
	fmt.Println("every key survived churn, owner deletions and a full p-cycle rebuild")
}
