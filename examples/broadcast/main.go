// Broadcast & sampling: the paper's introduction motivates expanders as
// topologies where every message floods in O(log n) rounds and nodes can
// sample near-uniform peers with short random walks - and those
// properties must hold *despite churn*. This example measures both on a
// live DEX network, before and after heavy adversarial churn.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/dex"
	"repro/internal/congest"
	"repro/internal/spectral"
)

func main() {
	nw, err := dex.New(dex.WithInitialSize(128))
	if err != nil {
		log.Fatal(err)
	}
	measure(nw, "before churn")

	// Heavy adversarial churn: replace most of the swarm.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 600; i++ {
		nodes := nw.Nodes()
		if rng.Float64() < 0.5 {
			if err := nw.Insert(nw.FreshID(), nodes[rng.Intn(len(nodes))]); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := nw.Delete(nodes[rng.Intn(len(nodes))]); err != nil {
				log.Fatal(err)
			}
		}
	}
	measure(nw, "after 600 churn steps")
}

func measure(nw *dex.Network, label string) {
	g := nw.Graph()
	n := nw.Size()
	logN := math.Log2(float64(n))

	// Broadcast: flood from the coordinator, count rounds.
	rounds, msgs := congest.BroadcastCost(g, nw.Coordinator())
	// Sampling: total-variation distance of a 4*log2(n)-step walk from
	// the stationary distribution.
	walkLen := int(4 * math.Ceil(logN))
	tv := spectral.TotalVariationFromStationary(g,
		spectral.WalkDistribution(g, nw.Coordinator(), walkLen))

	fmt.Printf("%s: n=%d, gap=%.4f\n", label, n, spectral.Gap(g))
	fmt.Printf("  broadcast: %d rounds (%.1fx log2 n), %d messages\n",
		rounds, float64(rounds)/logN, msgs)
	fmt.Printf("  peer sampling: %d-step walk is %.4f TV from uniform-by-degree\n", walkLen, tv)
	if float64(rounds) > 6*logN {
		log.Fatalf("broadcast not logarithmic: %d rounds vs log2 n = %.1f", rounds, logN)
	}
	if tv > 0.05 {
		log.Fatalf("walk failed to mix: TV = %.4f", tv)
	}
}
